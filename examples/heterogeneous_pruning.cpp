// Heterogeneous pruning: the OC3-FO scenario, where an entirely
// unrelated Formula One schema (16 tables / 111 attributes, zero
// linkable elements) joins the matching pool and must be pruned.
//
// Contrasts global Scoping (one ODA over the union of signatures) with
// Collaborative Scoping (distributed per-schema encoder-decoders) — the
// paper's Section 2.4 failure analysis in executable form.
//
//   $ ./heterogeneous_pruning

#include <cstdio>

#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/metrics.h"
#include "eval/sweep.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/signatures.h"

namespace {

/// Linkability confusion per schema for one keep-mask.
void PrintPerSchema(const colscope::datasets::MatchingScenario& scenario,
                    const colscope::scoping::SignatureSet& signatures,
                    const std::vector<bool>& keep) {
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  for (size_t s = 0; s < scenario.set.num_schemas(); ++s) {
    size_t kept = 0, total = 0, true_kept = 0, linkable = 0;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (signatures.refs[i].schema != static_cast<int>(s)) continue;
      ++total;
      kept += keep[i];
      linkable += labels[i];
      true_kept += (keep[i] && labels[i]);
    }
    std::printf("    %-12s kept %3zu/%3zu elements (%zu linkable)\n",
                scenario.set.schema(static_cast<int>(s)).name().c_str(),
                kept, total, linkable);
  }
}

}  // namespace

int main() {
  using namespace colscope;

  datasets::MatchingScenario scenario = datasets::BuildOc3FoScenario();
  std::printf("OC3-FO: %zu elements, unlinkable overhead %.0f%% (the "
              "Formula One schema has 0 linkable elements)\n\n",
              scenario.set.num_elements(),
              100.0 * scenario.UnlinkableOverhead());

  embed::HashedLexiconEncoder encoder;
  const scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);

  // --- Global scoping: one ODA over the union -----------------------------
  // The Formula One schema dominates the global distribution (Figure 3),
  // so low outlier scores concentrate on *unlinkable* elements.
  std::printf("Global Scoping with PCA(v=0.5), keep portion p = 0.5:\n");
  outlier::PcaDetector global_oda(0.5);
  const auto global_keep = scoping::GlobalScoping(signatures, global_oda, 0.5);
  const auto global_confusion = eval::Evaluate(labels, global_keep);
  std::printf("  precision=%.2f recall=%.2f F1=%.2f\n",
              global_confusion.Precision(), global_confusion.Recall(),
              global_confusion.F1());
  PrintPerSchema(scenario, signatures, global_keep);

  // --- Collaborative scoping ----------------------------------------------
  std::printf("\nCollaborative Scoping, explained variance v = 0.85:\n");
  const auto keep =
      scoping::CollaborativeScoping(signatures, scenario.set.num_schemas(),
                                    0.85);
  if (!keep.ok()) {
    std::fprintf(stderr, "%s\n", keep.status().ToString().c_str());
    return 1;
  }
  const auto collab_confusion = eval::Evaluate(labels, *keep);
  std::printf("  precision=%.2f recall=%.2f F1=%.2f\n",
              collab_confusion.Precision(), collab_confusion.Recall(),
              collab_confusion.F1());
  PrintPerSchema(scenario, signatures, *keep);

  // --- Full-sweep comparison (Table 4 extract) ------------------------------
  std::printf("\nAUC summary over the full hyperparameter sweeps:\n");
  const auto grid = eval::ParameterGrid(0.02, 0.98);
  {
    const auto scores = global_oda.Scores(signatures.signatures);
    const auto sweep = eval::ScopingSweepFromScores(scores, labels, grid);
    const auto report = eval::ReportForScoping(labels, scores, sweep);
    std::printf("  scoping PCA(0.5):      AUC-F1=%5.1f AUC-ROC'=%5.1f "
                "AUC-PR=%5.1f\n",
                report.auc_f1, report.auc_roc_smoothed, report.auc_pr);
  }
  {
    outlier::ZScoreDetector zscore;
    const auto scores = zscore.Scores(signatures.signatures);
    const auto sweep = eval::ScopingSweepFromScores(scores, labels, grid);
    const auto report = eval::ReportForScoping(labels, scores, sweep);
    std::printf("  scoping z-score:       AUC-F1=%5.1f AUC-ROC'=%5.1f "
                "AUC-PR=%5.1f\n",
                report.auc_f1, report.auc_roc_smoothed, report.auc_pr);
  }
  {
    const auto sweep = eval::CollaborativeSweep(
        signatures, scenario.set.num_schemas(), labels, grid);
    const auto report = eval::ReportForCollaborative(sweep);
    std::printf("  collaborative PCA:     AUC-F1=%5.1f AUC-ROC'=%5.1f "
                "AUC-PR=%5.1f\n",
                report.auc_f1, report.auc_roc_smoothed, report.auc_pr);
  }
  std::printf("\nCollaborative scoping stays robust under the 263%% "
              "unlinkable overhead, while the global baselines degrade "
              "(compare with the OC3 run of multi_source_matching).\n");
  return 0;
}
