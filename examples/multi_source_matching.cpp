// Multi-source schema matching on the OC3 scenario (Oracle Customer
// Orders, MySQL classicmodels, SAP HANA sales schema) — the paper's
// domain-specific workload.
//
// Demonstrates the end-to-end production pipeline:
//   extract -> serialize -> encode -> collaborative scoping -> block ->
//   match -> evaluate,
// comparing the three matcher families (SIM / CLUSTER / LSH) with and
// without scoping.
//
//   $ ./multi_source_matching [v]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/cluster_matcher.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

int main(int argc, char** argv) {
  using namespace colscope;

  const double v = argc > 1 ? std::atof(argv[1]) : 0.85;

  datasets::MatchingScenario scenario = datasets::BuildOc3Scenario();
  std::printf("OC3: %zu schemas / %zu tables+attributes, %zu annotated "
              "linkages, unlinkable overhead %.0f%%\n\n",
              scenario.set.num_schemas(), scenario.set.num_elements(),
              scenario.truth.size(), 100.0 * scenario.UnlinkableOverhead());

  embed::HashedLexiconEncoder encoder;
  scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);

  // Fit the distributed local models once and inspect them — these are
  // the only artifacts the schemas exchange (Section 3).
  Result<std::vector<scoping::LocalModel>> models = scoping::FitLocalModels(
      signatures, scenario.set.num_schemas(), v);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  std::printf("Local self-supervised models at v = %.2f:\n", v);
  for (const auto& m : *models) {
    std::printf("  %-10s n_comp=%-3zu linkability range l=%.6f\n",
                scenario.set.schema(m.schema_index()).name().c_str(),
                m.pca().n_components(), m.linkability_range());
  }

  const std::vector<bool> keep =
      scoping::AssessAll(signatures, scenario.set.num_schemas(), *models);
  size_t kept = 0;
  for (bool k : keep) kept += k;
  std::printf("Kept %zu / %zu elements as linkable\n\n", kept, keep.size());

  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  std::vector<std::unique_ptr<matching::Matcher>> matchers;
  matchers.push_back(std::make_unique<matching::SimMatcher>(0.6));
  matchers.push_back(std::make_unique<matching::ClusterMatcher>(20));
  matchers.push_back(std::make_unique<matching::LshMatcher>(1));
  matchers.push_back(std::make_unique<matching::LshMatcher>(5));

  const std::vector<bool> all(signatures.size(), true);
  std::printf("%-12s | %28s | %28s\n", "matcher", "original schemas S",
              "streamlined schemas S'");
  std::printf("%-12s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "", "PQ", "PC",
              "F1", "RR", "PQ", "PC", "F1", "RR");
  for (const auto& matcher : matchers) {
    const auto before = eval::EvaluateMatching(
        matcher->Match(signatures, all), scenario.truth, cartesian);
    const auto after = eval::EvaluateMatching(
        matcher->Match(signatures, keep), scenario.truth, cartesian);
    std::printf("%-12s | %6.3f %6.3f %6.3f %6.3f | %6.3f %6.3f %6.3f %6.3f\n",
                matcher->name().c_str(), before.PairQuality(),
                before.PairCompleteness(), before.F1(),
                before.ReductionRatio(), after.PairQuality(),
                after.PairCompleteness(), after.F1(), after.ReductionRatio());
  }

  std::printf("\nSample of generated linkages (LSH top-1 on S'):\n");
  const auto pairs = matching::LshMatcher(1).Match(signatures, keep);
  size_t shown = 0;
  for (const auto& [a, b] : pairs) {
    const bool is_true = scenario.truth.ContainsPair(a, b);
    std::printf("  %-40s <-> %-40s %s\n",
                scenario.set.QualifiedName(a).c_str(),
                scenario.set.QualifiedName(b).c_str(),
                is_true ? "[true]" : "");
    if (++shown >= 12) break;
  }
  return 0;
}
