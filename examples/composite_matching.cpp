// Composite (COMA-style) matching: combine several element-wise scorers
// into one similarity matrix, aggregate, and pick a selection strategy —
// here on a Valentine-style fabricated pair with instance samples, so
// all three scorer families (semantic signatures, lexical names,
// instance overlap) contribute.
//
//   $ ./composite_matching

#include <cstdio>

#include "datasets/fabricator.h"
#include "datasets/instances.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/similarity_matrix.h"
#include "scoping/signatures.h"

int main() {
  using namespace colscope;

  // Fabricate a semantically-joinable pair (synonym renames) from the
  // classicmodels customers table, and attach instance samples.
  schema::Schema mysql = datasets::LoadMySqlSchema();
  datasets::AttachSyntheticSamples(mysql, /*seed=*/7);
  datasets::FabricatorOptions fab;
  fab.kind = datasets::FabricationKind::kSemanticallyJoinable;
  datasets::MatchingScenario scenario =
      datasets::FabricatePair(*mysql.FindTable("customers"), fab);

  std::printf("Fabricated %s pair: A has %zu attributes, B has %zu; "
              "%zu annotated linkages\n\n",
              datasets::FabricationKindToString(fab.kind),
              scenario.set.schema(0).num_attributes(),
              scenario.set.schema(1).num_attributes(),
              scenario.truth.size());

  const embed::HashedLexiconEncoder encoder;
  schema::SerializeOptions serialize;
  serialize.include_instance_samples = true;
  const auto signatures =
      scoping::BuildSignatures(scenario.set, encoder, serialize);
  const std::vector<bool> all(signatures.size(), true);
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();

  const matching::CosineScorer cosine;
  const matching::NameScorer name;
  const matching::InstanceScorer instance;

  // Single-scorer matchers vs the weighted composite, all with
  // reciprocal-best selection (the classical post-pruning step).
  struct Config {
    const char* label;
    std::vector<const matching::PairScorer*> scorers;
    matching::Aggregation aggregation;
    std::vector<double> weights;
  };
  const std::vector<Config> configs = {
      {"cosine only", {&cosine}, matching::Aggregation::kAverage, {}},
      {"name only", {&name}, matching::Aggregation::kAverage, {}},
      {"instance only", {&instance}, matching::Aggregation::kAverage, {}},
      {"composite avg", {&cosine, &name, &instance},
       matching::Aggregation::kAverage, {}},
      {"composite max", {&cosine, &name, &instance},
       matching::Aggregation::kMax, {}},
      {"composite weighted", {&cosine, &name, &instance},
       matching::Aggregation::kWeighted, {2.0, 1.0, 1.0}},
  };

  std::printf("%-20s %6s %6s %6s  (reciprocal-best selection)\n", "scorers",
              "PQ", "PC", "F1");
  for (const Config& config : configs) {
    matching::CompositeMatcher::Options options;
    options.aggregation = config.aggregation;
    options.weights = config.weights;
    options.selection =
        matching::CompositeMatcher::Selection::kReciprocalBest;
    matching::CompositeMatcher matcher(config.scorers, options);
    const auto quality = eval::EvaluateMatching(
        matcher.Match(signatures, all), scenario.truth, cartesian);
    std::printf("%-20s %6.3f %6.3f %6.3f\n", config.label,
                quality.PairQuality(), quality.PairCompleteness(),
                quality.F1());
  }

  std::printf("\nSelection-strategy comparison for the weighted composite:\n");
  matching::CompositeMatcher::Options options;
  options.aggregation = matching::Aggregation::kWeighted;
  options.weights = {2.0, 1.0, 1.0};
  matching::CompositeMatcher weighted({&cosine, &name, &instance}, options);
  const auto matrix = weighted.BuildMatrix(signatures, all);
  struct SelectionConfig {
    const char* label;
    std::set<matching::ElementPair> pairs;
  };
  const std::vector<SelectionConfig> selections = {
      {"threshold >= 0.6", matrix.SelectThreshold(0.6)},
      {"top-1 per element", matrix.SelectTopK(1)},
      {"reciprocal best", matrix.SelectReciprocalBest()},
      {"greedy one-to-one", matrix.SelectGreedyOneToOne(0.3)},
  };
  std::printf("%-20s %6s %6s %6s %8s\n", "selection", "PQ", "PC", "F1",
              "pairs");
  for (const SelectionConfig& selection : selections) {
    const auto quality = eval::EvaluateMatching(selection.pairs,
                                                scenario.truth, cartesian);
    std::printf("%-20s %6.3f %6.3f %6.3f %8zu\n", selection.label,
                quality.PairQuality(), quality.PairCompleteness(),
                quality.F1(), selection.pairs.size());
  }
  return 0;
}
