// Entity resolution with collaborative scoping — the paper's second
// future-work direction (Section 5): apply the distributed
// encoder-decoder linkability assessment to *records* instead of schema
// elements, pruning records that have no plausible duplicate in any
// other source before blocking.
//
//   $ ./entity_resolution [v]   (record signatures are idiosyncratic, so
//                               the useful v range sits lower than for
//                               schema elements; default 0.4)

#include <cstdio>
#include <cstdlib>

#include "embed/hashed_encoder.h"
#include "er/record_scoping.h"
#include "er/synthetic_er.h"

int main(int argc, char** argv) {
  using namespace colscope;
  const double v = argc > 1 ? std::atof(argv[1]) : 0.4;

  er::SyntheticErOptions options;
  options.num_sources = 3;
  options.entities = 40;
  options.noise_per_source = 20;
  const er::ErScenario scenario = er::BuildSyntheticErScenario(options);

  size_t total_records = 0;
  for (const auto& source : scenario.sources) total_records += source.size();
  std::printf("%zu sources, %zu records, %zu true cross-source duplicate "
              "pairs\n",
              scenario.sources.size(), total_records,
              scenario.duplicates.size());
  std::printf("example record: \"%s\"\n\n",
              er::SerializeRecord(scenario.sources[0].records()[0]).c_str());

  const embed::HashedLexiconEncoder encoder;
  const er::RecordSignatureSet signatures =
      er::BuildRecordSignatures(scenario.sources, encoder);

  // Collaborative record scoping: each source self-trains on its own
  // records; a record is kept iff a *peer's* model recognizes it.
  const auto keep = er::CollaborativeRecordScoping(
      signatures, scenario.sources.size(), v);
  if (!keep.ok()) {
    std::fprintf(stderr, "%s\n", keep.status().ToString().c_str());
    return 1;
  }
  size_t kept = 0;
  for (bool k : *keep) kept += k;
  std::printf("collaborative record scoping at v=%.2f kept %zu / %zu "
              "records\n\n",
              v, kept, keep->size());

  // Blocking with and without scoping.
  auto evaluate = [&](const std::set<er::RecordPair>& candidates,
                      const char* label) {
    size_t true_pairs = 0;
    for (const auto& pair : candidates) {
      true_pairs += scenario.duplicates.count(pair);
    }
    const double precision =
        candidates.empty() ? 0.0
                           : static_cast<double>(true_pairs) /
                                 static_cast<double>(candidates.size());
    const double recall = scenario.duplicates.empty()
                              ? 0.0
                              : static_cast<double>(true_pairs) /
                                    static_cast<double>(
                                        scenario.duplicates.size());
    std::printf("%-28s %5zu candidates  precision=%.3f  recall=%.3f\n",
                label, candidates.size(), precision, recall);
  };

  const std::vector<bool> all(signatures.size(), true);
  evaluate(er::BlockTopK(signatures, all, 2), "top-2 blocking (no scoping)");
  evaluate(er::BlockTopK(signatures, *keep, 2),
           "top-2 blocking (scoped)");
  evaluate(er::BlockTopK(signatures, all, 5), "top-5 blocking (no scoping)");
  evaluate(er::BlockTopK(signatures, *keep, 5),
           "top-5 blocking (scoped)");

  std::printf("\nScoping prunes records without plausible duplicates "
              "(per-source noise),\nshrinking the candidate set while "
              "keeping nearly all true duplicate pairs.\n");
  return 0;
}
