// Quickstart: collaborative scoping on the paper's Figure-1 example.
//
// Walks the full public API surface once: load schemas from DDL, build
// signatures, run collaborative scoping, materialize the streamlined
// schemas, and match them.
//
//   $ ./quickstart

#include <cstdio>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/sim.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"
#include "scoping/streamline.h"

int main() {
  using namespace colscope;

  // 1. The four heterogeneous schemas of Figure 1 (S1 CLIENT, S2
  //    CUSTOMER/SHIPMENTS, S3 CONTACTS, S4 CAR) with annotated ground
  //    truth. Your own schemas load through schema::ParseDdl.
  datasets::MatchingScenario scenario = datasets::BuildToyScenario();
  std::printf("Scenario %s: %zu schemas, %zu elements, unlinkable "
              "overhead %.0f%%\n",
              scenario.name.c_str(), scenario.set.num_schemas(),
              scenario.set.num_elements(),
              100.0 * scenario.UnlinkableOverhead());

  // 2. Phase I — serialize (T^a / T^t) and encode every table and
  //    attribute into a 768-dim signature.
  embed::HashedLexiconEncoder encoder;
  scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  std::printf("Encoded %zu signatures of dimension %zu\n",
              signatures.size(), encoder.dims());
  std::printf("Example serialization: \"%s\"\n", signatures.texts[1].c_str());

  // 3. Phases II + III — every schema self-trains a PCA encoder-decoder
  //    (explained variance v = 0.5) and assesses its elements against
  //    the other schemas' models.
  const double v = 0.5;
  Result<std::vector<bool>> keep =
      scoping::CollaborativeScoping(signatures, scenario.set.num_schemas(), v);
  if (!keep.ok()) {
    std::fprintf(stderr, "scoping failed: %s\n",
                 keep.status().ToString().c_str());
    return 1;
  }

  std::printf("\nLinkability assessment at v = %.2f:\n", v);
  for (size_t i = 0; i < keep->size(); ++i) {
    std::printf("  %-24s %s\n",
                scenario.set.QualifiedName(signatures.refs[i]).c_str(),
                (*keep)[i] ? "linkable" : "pruned");
  }

  // 4. Materialize the streamlined schemas S'.
  schema::SchemaSet streamlined =
      scoping::BuildStreamlinedSchemas(scenario.set, signatures, *keep);
  std::printf("\nStreamlined schemas (kept %zu of %zu elements):\n",
              scoping::CountKept(*keep), signatures.size());
  for (const auto& s : streamlined.schemas()) {
    std::printf("  %s: %zu tables, %zu attributes\n", s.name().c_str(),
                s.num_tables(), s.num_attributes());
  }

  // 5. Match the streamlined schemas with a cosine matcher and compare
  //    against matching the originals.
  matching::SimMatcher matcher(0.6);
  const std::vector<bool> all(signatures.size(), true);
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  const eval::MatchingQuality before = eval::EvaluateMatching(
      matcher.Match(signatures, all), scenario.truth, cartesian);
  const eval::MatchingQuality after = eval::EvaluateMatching(
      matcher.Match(signatures, *keep), scenario.truth, cartesian);

  std::printf("\n%s on original schemas:    PQ=%.2f PC=%.2f F1=%.2f RR=%.3f\n",
              matcher.name().c_str(), before.PairQuality(),
              before.PairCompleteness(), before.F1(),
              before.ReductionRatio());
  std::printf("%s on streamlined schemas: PQ=%.2f PC=%.2f F1=%.2f RR=%.3f\n",
              matcher.name().c_str(), after.PairQuality(),
              after.PairCompleteness(), after.F1(), after.ReductionRatio());
  return 0;
}
