// Source-to-target matching on user-provided DDL, with a custom domain
// lexicon. The paper notes collaborative scoping "also works well for
// pruning unlinkable elements for source-to-target matching" — this
// example is that workflow: two schemas only, user DDL in, ranked
// correspondences out.
//
//   $ ./source_to_target

#include <cstdio>

#include "embed/hashed_encoder.h"
#include "linalg/stats.h"
#include "matching/lsh_matcher.h"
#include "schema/ddl_parser.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"
#include "text/lexicon.h"

namespace {

constexpr char kSourceDdl[] = R"sql(
CREATE TABLE patients (
  patient_id   INT PRIMARY KEY,
  given_name   VARCHAR(60),
  family_name  VARCHAR(60),
  birth_date   DATE,
  home_city    VARCHAR(60),
  insurer_code VARCHAR(12)
);
CREATE TABLE encounters (
  encounter_id INT PRIMARY KEY,
  patient_id   INT REFERENCES patients(patient_id),
  admitted_at  TIMESTAMP,
  ward         VARCHAR(20)
);
)sql";

constexpr char kTargetDdl[] = R"sql(
CREATE TABLE person (
  person_nr    INT PRIMARY KEY,
  forename     VARCHAR(60),
  surname      VARCHAR(60),
  dob          DATE,
  city         VARCHAR(60)
);
CREATE TABLE visits (
  visit_nr     INT PRIMARY KEY,
  person_nr    INT REFERENCES person(person_nr),
  admission    TIMESTAMP,
  department   VARCHAR(20),
  billing_code VARCHAR(8)
);
)sql";

}  // namespace

int main() {
  using namespace colscope;

  // Parse both DDL scripts.
  Result<schema::Schema> source = schema::ParseDdl(kSourceDdl, "clinic");
  Result<schema::Schema> target = schema::ParseDdl(kTargetDdl, "registry");
  if (!source.ok() || !target.ok()) {
    std::fprintf(stderr, "DDL error: %s%s\n",
                 source.status().ToString().c_str(),
                 target.status().ToString().c_str());
    return 1;
  }
  schema::SchemaSet set({*source, *target});

  // Extend the built-in lexicon with domain synonyms the default
  // dictionary does not know. This is the hook a deployment uses to
  // inject its glossary.
  text::Lexicon lexicon = text::DefaultSchemaLexicon();
  lexicon.AddSynonyms("patient", {"patient", "patients", "person"}, "party");
  lexicon.AddSynonyms("encounter",
                      {"encounter", "encounters", "visit", "visits",
                       "admission", "admitted"},
                      "clinical");
  lexicon.AddSynonyms("ward", {"ward", "department"}, "clinical");

  embed::HashedLexiconEncoder encoder(embed::HashedEncoderOptions{},
                                      std::move(lexicon));
  const scoping::SignatureSet signatures =
      scoping::BuildSignatures(set, encoder);

  // Collaborative scoping with two participants.
  const auto keep = scoping::CollaborativeScoping(signatures, 2, 0.6);
  if (!keep.ok()) {
    std::fprintf(stderr, "%s\n", keep.status().ToString().c_str());
    return 1;
  }
  std::printf("Scoped out as unlinkable:\n");
  for (size_t i = 0; i < keep->size(); ++i) {
    if (!(*keep)[i]) {
      std::printf("  %s\n", set.QualifiedName(signatures.refs[i]).c_str());
    }
  }

  // Top-1 nearest-neighbour correspondences on the streamlined schemas,
  // with cosine scores for review.
  std::printf("\nProposed correspondences (LSH top-1 on S'):\n");
  const auto pairs = matching::LshMatcher(1).Match(signatures, *keep);
  for (const auto& [a, b] : pairs) {
    const double cosine = linalg::CosineSimilarity(
        signatures.signatures.Row(set.IndexOf(a)),
        signatures.signatures.Row(set.IndexOf(b)));
    std::printf("  %-30s <-> %-28s cos=%.3f\n",
                set.QualifiedName(a).c_str(), set.QualifiedName(b).c_str(),
                cosine);
  }
  return 0;
}
