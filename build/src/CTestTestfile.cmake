# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("text")
subdirs("embed")
subdirs("schema")
subdirs("datasets")
subdirs("nn")
subdirs("outlier")
subdirs("scoping")
subdirs("exchange")
subdirs("matching")
subdirs("eval")
subdirs("pipeline")
subdirs("er")
