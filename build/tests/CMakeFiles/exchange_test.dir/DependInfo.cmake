
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exchange_test.cc" "tests/CMakeFiles/exchange_test.dir/exchange_test.cc.o" "gcc" "tests/CMakeFiles/exchange_test.dir/exchange_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exchange/CMakeFiles/colscope_exchange.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/colscope_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/colscope_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/colscope_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/colscope_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/colscope_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/scoping/CMakeFiles/colscope_scoping.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/colscope_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/colscope_text.dir/DependInfo.cmake"
  "/root/repo/build/src/outlier/CMakeFiles/colscope_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/colscope_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/colscope_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
