# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_scope "/root/repo/build/tools/colscope" "scope" "--ddl" "/root/repo/tools/testdata/crm.sql" "--ddl" "/root/repo/tools/testdata/erp.sql" "--v" "0.6")
set_tests_properties(cli_scope PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_match "/root/repo/build/tools/colscope" "match" "--ddl" "/root/repo/tools/testdata/crm.sql" "--ddl" "/root/repo/tools/testdata/erp.sql" "--matcher" "lsh" "--param" "1")
set_tests_properties(cli_match PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export "/root/repo/build/tools/colscope" "export" "--ddl" "/root/repo/tools/testdata/crm.sql" "--ddl" "/root/repo/tools/testdata/erp.sql")
set_tests_properties(cli_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/colscope" "frobnicate")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_file "/root/repo/build/tools/colscope" "scope" "--ddl" "/nonexistent.sql")
set_tests_properties(cli_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fit_assess "sh" "-c" "/root/repo/build/tools/colscope fit --ddl /root/repo/tools/testdata/erp.sql --v 0.6 --out /root/repo/build/tools/erp.model && /root/repo/build/tools/colscope assess --ddl /root/repo/tools/testdata/crm.sql --model /root/repo/build/tools/erp.model")
set_tests_properties(cli_fit_assess PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(header_self_containment "/root/repo/tools/check_headers.sh" "/root/repo/src" "/usr/bin/c++")
set_tests_properties(header_self_containment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
