#ifndef COLSCOPE_BENCH_CURVE_COMMON_H_
#define COLSCOPE_BENCH_CURVE_COMMON_H_

#include "datasets/linkage.h"

namespace colscope::bench {

/// Prints the six panels of Figures 5/6 for one scenario as CSV series:
/// (a) scoping PCA(best v): accuracy/precision/recall/F1 over p,
/// (b) collaborative: the same metrics over v,
/// (c/d) ROC and smoothed ROC' points for both methods,
/// (e/f) PR points for both methods.
/// `scoping_variance` selects the baseline's PCA level (the paper plots
/// its best performer, v=0.5). `step` controls sweep granularity.
void PrintFigureCurves(const datasets::MatchingScenario& scenario,
                       double scoping_variance, double step);

}  // namespace colscope::bench

#endif  // COLSCOPE_BENCH_CURVE_COMMON_H_
