// Kernel microbenchmarks for the linalg hot paths: the dispatched
// dot-per-cell Multiply vs the naive triple loop, the fused
// MultiplyTransposedB (A·Bᵀ) vs materializing the transpose, the
// runtime-dispatched 768-dim span kernels (dot / cosine / MSE) vs the
// scalar reference table, the int8 quantized-store scan vs the double
// scan, quantized top-k recall on the paper corpora, and the Gram-trick
// PCA fit vs the forced covariance path. Every comparison also verifies
// the optimized kernel against its contract — bit-identity for the
// double kernels ("*_ok" cells), error bounds for int8, recall >= 0.98
// for the quantized index — so a speedup can never hide a numerics or
// quality change.
//
// Output: human tables on stdout plus three machine-readable files —
// BENCH_linalg_kernels.json (all rows, including the <name>_speedup
// ratio cells the regression gate checks), and the before/after pair
// BENCH_pca_fit_covariance.json / BENCH_pca_fit_gram.json. Rows whose
// speedup depends on the SIMD table carry a "simd_active" cell so the
// regression gate can skip the ratio on machines where dispatch fell
// back to scalar.
//
// Flags:
//   --smoke     tiny sizes for the ctest gate (seconds, not minutes)
//   --out DIR   directory for the BENCH_*.json files (default ".")
//   --reps N    best-of-N repetitions per measurement (default 3)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "datasets/oc3.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "embed/quantized_store.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/simd/kernels.h"
#include "matching/flat_index.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

/// String-valued flag (bench_util only reads numeric flags).
std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return default_value;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One timing sample: re-runs `fn` until at least `min_ms` accumulates,
/// then averages, so sub-millisecond kernels still time stably.
double SampleMs(const std::function<void()>& fn, double min_ms) {
  int iters = 0;
  const double start = NowMs();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = NowMs() - start;
  } while (elapsed < min_ms);
  return elapsed / iters;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Median-of-`reps` wall time of `fn`, in milliseconds. Median rather
/// than min: the regression gate compares runs from different process
/// lifetimes, and the median is far less sensitive to cache/frequency
/// state than the best sample.
double TimedMs(int reps, const std::function<void()>& fn,
               double min_ms = 20.0) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) samples.push_back(SampleMs(fn, min_ms));
  return Median(std::move(samples));
}

struct PairTiming {
  double a_ms = 0.0;
  double b_ms = 0.0;
  double a_over_b = 0.0;  ///< Median of per-rep ratios — see below.
};

/// Times two kernels with *interleaved* samples: CPU frequency drift
/// and scheduler noise hit adjacent samples about equally, so forming
/// the ratio per rep (then taking the median) cancels it out of the
/// speedup the regression gate tracks, where two independent TimedMs
/// calls would not.
PairTiming TimedPairMs(int reps, const std::function<void()>& a,
                       const std::function<void()>& b,
                       double min_ms = 50.0) {
  std::vector<double> samples_a, samples_b, ratios;
  for (int r = 0; r < reps; ++r) {
    const double sample_a = SampleMs(a, min_ms);
    const double sample_b = SampleMs(b, min_ms);
    samples_a.push_back(sample_a);
    samples_b.push_back(sample_b);
    ratios.push_back(sample_a / sample_b);
  }
  return {Median(std::move(samples_a)), Median(std::move(samples_b)),
          Median(std::move(ratios))};
}

linalg::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  linalg::Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    double* row = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) row[c] = rng.NextGaussian();
  }
  return m;
}

/// The pre-optimization dense multiply: i-k-j order, one long
/// accumulation stride per output row, zero-skip branch included. Kept
/// here as the reference the blocked kernel is benchmarked (and
/// bit-compared) against.
linalg::Matrix NaiveMultiply(const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  COLSCOPE_CHECK(a.cols() == b.rows());
  linalg::Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double x = a_row[k];
      if (x == 0.0) continue;
      const double* b_row = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) out_row[j] += x * b_row[j];
    }
  }
  return out;
}

bool BitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ra = a.RowPtr(r);
    const double* rb = b.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return true;
}

/// One scalar-reference dot per output cell over the transposed right
/// operand — what Multiply must now reproduce bit for bit no matter
/// which SIMD table dispatch selected (the canonical reduction tree is
/// ISA-invariant by contract). The old blocked i-k-j kernel is retired;
/// NaiveMultiply above stays only as the timing "before".
linalg::Matrix ScalarDotMultiply(const linalg::Matrix& a,
                                 const linalg::Matrix& b) {
  const linalg::Matrix bt = b.Transposed();
  linalg::Matrix out(a.rows(), b.cols());
  const auto& scalar = linalg::simd::ScalarKernels();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      out.RowPtr(i)[j] = scalar.dot(a.RowPtr(i), bt.RowPtr(j), a.cols());
    }
  }
  return out;
}

/// Ulp distance between two finite doubles (sign-folded two's
/// complement order), for bounding dot_fast against the contract dot.
uint64_t UlpDistance(double a, double b) {
  auto ordered = [](double x) {
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    return (bits & (1ull << 63)) ? ~bits + 1 : bits | (1ull << 63);
  };
  const uint64_t ua = ordered(a);
  const uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const std::string out_dir = StringFlag(argc, argv, "--out", ".");
  const int reps =
      static_cast<int>(bench::FlagValue(argc, argv, "--reps", 5));

  // Smoke sizes keep the ctest gate in seconds while staying large
  // enough that the measured ratios are stable; full sizes match the
  // paper's setting (768-dim signatures, ~50 elements per schema).
  const size_t mm = smoke ? 96 : 256;    // Square multiply dimension.
  const size_t pca_rows = smoke ? 20 : 50;
  const size_t pca_dims = smoke ? 128 : 768;
  std::filesystem::create_directories(out_dir);

  bench::BenchReport report("linalg_kernels");
  report.metrics().GetGauge("bench.smoke").Set(smoke ? 1.0 : 0.0);

  bench::PrintHeader(StrFormat(
      "linalg kernel benchmarks (%s mode, best of %d)",
      smoke ? "smoke" : "full", reps));

  const double simd_active =
      linalg::simd::NativeKernels() != nullptr &&
              linalg::simd::Active().name != std::string("scalar")
          ? 1.0
          : 0.0;
  std::printf("active kernel table: %s\n", linalg::simd::ActiveName());

  // ---- Dense multiply: dispatched dot-per-cell vs naive triple loop. ----
  // The bit-identity check is against the scalar-table per-cell dot:
  // Multiply's contract is "same bits whichever table dispatch picked",
  // not "same bits as the naive i-k-j accumulation order".
  {
    const linalg::Matrix a = RandomMatrix(mm, mm, 0xa11ce);
    const linalg::Matrix b = RandomMatrix(mm, mm, 0xb0b5);
    // The sink defeats whole-call elimination: GCC can prove a
    // discarded NaiveMultiply (allocate, fill, free) has no side
    // effects and delete it, timing an empty loop.
    volatile double sink = 0.0;
    const auto [naive_ms, dispatched_ms, speedup] = TimedPairMs(
        reps, [&] { sink = NaiveMultiply(a, b).RowPtr(0)[0]; },
        [&] { sink = a.Multiply(b).RowPtr(0)[0]; });
    (void)sink;
    const bool ok = BitIdentical(a.Multiply(b), ScalarDotMultiply(a, b));
    const double flops = 2.0 * mm * mm * mm;
    std::printf("multiply %zux%zux%zu: naive %.2f ms, dispatched %.2f ms "
                "(%.2fx, %.2f GFLOP/s), bit-identical: %s\n",
                mm, mm, mm, naive_ms, dispatched_ms, speedup,
                flops / (dispatched_ms * 1e6), ok ? "yes" : "NO");
    report.AddRow("multiply", StrFormat("%zux%zux%zu", mm, mm, mm),
                  {{"naive_wall_ms", naive_ms},
                   {"dispatched_wall_ms", dispatched_ms},
                   {"dispatched_gflops", flops / (dispatched_ms * 1e6)},
                   {"multiply_speedup", speedup},
                   {"simd_active", simd_active},
                   {"ok", ok ? 1.0 : 0.0}});
  }

  // ---- A·Bᵀ: fused kernel vs materializing the transpose. ----
  // Benched at a PcaModel::Encode-like shape — a tall signature block
  // (n x d) projected onto a handful of components (k x d).
  // MultiplyTransposedB is now the primary kernel (row-against-row
  // dispatched dots) and Multiply delegates to it through a transpose,
  // so the "via transpose" side pays two transpose materializations the
  // fused call avoids.
  {
    const size_t n = smoke ? 40 : 120;
    const size_t k = smoke ? 4 : 8;
    const size_t d = smoke ? 128 : 192;
    const linalg::Matrix a = RandomMatrix(n, d, 0xcafe);
    const linalg::Matrix b = RandomMatrix(k, d, 0xdead);
    volatile double sink = 0.0;
    const auto [via_transpose_ms, fused_ms, speedup] =
        TimedPairMs(reps, [&] { sink = a.Multiply(b.Transposed()).RowPtr(0)[0]; },
                    [&] { sink = a.MultiplyTransposedB(b).RowPtr(0)[0]; });
    (void)sink;
    const bool ok =
        BitIdentical(a.Multiply(b.Transposed()), a.MultiplyTransposedB(b));
    std::printf("a_bt %zux%zux%zu: via-transpose %.2f ms, fused %.2f ms "
                "(%.2fx), bit-identical: %s\n",
                n, d, k, via_transpose_ms, fused_ms, speedup,
                ok ? "yes" : "NO");
    report.AddRow("multiply_transposed_b",
                  StrFormat("%zux%zux%zu", n, d, k),
                  {{"via_transpose_wall_ms", via_transpose_ms},
                   {"fused_wall_ms", fused_ms},
                   {"a_bt_speedup", speedup},
                   {"ok", ok ? 1.0 : 0.0}});
  }

  // ---- 768-dim span kernels: dispatched table vs scalar reference. ----
  // The paper's signature width. Each timing side sweeps a block of
  // rows against one query so the kernel dominates, not the loop; the
  // "*_ok" cells assert the dispatched results are bit-identical to the
  // scalar canonical-reduction-tree reference on every row.
  {
    const size_t d = 768;
    const size_t rows = smoke ? 128 : 1024;
    const linalg::Matrix block = RandomMatrix(rows, d, 0x57a2);
    const linalg::Matrix qm = RandomMatrix(1, d, 0x9e3b);
    const double* q = qm.RowPtr(0);
    const auto& scalar = linalg::simd::ScalarKernels();
    const auto& active = linalg::simd::Active();

    struct SpanCase {
      const char* name;
      std::function<double(const linalg::simd::KernelTable&, const double*)>
          eval;
    };
    const SpanCase cases[] = {
        {"dot",
         [&](const auto& t, const double* row) { return t.dot(row, q, d); }},
        {"cosine",
         [&](const auto& t, const double* row) {
           double ab = 0.0, aa = 0.0, bb = 0.0;
           t.cosine_terms(row, q, d, &ab, &aa, &bb);
           return aa > 0.0 && bb > 0.0 ? ab / std::sqrt(aa * bb) : 0.0;
         }},
        {"mse",
         [&](const auto& t, const double* row) {
           return t.squared_l2(row, q, d) / static_cast<double>(d);
         }},
    };
    for (const SpanCase& c : cases) {
      volatile double sink = 0.0;
      const auto run = [&](const linalg::simd::KernelTable& t) {
        double acc = 0.0;
        for (size_t r = 0; r < rows; ++r) acc += c.eval(t, block.RowPtr(r));
        sink = acc;
      };
      const auto [scalar_ms, simd_ms, speedup] = TimedPairMs(
          reps, [&] { run(scalar); }, [&] { run(active); });
      bool ok = true;
      for (size_t r = 0; r < rows && ok; ++r) {
        ok = c.eval(scalar, block.RowPtr(r)) == c.eval(active, block.RowPtr(r));
      }
      (void)sink;
      std::printf("span_%s %zud x %zu rows: scalar %.3f ms, %s %.3f ms "
                  "(%.2fx), bit-identical: %s\n",
                  c.name, d, rows, scalar_ms, linalg::simd::ActiveName(),
                  simd_ms, speedup, ok ? "yes" : "NO");
      report.AddRow(
          "span_kernels", StrFormat("%s_%zud", c.name, d),
          {{"scalar_wall_ms", scalar_ms},
           {"simd_wall_ms", simd_ms},
           {StrFormat("span_%s_speedup", c.name), speedup},
           {"simd_active", simd_active},
           {StrFormat("span_%s_ok", c.name), ok ? 1.0 : 0.0}});
    }

    // dot_fast: the opt-in FMA path. Off the determinism contract, so
    // the gate here is the standard forward error bound
    // |dot - dot_fast| <= 2*n*eps*sum|a[i]*b[i]| rather than
    // bit-identity (scalar tables alias dot_fast to dot, making the
    // error trivially 0 there). The max ulp distance is reported as an
    // informational cell only — it legitimately blows up when a dot
    // lands near zero through cancellation.
    {
      volatile double sink = 0.0;
      const auto run = [&](auto fn) {
        double acc = 0.0;
        for (size_t r = 0; r < rows; ++r) acc += fn(block.RowPtr(r), q, d);
        sink = acc;
      };
      const auto [dot_ms, fast_ms, speedup] = TimedPairMs(
          reps, [&] { run(active.dot); }, [&] { run(active.dot_fast); });
      uint64_t max_ulp = 0;
      bool ok = true;
      for (size_t r = 0; r < rows; ++r) {
        const double* a = block.RowPtr(r);
        const double exact = active.dot(a, q, d);
        const double fast = active.dot_fast(a, q, d);
        max_ulp = std::max(max_ulp, UlpDistance(exact, fast));
        double absdot = 0.0;
        for (size_t i = 0; i < d; ++i) absdot += std::fabs(a[i] * q[i]);
        ok = ok && std::fabs(exact - fast) <=
                       2.0 * static_cast<double>(d) *
                           std::numeric_limits<double>::epsilon() * absdot;
      }
      (void)sink;
      std::printf("span_dot_fast %zud x %zu rows: dot %.3f ms, fast %.3f ms "
                  "(%.2fx), max ulp %llu, within error bound: %s\n",
                  d, rows, dot_ms, fast_ms, speedup,
                  static_cast<unsigned long long>(max_ulp), ok ? "yes" : "NO");
      report.AddRow("span_kernels", StrFormat("dot_fast_%zud", d),
                    {{"dot_wall_ms", dot_ms},
                     {"fast_wall_ms", fast_ms},
                     {"dot_fast_max_ulp", static_cast<double>(max_ulp)},
                     {"simd_active", simd_active},
                     {"dot_fast_err_ok", ok ? 1.0 : 0.0}});
    }
  }

  // ---- int8 quantized scan vs double scan. ----
  // The prefilter workload: one query dotted against every stored
  // signature. The int8 side runs over the SoA store (codes + scales);
  // the accuracy gate checks every approximate dot stays inside the
  // store's documented error bound against the exact double dot.
  {
    const size_t d = 768;
    const size_t rows = smoke ? 128 : 512;
    const linalg::Matrix sigs = RandomMatrix(rows, d, 0x178a);
    const embed::QuantizedSignatureStore store(sigs);
    const linalg::Matrix qm = RandomMatrix(1, d, 0x178b);
    std::vector<double> query(qm.RowPtr(0), qm.RowPtr(0) + d);
    std::vector<int8_t> qcodes;
    double qnorm2 = 0.0;
    double ql1 = 0.0;
    const double qscale = store.QuantizeQuery(query, &qcodes, &qnorm2, &ql1);
    const auto& active = linalg::simd::Active();

    volatile double sink = 0.0;
    const auto [double_ms, int8_ms, speedup] = TimedPairMs(
        reps,
        [&] {
          double acc = 0.0;
          for (size_t r = 0; r < rows; ++r) {
            acc += active.dot(sigs.RowPtr(r), query.data(), d);
          }
          sink = acc;
        },
        [&] {
          double acc = 0.0;
          for (size_t r = 0; r < rows; ++r) {
            acc += store.ApproxDot(r, qcodes.data(), qscale);
          }
          sink = acc;
        });
    (void)sink;
    double max_err = 0.0;
    bool within_bound = true;
    for (size_t r = 0; r < rows; ++r) {
      const double exact = active.dot(sigs.RowPtr(r), query.data(), d);
      const double approx = store.ApproxDot(r, qcodes.data(), qscale);
      const double err = std::abs(exact - approx);
      max_err = std::max(max_err, err);
      within_bound =
          within_bound && err <= store.DotErrorBound(r, qscale, ql1);
    }
    std::printf("int8_scan %zud x %zu rows: double %.3f ms, int8 %.3f ms "
                "(%.2fx), max |err| %.3e, within bound: %s\n",
                d, rows, double_ms, int8_ms, speedup, max_err,
                within_bound ? "yes" : "NO");
    report.AddRow("quantized_scan", StrFormat("dot_i8_%zud", d),
                  {{"double_wall_ms", double_ms},
                   {"int8_wall_ms", int8_ms},
                   {"int8_dot_speedup", speedup},
                   {"int8_max_abs_err", max_err},
                   {"simd_active", simd_active},
                   {"int8_bound_ok", within_bound ? 1.0 : 0.0}});
  }

  // ---- Quantized top-k recall on the paper corpora. ----
  // End-to-end quality gate for --quantized: FlatL2Index in quantized
  // mode (approximate ranking, exact rescoring) must recover >= 98% of
  // the exact top-10 on real signature sets — the Figure 1 toy scenario
  // always, OC3 additionally in full mode.
  {
    const embed::HashedLexiconEncoder encoder;
    struct Corpus {
      const char* label;
      datasets::MatchingScenario scenario;
    };
    std::vector<Corpus> corpora;
    corpora.push_back({"toy", datasets::BuildToyScenario()});
    if (!smoke) corpora.push_back({"oc3", datasets::BuildOc3Scenario()});
    for (const Corpus& corpus : corpora) {
      const scoping::SignatureSet sig =
          scoping::BuildSignatures(corpus.scenario.set, encoder);
      const matching::FlatL2Index exact(sig.signatures);
      const matching::FlatL2Index quant(
          sig.signatures, matching::FlatL2Index::Options{.quantized = true});
      const size_t k = 10;
      size_t hits = 0, total = 0;
      for (size_t r = 0; r < sig.size(); ++r) {
        const linalg::Vector query(sig.signatures.RowPtr(r),
                                   sig.signatures.RowPtr(r) +
                                       sig.signatures.cols());
        const std::vector<size_t> want = exact.Search(query, k);
        const std::vector<size_t> got = quant.Search(query, k);
        for (size_t id : want) {
          hits += std::find(got.begin(), got.end(), id) != got.end() ? 1 : 0;
        }
        total += want.size();
      }
      const double recall =
          total == 0 ? 1.0 : static_cast<double>(hits) / total;
      const bool ok = recall >= 0.98;
      std::printf("quantized_recall %s: %zu queries, recall@%zu %.4f "
                  "(>= 0.98: %s)\n",
                  corpus.label, sig.size(), k, recall, ok ? "yes" : "NO");
      report.AddRow("quantized_recall", corpus.label,
                    {{"queries", static_cast<double>(sig.size())},
                     {"recall_at_10", recall},
                     {"recall_ok", ok ? 1.0 : 0.0}});
    }
  }

  // ---- PCA fit: Gram trick vs forced covariance path. ----
  // This is the kernel behind LocalModel::Fit — n_rows << dims on every
  // real schema, so the Gram side eigendecomposes n×n instead of d×d.
  {
    const linalg::Matrix x = RandomMatrix(pca_rows, pca_dims, 0x9ca);
    const auto fit = [&](linalg::PcaFitPath path) {
      auto model = linalg::PcaModel::FitWithVariance(x, 0.8, path);
      COLSCOPE_CHECK_MSG(model.ok(), model.status().ToString().c_str());
      return std::move(model).value();
    };
    // The covariance path runs a d×d Jacobi — minutes of repetitions at
    // 768 dims — so time a single pass; at seconds-long runtimes the
    // relative noise a best-of-N would remove is already negligible.
    const double cov_ms =
        TimedMs(1, [&] { fit(linalg::PcaFitPath::kCovariance); }, 1.0);
    const double gram_ms =
        TimedMs(reps, [&] { fit(linalg::PcaFitPath::kGram); }, 50.0);
    const double speedup = cov_ms / gram_ms;
    const double rows_per_s = pca_rows / (gram_ms / 1000.0);
    std::printf("pca_fit %zux%zu: covariance %.2f ms, gram %.2f ms "
                "(%.1fx, %.0f rows/s)\n",
                pca_rows, pca_dims, cov_ms, gram_ms, speedup, rows_per_s);
    const std::string label = StrFormat("%zux%zu", pca_rows, pca_dims);
    report.AddRow("pca_fit", label,
                  {{"covariance_wall_ms", cov_ms},
                   {"gram_wall_ms", gram_ms},
                   {"gram_rows_per_s", rows_per_s},
                   {"pca_fit_speedup", speedup}});

    // The committed before/after pair: one file per fit path, each with
    // wall-ms and throughput for the same input shape.
    bench::BenchReport before("pca_fit_covariance");
    before.AddRow("pca_fit", label,
                  {{"wall_ms", cov_ms},
                   {"rows_per_s", pca_rows / (cov_ms / 1000.0)}});
    bench::BenchReport after("pca_fit_gram");
    after.AddRow("pca_fit", label,
                 {{"wall_ms", gram_ms}, {"rows_per_s", rows_per_s}});
    if (!before.Write(out_dir) || !after.Write(out_dir)) return 1;
  }

  if (!report.Write(out_dir)) return 1;
  return 0;
}
