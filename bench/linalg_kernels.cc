// Kernel microbenchmarks for the linalg hot paths: cache-blocked
// Multiply vs the naive triple loop, the fused MultiplyTransposedB
// (A·Bᵀ) vs materializing the transpose, and the Gram-trick PCA fit vs
// the forced covariance path (PcaFitPath::kCovariance). Every
// comparison also verifies the optimized kernel is *bit-identical* to
// its reference (the "ok" cell), so a speedup can never hide a
// numerics change.
//
// Output: human tables on stdout plus three machine-readable files —
// BENCH_linalg_kernels.json (all rows, including the <name>_speedup
// ratio cells the regression gate checks), and the before/after pair
// BENCH_pca_fit_covariance.json / BENCH_pca_fit_gram.json.
//
// Flags:
//   --smoke     tiny sizes for the ctest gate (seconds, not minutes)
//   --out DIR   directory for the BENCH_*.json files (default ".")
//   --reps N    best-of-N repetitions per measurement (default 3)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace {

using namespace colscope;

/// String-valued flag (bench_util only reads numeric flags).
std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return default_value;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One timing sample: re-runs `fn` until at least `min_ms` accumulates,
/// then averages, so sub-millisecond kernels still time stably.
double SampleMs(const std::function<void()>& fn, double min_ms) {
  int iters = 0;
  const double start = NowMs();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = NowMs() - start;
  } while (elapsed < min_ms);
  return elapsed / iters;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Median-of-`reps` wall time of `fn`, in milliseconds. Median rather
/// than min: the regression gate compares runs from different process
/// lifetimes, and the median is far less sensitive to cache/frequency
/// state than the best sample.
double TimedMs(int reps, const std::function<void()>& fn,
               double min_ms = 20.0) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) samples.push_back(SampleMs(fn, min_ms));
  return Median(std::move(samples));
}

struct PairTiming {
  double a_ms = 0.0;
  double b_ms = 0.0;
  double a_over_b = 0.0;  ///< Median of per-rep ratios — see below.
};

/// Times two kernels with *interleaved* samples: CPU frequency drift
/// and scheduler noise hit adjacent samples about equally, so forming
/// the ratio per rep (then taking the median) cancels it out of the
/// speedup the regression gate tracks, where two independent TimedMs
/// calls would not.
PairTiming TimedPairMs(int reps, const std::function<void()>& a,
                       const std::function<void()>& b,
                       double min_ms = 50.0) {
  std::vector<double> samples_a, samples_b, ratios;
  for (int r = 0; r < reps; ++r) {
    const double sample_a = SampleMs(a, min_ms);
    const double sample_b = SampleMs(b, min_ms);
    samples_a.push_back(sample_a);
    samples_b.push_back(sample_b);
    ratios.push_back(sample_a / sample_b);
  }
  return {Median(std::move(samples_a)), Median(std::move(samples_b)),
          Median(std::move(ratios))};
}

linalg::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  linalg::Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    double* row = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) row[c] = rng.NextGaussian();
  }
  return m;
}

/// The pre-optimization dense multiply: i-k-j order, one long
/// accumulation stride per output row, zero-skip branch included. Kept
/// here as the reference the blocked kernel is benchmarked (and
/// bit-compared) against.
linalg::Matrix NaiveMultiply(const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  COLSCOPE_CHECK(a.cols() == b.rows());
  linalg::Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double x = a_row[k];
      if (x == 0.0) continue;
      const double* b_row = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) out_row[j] += x * b_row[j];
    }
  }
  return out;
}

bool BitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* ra = a.RowPtr(r);
    const double* rb = b.RowPtr(r);
    for (size_t c = 0; c < a.cols(); ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const std::string out_dir = StringFlag(argc, argv, "--out", ".");
  const int reps =
      static_cast<int>(bench::FlagValue(argc, argv, "--reps", 5));

  // Smoke sizes keep the ctest gate in seconds while staying large
  // enough that the measured ratios are stable; full sizes match the
  // paper's setting (768-dim signatures, ~50 elements per schema).
  const size_t mm = smoke ? 96 : 256;    // Square multiply dimension.
  const size_t pca_rows = smoke ? 20 : 50;
  const size_t pca_dims = smoke ? 128 : 768;
  std::filesystem::create_directories(out_dir);

  bench::BenchReport report("linalg_kernels");
  report.metrics().GetGauge("bench.smoke").Set(smoke ? 1.0 : 0.0);

  bench::PrintHeader(StrFormat(
      "linalg kernel benchmarks (%s mode, best of %d)",
      smoke ? "smoke" : "full", reps));

  // ---- Dense multiply: blocked kernel vs naive triple loop. ----
  {
    const linalg::Matrix a = RandomMatrix(mm, mm, 0xa11ce);
    const linalg::Matrix b = RandomMatrix(mm, mm, 0xb0b5);
    const auto [naive_ms, blocked_ms, speedup] = TimedPairMs(
        reps, [&] { NaiveMultiply(a, b); }, [&] { a.Multiply(b); });
    const bool ok = BitIdentical(NaiveMultiply(a, b), a.Multiply(b));
    const double flops = 2.0 * mm * mm * mm;
    std::printf("multiply %zux%zux%zu: naive %.2f ms, blocked %.2f ms "
                "(%.2fx, %.2f GFLOP/s), bit-identical: %s\n",
                mm, mm, mm, naive_ms, blocked_ms, speedup,
                flops / (blocked_ms * 1e6), ok ? "yes" : "NO");
    report.AddRow("multiply", StrFormat("%zux%zux%zu", mm, mm, mm),
                  {{"naive_wall_ms", naive_ms},
                   {"blocked_wall_ms", blocked_ms},
                   {"blocked_gflops", flops / (blocked_ms * 1e6)},
                   {"multiply_speedup", speedup},
                   {"ok", ok ? 1.0 : 0.0}});
  }

  // ---- A·Bᵀ: fused kernel vs materializing the transpose. ----
  // Benched at a PcaModel::Encode-like shape — a tall signature block
  // (n x d) projected onto a handful of components (k x d) — with d
  // below the kernel's internal crossover, so the *fused* path is what
  // gets measured (above the crossover MultiplyTransposedB delegates to
  // the transpose path and the ratio would compare identical code).
  {
    const size_t n = smoke ? 40 : 120;
    const size_t k = smoke ? 4 : 8;
    const size_t d = smoke ? 128 : 192;
    const linalg::Matrix a = RandomMatrix(n, d, 0xcafe);
    const linalg::Matrix b = RandomMatrix(k, d, 0xdead);
    const auto [via_transpose_ms, fused_ms, speedup] =
        TimedPairMs(reps, [&] { a.Multiply(b.Transposed()); },
                    [&] { a.MultiplyTransposedB(b); });
    const bool ok =
        BitIdentical(a.Multiply(b.Transposed()), a.MultiplyTransposedB(b));
    std::printf("a_bt %zux%zux%zu: via-transpose %.2f ms, fused %.2f ms "
                "(%.2fx), bit-identical: %s\n",
                n, d, k, via_transpose_ms, fused_ms, speedup,
                ok ? "yes" : "NO");
    report.AddRow("multiply_transposed_b",
                  StrFormat("%zux%zux%zu", n, d, k),
                  {{"via_transpose_wall_ms", via_transpose_ms},
                   {"fused_wall_ms", fused_ms},
                   {"a_bt_speedup", speedup},
                   {"ok", ok ? 1.0 : 0.0}});
  }

  // ---- PCA fit: Gram trick vs forced covariance path. ----
  // This is the kernel behind LocalModel::Fit — n_rows << dims on every
  // real schema, so the Gram side eigendecomposes n×n instead of d×d.
  {
    const linalg::Matrix x = RandomMatrix(pca_rows, pca_dims, 0x9ca);
    const auto fit = [&](linalg::PcaFitPath path) {
      auto model = linalg::PcaModel::FitWithVariance(x, 0.8, path);
      COLSCOPE_CHECK_MSG(model.ok(), model.status().ToString().c_str());
      return std::move(model).value();
    };
    // The covariance path runs a d×d Jacobi — minutes of repetitions at
    // 768 dims — so time a single pass; at seconds-long runtimes the
    // relative noise a best-of-N would remove is already negligible.
    const double cov_ms =
        TimedMs(1, [&] { fit(linalg::PcaFitPath::kCovariance); }, 1.0);
    const double gram_ms =
        TimedMs(reps, [&] { fit(linalg::PcaFitPath::kGram); }, 50.0);
    const double speedup = cov_ms / gram_ms;
    const double rows_per_s = pca_rows / (gram_ms / 1000.0);
    std::printf("pca_fit %zux%zu: covariance %.2f ms, gram %.2f ms "
                "(%.1fx, %.0f rows/s)\n",
                pca_rows, pca_dims, cov_ms, gram_ms, speedup, rows_per_s);
    const std::string label = StrFormat("%zux%zu", pca_rows, pca_dims);
    report.AddRow("pca_fit", label,
                  {{"covariance_wall_ms", cov_ms},
                   {"gram_wall_ms", gram_ms},
                   {"gram_rows_per_s", rows_per_s},
                   {"pca_fit_speedup", speedup}});

    // The committed before/after pair: one file per fit path, each with
    // wall-ms and throughput for the same input shape.
    bench::BenchReport before("pca_fit_covariance");
    before.AddRow("pca_fit", label,
                  {{"wall_ms", cov_ms},
                   {"rows_per_s", pca_rows / (cov_ms / 1000.0)}});
    bench::BenchReport after("pca_fit_gram");
    after.AddRow("pca_fit", label,
                 {{"wall_ms", gram_ms}, {"rows_per_s", rows_per_s}});
    if (!before.Write(out_dir) || !after.Write(out_dir)) return 1;
  }

  if (!report.Write(out_dir)) return 1;
  return 0;
}
