#include "bench/curve_common.h"

#include <cstdio>

#include "embed/hashed_encoder.h"
#include "eval/sweep.h"
#include "outlier/pca_oda.h"
#include "scoping/signatures.h"

namespace colscope::bench {

namespace {

void PrintSweepPanel(const char* panel, const char* parameter_name,
                     const std::vector<eval::SweepPoint>& sweep) {
  std::printf("\npanel,%s\n", panel);
  std::printf("%s,accuracy,precision,recall,f1\n", parameter_name);
  for (const auto& point : sweep) {
    std::printf("%.2f,%.4f,%.4f,%.4f,%.4f\n", point.parameter,
                point.confusion.Accuracy(), point.confusion.Precision(),
                point.confusion.Recall(), point.confusion.F1());
  }
}

void PrintCurvePanel(const char* panel, const char* x_name,
                     const char* y_name, const eval::Curve& curve) {
  std::printf("\npanel,%s\n", panel);
  std::printf("%s,%s\n", x_name, y_name);
  for (const auto& point : curve) {
    std::printf("%.4f,%.4f\n", point.x, point.y);
  }
}

}  // namespace

void PrintFigureCurves(const datasets::MatchingScenario& scenario,
                       double scoping_variance, double step) {
  const embed::HashedLexiconEncoder encoder;
  const scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  const auto grid = eval::ParameterGrid(step, 0.99);

  // (a) Scoping PCA: metric curves over the keep portion p.
  const outlier::PcaDetector detector(scoping_variance);
  const auto scores = detector.Scores(signatures.signatures);
  auto scoping_grid = grid;
  scoping_grid.push_back(1.0);  // p = 1 keeps everything (S' == S).
  const auto scoping_sweep =
      eval::ScopingSweepFromScores(scores, labels, scoping_grid);
  std::printf("# series: scoping = global Scoping with PCA(v=%.1f); "
              "collaborative = Collaborative Scoping (PCA)\n",
              scoping_variance);
  PrintSweepPanel("a_scoping_metrics", "p", scoping_sweep);

  // (b) Collaborative: metric curves over the explained variance v.
  const auto collab_sweep = eval::CollaborativeSweep(
      signatures, scenario.set.num_schemas(), labels, grid);
  PrintSweepPanel("b_collaborative_metrics", "v", collab_sweep);

  // (c) Scoping ROC and ROC'.
  const auto scoping_roc = eval::RocFromScores(labels, scores);
  PrintCurvePanel("c_scoping_roc", "fpr", "tpr", scoping_roc);
  PrintCurvePanel("c_scoping_roc_smoothed", "fpr", "tpr",
                  eval::SmoothRocCurve(scoping_roc));

  // (d) Collaborative ROC and ROC'.
  const auto collab_roc = eval::RocFromSweep(collab_sweep);
  PrintCurvePanel("d_collaborative_roc", "fpr", "tpr", collab_roc);
  PrintCurvePanel("d_collaborative_roc_smoothed", "fpr", "tpr",
                  eval::SmoothRocCurve(collab_roc));

  // (e) Scoping PR.
  PrintCurvePanel("e_scoping_pr", "recall", "precision",
                  eval::PrFromScores(labels, scores));

  // (f) Collaborative PR.
  PrintCurvePanel("f_collaborative_pr", "recall", "precision",
                  eval::PrFromSweep(collab_sweep));
}

}  // namespace colscope::bench
