// Warm-vs-cold benchmark for the content-addressed artifact cache
// (src/cache/): runs the full scope+match pipeline over each scenario
// twice against the same cache directory and reports how much of the
// cold run's cost the warm run recovers. Every comparison also verifies
// the warm run is *artifact-identical* to the cold run and served
// entirely from cache (the "ok" cell), so a speedup can never hide a
// staleness or determinism bug.
//
// Output: a human table on stdout plus BENCH_cache_warm_vs_cold.json
// with the warm_speedup ratio cells the regression gate checks.
//
// Flags:
//   --smoke     toy scenario only, for the ctest gate (sub-second)
//   --out DIR   directory for the BENCH json (default ".")
//   --reps N    best-of-N repetitions per measurement (default 3)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "datasets/linkage.h"
#include "datasets/oc3.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"

namespace {

using namespace colscope;

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return default_value;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One pipeline run against `cache_dir`; returns wall ms and fills
/// `out` / `metrics`.
double TimedRun(const datasets::MatchingScenario& scenario,
                const std::string& cache_dir, obs::MetricsRegistry* metrics,
                pipeline::PipelineRun* out) {
  embed::HashedLexiconEncoder encoder;
  matching::SimMatcher matcher(0.6);
  pipeline::PipelineOptions options;
  options.cache_dir = cache_dir;
  options.metrics = metrics;
  pipeline::Pipeline pipe(&encoder, options);
  const double start = NowMs();
  Result<pipeline::PipelineRun> run =
      pipe.Run(scenario.set, matcher, &scenario.truth);
  const double elapsed = NowMs() - start;
  COLSCOPE_CHECK_MSG(run.ok(), "pipeline run failed");
  *out = std::move(run).value();
  return elapsed;
}

bool SameArtifacts(const pipeline::PipelineRun& a,
                   const pipeline::PipelineRun& b) {
  return a.signatures.signatures.data() == b.signatures.signatures.data() &&
         a.keep == b.keep && a.linkages == b.linkages;
}

struct Measurement {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  bool ok = true;
  uint64_t warm_hits = 0;
};

/// Best-of-`reps` cold (fresh cache each time) and warm (reusing the
/// last cold run's cache) timings, with the identity check on every
/// warm rep.
Measurement Measure(const datasets::MatchingScenario& scenario, int reps) {
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() /
      ("colscope_bench_cache_" + scenario.name);
  Measurement m;
  m.cold_ms = 1e300;
  m.warm_ms = 1e300;
  pipeline::PipelineRun cold_run;
  for (int rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(scratch);
    obs::MetricsRegistry metrics;
    m.cold_ms =
        std::min(m.cold_ms, TimedRun(scenario, scratch.string(), &metrics,
                                     &cold_run));
    if (metrics.GetCounter("cache.hits").value() != 0) m.ok = false;
  }
  for (int rep = 0; rep < reps; ++rep) {
    obs::MetricsRegistry metrics;
    pipeline::PipelineRun warm_run;
    m.warm_ms = std::min(
        m.warm_ms, TimedRun(scenario, scratch.string(), &metrics, &warm_run));
    if (metrics.GetCounter("cache.misses").value() != 0) m.ok = false;
    if (!SameArtifacts(cold_run, warm_run)) m.ok = false;
    m.warm_hits = metrics.GetCounter("cache.hits").value();
  }
  std::filesystem::remove_all(scratch);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const std::string out_dir = StringFlag(argc, argv, "--out", ".");
  const int reps =
      static_cast<int>(bench::FlagValue(argc, argv, "--reps", 3));

  std::vector<datasets::MatchingScenario> scenarios;
  scenarios.push_back(datasets::BuildToyScenario());
  if (!smoke) {
    scenarios.push_back(datasets::BuildOc3Scenario());
    scenarios.push_back(datasets::BuildOc3FoScenario());
  }

  bench::BenchReport report("cache_warm_vs_cold");
  report.metrics().GetGauge("bench.smoke").Set(smoke ? 1.0 : 0.0);

  std::printf("%-16s %10s %10s %12s %10s %4s\n", "scenario", "cold_ms",
              "warm_ms", "warm_speedup", "warm_hits", "ok");
  for (const datasets::MatchingScenario& scenario : scenarios) {
    const Measurement m = Measure(scenario, reps);
    const double speedup = m.cold_ms / m.warm_ms;
    std::printf("%-16s %10.2f %10.2f %11.2fx %10llu %4s\n",
                scenario.name.c_str(), m.cold_ms, m.warm_ms, speedup,
                static_cast<unsigned long long>(m.warm_hits),
                m.ok ? "yes" : "NO");
    report.AddRow("cache_warm_vs_cold", scenario.name,
                  {{"cold_ms", m.cold_ms},
                   {"warm_ms", m.warm_ms},
                   {"warm_speedup", speedup},
                   {"warm_hits", static_cast<double>(m.warm_hits)},
                   {"ok", m.ok ? 1.0 : 0.0}});
  }
  return report.Write(out_dir) ? 0 : 1;
}
