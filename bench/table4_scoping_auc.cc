// Regenerates Table 4: AUC-F1, AUC-ROC, AUC-ROC', and AUC-PR of the
// scoping baselines (Z-score, LOF, PCA at v in {0.3, 0.5, 0.7}, ensemble
// autoencoder) versus collaborative scoping (PCA), on OC3 and OC3-FO.
//
// Flags:
//   --step S          sweep granularity for p and v   (default 0.01)
//   --ae-ensemble N   autoencoder ensemble size        (default 4)
//   --ae-epochs N     autoencoder epochs per member    (default 20)
//   --paper           paper configuration: ensemble 100 x 50 epochs
//                     (slow on a single core; see EXPERIMENTS.md)
//   --skip-ae         skip the autoencoder row entirely
//
// The ensemble default is reduced relative to the paper's Keras setup
// (100 x 50) to keep the single-core wall clock reasonable; the scores
// are stable well below that (EXPERIMENTS.md reports both).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/sweep.h"
#include "outlier/autoencoder.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"

namespace {

using namespace colscope;

struct Row {
  std::string method;
  eval::AucReport oc3;
  eval::AucReport fo;
};

void PrintRow(const Row& row) {
  std::printf("%-22s | %7.2f %8.2f %9.2f %8.2f | %7.2f %8.2f %9.2f %8.2f\n",
              row.method.c_str(), row.oc3.auc_f1, row.oc3.auc_roc,
              row.oc3.auc_roc_smoothed, row.oc3.auc_pr, row.fo.auc_f1,
              row.fo.auc_roc, row.fo.auc_roc_smoothed, row.fo.auc_pr);
}

void ReportRow(bench::BenchReport& out, const Row& row) {
  out.AddRow("table4", row.method,
             {{"oc3_auc_f1", row.oc3.auc_f1},
              {"oc3_auc_roc", row.oc3.auc_roc},
              {"oc3_auc_roc_smoothed", row.oc3.auc_roc_smoothed},
              {"oc3_auc_pr", row.oc3.auc_pr},
              {"fo_auc_f1", row.fo.auc_f1},
              {"fo_auc_roc", row.fo.auc_roc},
              {"fo_auc_roc_smoothed", row.fo.auc_roc_smoothed},
              {"fo_auc_pr", row.fo.auc_pr}});
}

}  // namespace

int main(int argc, char** argv) {
  const double step = bench::FlagValue(argc, argv, "--step", 0.01);
  const bool paper = bench::HasFlag(argc, argv, "--paper");
  const bool skip_ae = bench::HasFlag(argc, argv, "--skip-ae");
  const int ae_ensemble = paper
      ? 100
      : static_cast<int>(bench::FlagValue(argc, argv, "--ae-ensemble", 4));
  const int ae_epochs = paper
      ? 50
      : static_cast<int>(bench::FlagValue(argc, argv, "--ae-epochs", 20));

  bench::PrintHeader(
      "Table 4: AUC-F1, AUC-ROC, AUC-ROC', and AUC-PR performance of "
      "scoping methods\nwith OC3 and OC3-FO schemas.");

  const embed::HashedLexiconEncoder encoder;
  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();
  const scoping::SignatureSet sig_oc3 =
      scoping::BuildSignatures(oc3.set, encoder);
  const scoping::SignatureSet sig_fo =
      scoping::BuildSignatures(fo.set, encoder);
  const auto labels_oc3 = oc3.truth.LinkabilityLabels(oc3.set);
  const auto labels_fo = fo.truth.LinkabilityLabels(fo.set);
  const auto grid = eval::ParameterGrid(step, 0.99);

  std::vector<std::unique_ptr<outlier::OutlierDetector>> detectors;
  detectors.push_back(std::make_unique<outlier::ZScoreDetector>());
  detectors.push_back(std::make_unique<outlier::LofDetector>(20));
  detectors.push_back(std::make_unique<outlier::PcaDetector>(0.3));
  detectors.push_back(std::make_unique<outlier::PcaDetector>(0.5));
  detectors.push_back(std::make_unique<outlier::PcaDetector>(0.7));
  if (!skip_ae) {
    outlier::AutoencoderOptions ae;
    ae.ensemble_size = ae_ensemble;
    ae.epochs = ae_epochs;
    detectors.push_back(std::make_unique<outlier::AutoencoderDetector>(ae));
  }

  std::printf("%-22s | %34s | %34s\n", "", "OC3", "OC3-FO");
  std::printf("%-22s | %7s %8s %9s %8s | %7s %8s %9s %8s\n", "Method",
              "AUC-F1", "AUC-ROC", "AUC-ROC'", "AUC-PR", "AUC-F1", "AUC-ROC",
              "AUC-ROC'", "AUC-PR");
  std::printf("--------------------------------------------------------------"
              "------------------------------------------------\n");

  bench::BenchReport bench_report("scoping_auc");
  bench_report.metrics().GetGauge("bench.step").Set(step);
  bench_report.metrics().GetGauge("bench.elements.oc3")
      .Set(static_cast<double>(sig_oc3.size()));
  bench_report.metrics().GetGauge("bench.elements.oc3_fo")
      .Set(static_cast<double>(sig_fo.size()));

  Row best_scoping;
  best_scoping.oc3.auc_pr = -1.0;
  for (const auto& detector : detectors) {
    Row row;
    row.method = "Scoping " + detector->name();
    {
      const auto scores = detector->Scores(sig_oc3.signatures);
      const auto sweep =
          eval::ScopingSweepFromScores(scores, labels_oc3, grid);
      row.oc3 = eval::ReportForScoping(labels_oc3, scores, sweep);
    }
    {
      const auto scores = detector->Scores(sig_fo.signatures);
      const auto sweep = eval::ScopingSweepFromScores(scores, labels_fo, grid);
      row.fo = eval::ReportForScoping(labels_fo, scores, sweep);
    }
    PrintRow(row);
    ReportRow(bench_report, row);
    if (row.oc3.auc_pr > best_scoping.oc3.auc_pr) best_scoping = row;
  }

  Row collab;
  collab.method = "Collaborative PCA";
  {
    const auto sweep =
        eval::CollaborativeSweep(sig_oc3, oc3.set.num_schemas(), labels_oc3,
                                 grid);
    collab.oc3 = eval::ReportForCollaborative(sweep);
  }
  {
    const auto sweep =
        eval::CollaborativeSweep(sig_fo, fo.set.num_schemas(), labels_fo,
                                 grid);
    collab.fo = eval::ReportForCollaborative(sweep);
  }
  std::printf("--------------------------------------------------------------"
              "------------------------------------------------\n");
  PrintRow(collab);
  ReportRow(bench_report, collab);
  bench_report.Write();

  std::printf("--------------------------------------------------------------"
              "------------------------------------------------\n");
  auto pct = [](double ours, double base) {
    return base == 0.0 ? 0.0 : 100.0 * (ours - base) / base;
  };
  std::printf("%-22s | %+6.1f%% %+7.1f%% %+8.1f%% %+7.1f%% | %+6.1f%% %+7.1f%% "
              "%+8.1f%% %+7.1f%%\n",
              "Difference vs best",
              pct(collab.oc3.auc_f1, best_scoping.oc3.auc_f1),
              pct(collab.oc3.auc_roc, best_scoping.oc3.auc_roc),
              pct(collab.oc3.auc_roc_smoothed,
                  best_scoping.oc3.auc_roc_smoothed),
              pct(collab.oc3.auc_pr, best_scoping.oc3.auc_pr),
              pct(collab.fo.auc_f1, best_scoping.fo.auc_f1),
              pct(collab.fo.auc_roc, best_scoping.fo.auc_roc),
              pct(collab.fo.auc_roc_smoothed, best_scoping.fo.auc_roc_smoothed),
              pct(collab.fo.auc_pr, best_scoping.fo.auc_pr));
  std::printf(
      "\nPaper (Table 4) reference points: collaborative wins AUC-F1 / "
      "AUC-ROC' / AUC-PR on\nboth scenarios, loses raw AUC-ROC (its sweep "
      "never reaches FPR=100%%), and the margins\ngrow on OC3-FO "
      "(paper: +5.2%% F1, +20.4%% ROC', +27.1%% PR).\n");
  return 0;
}
