// Reproduces the Section 2.3 instance-serialization trade-off at
// evaluation scale: serializing instance samples into the element text
// moves similarities both ways and, per the paper's prior work [44],
// yields overall *less effective* matching than metadata-only
// signatures. Synthetic samples are attached to the OC3/OC3-FO schemas
// from shared per-concept value pools (datasets/instances.h).

#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/instances.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "eval/sweep.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

void RunScenario(datasets::MatchingScenario scenario) {
  const embed::HashedLexiconEncoder encoder;
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  const auto grid = eval::ParameterGrid(0.02, 0.98);

  const auto metadata_only =
      scoping::BuildSignatures(scenario.set, encoder);
  datasets::AttachSyntheticSamples(scenario.set, /*seed=*/0xabc);
  schema::SerializeOptions with_samples;
  with_samples.include_instance_samples = true;
  const auto instance_enriched =
      scoping::BuildSignatures(scenario.set, encoder, with_samples);

  std::printf("\n--- %s ---\n", scenario.name.c_str());
  std::printf("%-22s | %28s | %28s\n", "", "metadata-only (paper default)",
              "with instance samples");
  std::printf("%-22s | %8s %8s %8s | %8s %8s %8s\n", "matcher", "PQ", "PC",
              "F1", "PQ", "PC", "F1");

  const std::vector<bool> all(metadata_only.size(), true);
  const matching::SimMatcher sim(0.6);
  const matching::LshMatcher lsh(1);
  const std::vector<const matching::Matcher*> matchers = {&sim, &lsh};
  for (const auto* matcher : matchers) {
    const auto meta = eval::EvaluateMatching(
        matcher->Match(metadata_only, all), scenario.truth, cartesian);
    const auto inst = eval::EvaluateMatching(
        matcher->Match(instance_enriched, all), scenario.truth, cartesian);
    std::printf("%-22s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f\n",
                matcher->name().c_str(), meta.PairQuality(),
                meta.PairCompleteness(), meta.F1(), inst.PairQuality(),
                inst.PairCompleteness(), inst.F1());
  }

  // Collaborative scoping quality under both serializations.
  const auto meta_sweep = eval::CollaborativeSweep(
      metadata_only, scenario.set.num_schemas(), labels, grid);
  const auto inst_sweep = eval::CollaborativeSweep(
      instance_enriched, scenario.set.num_schemas(), labels, grid);
  const auto meta_rep = eval::ReportForCollaborative(meta_sweep);
  const auto inst_rep = eval::ReportForCollaborative(inst_sweep);
  std::printf("%-22s | AUC-F1 %6.1f  AUC-PR %6.1f | AUC-F1 %6.1f  AUC-PR "
              "%6.1f\n",
              "collab scoping", meta_rep.auc_f1, meta_rep.auc_pr,
              inst_rep.auc_f1, inst_rep.auc_pr);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 2.3 ablation: metadata-only vs instance-enriched "
      "serialization.");
  RunScenario(datasets::BuildOc3Scenario());
  RunScenario(datasets::BuildOc3FoScenario());
  std::printf(
      "\nPaper reference (Section 2.3): instance samples shift individual "
      "similarities both\nways (+5%% / -11%% in the footnote example) and "
      "overall 'result in less effective\nmatching results'.\n");
  return 0;
}
