#ifndef COLSCOPE_BENCH_BENCH_UTIL_H_
#define COLSCOPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace colscope::bench {

/// Tiny argv flag reader: --name value (numeric) with a default.
inline double FlagValue(int argc, char** argv, const char* name,
                        double default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return default_value;
}

/// True if --name appears.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Prints a section rule with a title, matching the other benches.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

}  // namespace colscope::bench

#endif  // COLSCOPE_BENCH_BENCH_UTIL_H_
