// Regenerates Table 2: linkable and unlinkable schema elements in the
// OC3 and OC3-FO datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/oc3.h"

int main() {
  using namespace colscope;
  bench::PrintHeader(
      "Table 2: Overview of linkable and unlinkable schema elements in OC3 "
      "and OC3-FO dataset.");

  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();

  std::printf("%-14s %8s %12s %10s %12s\n", "Schema (S_k)", "Tables",
              "Attributes", "Linkable", "Unlinkable");

  auto print_schema = [&](int index) {
    const schema::Schema& s = fo.set.schema(index);
    const size_t linkable = fo.truth.NumLinkableInSchema(index);
    std::printf("%-14s %8zu %12zu %10zu %12zu\n", s.name().c_str(),
                s.num_tables(), s.num_attributes(), linkable,
                s.num_elements() - linkable);
  };

  // OC3 aggregate row.
  size_t tables = 0, attrs = 0, linkable = 0;
  for (int i = 0; i < 3; ++i) {
    tables += fo.set.schema(i).num_tables();
    attrs += fo.set.schema(i).num_attributes();
    linkable += fo.truth.NumLinkableInSchema(i);
  }
  std::printf("%-14s %8zu %12zu %10zu %12zu\n", "OC3", tables, attrs,
              linkable, tables + attrs - linkable);
  for (int i = 0; i < 3; ++i) print_schema(i);

  const size_t fo_tables = tables + fo.set.schema(3).num_tables();
  const size_t fo_attrs = attrs + fo.set.schema(3).num_attributes();
  std::printf("%-14s %8zu %12zu %10zu %12zu\n", "OC3-FO", fo_tables, fo_attrs,
              linkable, fo_tables + fo_attrs - linkable);
  print_schema(3);

  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  std::printf("\nUnlinkable overhead (Section 4.1): OC3 %.0f%%, OC3-FO %.0f%%\n",
              100.0 * oc3.UnlinkableOverhead(),
              100.0 * fo.UnlinkableOverhead());
  std::printf("Paper reference:                    OC3 103%%, OC3-FO 263%%\n");
  return 0;
}
