// Corpus-scale sweep for sub-linear IVF matching: generates synthetic
// corpora of growing size (src/datasets/synthetic_corpus.h) and runs
// three matcher arms over each — exact flat search, int8-quantized flat
// search, and the IVF index at its documented nprobe — charting
// wall-time against PQ/PC/F1 so the flat-vs-IVF crossover point lands
// in a committed BENCH_corpus_scale.json.
//
// Gated cells are machine-portable because every arm is deterministic:
//   recall_ok     IVF recall@10 vs exact flat >= 0.95 at nprobe = 8
//   f1_ok         IVF end-to-end F1 within 0.05 of the exact-flat F1
//   sublinear_ok  mean probed fraction < 0.7 at the largest size
// Wall-ms cells are informational; the full (nightly) baseline also
// carries the timing-ratio cell ivf_speedup, which the smoke baseline
// deliberately names ivf_advantage so PR machines are never gated on
// absolute speed.
//
// Flags:
//   --smoke     small sizes only, for the ctest gate (sub-second)
//   --out DIR   directory for the BENCH json (default ".")
//   --reps N    best-of-N repetitions per timing (default 3)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "datasets/synthetic_corpus.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/flat_index.h"
#include "matching/ivf_index.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return default_value;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of one full Match pass, plus the result of
/// the last run (all runs are identical — the matchers are
/// deterministic).
double TimedMatch(const matching::Matcher& matcher,
                  const scoping::SignatureSet& signatures,
                  const std::vector<bool>& active, int reps,
                  std::set<matching::ElementPair>* out) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double start = NowMs();
    *out = matcher.Match(signatures, active);
    const double elapsed = NowMs() - start;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct SizeResult {
  size_t elements = 0;
  double flat_ms = 0.0;
  double ivf_ms = 0.0;
  double probe_fraction = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const std::string out_dir = StringFlag(argc, argv, "--out", ".");
  const int reps =
      static_cast<int>(bench::FlagValue(argc, argv, "--reps", 3));

  // Corpus sizes are driven by schema count; tables/attrs stay fixed so
  // the element count (and thus the flat cost) scales linearly in the
  // swept axis while the IVF cost grows ~ nprobe * n / sqrt(n).
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{4, 8} : std::vector<size_t>{8, 16, 32};

  bench::BenchReport report("corpus_scale");
  bench::PrintHeader(
      "Corpus-scale sweep: exact flat vs int8 flat vs IVF (nprobe=8)");
  std::printf("%10s %9s %9s %9s %9s %8s %8s %10s %7s\n", "schemas",
              "elements", "flat_ms", "qflat_ms", "ivf_ms", "flat_f1",
              "ivf_f1", "recall@10", "probe%");

  const embed::HashedLexiconEncoder encoder;
  SizeResult smallest, largest;
  bool all_recall_ok = true;
  bool all_f1_ok = true;
  for (size_t num_schemas : sizes) {
    datasets::CorpusOptions options;
    options.num_schemas = num_schemas;
    options.tables_per_schema = 4;
    options.attrs_per_table = 8;
    options.seed = 0xC0905;
    const datasets::MatchingScenario scenario =
        datasets::BuildCorpusScenario(options);
    const scoping::SignatureSet signatures =
        scoping::BuildSignatures(scenario.set, encoder);
    const size_t n = signatures.size();
    const std::vector<bool> active(n, true);
    const size_t cartesian = scenario.set.TableCartesianSize() +
                             scenario.set.AttributeCartesianSize();

    // Arm 1: exact flat — IvfMatcher with a single list degenerates to
    // brute-force search, so all three arms share one code path.
    matching::IvfMatcher::Options flat_options;
    flat_options.num_lists = 1;
    std::set<matching::ElementPair> flat_matches;
    const double flat_ms =
        TimedMatch(matching::IvfMatcher(flat_options), signatures, active,
                   reps, &flat_matches);

    // Arm 2: int8-quantized flat (prefilter + exact rescore).
    matching::IvfMatcher::Options qflat_options = flat_options;
    qflat_options.quantized = true;
    std::set<matching::ElementPair> qflat_matches;
    const double qflat_ms =
        TimedMatch(matching::IvfMatcher(qflat_options), signatures, active,
                   reps, &qflat_matches);

    // Arm 3: IVF at the documented operating point (auto sqrt(n) lists,
    // nprobe = 8).
    matching::IvfMatcher::Options ivf_options;
    std::set<matching::ElementPair> ivf_matches;
    const double ivf_ms =
        TimedMatch(matching::IvfMatcher(ivf_options), signatures, active,
                   reps, &ivf_matches);

    const eval::MatchingQuality flat_quality =
        eval::EvaluateMatching(flat_matches, scenario.truth, cartesian);
    const eval::MatchingQuality ivf_quality =
        eval::EvaluateMatching(ivf_matches, scenario.truth, cartesian);

    // Recall@10 and probed fraction of the raw index at the same
    // operating point, measured over every signature row.
    const matching::FlatL2Index exact_index(signatures.signatures);
    const matching::IvfIndex ivf_index(signatures.signatures);
    size_t hits = 0;
    size_t wanted = 0;
    size_t probed = 0;
    for (size_t i = 0; i < n; ++i) {
      const linalg::Vector query = signatures.signatures.Row(i);
      const auto want = exact_index.Search(query, 10);
      const auto got = ivf_index.Search(query, 10);
      const std::set<size_t> got_set(got.begin(), got.end());
      wanted += want.size();
      for (size_t id : want) hits += got_set.count(id);
      probed += ivf_index.ProbedRows(signatures.signatures.RowSpan(i), 10,
                                     ivf_index.nprobe());
    }
    const double recall =
        wanted == 0 ? 1.0 : static_cast<double>(hits) / wanted;
    const double probe_fraction =
        static_cast<double>(probed) / (static_cast<double>(n) * n);
    const bool recall_ok = recall >= 0.95;
    const bool f1_ok = ivf_quality.F1() >= flat_quality.F1() - 0.05;
    all_recall_ok = all_recall_ok && recall_ok;
    all_f1_ok = all_f1_ok && f1_ok;

    std::printf("%10zu %9zu %9.2f %9.2f %9.2f %8.3f %8.3f %10.3f %6.1f%%\n",
                num_schemas, n, flat_ms, qflat_ms, ivf_ms,
                flat_quality.F1(), ivf_quality.F1(), recall,
                100.0 * probe_fraction);

    report.AddRow("corpus_scale",
                  StrFormat("schemas=%zu", num_schemas),
                  {{"elements", static_cast<double>(n)},
                   {"flat_ms", flat_ms},
                   {"qflat_ms", qflat_ms},
                   {"ivf_ms", ivf_ms},
                   {"flat_f1", flat_quality.F1()},
                   {"ivf_f1", ivf_quality.F1()},
                   {"flat_pq", flat_quality.PairQuality()},
                   {"flat_pc", flat_quality.PairCompleteness()},
                   {"ivf_pq", ivf_quality.PairQuality()},
                   {"ivf_pc", ivf_quality.PairCompleteness()},
                   {"ivf_recall_at_10", recall},
                   {"probe_fraction", probe_fraction},
                   {"recall_ok", recall_ok ? 1.0 : 0.0},
                   {"f1_ok", f1_ok ? 1.0 : 0.0}});

    const SizeResult result{n, flat_ms, ivf_ms, probe_fraction};
    if (num_schemas == sizes.front()) smallest = result;
    largest = result;
  }

  // Crossover summary: as the corpus grows `growth`-fold in elements,
  // exact flat cost should grow super-linearly in wall time while IVF
  // tracks the probed fraction. The timing ratio cell is gated
  // (ivf_speedup) only in the full nightly baseline; the smoke run
  // names it ivf_advantage so PR lanes never gate on wall time.
  const double element_growth = smallest.elements == 0
                                    ? 0.0
                                    : static_cast<double>(largest.elements) /
                                          static_cast<double>(smallest.elements);
  const double flat_growth =
      smallest.flat_ms <= 0.0 ? 0.0 : largest.flat_ms / smallest.flat_ms;
  const double ivf_growth =
      smallest.ivf_ms <= 0.0 ? 0.0 : largest.ivf_ms / smallest.ivf_ms;
  const double advantage =
      largest.ivf_ms <= 0.0 ? 0.0 : largest.flat_ms / largest.ivf_ms;
  const bool sublinear_ok = largest.probe_fraction < 0.7;

  bench::PrintHeader("Crossover summary (largest vs smallest size)");
  std::printf("element growth %.1fx | flat time %.1fx | ivf time %.1fx | "
              "flat/ivf at largest %.2fx | probed %.1f%%\n",
              element_growth, flat_growth, ivf_growth, advantage,
              100.0 * largest.probe_fraction);

  report.AddRow("corpus_scale", "summary",
                {{"element_growth", element_growth},
                 {"flat_time_growth", flat_growth},
                 {"ivf_time_growth", ivf_growth},
                 {smoke ? "ivf_advantage" : "ivf_speedup", advantage},
                 {"largest_probe_fraction", largest.probe_fraction},
                 {"sublinear_ok", sublinear_ok ? 1.0 : 0.0},
                 {"recall_ok", all_recall_ok ? 1.0 : 0.0},
                 {"f1_ok", all_f1_ok ? 1.0 : 0.0}});

  const bool wrote = report.Write(out_dir);
  return (wrote && all_recall_ok && all_f1_ok && sublinear_ok) ? 0 : 1;
}
