// Regenerates Table 3: Cartesian product sizes and annotated linkages
// between schemas for the OC3 and OC3-FO datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/oc3.h"

int main() {
  using namespace colscope;
  bench::PrintHeader(
      "Table 3: Overview of Cartesian product size and annotated linkages "
      "between schemas for OC3 and OC3-FO dataset.");

  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();

  std::printf("%-16s %16s %16s %6s %6s\n", "Schemas", "Cartesian Tables",
              "Cartesian Attrs", "II", "IS");

  auto row = [&](const datasets::MatchingScenario& sc, const char* name) {
    const auto total = sc.truth.TotalCounts();
    std::printf("%-16s %16zu %16zu %6zu %6zu\n", name,
                sc.set.TableCartesianSize(), sc.set.AttributeCartesianSize(),
                total.inter_identical, total.inter_sub_typed);
  };
  auto pair_row = [&](const datasets::MatchingScenario& sc, int a, int b,
                      const char* name) {
    const auto counts = sc.truth.CountsForSchemaPair(a, b);
    std::printf("%-16s %16zu %16zu %6zu %6zu\n", name,
                sc.set.schema(a).num_tables() * sc.set.schema(b).num_tables(),
                sc.set.schema(a).num_attributes() *
                    sc.set.schema(b).num_attributes(),
                counts.inter_identical, counts.inter_sub_typed);
  };

  row(oc3, "OC3");
  pair_row(oc3, 0, 1, "Oracle-MySQL");
  pair_row(oc3, 0, 2, "Oracle-HANA");
  pair_row(oc3, 1, 2, "MySQL-HANA");
  row(fo, "OC3-FO");

  std::printf(
      "\nNote: the aggregate IS count is the sum of the per-pair rows "
      "(22+8+1 = 31).\nThe paper's aggregate row prints 36, which is "
      "inconsistent with its own per-pair\nrows; the II column sums "
      "exactly (14+10+15 = 39). See DESIGN.md, Substitution 2.\n");
  return 0;
}
