// Load generator for the resident colscoped server (src/server/): an
// in-process daemon with a deterministic artificial service time, driven
// by seeded open-loop Poisson arrivals — request launch times are fixed
// up front by the seed, never by completions, so an overloaded server
// cannot slow the offered load down.
//
// Two scenarios ride the same daemon:
//   steady    offered load well under capacity: every request must be
//             served, byte-identical to the direct pipeline run.
//   overload  offered load several times capacity: the admission gate
//             must shed the excess with typed kOverloaded — and nothing
//             else — while the admitted requests still complete.
// A final drain row checks the shutdown RPC leaves the daemon cleanly
// drained.
//
// The "ok" cells encode those invariants and are gated by
// tools/check_bench_regression.py; the latency (p50/p99) and shed-rate
// cells are informational (absolute timings are machine-dependent).
//
// Flags:
//   --smoke     small request counts for the ctest gate (sub-second-ish)
//   --out DIR   directory for BENCH_server_load.json (default ".")

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "common/check.h"
#include "common/status.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "net/socket.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "schema/ddl_parser.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using namespace colscope;

constexpr char kCrmDdl[] =
    "CREATE TABLE customers (customer_id INT, full_name TEXT, email TEXT,"
    " phone TEXT);"
    "CREATE TABLE invoices (invoice_id INT, customer_id INT, total REAL,"
    " issued_on TEXT);";
constexpr char kErpDdl[] =
    "CREATE TABLE clients (client_id INT, client_name TEXT, mail TEXT);"
    "CREATE TABLE orders (order_id INT, client_id INT, amount REAL);";

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& default_value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return default_value;
}

bool BoolFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

server::ScopeRequest MakeRequest() {
  server::ScopeRequest request;
  server::ScopeRequestSchema crm;
  crm.kind = "ddl";
  crm.name = "crm.sql";
  crm.text = kCrmDdl;
  request.schemas.push_back(crm);
  server::ScopeRequestSchema erp;
  erp.kind = "ddl";
  erp.name = "erp.sql";
  erp.text = kErpDdl;
  request.schemas.push_back(erp);
  return request;
}

/// The report the cold pipeline produces for MakeRequest() — the bytes
/// every served request must match.
std::string ExpectedReport() {
  std::vector<schema::Schema> schemas;
  for (const auto& [text, name] :
       {std::pair<const char*, const char*>{kCrmDdl, "crm.sql"},
        std::pair<const char*, const char*>{kErpDdl, "erp.sql"}}) {
    auto parsed = schema::ParseDdl(text, name);
    COLSCOPE_CHECK_MSG(parsed.ok(), "bench DDL must parse");
    schemas.push_back(std::move(parsed).value());
  }
  schema::SchemaSet set(std::move(schemas));
  embed::HashedLexiconEncoder encoder;
  matching::SimMatcher matcher(0.6, nullptr);
  pipeline::Pipeline pipe(&encoder, pipeline::PipelineOptions{});
  auto run = pipe.Run(set, matcher);
  COLSCOPE_CHECK_MSG(run.ok() && run->status.ok(), "direct run must succeed");
  return pipeline::RunToJson(*run, set);
}

enum class OutcomeKind { kServed, kShed, kDeadline, kWrong };

struct Outcome {
  double latency_ms = 0.0;
  OutcomeKind kind = OutcomeKind::kWrong;
};

/// Fires `n` requests at the daemon on a seeded open-loop schedule
/// (exponential interarrivals with the given mean). Launch times are
/// fixed before the first request; a saturated server only grows
/// latencies and shed counts, never the offered rate.
std::vector<Outcome> RunOpenLoop(const net::Endpoint& endpoint,
                                 const std::string& expected, int n,
                                 double mean_interarrival_ms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(1.0 / mean_interarrival_ms);
  std::vector<double> arrival_ms(static_cast<size_t>(n));
  double t = 0.0;
  for (double& at : arrival_ms) {
    t += gap(rng);
    at = t;
  }

  std::vector<Outcome> outcomes(static_cast<size_t>(n));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    clients.emplace_back([&, i] {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          arrival_ms[static_cast<size_t>(i)])));
      const auto sent = std::chrono::steady_clock::now();
      net::NetOptions net;
      auto report = server::RequestScope(endpoint, MakeRequest(), net);
      Outcome& out = outcomes[static_cast<size_t>(i)];
      out.latency_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - sent)
                           .count();
      if (report.ok()) {
        out.kind = *report == expected ? OutcomeKind::kServed
                                       : OutcomeKind::kWrong;
      } else if (report.status().code() == StatusCode::kOverloaded) {
        out.kind = OutcomeKind::kShed;
      } else if (report.status().code() == StatusCode::kDeadlineExceeded) {
        out.kind = OutcomeKind::kDeadline;
      } else {
        out.kind = OutcomeKind::kWrong;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  return outcomes;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct ScenarioRow {
  int served = 0, shed = 0, deadline = 0, wrong = 0;
  double p50 = 0.0, p99 = 0.0;
};

ScenarioRow Summarize(const std::vector<Outcome>& outcomes) {
  ScenarioRow row;
  std::vector<double> served_latencies;
  for (const Outcome& out : outcomes) {
    switch (out.kind) {
      case OutcomeKind::kServed:
        ++row.served;
        served_latencies.push_back(out.latency_ms);
        break;
      case OutcomeKind::kShed:
        ++row.shed;
        break;
      case OutcomeKind::kDeadline:
        ++row.deadline;
        break;
      case OutcomeKind::kWrong:
        ++row.wrong;
        break;
    }
  }
  row.p50 = Percentile(served_latencies, 0.50);
  row.p99 = Percentile(served_latencies, 0.99);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = BoolFlag(argc, argv, "--smoke");
  const std::string out_dir = StringFlag(argc, argv, "--out", ".");

  bench::BenchReport report("server_load");

  // One execution slot per scenario keeps capacity exactly
  // 1000/serve_delay requests per second, so "steady" vs "overload" is a
  // property of the seeded schedule, not of the machine.
  const double serve_delay_ms = smoke ? 40.0 : 25.0;
  const size_t max_queue = 2;
  const int steady_n = smoke ? 10 : 40;
  const double steady_gap_ms = serve_delay_ms * 5.0;
  const int overload_n = smoke ? 24 : 96;
  const double overload_gap_ms = serve_delay_ms / 5.0;

  server::ScopeServerOptions options;
  options.listen = net::Endpoint{"127.0.0.1", 0};
  options.max_inflight = 1;
  options.max_queue = max_queue;
  options.serve_delay_ms = serve_delay_ms;
  options.request_deadline_ms = 60000.0;
  options.metrics = &report.metrics();
  auto created = server::ScopeServer::Create(options);
  COLSCOPE_CHECK_MSG(created.ok(), "daemon must bind an ephemeral port");
  server::ScopeServer daemon = std::move(created).value();
  const net::Endpoint endpoint{"127.0.0.1", daemon.port()};
  Status serve_status = Status::Ok();
  std::thread serving([&] { serve_status = daemon.Serve(); });

  const std::string expected = ExpectedReport();

  std::printf("# colscoped load: service=%.0fms slot=1 queue=%zu\n",
              serve_delay_ms, max_queue);
  std::printf("%-10s %6s %6s %6s %9s %9s %9s\n", "scenario", "n", "served",
              "shed", "shed_rate", "p50_ms", "p99_ms");

  struct Scenario {
    const char* label;
    int n;
    double gap_ms;
    uint64_t seed;
    bool expect_shedding;
  };
  const Scenario scenarios[] = {
      {"steady", steady_n, steady_gap_ms, 17, false},
      {"overload", overload_n, overload_gap_ms, 23, true},
  };
  bool all_ok = true;
  for (const Scenario& scenario : scenarios) {
    const std::vector<Outcome> outcomes = RunOpenLoop(
        endpoint, expected, scenario.n, scenario.gap_ms, scenario.seed);
    const ScenarioRow row = Summarize(outcomes);
    const double shed_rate =
        static_cast<double>(row.shed) / static_cast<double>(scenario.n);
    // Invariants: no wrong answers and no unexplained failures, ever.
    // Steady load must not shed; overload must shed *and* still serve.
    bool ok = row.wrong == 0 && row.served > 0;
    if (scenario.expect_shedding) {
      ok = ok && row.shed > 0;
    } else {
      ok = ok && row.shed == 0 && row.deadline == 0 &&
           row.served == scenario.n;
    }
    all_ok = all_ok && ok;
    std::printf("%-10s %6d %6d %6d %9.2f %9.2f %9.2f%s\n", scenario.label,
                scenario.n, row.served, row.shed, shed_rate, row.p50,
                row.p99, ok ? "" : "  FAILED");
    report.AddRow("server_load", scenario.label,
                  {{"requests", static_cast<double>(scenario.n)},
                   {"served", static_cast<double>(row.served)},
                   {"shed", static_cast<double>(row.shed)},
                   {"deadline", static_cast<double>(row.deadline)},
                   {"shed_rate", shed_rate},
                   {"p50_ms", row.p50},
                   {"p99_ms", row.p99},
                   {"ok", ok ? 1.0 : 0.0}});
  }

  // Drain via the shutdown RPC: Serve() must return Ok with nothing in
  // flight and the lifecycle state parked at "draining".
  net::NetOptions net;
  const Status shutdown = server::RequestShutdown(endpoint, net);
  serving.join();
  const server::HealthInfo health = daemon.Health();
  const bool drain_ok = shutdown.ok() && serve_status.ok() &&
                        health.state == "draining" && health.inflight == 0 &&
                        health.queue_depth == 0;
  all_ok = all_ok && drain_ok;
  std::printf("%-10s drained: completed=%llu shed=%llu%s\n", "drain",
              static_cast<unsigned long long>(health.completed),
              static_cast<unsigned long long>(health.shed),
              drain_ok ? "" : "  FAILED");
  report.AddRow("server_load", "drain",
                {{"completed", static_cast<double>(health.completed)},
                 {"shed", static_cast<double>(health.shed)},
                 {"ok", drain_ok ? 1.0 : 0.0}});

  if (!report.Write(out_dir)) return 1;
  return all_ok ? 0 : 1;
}
