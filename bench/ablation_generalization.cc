// Generalization check beyond the paper's datasets: the Table-4 AUC
// comparison repeated on the independent "Sales3" scenario (TPC-H /
// Northwind / Star Schema Benchmark). Not a paper artifact — evidence
// that collaborative scoping's advantage is not an OC3 idiosyncrasy.
//
// Flags: --step S (sweep granularity, default 0.02).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/sales3.h"
#include "embed/hashed_encoder.h"
#include "eval/sweep.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"
#include "scoping/signatures.h"

int main(int argc, char** argv) {
  using namespace colscope;
  const double step = bench::FlagValue(argc, argv, "--step", 0.02);
  bench::PrintHeader(
      "Generalization: Table-4-style AUC comparison on the independent "
      "Sales3 scenario\n(TPC-H / Northwind / Star Schema Benchmark).");

  datasets::MatchingScenario scenario = datasets::BuildSales3Scenario();
  size_t linkable = 0;
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  for (bool l : labels) linkable += l;
  std::printf("%zu schemas, %zu elements, %zu linkable, unlinkable "
              "overhead %.0f%%, %zu annotated linkages\n\n",
              scenario.set.num_schemas(), scenario.set.num_elements(),
              linkable, 100.0 * scenario.UnlinkableOverhead(),
              scenario.truth.size());

  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto grid = eval::ParameterGrid(step, 0.98);

  std::printf("%-22s %8s %8s %9s %8s\n", "method", "AUC-F1", "AUC-ROC",
              "AUC-ROC'", "AUC-PR");
  const outlier::ZScoreDetector zscore;
  const outlier::LofDetector lof(20);
  const outlier::PcaDetector pca3(0.3), pca5(0.5), pca7(0.7);
  const std::vector<const outlier::OutlierDetector*> detectors = {
      &zscore, &lof, &pca3, &pca5, &pca7};
  for (const auto* detector : detectors) {
    const auto scores = detector->Scores(signatures.signatures);
    const auto report = eval::ReportForScoping(
        labels, scores, eval::ScopingSweepFromScores(scores, labels, grid));
    std::printf("Scoping %-14s %8.2f %8.2f %9.2f %8.2f\n",
                detector->name().c_str(), report.auc_f1, report.auc_roc,
                report.auc_roc_smoothed, report.auc_pr);
  }
  const auto collab = eval::ReportForCollaborative(eval::CollaborativeSweep(
      signatures, scenario.set.num_schemas(), labels, grid));
  std::printf("%-22s %8.2f %8.2f %9.2f %8.2f\n", "Collaborative PCA",
              collab.auc_f1, collab.auc_roc, collab.auc_roc_smoothed,
              collab.auc_pr);
  std::printf(
      "\nReading: Sales3 is far more homogeneous than even OC3 (TPC-H and "
      "SSB literally share\ncolumn names), and here the global PCA baseline "
      "suffices — collaborative scoping's\nadvantage is "
      "heterogeneity-dependent, consistent with the paper's gradient "
      "(OC3 +6%%,\nOC3-FO +26%%) extrapolated down to a near-homogeneous "
      "scenario.\n");
  return 0;
}
