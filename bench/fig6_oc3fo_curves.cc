// Regenerates Figure 6: best-performing scoping (PCA v=0.5) and
// collaborative scoping curves for the OC3-FO schemas — metric sweeps,
// ROC / ROC', and PR panels, printed as CSV series.
//
// Flags: --step S (sweep granularity, default 0.01),
//        --scoping-v V (baseline PCA variance, default 0.5).

#include "bench/bench_util.h"
#include "bench/curve_common.h"
#include "datasets/oc3.h"

int main(int argc, char** argv) {
  using namespace colscope;
  const double step = bench::FlagValue(argc, argv, "--step", 0.01);
  const double scoping_v = bench::FlagValue(argc, argv, "--scoping-v", 0.5);
  bench::PrintHeader(
      "Figure 6: Best performing scoping methods in AUC-F1, AUC-ROC, and "
      "AUC-PR for OC3-FO schemas.");
  datasets::MatchingScenario scenario = datasets::BuildOc3FoScenario();
  bench::PrintFigureCurves(scenario, scoping_v, step);
  return 0;
}
