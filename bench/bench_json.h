#ifndef COLSCOPE_BENCH_BENCH_JSON_H_
#define COLSCOPE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace colscope::bench {

/// Machine-readable sibling of a bench's stdout tables. Collects named
/// rows plus an obs::MetricsRegistry snapshot and writes them as
/// `BENCH_<name>.json` next to where the bench ran, so result files can
/// be diffed or plotted without re-parsing the human tables.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Registry the bench can hang counters/gauges/histograms on; its
  /// snapshot is embedded under "metrics" in the output file.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// One result row: `table` groups rows (one stdout table each),
  /// `label` names the row, `cells` are its numeric columns in order.
  void AddRow(std::string table, std::string label,
              std::vector<std::pair<std::string, double>> cells) {
    rows_.push_back({std::move(table), std::move(label), std::move(cells)});
    metrics_.GetCounter("bench.rows").Increment();
  }

  std::string ToJson() const {
    JsonWriter json;
    json.BeginObject();
    json.Key("bench").String(name_);
    json.Key("rows").BeginArray();
    for (const Row& row : rows_) {
      json.BeginObject();
      json.Key("table").String(row.table);
      json.Key("label").String(row.label);
      json.Key("cells").BeginObject();
      for (const auto& [key, value] : row.cells) {
        json.Key(key).Number(value);
      }
      json.EndObject();
      json.EndObject();
    }
    json.EndArray();
    json.Key("metrics");
    obs::SnapshotToJson(metrics_.Snapshot(), json);
    json.EndObject();
    return json.str();
  }

  /// Writes BENCH_<name>.json into `dir` and notes the path on stderr.
  bool Write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    out << ToJson() << '\n';
    std::fprintf(stderr, "# wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string table;
    std::string label;
    std::vector<std::pair<std::string, double>> cells;
  };

  std::string name_;
  obs::MetricsRegistry metrics_;
  std::vector<Row> rows_;
};

}  // namespace colscope::bench

#endif  // COLSCOPE_BENCH_BENCH_JSON_H_
