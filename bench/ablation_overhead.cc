// Extension ablation: how does the unlinkable overhead — the paper's
// OC3 (103%) vs OC3-FO (263%) axis — affect scoping quality when swept
// continuously? Uses the synthetic multi-source generator to scale the
// private (unlinkable) element count while the linkable core stays
// fixed, and compares collaborative scoping against the global scoping
// baselines at every level. Generalizes the paper's two-point robustness
// comparison to a curve.
//
// Flags: --schemas K (default 3), --step S (sweep step, default 0.02).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "datasets/synthetic.h"
#include "embed/hashed_encoder.h"
#include "eval/sweep.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"
#include "scoping/signatures.h"

int main(int argc, char** argv) {
  using namespace colscope;
  const size_t num_schemas =
      static_cast<size_t>(bench::FlagValue(argc, argv, "--schemas", 3));
  const double step = bench::FlagValue(argc, argv, "--step", 0.02);

  bench::PrintHeader(
      "Extension ablation: scoping quality vs unlinkable overhead "
      "(synthetic multi-source scenarios).");
  std::printf("overhead_pct,n_elements,collab_auc_f1,collab_auc_pr,"
              "pca05_auc_f1,pca05_auc_pr,lof_auc_f1,lof_auc_pr,"
              "zscore_auc_f1,zscore_auc_pr\n");

  const embed::HashedLexiconEncoder encoder;
  const auto grid = eval::ParameterGrid(step, 0.98);
  bench::BenchReport report("overhead");
  report.metrics().GetGauge("bench.schemas")
      .Set(static_cast<double>(num_schemas));

  for (size_t private_count : {0u, 4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    datasets::SyntheticOptions options;
    options.num_schemas = num_schemas;
    options.shared_concepts = 20;
    options.private_per_schema = private_count;
    const auto scenario = datasets::BuildSyntheticScenario(options);
    const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
    const auto labels = scenario.truth.LinkabilityLabels(scenario.set);

    const auto collab = eval::ReportForCollaborative(eval::CollaborativeSweep(
        signatures, scenario.set.num_schemas(), labels, grid));

    auto scoping_report = [&](const outlier::OutlierDetector& detector) {
      const auto scores = detector.Scores(signatures.signatures);
      return eval::ReportForScoping(
          labels, scores, eval::ScopingSweepFromScores(scores, labels, grid));
    };
    const auto pca = scoping_report(outlier::PcaDetector(0.5));
    const auto lof = scoping_report(outlier::LofDetector(20));
    const auto zscore = scoping_report(outlier::ZScoreDetector());

    std::printf("%.0f,%zu,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                100.0 * scenario.UnlinkableOverhead(),
                scenario.set.num_elements(), collab.auc_f1, collab.auc_pr,
                pca.auc_f1, pca.auc_pr, lof.auc_f1, lof.auc_pr,
                zscore.auc_f1, zscore.auc_pr);
    report.metrics().GetCounter("bench.elements_evaluated")
        .Increment(scenario.set.num_elements());
    report.AddRow(
        "overhead_curve",
        StrFormat("overhead_%.0f", 100.0 * scenario.UnlinkableOverhead()),
        {{"overhead_pct", 100.0 * scenario.UnlinkableOverhead()},
         {"n_elements", static_cast<double>(scenario.set.num_elements())},
         {"collab_auc_f1", collab.auc_f1},
         {"collab_auc_pr", collab.auc_pr},
         {"pca05_auc_f1", pca.auc_f1},
         {"pca05_auc_pr", pca.auc_pr},
         {"lof_auc_f1", lof.auc_f1},
         {"lof_auc_pr", lof.auc_pr},
         {"zscore_auc_f1", zscore.auc_f1},
         {"zscore_auc_pr", zscore.auc_pr}});
  }
  report.Write();
  std::printf(
      "\nExpected shape (paper, Section 4.3): global scoping degrades as "
      "the unlinkable\noverhead grows; collaborative scoping stays "
      "comparatively flat.\n");
  return 0;
}
