// Regenerates the Section 4.4 "Pre-processing trade-off" numbers:
//   * encoder-decoder pass operations |S| * |M| versus the Cartesian
//     product size (paper: 4.76% / 320 for OC3, 3.78% / 861 for OC3-FO);
//   * elements pruned at the most permissive variance v = 0.01
//     (paper: 9.37% / 15 for OC3, 19.86% / 57 for OC3-FO);
//   * per-schema model statistics (n_comp, linkability range) across v.

#include <cstdio>

#include "bench/bench_util.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

void RunScenario(const datasets::MatchingScenario& scenario) {
  const embed::HashedLexiconEncoder encoder;
  const scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  const size_t n = signatures.size();
  const size_t num_schemas = scenario.set.num_schemas();

  std::printf("\n--- %s ---\n", scenario.name.c_str());

  // Encoder-decoder pass operations: every element passes through the
  // models of the other |M| = k-1 schemas.
  const size_t passes = n * (num_schemas - 1);
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  std::printf("encoder-decoder passes |S|*|M| = %zu, Cartesian size = %zu "
              "-> %.2f%%\n",
              passes, cartesian,
              100.0 * static_cast<double>(passes) /
                  static_cast<double>(cartesian));

  // Pruning at the most permissive setting v = 0.01.
  const auto keep = scoping::CollaborativeScoping(signatures, num_schemas,
                                                  0.01);
  if (keep.ok()) {
    size_t kept = 0;
    for (bool k : *keep) kept += k;
    const size_t pruned = n - kept;
    std::printf("pruned at v=0.01: %zu elements (%.2f%%)\n", pruned,
                100.0 * static_cast<double>(pruned) / static_cast<double>(n));
  }

  // Model statistics across representative variance levels.
  std::printf("%6s", "v");
  for (size_t s = 0; s < num_schemas; ++s) {
    std::printf("  %14s", scenario.set.schema(static_cast<int>(s)).name().c_str());
  }
  std::printf("   (n_comp / linkability range l_k)\n");
  for (double v : {0.95, 0.8, 0.6, 0.4, 0.2, 0.05}) {
    const auto models =
        scoping::FitLocalModels(signatures, num_schemas, v);
    if (!models.ok()) continue;
    std::printf("%6.2f", v);
    for (const auto& m : *models) {
      std::printf("  %4zu/%.2e", m.pca().n_components(),
                  m.linkability_range());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 4.4: pre-processing trade-off — encoder-decoder pass count "
      "vs Cartesian size,\npruning at v=0.01, and local model statistics.");
  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  RunScenario(oc3);
  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();
  RunScenario(fo);
  std::printf(
      "\nPaper reference: OC3 4.76%% (320 passes), OC3-FO 3.78%% (861); "
      "pruned at v=0.01:\nOC3 9.37%% (15), OC3-FO 19.86%% (57).\n");
  return 0;
}
