// Regenerates Figure 7: ablation study for matching the OC3 and OC3-FO
// schemas with collaborative scoping — PQ, PC, F1, and RR of the SIM
// {0.4, 0.6, 0.8}, CLUSTER {2, 5, 20}, and LSH {1, 5, 20} matchers over
// the explained-variance range v in (1..0), plus the SOTA baselines
// (the same matchers on the original, unscoped schemas).
//
// Flags: --step S (v granularity, default 0.05 — the matcher grid is the
// expensive part; use 0.01 to match the paper's resolution).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "eval/sweep.h"
#include "matching/cluster_matcher.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

void RunScenario(const datasets::MatchingScenario& scenario, double step) {
  const embed::HashedLexiconEncoder encoder;
  const scoping::SignatureSet signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();

  std::vector<std::unique_ptr<matching::Matcher>> matchers;
  for (double t : {0.4, 0.6, 0.8}) {
    matchers.push_back(std::make_unique<matching::SimMatcher>(t));
  }
  for (size_t k : {2u, 5u, 20u}) {
    matchers.push_back(std::make_unique<matching::ClusterMatcher>(k));
  }
  for (size_t k : {1u, 5u, 20u}) {
    matchers.push_back(std::make_unique<matching::LshMatcher>(k));
  }

  // SOTA baselines: matchers on the original schemas (x-axis = 0 in the
  // paper's panels).
  std::printf("\n# %s SOTA baselines (matching the original schemas)\n",
              scenario.name.c_str());
  std::printf("matcher,pq,pc,f1,rr\n");
  const std::vector<bool> all(signatures.size(), true);
  for (const auto& matcher : matchers) {
    const auto q = eval::EvaluateMatching(matcher->Match(signatures, all),
                                          scenario.truth, cartesian);
    std::printf("%s,%.4f,%.4f,%.4f,%.4f\n", matcher->name().c_str(),
                q.PairQuality(), q.PairCompleteness(), q.F1(),
                q.ReductionRatio());
  }

  // Collaborative-scoping sweep: one streamlined mask per v, evaluated
  // under every matcher.
  std::printf("\n# %s collaborative scoping sweep\n", scenario.name.c_str());
  std::printf("v,kept_elements,matcher,pq,pc,f1,rr\n");
  const auto grid = eval::ParameterGrid(step, 0.99);
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {
    const double v = *it;
    const auto keep = scoping::CollaborativeScoping(
        signatures, scenario.set.num_schemas(), v);
    if (!keep.ok()) continue;
    size_t kept = 0;
    for (bool k : *keep) kept += k;
    for (const auto& matcher : matchers) {
      const auto q = eval::EvaluateMatching(matcher->Match(signatures, *keep),
                                            scenario.truth, cartesian);
      std::printf("%.2f,%zu,%s,%.4f,%.4f,%.4f,%.4f\n", v, kept,
                  matcher->name().c_str(), q.PairQuality(),
                  q.PairCompleteness(), q.F1(), q.ReductionRatio());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double step = bench::FlagValue(argc, argv, "--step", 0.05);
  bench::PrintHeader(
      "Figure 7: Ablation study for matching OC3 & OC3-FO schemas with "
      "collaborative scoping\non PQ, PC, F1, and RR.");
  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  RunScenario(oc3, step);
  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();
  RunScenario(fo, step);
  return 0;
}
