// Microbenchmarks for the Section 3 "Computational Complexity" analysis
// (google-benchmark). The headline comparison: global scoping's ODA cost
// grows with the quadratic size of the *union* signature set |S|^2,
// while collaborative scoping pays the sum of per-schema quadratics
// (|S_1|^2 + ... + |S_k|^2) plus |S| * |M| reconstruction passes — so it
// gets relatively cheaper as the number of schemas grows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/strings.h"
#include "embed/hashed_encoder.h"
#include "linalg/pca.h"
#include "linalg/svd.h"
#include "linalg/truncated_svd.h"
#include "matching/flat_index.h"
#include "matching/ivf_index.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "obs/flight_recorder.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"
#include "schema/schema.h"
#include "schema/schema_set.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

/// Deterministic synthetic schema: `attrs` attributes spread over
/// `attrs / 8 + 1` tables, names drawn from composable token pools so
/// signatures get realistic shared structure.
schema::Schema SyntheticSchema(int index, size_t attrs) {
  static const char* kEntities[] = {"customer", "order",   "product",
                                    "shipment", "invoice", "store",
                                    "employee", "payment"};
  static const char* kFields[] = {"id",     "name",   "date",   "status",
                                  "amount", "city",   "street", "country",
                                  "email",  "phone",  "price",  "quantity",
                                  "code",   "number", "type",   "comment"};
  schema::Schema out(StrFormat("SYN%d", index));
  const size_t num_tables = attrs / 8 + 1;
  size_t made = 0;
  for (size_t t = 0; t < num_tables && made < attrs; ++t) {
    schema::Table table;
    table.name = StrFormat("%s_%d_%zu", kEntities[(index + t) % 8], index, t);
    for (size_t a = 0; a < 8 && made < attrs; ++a, ++made) {
      schema::Attribute attr;
      attr.name = StrFormat("%s_%s", kEntities[(index + made) % 8],
                            kFields[made % 16]);
      attr.table_name = table.name;
      attr.raw_type = (made % 3 == 0) ? "INT" : "VARCHAR";
      attr.type = schema::ParseDataType(attr.raw_type);
      if (a == 0) attr.constraint = schema::Constraint::kPrimaryKey;
      table.attributes.push_back(std::move(attr));
    }
    out.AddTable(std::move(table)).ok();
  }
  return out;
}

scoping::SignatureSet SyntheticSignatures(size_t num_schemas,
                                          size_t attrs_per_schema) {
  std::vector<schema::Schema> schemas;
  for (size_t s = 0; s < num_schemas; ++s) {
    schemas.push_back(SyntheticSchema(static_cast<int>(s), attrs_per_schema));
  }
  schema::SchemaSet set(std::move(schemas));
  static const embed::HashedLexiconEncoder* const kEncoder =
      new embed::HashedLexiconEncoder();
  return scoping::BuildSignatures(set, *kEncoder);
}

// --- Encoder -----------------------------------------------------------------

void BM_EncodeSignature(benchmark::State& state) {
  const embed::HashedLexiconEncoder encoder;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(
        (i++ % 2) == 0 ? "CUSTOMER_ID ORDERS NUMBER FOREIGN KEY"
                       : "CUSTOMERS [CUSTOMER_ID, EMAIL_ADDRESS, FULL_NAME]"));
  }
}
BENCHMARK(BM_EncodeSignature);

// --- Linear algebra -------------------------------------------------------------

void BM_ThinSvd(benchmark::State& state) {
  const auto sig = SyntheticSignatures(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::ThinSvd(sig.signatures));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ThinSvd)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_TruncatedSvd(benchmark::State& state) {
  const auto sig = SyntheticSignatures(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::TruncatedSvd(sig.signatures, 16));
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_FitLocalModel(benchmark::State& state) {
  const auto sig = SyntheticSignatures(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scoping::LocalModel::Fit(sig.signatures, 0.8, 0));
  }
}
BENCHMARK(BM_FitLocalModel)->Arg(40)->Arg(120)->Unit(benchmark::kMillisecond);

// --- ODA baselines (global scoping cost, |S|^2 growth) ----------------------------

void BM_GlobalScoping_Zscore(benchmark::State& state) {
  const auto sig = SyntheticSignatures(state.range(0), 48);
  const outlier::ZScoreDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scoping::GlobalScoping(sig, detector, 0.5));
  }
}
BENCHMARK(BM_GlobalScoping_Zscore)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GlobalScoping_Lof(benchmark::State& state) {
  const auto sig = SyntheticSignatures(state.range(0), 48);
  const outlier::LofDetector detector(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scoping::GlobalScoping(sig, detector, 0.5));
  }
}
BENCHMARK(BM_GlobalScoping_Lof)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GlobalScoping_Pca(benchmark::State& state) {
  const auto sig = SyntheticSignatures(state.range(0), 48);
  const outlier::PcaDetector detector(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scoping::GlobalScoping(sig, detector, 0.5));
  }
}
BENCHMARK(BM_GlobalScoping_Pca)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Collaborative scoping (sum of per-schema quadratics) --------------------------

void BM_FitLocalModelsParallel(benchmark::State& state) {
  const size_t num_schemas = state.range(0);
  const auto sig = SyntheticSignatures(num_schemas, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scoping::FitLocalModelsParallel(sig, num_schemas, 0.8));
  }
}
BENCHMARK(BM_FitLocalModelsParallel)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CollaborativeScoping(benchmark::State& state) {
  const size_t num_schemas = state.range(0);
  const auto sig = SyntheticSignatures(num_schemas, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scoping::CollaborativeScoping(sig, num_schemas, 0.8));
  }
}
BENCHMARK(BM_CollaborativeScoping)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Matching search-space costs ------------------------------------------------

void BM_SimMatcher(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::SimMatcher matcher(0.6);
  const std::vector<bool> all(sig.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(sig, all));
  }
}
BENCHMARK(BM_SimMatcher)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_LshMatcher(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::LshMatcher matcher(5);
  const std::vector<bool> all(sig.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(sig, all));
  }
}
BENCHMARK(BM_LshMatcher)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_LshMatcher_Approximate(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::LshMatcher matcher(5, /*approximate=*/true);
  const std::vector<bool> all(sig.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(sig, all));
  }
}
BENCHMARK(BM_LshMatcher_Approximate)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// --- Quantized flat-index recall-vs-speed sweep ------------------------------

// The exact/quantized pair below sweeps the same corpus sizes so their
// per-size timings line up into a recall-vs-speed curve: the quantized
// run reports its recall@10 against the exact top-10 as a counter, and
// the wall-time ratio at each Arg is the speed side of the tradeoff.

std::vector<linalg::Vector> AllRowQueries(const scoping::SignatureSet& sig) {
  std::vector<linalg::Vector> queries;
  queries.reserve(sig.size());
  for (size_t r = 0; r < sig.size(); ++r) {
    const double* row = sig.signatures.RowPtr(r);
    queries.emplace_back(row, row + sig.signatures.cols());
  }
  return queries;
}

void BM_FlatIndexExact(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::FlatL2Index index(sig.signatures);
  const auto queries = AllRowQueries(sig);
  for (auto _ : state) {
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(index.Search(q, 10));
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_FlatIndexExact)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FlatIndexQuantized(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::FlatL2Index exact(sig.signatures);
  const matching::FlatL2Index quant(
      sig.signatures, matching::FlatL2Index::Options{.quantized = true});
  const auto queries = AllRowQueries(sig);
  for (auto _ : state) {
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(quant.Search(q, 10));
    }
  }
  size_t hits = 0, total = 0;
  for (const auto& q : queries) {
    const auto want = exact.Search(q, 10);
    const auto got = quant.Search(q, 10);
    for (size_t id : want) {
      if (std::find(got.begin(), got.end(), id) != got.end()) ++hits;
    }
    total += want.size();
  }
  state.counters["recall_at_10"] =
      total == 0 ? 1.0 : static_cast<double>(hits) / total;
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_FlatIndexQuantized)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// --- IVF sub-linear search ----------------------------------------------------

// Same corpus sizes as the flat pair above, so the three curves overlay
// directly: the IVF run reports its recall@10 against the exact flat
// top-10 plus the mean probed fraction as counters, and its per-Arg
// wall time shows where sub-linear probing overtakes brute force.

void BM_IvfIndexSearch(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::FlatL2Index exact(sig.signatures);
  const matching::IvfIndex ivf(sig.signatures);  // auto sqrt(n), nprobe 8.
  const auto queries = AllRowQueries(sig);
  for (auto _ : state) {
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(ivf.Search(q, 10));
    }
  }
  size_t hits = 0, total = 0, probed = 0;
  for (const auto& q : queries) {
    const auto want = exact.Search(q, 10);
    const auto got = ivf.Search(q, 10);
    for (size_t id : want) {
      if (std::find(got.begin(), got.end(), id) != got.end()) ++hits;
    }
    total += want.size();
    probed += ivf.ProbedRows(q, 10, ivf.nprobe());
  }
  state.counters["recall_at_10"] =
      total == 0 ? 1.0 : static_cast<double>(hits) / total;
  state.counters["probe_fraction"] =
      static_cast<double>(probed) /
      (static_cast<double>(queries.size()) * ivf.size());
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_IvfIndexSearch)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_IvfMatcher(benchmark::State& state) {
  const auto sig = SyntheticSignatures(3, state.range(0));
  const matching::IvfMatcher matcher({});
  const std::vector<bool> all(sig.size(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(sig, all));
  }
}
BENCHMARK(BM_IvfMatcher)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// --- Observability hot-path costs --------------------------------------------

// The flight recorder sits on every RPC/fetch/retry path, so one Record
// must stay in the tens-of-nanoseconds range: a ticket fetch_add plus
// two bounded memcpys, no locks, no allocation.
void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(256);
  int i = 0;
  for (auto _ : state) {
    recorder.Record("rpc",
                    (i++ & 1) ? "assign worker=0 ok"
                              : "get_model publisher=1 consumer=0 ok");
  }
  benchmark::DoNotOptimize(recorder.total_recorded());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_FlightRecorderSnapshot(benchmark::State& state) {
  obs::FlightRecorder recorder(256);
  for (int i = 0; i < 512; ++i) {
    recorder.Record("rpc", "assign worker=0 ok");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.Snapshot());
  }
}
BENCHMARK(BM_FlightRecorderSnapshot);

}  // namespace

BENCHMARK_MAIN();
