// Extension ablation (the paper's future-work direction, Section 5):
// PCA-based collaborative scoping vs *non-linear* neural local
// encoder-decoders, plus the extra ODA baselines (kNN distance,
// isolation forest) and the classical string-similarity matcher
// baseline the paper contrasts signatures against (Section 2.2).
//
// Flags: --epochs N (neural training epochs per model, default 40).

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "eval/sweep.h"
#include "matching/sim.h"
#include "matching/string_matcher.h"
#include "outlier/isolation_forest.h"
#include "outlier/knn.h"
#include "scoping/collaborative.h"
#include "scoping/neural_collaborative.h"
#include "scoping/signatures.h"

namespace {

using namespace colscope;

void CompareScopers(const datasets::MatchingScenario& scenario,
                    const scoping::SignatureSet& signatures, int epochs,
                    bench::BenchReport& out) {
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  std::printf("\n--- %s: local encoder-decoder families ---\n",
              scenario.name.c_str());
  std::printf("%-34s %10s %10s %10s %8s\n", "model", "precision", "recall",
              "f1", "kept");

  auto report = [&](const char* name, const std::vector<bool>& keep) {
    const auto c = eval::Evaluate(labels, keep);
    size_t kept = 0;
    for (bool k : keep) kept += k;
    std::printf("%-34s %10.3f %10.3f %10.3f %8zu\n", name, c.Precision(),
                c.Recall(), c.F1(), kept);
    out.AddRow(scenario.name + ":scopers", name,
               {{"precision", c.Precision()},
                {"recall", c.Recall()},
                {"f1", c.F1()},
                {"kept", static_cast<double>(kept)}});
  };

  for (double v : {0.9, 0.7, 0.5}) {
    const auto keep = scoping::CollaborativeScoping(
        signatures, scenario.set.num_schemas(), v);
    if (keep.ok()) {
      report(StrFormat("collaborative PCA (v=%.1f)", v).c_str(), *keep);
    }
  }
  for (size_t bottleneck : {4u, 10u, 32u}) {
    scoping::NeuralLocalModelOptions options;
    options.hidden_dims = {100, bottleneck, 100};
    options.epochs = epochs;
    const auto keep = scoping::CollaborativeScopingNeural(
        signatures, scenario.set.num_schemas(), options);
    if (keep.ok()) {
      report(StrFormat("collaborative AE (bottleneck=%zu)", bottleneck)
                 .c_str(),
             *keep);
    }
  }
}

void CompareOdas(const datasets::MatchingScenario& scenario,
                 const scoping::SignatureSet& signatures,
                 bench::BenchReport& out) {
  const auto labels = scenario.truth.LinkabilityLabels(scenario.set);
  const auto grid = eval::ParameterGrid(0.02, 0.98);
  std::printf("\n--- %s: extended ODA baselines (global scoping) ---\n",
              scenario.name.c_str());
  std::printf("%-28s %8s %8s %9s %8s\n", "ODA", "AUC-F1", "AUC-ROC",
              "AUC-ROC'", "AUC-PR");
  const outlier::KnnDetector knn_mean(10);
  const outlier::KnnDetector knn_max(10, outlier::KnnDetector::Aggregate::kMax);
  const outlier::IsolationForestDetector iforest;
  const std::vector<const outlier::OutlierDetector*> detectors = {
      &knn_mean, &knn_max, &iforest};
  for (const auto* detector : detectors) {
    const auto scores = detector->Scores(signatures.signatures);
    const auto rep = eval::ReportForScoping(
        labels, scores, eval::ScopingSweepFromScores(scores, labels, grid));
    std::printf("%-28s %8.2f %8.2f %9.2f %8.2f\n", detector->name().c_str(),
                rep.auc_f1, rep.auc_roc, rep.auc_roc_smoothed, rep.auc_pr);
    out.AddRow(scenario.name + ":odas", detector->name(),
               {{"auc_f1", rep.auc_f1},
                {"auc_roc", rep.auc_roc},
                {"auc_roc_smoothed", rep.auc_roc_smoothed},
                {"auc_pr", rep.auc_pr}});
  }
}

void CompareStringMatching(const datasets::MatchingScenario& scenario,
                           const scoping::SignatureSet& signatures,
                           bench::BenchReport& out) {
  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  const std::vector<bool> all(signatures.size(), true);
  std::printf("\n--- %s: string-similarity vs signature matching "
              "(Section 2.2's labeling-conflict argument) ---\n",
              scenario.name.c_str());
  std::printf("%-18s %8s %8s %8s\n", "matcher", "PQ", "PC", "F1");

  using Measure = matching::StringSimilarityMatcher::Measure;
  const matching::StringSimilarityMatcher lev(Measure::kLevenshtein, 0.7);
  const matching::StringSimilarityMatcher jw(Measure::kJaroWinkler, 0.9);
  const matching::StringSimilarityMatcher jac(Measure::kTokenJaccard, 0.5);
  const matching::SimMatcher cosine(0.8);
  const std::vector<const matching::Matcher*> matchers = {&lev, &jw, &jac,
                                                          &cosine};
  for (const auto* matcher : matchers) {
    const auto q = eval::EvaluateMatching(matcher->Match(signatures, all),
                                          scenario.truth, cartesian);
    std::printf("%-18s %8.3f %8.3f %8.3f\n", matcher->name().c_str(),
                q.PairQuality(), q.PairCompleteness(), q.F1());
    out.AddRow(scenario.name + ":string_matching", matcher->name(),
               {{"pq", q.PairQuality()},
                {"pc", q.PairCompleteness()},
                {"f1", q.F1()}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs =
      static_cast<int>(bench::FlagValue(argc, argv, "--epochs", 40));
  bench::PrintHeader(
      "Extension ablations: neural collaborative scoping (future work), "
      "extra ODAs, and\nstring-similarity matching baselines.");

  const embed::HashedLexiconEncoder encoder;
  datasets::MatchingScenario oc3 = datasets::BuildOc3Scenario();
  datasets::MatchingScenario fo = datasets::BuildOc3FoScenario();
  const auto sig_oc3 = scoping::BuildSignatures(oc3.set, encoder);
  const auto sig_fo = scoping::BuildSignatures(fo.set, encoder);

  bench::BenchReport report("encoders");
  report.metrics().GetGauge("bench.epochs")
      .Set(static_cast<double>(epochs));
  report.metrics().GetGauge("bench.elements.oc3")
      .Set(static_cast<double>(sig_oc3.size()));
  report.metrics().GetGauge("bench.elements.oc3_fo")
      .Set(static_cast<double>(sig_fo.size()));
  CompareScopers(oc3, sig_oc3, epochs, report);
  CompareScopers(fo, sig_fo, epochs, report);
  CompareOdas(oc3, sig_oc3, report);
  CompareOdas(fo, sig_fo, report);
  CompareStringMatching(oc3, sig_oc3, report);
  CompareStringMatching(fo, sig_fo, report);
  report.Write();
  return 0;
}
