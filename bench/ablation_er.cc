// Extension ablation (paper future work, Section 5): collaborative
// scoping applied to entity resolution. Sweeps the explained variance
// and reports blocking precision/recall with and without record scoping
// on a synthetic multi-source duplicate-detection workload.
//
// Flags: --entities N (default 40), --noise N per source (default 20).

#include <cstdio>

#include "bench/bench_util.h"
#include "embed/hashed_encoder.h"
#include "er/record_scoping.h"
#include "er/synthetic_er.h"

int main(int argc, char** argv) {
  using namespace colscope;
  bench::PrintHeader(
      "Extension ablation: collaborative scoping for entity resolution "
      "(record-level).");

  er::SyntheticErOptions options;
  options.entities =
      static_cast<size_t>(bench::FlagValue(argc, argv, "--entities", 40));
  options.noise_per_source =
      static_cast<size_t>(bench::FlagValue(argc, argv, "--noise", 20));
  const er::ErScenario scenario = er::BuildSyntheticErScenario(options);

  const embed::HashedLexiconEncoder encoder;
  const er::RecordSignatureSet signatures =
      er::BuildRecordSignatures(scenario.sources, encoder);
  const std::vector<bool> all(signatures.size(), true);

  auto evaluate = [&](const std::set<er::RecordPair>& candidates,
                      double& precision, double& recall) {
    size_t true_pairs = 0;
    for (const auto& pair : candidates) {
      true_pairs += scenario.duplicates.count(pair);
    }
    precision = candidates.empty() ? 0.0
                                   : static_cast<double>(true_pairs) /
                                         static_cast<double>(candidates.size());
    recall = scenario.duplicates.empty()
                 ? 0.0
                 : static_cast<double>(true_pairs) /
                       static_cast<double>(scenario.duplicates.size());
  };

  double p0 = 0.0, r0 = 0.0;
  const auto baseline = er::BlockTopK(signatures, all, 2);
  evaluate(baseline, p0, r0);
  std::printf("baseline (no scoping): %zu candidates precision=%.3f "
              "recall=%.3f\n\n",
              baseline.size(), p0, r0);

  std::printf("v,kept_records,candidates,precision,recall\n");
  for (double v : {0.7, 0.6, 0.5, 0.45, 0.4, 0.35, 0.3, 0.2, 0.1}) {
    const auto keep = er::CollaborativeRecordScoping(
        signatures, scenario.sources.size(), v);
    if (!keep.ok()) continue;
    size_t kept = 0;
    for (bool k : *keep) kept += k;
    const auto candidates = er::BlockTopK(signatures, *keep, 2);
    double precision = 0.0, recall = 0.0;
    evaluate(candidates, precision, recall);
    std::printf("%.2f,%zu,%zu,%.3f,%.3f\n", v, kept, candidates.size(),
                precision, recall);
  }
  std::printf(
      "\nExpected shape: scoped blocking trades a bounded recall loss for "
      "a large precision\nand candidate-count gain over the unscoped "
      "baseline — the schema-level Figure 7\nstory transplanted to "
      "records.\n");
  return 0;
}
