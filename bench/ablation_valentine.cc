// Valentine-style matcher evaluation (Koutras et al., ICDE 2021 — the
// benchmark framework the paper cites): dataset pairs are fabricated
// from real OC3 tables in the four relationship categories (unionable /
// view-unionable / joinable / semantically-joinable) and every matcher
// family is scored per category. The expected difficulty ordering:
// verbatim unionable is easiest; semantically-joinable (synonym/
// abbreviation renames, minimal structural overlap) is hardest for
// lexical matchers while signature-based matchers degrade gracefully.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datasets/fabricator.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "matching/cupid.h"
#include "matching/similarity_flooding.h"
#include "matching/string_matcher.h"
#include "scoping/signatures.h"

int main() {
  using namespace colscope;
  bench::PrintHeader(
      "Valentine-style fabricated-pair evaluation over OC3 source tables.");

  const embed::HashedLexiconEncoder encoder;
  const schema::Schema mysql = datasets::LoadMySqlSchema();
  const schema::Schema oracle = datasets::LoadOracleSchema();
  const std::vector<const schema::Table*> sources = {
      mysql.FindTable("customers"), mysql.FindTable("products"),
      oracle.FindTable("STORES"), oracle.FindTable("ORDER_ITEMS")};

  std::vector<std::unique_ptr<matching::Matcher>> matchers;
  matchers.push_back(std::make_unique<matching::SimMatcher>(0.7));
  matchers.push_back(std::make_unique<matching::LshMatcher>(1));
  matchers.push_back(std::make_unique<matching::SimilarityFloodingMatcher>());
  matchers.push_back(std::make_unique<matching::CupidMatcher>());
  matchers.push_back(std::make_unique<matching::StringSimilarityMatcher>(
      matching::StringSimilarityMatcher::Measure::kLevenshtein, 0.8));

  std::printf("category,matcher,pq,pc,f1\n");
  for (datasets::FabricationKind kind :
       {datasets::FabricationKind::kUnionable,
        datasets::FabricationKind::kViewUnionable,
        datasets::FabricationKind::kJoinable,
        datasets::FabricationKind::kSemanticallyJoinable}) {
    for (const auto& matcher : matchers) {
      // Aggregate quality over all fabricated pairs of this category.
      size_t generated = 0, true_pairs = 0, truth_total = 0;
      uint64_t seed = 0xfab;
      for (const schema::Table* source : sources) {
        datasets::FabricatorOptions options;
        options.kind = kind;
        options.seed = seed++;
        const auto scenario = datasets::FabricatePair(*source, options);
        const auto signatures =
            scoping::BuildSignatures(scenario.set, encoder);
        const std::vector<bool> all(signatures.size(), true);
        const auto pairs = matcher->Match(signatures, all);
        const auto quality = eval::EvaluateMatching(
            pairs, scenario.truth,
            scenario.set.TableCartesianSize() +
                scenario.set.AttributeCartesianSize());
        generated += quality.generated;
        true_pairs += quality.true_linkages;
        truth_total += quality.ground_truth;
      }
      const double pq = generated == 0 ? 0.0
                                       : static_cast<double>(true_pairs) /
                                             static_cast<double>(generated);
      const double pc = truth_total == 0
                            ? 0.0
                            : static_cast<double>(true_pairs) /
                                  static_cast<double>(truth_total);
      const double f1 = (pq + pc) == 0.0 ? 0.0 : 2.0 * pq * pc / (pq + pc);
      std::printf("%s,%s,%.3f,%.3f,%.3f\n",
                  datasets::FabricationKindToString(kind),
                  matcher->name().c_str(), pq, pc, f1);
    }
  }
  return 0;
}
