# Empty compiler generated dependencies file for source_to_target.
# This may be replaced when dependencies are built.
