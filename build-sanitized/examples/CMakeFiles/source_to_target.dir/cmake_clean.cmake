file(REMOVE_RECURSE
  "CMakeFiles/source_to_target.dir/source_to_target.cpp.o"
  "CMakeFiles/source_to_target.dir/source_to_target.cpp.o.d"
  "source_to_target"
  "source_to_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_to_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
