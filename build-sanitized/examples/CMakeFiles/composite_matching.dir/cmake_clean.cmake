file(REMOVE_RECURSE
  "CMakeFiles/composite_matching.dir/composite_matching.cpp.o"
  "CMakeFiles/composite_matching.dir/composite_matching.cpp.o.d"
  "composite_matching"
  "composite_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
