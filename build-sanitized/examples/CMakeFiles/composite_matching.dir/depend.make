# Empty dependencies file for composite_matching.
# This may be replaced when dependencies are built.
