# Empty compiler generated dependencies file for multi_source_matching.
# This may be replaced when dependencies are built.
