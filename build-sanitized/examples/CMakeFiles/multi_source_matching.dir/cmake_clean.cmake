file(REMOVE_RECURSE
  "CMakeFiles/multi_source_matching.dir/multi_source_matching.cpp.o"
  "CMakeFiles/multi_source_matching.dir/multi_source_matching.cpp.o.d"
  "multi_source_matching"
  "multi_source_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
