# Empty compiler generated dependencies file for heterogeneous_pruning.
# This may be replaced when dependencies are built.
