file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_pruning.dir/heterogeneous_pruning.cpp.o"
  "CMakeFiles/heterogeneous_pruning.dir/heterogeneous_pruning.cpp.o.d"
  "heterogeneous_pruning"
  "heterogeneous_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
