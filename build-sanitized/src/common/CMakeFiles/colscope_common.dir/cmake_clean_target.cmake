file(REMOVE_RECURSE
  "libcolscope_common.a"
)
