file(REMOVE_RECURSE
  "CMakeFiles/colscope_common.dir/fault_injector.cc.o"
  "CMakeFiles/colscope_common.dir/fault_injector.cc.o.d"
  "CMakeFiles/colscope_common.dir/json_writer.cc.o"
  "CMakeFiles/colscope_common.dir/json_writer.cc.o.d"
  "CMakeFiles/colscope_common.dir/rng.cc.o"
  "CMakeFiles/colscope_common.dir/rng.cc.o.d"
  "CMakeFiles/colscope_common.dir/status.cc.o"
  "CMakeFiles/colscope_common.dir/status.cc.o.d"
  "CMakeFiles/colscope_common.dir/strings.cc.o"
  "CMakeFiles/colscope_common.dir/strings.cc.o.d"
  "CMakeFiles/colscope_common.dir/thread_pool.cc.o"
  "CMakeFiles/colscope_common.dir/thread_pool.cc.o.d"
  "libcolscope_common.a"
  "libcolscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
