# Empty dependencies file for colscope_common.
# This may be replaced when dependencies are built.
