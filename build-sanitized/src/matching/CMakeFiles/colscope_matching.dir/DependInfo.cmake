
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/active_learning.cc" "src/matching/CMakeFiles/colscope_matching.dir/active_learning.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/active_learning.cc.o.d"
  "/root/repo/src/matching/cluster_matcher.cc" "src/matching/CMakeFiles/colscope_matching.dir/cluster_matcher.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/cluster_matcher.cc.o.d"
  "/root/repo/src/matching/cupid.cc" "src/matching/CMakeFiles/colscope_matching.dir/cupid.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/cupid.cc.o.d"
  "/root/repo/src/matching/flat_index.cc" "src/matching/CMakeFiles/colscope_matching.dir/flat_index.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/flat_index.cc.o.d"
  "/root/repo/src/matching/kmeans.cc" "src/matching/CMakeFiles/colscope_matching.dir/kmeans.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/kmeans.cc.o.d"
  "/root/repo/src/matching/lsh_matcher.cc" "src/matching/CMakeFiles/colscope_matching.dir/lsh_matcher.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/lsh_matcher.cc.o.d"
  "/root/repo/src/matching/matcher.cc" "src/matching/CMakeFiles/colscope_matching.dir/matcher.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/matcher.cc.o.d"
  "/root/repo/src/matching/silhouette.cc" "src/matching/CMakeFiles/colscope_matching.dir/silhouette.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/silhouette.cc.o.d"
  "/root/repo/src/matching/sim.cc" "src/matching/CMakeFiles/colscope_matching.dir/sim.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/sim.cc.o.d"
  "/root/repo/src/matching/similarity_flooding.cc" "src/matching/CMakeFiles/colscope_matching.dir/similarity_flooding.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/similarity_flooding.cc.o.d"
  "/root/repo/src/matching/similarity_matrix.cc" "src/matching/CMakeFiles/colscope_matching.dir/similarity_matrix.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/similarity_matrix.cc.o.d"
  "/root/repo/src/matching/string_matcher.cc" "src/matching/CMakeFiles/colscope_matching.dir/string_matcher.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/string_matcher.cc.o.d"
  "/root/repo/src/matching/token_blocking.cc" "src/matching/CMakeFiles/colscope_matching.dir/token_blocking.cc.o" "gcc" "src/matching/CMakeFiles/colscope_matching.dir/token_blocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/scoping/CMakeFiles/colscope_scoping.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/text/CMakeFiles/colscope_text.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/linalg/CMakeFiles/colscope_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/embed/CMakeFiles/colscope_embed.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/schema/CMakeFiles/colscope_schema.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/outlier/CMakeFiles/colscope_outlier.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/nn/CMakeFiles/colscope_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
