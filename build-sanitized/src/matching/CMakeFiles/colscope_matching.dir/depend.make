# Empty dependencies file for colscope_matching.
# This may be replaced when dependencies are built.
