file(REMOVE_RECURSE
  "libcolscope_matching.a"
)
