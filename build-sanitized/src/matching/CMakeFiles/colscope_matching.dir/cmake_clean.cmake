file(REMOVE_RECURSE
  "CMakeFiles/colscope_matching.dir/active_learning.cc.o"
  "CMakeFiles/colscope_matching.dir/active_learning.cc.o.d"
  "CMakeFiles/colscope_matching.dir/cluster_matcher.cc.o"
  "CMakeFiles/colscope_matching.dir/cluster_matcher.cc.o.d"
  "CMakeFiles/colscope_matching.dir/cupid.cc.o"
  "CMakeFiles/colscope_matching.dir/cupid.cc.o.d"
  "CMakeFiles/colscope_matching.dir/flat_index.cc.o"
  "CMakeFiles/colscope_matching.dir/flat_index.cc.o.d"
  "CMakeFiles/colscope_matching.dir/kmeans.cc.o"
  "CMakeFiles/colscope_matching.dir/kmeans.cc.o.d"
  "CMakeFiles/colscope_matching.dir/lsh_matcher.cc.o"
  "CMakeFiles/colscope_matching.dir/lsh_matcher.cc.o.d"
  "CMakeFiles/colscope_matching.dir/matcher.cc.o"
  "CMakeFiles/colscope_matching.dir/matcher.cc.o.d"
  "CMakeFiles/colscope_matching.dir/silhouette.cc.o"
  "CMakeFiles/colscope_matching.dir/silhouette.cc.o.d"
  "CMakeFiles/colscope_matching.dir/sim.cc.o"
  "CMakeFiles/colscope_matching.dir/sim.cc.o.d"
  "CMakeFiles/colscope_matching.dir/similarity_flooding.cc.o"
  "CMakeFiles/colscope_matching.dir/similarity_flooding.cc.o.d"
  "CMakeFiles/colscope_matching.dir/similarity_matrix.cc.o"
  "CMakeFiles/colscope_matching.dir/similarity_matrix.cc.o.d"
  "CMakeFiles/colscope_matching.dir/string_matcher.cc.o"
  "CMakeFiles/colscope_matching.dir/string_matcher.cc.o.d"
  "CMakeFiles/colscope_matching.dir/token_blocking.cc.o"
  "CMakeFiles/colscope_matching.dir/token_blocking.cc.o.d"
  "libcolscope_matching.a"
  "libcolscope_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
