# Empty compiler generated dependencies file for colscope_er.
# This may be replaced when dependencies are built.
