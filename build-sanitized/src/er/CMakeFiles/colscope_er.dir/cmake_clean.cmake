file(REMOVE_RECURSE
  "CMakeFiles/colscope_er.dir/entity_set.cc.o"
  "CMakeFiles/colscope_er.dir/entity_set.cc.o.d"
  "CMakeFiles/colscope_er.dir/record_scoping.cc.o"
  "CMakeFiles/colscope_er.dir/record_scoping.cc.o.d"
  "CMakeFiles/colscope_er.dir/synthetic_er.cc.o"
  "CMakeFiles/colscope_er.dir/synthetic_er.cc.o.d"
  "libcolscope_er.a"
  "libcolscope_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
