file(REMOVE_RECURSE
  "libcolscope_er.a"
)
