# Empty dependencies file for colscope_eval.
# This may be replaced when dependencies are built.
