file(REMOVE_RECURSE
  "libcolscope_eval.a"
)
