file(REMOVE_RECURSE
  "CMakeFiles/colscope_eval.dir/breakdown.cc.o"
  "CMakeFiles/colscope_eval.dir/breakdown.cc.o.d"
  "CMakeFiles/colscope_eval.dir/csv_export.cc.o"
  "CMakeFiles/colscope_eval.dir/csv_export.cc.o.d"
  "CMakeFiles/colscope_eval.dir/curves.cc.o"
  "CMakeFiles/colscope_eval.dir/curves.cc.o.d"
  "CMakeFiles/colscope_eval.dir/matching_metrics.cc.o"
  "CMakeFiles/colscope_eval.dir/matching_metrics.cc.o.d"
  "CMakeFiles/colscope_eval.dir/metrics.cc.o"
  "CMakeFiles/colscope_eval.dir/metrics.cc.o.d"
  "CMakeFiles/colscope_eval.dir/sweep.cc.o"
  "CMakeFiles/colscope_eval.dir/sweep.cc.o.d"
  "libcolscope_eval.a"
  "libcolscope_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
