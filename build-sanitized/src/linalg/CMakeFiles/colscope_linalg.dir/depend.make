# Empty dependencies file for colscope_linalg.
# This may be replaced when dependencies are built.
