file(REMOVE_RECURSE
  "CMakeFiles/colscope_linalg.dir/eigen.cc.o"
  "CMakeFiles/colscope_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/colscope_linalg.dir/matrix.cc.o"
  "CMakeFiles/colscope_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/colscope_linalg.dir/pca.cc.o"
  "CMakeFiles/colscope_linalg.dir/pca.cc.o.d"
  "CMakeFiles/colscope_linalg.dir/stats.cc.o"
  "CMakeFiles/colscope_linalg.dir/stats.cc.o.d"
  "CMakeFiles/colscope_linalg.dir/svd.cc.o"
  "CMakeFiles/colscope_linalg.dir/svd.cc.o.d"
  "CMakeFiles/colscope_linalg.dir/truncated_svd.cc.o"
  "CMakeFiles/colscope_linalg.dir/truncated_svd.cc.o.d"
  "libcolscope_linalg.a"
  "libcolscope_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
