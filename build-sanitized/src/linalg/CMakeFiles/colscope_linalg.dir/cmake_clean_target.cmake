file(REMOVE_RECURSE
  "libcolscope_linalg.a"
)
