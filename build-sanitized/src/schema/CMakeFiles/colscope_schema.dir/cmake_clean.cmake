file(REMOVE_RECURSE
  "CMakeFiles/colscope_schema.dir/ddl_parser.cc.o"
  "CMakeFiles/colscope_schema.dir/ddl_parser.cc.o.d"
  "CMakeFiles/colscope_schema.dir/ddl_writer.cc.o"
  "CMakeFiles/colscope_schema.dir/ddl_writer.cc.o.d"
  "CMakeFiles/colscope_schema.dir/schema.cc.o"
  "CMakeFiles/colscope_schema.dir/schema.cc.o.d"
  "CMakeFiles/colscope_schema.dir/schema_set.cc.o"
  "CMakeFiles/colscope_schema.dir/schema_set.cc.o.d"
  "CMakeFiles/colscope_schema.dir/serialize.cc.o"
  "CMakeFiles/colscope_schema.dir/serialize.cc.o.d"
  "libcolscope_schema.a"
  "libcolscope_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
