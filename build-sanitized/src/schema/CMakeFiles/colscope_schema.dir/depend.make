# Empty dependencies file for colscope_schema.
# This may be replaced when dependencies are built.
