file(REMOVE_RECURSE
  "libcolscope_schema.a"
)
