
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/ddl_parser.cc" "src/schema/CMakeFiles/colscope_schema.dir/ddl_parser.cc.o" "gcc" "src/schema/CMakeFiles/colscope_schema.dir/ddl_parser.cc.o.d"
  "/root/repo/src/schema/ddl_writer.cc" "src/schema/CMakeFiles/colscope_schema.dir/ddl_writer.cc.o" "gcc" "src/schema/CMakeFiles/colscope_schema.dir/ddl_writer.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/schema/CMakeFiles/colscope_schema.dir/schema.cc.o" "gcc" "src/schema/CMakeFiles/colscope_schema.dir/schema.cc.o.d"
  "/root/repo/src/schema/schema_set.cc" "src/schema/CMakeFiles/colscope_schema.dir/schema_set.cc.o" "gcc" "src/schema/CMakeFiles/colscope_schema.dir/schema_set.cc.o.d"
  "/root/repo/src/schema/serialize.cc" "src/schema/CMakeFiles/colscope_schema.dir/serialize.cc.o" "gcc" "src/schema/CMakeFiles/colscope_schema.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
