file(REMOVE_RECURSE
  "CMakeFiles/colscope_exchange.dir/exchange.cc.o"
  "CMakeFiles/colscope_exchange.dir/exchange.cc.o.d"
  "CMakeFiles/colscope_exchange.dir/transport.cc.o"
  "CMakeFiles/colscope_exchange.dir/transport.cc.o.d"
  "libcolscope_exchange.a"
  "libcolscope_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
