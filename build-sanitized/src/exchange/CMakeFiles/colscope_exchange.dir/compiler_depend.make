# Empty compiler generated dependencies file for colscope_exchange.
# This may be replaced when dependencies are built.
