file(REMOVE_RECURSE
  "libcolscope_exchange.a"
)
