# Empty dependencies file for colscope_text.
# This may be replaced when dependencies are built.
