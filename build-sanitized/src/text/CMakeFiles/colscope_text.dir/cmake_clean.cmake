file(REMOVE_RECURSE
  "CMakeFiles/colscope_text.dir/hashing.cc.o"
  "CMakeFiles/colscope_text.dir/hashing.cc.o.d"
  "CMakeFiles/colscope_text.dir/lexicon.cc.o"
  "CMakeFiles/colscope_text.dir/lexicon.cc.o.d"
  "CMakeFiles/colscope_text.dir/string_similarity.cc.o"
  "CMakeFiles/colscope_text.dir/string_similarity.cc.o.d"
  "CMakeFiles/colscope_text.dir/tokenize.cc.o"
  "CMakeFiles/colscope_text.dir/tokenize.cc.o.d"
  "libcolscope_text.a"
  "libcolscope_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
