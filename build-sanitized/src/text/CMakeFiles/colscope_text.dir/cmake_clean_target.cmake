file(REMOVE_RECURSE
  "libcolscope_text.a"
)
