
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/hashing.cc" "src/text/CMakeFiles/colscope_text.dir/hashing.cc.o" "gcc" "src/text/CMakeFiles/colscope_text.dir/hashing.cc.o.d"
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/colscope_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/colscope_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/string_similarity.cc" "src/text/CMakeFiles/colscope_text.dir/string_similarity.cc.o" "gcc" "src/text/CMakeFiles/colscope_text.dir/string_similarity.cc.o.d"
  "/root/repo/src/text/tokenize.cc" "src/text/CMakeFiles/colscope_text.dir/tokenize.cc.o" "gcc" "src/text/CMakeFiles/colscope_text.dir/tokenize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
