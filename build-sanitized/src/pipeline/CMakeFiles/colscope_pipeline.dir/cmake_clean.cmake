file(REMOVE_RECURSE
  "CMakeFiles/colscope_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/colscope_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/colscope_pipeline.dir/report.cc.o"
  "CMakeFiles/colscope_pipeline.dir/report.cc.o.d"
  "libcolscope_pipeline.a"
  "libcolscope_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
