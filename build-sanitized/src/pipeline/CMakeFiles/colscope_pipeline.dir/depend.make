# Empty dependencies file for colscope_pipeline.
# This may be replaced when dependencies are built.
