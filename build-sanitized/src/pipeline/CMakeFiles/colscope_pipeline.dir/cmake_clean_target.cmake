file(REMOVE_RECURSE
  "libcolscope_pipeline.a"
)
