file(REMOVE_RECURSE
  "libcolscope_outlier.a"
)
