
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/outlier/autoencoder.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/autoencoder.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/autoencoder.cc.o.d"
  "/root/repo/src/outlier/isolation_forest.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/isolation_forest.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/isolation_forest.cc.o.d"
  "/root/repo/src/outlier/knn.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/knn.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/knn.cc.o.d"
  "/root/repo/src/outlier/lof.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/lof.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/lof.cc.o.d"
  "/root/repo/src/outlier/pca_oda.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/pca_oda.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/pca_oda.cc.o.d"
  "/root/repo/src/outlier/zscore.cc" "src/outlier/CMakeFiles/colscope_outlier.dir/zscore.cc.o" "gcc" "src/outlier/CMakeFiles/colscope_outlier.dir/zscore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/linalg/CMakeFiles/colscope_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/nn/CMakeFiles/colscope_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
