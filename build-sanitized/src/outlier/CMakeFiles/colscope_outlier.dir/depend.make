# Empty dependencies file for colscope_outlier.
# This may be replaced when dependencies are built.
