file(REMOVE_RECURSE
  "CMakeFiles/colscope_outlier.dir/autoencoder.cc.o"
  "CMakeFiles/colscope_outlier.dir/autoencoder.cc.o.d"
  "CMakeFiles/colscope_outlier.dir/isolation_forest.cc.o"
  "CMakeFiles/colscope_outlier.dir/isolation_forest.cc.o.d"
  "CMakeFiles/colscope_outlier.dir/knn.cc.o"
  "CMakeFiles/colscope_outlier.dir/knn.cc.o.d"
  "CMakeFiles/colscope_outlier.dir/lof.cc.o"
  "CMakeFiles/colscope_outlier.dir/lof.cc.o.d"
  "CMakeFiles/colscope_outlier.dir/pca_oda.cc.o"
  "CMakeFiles/colscope_outlier.dir/pca_oda.cc.o.d"
  "CMakeFiles/colscope_outlier.dir/zscore.cc.o"
  "CMakeFiles/colscope_outlier.dir/zscore.cc.o.d"
  "libcolscope_outlier.a"
  "libcolscope_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
