# Empty dependencies file for colscope_nn.
# This may be replaced when dependencies are built.
