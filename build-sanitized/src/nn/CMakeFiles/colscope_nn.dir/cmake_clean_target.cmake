file(REMOVE_RECURSE
  "libcolscope_nn.a"
)
