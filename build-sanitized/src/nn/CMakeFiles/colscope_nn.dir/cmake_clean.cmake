file(REMOVE_RECURSE
  "CMakeFiles/colscope_nn.dir/network.cc.o"
  "CMakeFiles/colscope_nn.dir/network.cc.o.d"
  "libcolscope_nn.a"
  "libcolscope_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
