# CMake generated Testfile for 
# Source directory: /root/repo/src/scoping
# Build directory: /root/repo/build-sanitized/src/scoping
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
