# Empty dependencies file for colscope_scoping.
# This may be replaced when dependencies are built.
