
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scoping/calibration.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/calibration.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/calibration.cc.o.d"
  "/root/repo/src/scoping/collaborative.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/collaborative.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/collaborative.cc.o.d"
  "/root/repo/src/scoping/ensemble.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/ensemble.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/ensemble.cc.o.d"
  "/root/repo/src/scoping/explain.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/explain.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/explain.cc.o.d"
  "/root/repo/src/scoping/model_io.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/model_io.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/model_io.cc.o.d"
  "/root/repo/src/scoping/neural_collaborative.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/neural_collaborative.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/neural_collaborative.cc.o.d"
  "/root/repo/src/scoping/scoping.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/scoping.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/scoping.cc.o.d"
  "/root/repo/src/scoping/signatures.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/signatures.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/signatures.cc.o.d"
  "/root/repo/src/scoping/streamline.cc" "src/scoping/CMakeFiles/colscope_scoping.dir/streamline.cc.o" "gcc" "src/scoping/CMakeFiles/colscope_scoping.dir/streamline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/embed/CMakeFiles/colscope_embed.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/schema/CMakeFiles/colscope_schema.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/outlier/CMakeFiles/colscope_outlier.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/nn/CMakeFiles/colscope_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/linalg/CMakeFiles/colscope_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/text/CMakeFiles/colscope_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
