file(REMOVE_RECURSE
  "CMakeFiles/colscope_scoping.dir/calibration.cc.o"
  "CMakeFiles/colscope_scoping.dir/calibration.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/collaborative.cc.o"
  "CMakeFiles/colscope_scoping.dir/collaborative.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/ensemble.cc.o"
  "CMakeFiles/colscope_scoping.dir/ensemble.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/explain.cc.o"
  "CMakeFiles/colscope_scoping.dir/explain.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/model_io.cc.o"
  "CMakeFiles/colscope_scoping.dir/model_io.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/neural_collaborative.cc.o"
  "CMakeFiles/colscope_scoping.dir/neural_collaborative.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/scoping.cc.o"
  "CMakeFiles/colscope_scoping.dir/scoping.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/signatures.cc.o"
  "CMakeFiles/colscope_scoping.dir/signatures.cc.o.d"
  "CMakeFiles/colscope_scoping.dir/streamline.cc.o"
  "CMakeFiles/colscope_scoping.dir/streamline.cc.o.d"
  "libcolscope_scoping.a"
  "libcolscope_scoping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_scoping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
