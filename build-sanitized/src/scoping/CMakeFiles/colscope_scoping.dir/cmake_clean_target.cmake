file(REMOVE_RECURSE
  "libcolscope_scoping.a"
)
