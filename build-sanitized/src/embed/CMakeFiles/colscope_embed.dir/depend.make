# Empty dependencies file for colscope_embed.
# This may be replaced when dependencies are built.
