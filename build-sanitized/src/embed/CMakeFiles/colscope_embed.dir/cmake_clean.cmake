file(REMOVE_RECURSE
  "CMakeFiles/colscope_embed.dir/encoder.cc.o"
  "CMakeFiles/colscope_embed.dir/encoder.cc.o.d"
  "CMakeFiles/colscope_embed.dir/hashed_encoder.cc.o"
  "CMakeFiles/colscope_embed.dir/hashed_encoder.cc.o.d"
  "libcolscope_embed.a"
  "libcolscope_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
