file(REMOVE_RECURSE
  "libcolscope_embed.a"
)
