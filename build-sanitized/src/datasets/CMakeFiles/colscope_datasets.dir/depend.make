# Empty dependencies file for colscope_datasets.
# This may be replaced when dependencies are built.
