file(REMOVE_RECURSE
  "CMakeFiles/colscope_datasets.dir/csv_loader.cc.o"
  "CMakeFiles/colscope_datasets.dir/csv_loader.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/fabricator.cc.o"
  "CMakeFiles/colscope_datasets.dir/fabricator.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/instances.cc.o"
  "CMakeFiles/colscope_datasets.dir/instances.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/linkage.cc.o"
  "CMakeFiles/colscope_datasets.dir/linkage.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/oc3.cc.o"
  "CMakeFiles/colscope_datasets.dir/oc3.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/oc3_ddl.cc.o"
  "CMakeFiles/colscope_datasets.dir/oc3_ddl.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/sales3.cc.o"
  "CMakeFiles/colscope_datasets.dir/sales3.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/sales3_ddl.cc.o"
  "CMakeFiles/colscope_datasets.dir/sales3_ddl.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/synthetic.cc.o"
  "CMakeFiles/colscope_datasets.dir/synthetic.cc.o.d"
  "CMakeFiles/colscope_datasets.dir/toy.cc.o"
  "CMakeFiles/colscope_datasets.dir/toy.cc.o.d"
  "libcolscope_datasets.a"
  "libcolscope_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
