file(REMOVE_RECURSE
  "libcolscope_datasets.a"
)
