
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/csv_loader.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/csv_loader.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/csv_loader.cc.o.d"
  "/root/repo/src/datasets/fabricator.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/fabricator.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/fabricator.cc.o.d"
  "/root/repo/src/datasets/instances.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/instances.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/instances.cc.o.d"
  "/root/repo/src/datasets/linkage.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/linkage.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/linkage.cc.o.d"
  "/root/repo/src/datasets/oc3.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/oc3.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/oc3.cc.o.d"
  "/root/repo/src/datasets/oc3_ddl.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/oc3_ddl.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/oc3_ddl.cc.o.d"
  "/root/repo/src/datasets/sales3.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/sales3.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/sales3.cc.o.d"
  "/root/repo/src/datasets/sales3_ddl.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/sales3_ddl.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/sales3_ddl.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/synthetic.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/synthetic.cc.o.d"
  "/root/repo/src/datasets/toy.cc" "src/datasets/CMakeFiles/colscope_datasets.dir/toy.cc.o" "gcc" "src/datasets/CMakeFiles/colscope_datasets.dir/toy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/schema/CMakeFiles/colscope_schema.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/text/CMakeFiles/colscope_text.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
