file(REMOVE_RECURSE
  "CMakeFiles/colscope_cli.dir/colscope_cli.cc.o"
  "CMakeFiles/colscope_cli.dir/colscope_cli.cc.o.d"
  "colscope"
  "colscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
