# Empty compiler generated dependencies file for colscope_cli.
# This may be replaced when dependencies are built.
