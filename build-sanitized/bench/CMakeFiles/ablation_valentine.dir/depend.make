# Empty dependencies file for ablation_valentine.
# This may be replaced when dependencies are built.
