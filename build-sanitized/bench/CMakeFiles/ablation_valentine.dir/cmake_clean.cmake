file(REMOVE_RECURSE
  "CMakeFiles/ablation_valentine.dir/ablation_valentine.cc.o"
  "CMakeFiles/ablation_valentine.dir/ablation_valentine.cc.o.d"
  "ablation_valentine"
  "ablation_valentine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_valentine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
