file(REMOVE_RECURSE
  "CMakeFiles/table4_scoping_auc.dir/table4_scoping_auc.cc.o"
  "CMakeFiles/table4_scoping_auc.dir/table4_scoping_auc.cc.o.d"
  "table4_scoping_auc"
  "table4_scoping_auc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_scoping_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
