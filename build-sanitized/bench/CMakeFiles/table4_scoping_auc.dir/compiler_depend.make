# Empty compiler generated dependencies file for table4_scoping_auc.
# This may be replaced when dependencies are built.
