# Empty compiler generated dependencies file for fig6_oc3fo_curves.
# This may be replaced when dependencies are built.
