file(REMOVE_RECURSE
  "CMakeFiles/fig6_oc3fo_curves.dir/fig6_oc3fo_curves.cc.o"
  "CMakeFiles/fig6_oc3fo_curves.dir/fig6_oc3fo_curves.cc.o.d"
  "fig6_oc3fo_curves"
  "fig6_oc3fo_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_oc3fo_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
