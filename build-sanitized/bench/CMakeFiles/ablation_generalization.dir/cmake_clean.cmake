file(REMOVE_RECURSE
  "CMakeFiles/ablation_generalization.dir/ablation_generalization.cc.o"
  "CMakeFiles/ablation_generalization.dir/ablation_generalization.cc.o.d"
  "ablation_generalization"
  "ablation_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
