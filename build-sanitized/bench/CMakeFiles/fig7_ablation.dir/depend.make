# Empty dependencies file for fig7_ablation.
# This may be replaced when dependencies are built.
