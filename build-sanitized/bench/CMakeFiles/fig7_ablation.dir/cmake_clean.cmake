file(REMOVE_RECURSE
  "CMakeFiles/fig7_ablation.dir/fig7_ablation.cc.o"
  "CMakeFiles/fig7_ablation.dir/fig7_ablation.cc.o.d"
  "fig7_ablation"
  "fig7_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
