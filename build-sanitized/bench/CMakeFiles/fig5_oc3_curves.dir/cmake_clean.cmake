file(REMOVE_RECURSE
  "CMakeFiles/fig5_oc3_curves.dir/fig5_oc3_curves.cc.o"
  "CMakeFiles/fig5_oc3_curves.dir/fig5_oc3_curves.cc.o.d"
  "fig5_oc3_curves"
  "fig5_oc3_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_oc3_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
