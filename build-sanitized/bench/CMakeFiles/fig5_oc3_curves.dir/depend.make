# Empty dependencies file for fig5_oc3_curves.
# This may be replaced when dependencies are built.
