file(REMOVE_RECURSE
  "CMakeFiles/ablation_instances.dir/ablation_instances.cc.o"
  "CMakeFiles/ablation_instances.dir/ablation_instances.cc.o.d"
  "ablation_instances"
  "ablation_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
