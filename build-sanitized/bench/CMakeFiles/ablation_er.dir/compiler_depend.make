# Empty compiler generated dependencies file for ablation_er.
# This may be replaced when dependencies are built.
