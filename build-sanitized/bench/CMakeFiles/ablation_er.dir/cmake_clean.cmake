file(REMOVE_RECURSE
  "CMakeFiles/ablation_er.dir/ablation_er.cc.o"
  "CMakeFiles/ablation_er.dir/ablation_er.cc.o.d"
  "ablation_er"
  "ablation_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
