file(REMOVE_RECURSE
  "CMakeFiles/discussion_tradeoff.dir/discussion_tradeoff.cc.o"
  "CMakeFiles/discussion_tradeoff.dir/discussion_tradeoff.cc.o.d"
  "discussion_tradeoff"
  "discussion_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
