# Empty dependencies file for discussion_tradeoff.
# This may be replaced when dependencies are built.
