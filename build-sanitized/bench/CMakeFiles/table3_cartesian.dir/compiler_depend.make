# Empty compiler generated dependencies file for table3_cartesian.
# This may be replaced when dependencies are built.
