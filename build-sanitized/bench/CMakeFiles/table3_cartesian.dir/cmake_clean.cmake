file(REMOVE_RECURSE
  "CMakeFiles/table3_cartesian.dir/table3_cartesian.cc.o"
  "CMakeFiles/table3_cartesian.dir/table3_cartesian.cc.o.d"
  "table3_cartesian"
  "table3_cartesian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cartesian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
