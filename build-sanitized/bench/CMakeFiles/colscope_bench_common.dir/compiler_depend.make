# Empty compiler generated dependencies file for colscope_bench_common.
# This may be replaced when dependencies are built.
