file(REMOVE_RECURSE
  "libcolscope_bench_common.a"
)
