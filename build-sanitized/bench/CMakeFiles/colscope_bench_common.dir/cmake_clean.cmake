file(REMOVE_RECURSE
  "CMakeFiles/colscope_bench_common.dir/curve_common.cc.o"
  "CMakeFiles/colscope_bench_common.dir/curve_common.cc.o.d"
  "libcolscope_bench_common.a"
  "libcolscope_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colscope_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
