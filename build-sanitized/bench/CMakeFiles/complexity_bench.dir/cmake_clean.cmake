file(REMOVE_RECURSE
  "CMakeFiles/complexity_bench.dir/complexity_bench.cc.o"
  "CMakeFiles/complexity_bench.dir/complexity_bench.cc.o.d"
  "complexity_bench"
  "complexity_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
