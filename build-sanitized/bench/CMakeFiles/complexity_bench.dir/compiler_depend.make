# Empty compiler generated dependencies file for complexity_bench.
# This may be replaced when dependencies are built.
