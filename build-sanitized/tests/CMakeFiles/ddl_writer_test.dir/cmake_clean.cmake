file(REMOVE_RECURSE
  "CMakeFiles/ddl_writer_test.dir/ddl_writer_test.cc.o"
  "CMakeFiles/ddl_writer_test.dir/ddl_writer_test.cc.o.d"
  "ddl_writer_test"
  "ddl_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
