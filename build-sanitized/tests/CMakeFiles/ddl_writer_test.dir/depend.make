# Empty dependencies file for ddl_writer_test.
# This may be replaced when dependencies are built.
