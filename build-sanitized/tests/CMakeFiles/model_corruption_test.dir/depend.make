# Empty dependencies file for model_corruption_test.
# This may be replaced when dependencies are built.
