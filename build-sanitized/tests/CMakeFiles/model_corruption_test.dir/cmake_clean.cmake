file(REMOVE_RECURSE
  "CMakeFiles/model_corruption_test.dir/model_corruption_test.cc.o"
  "CMakeFiles/model_corruption_test.dir/model_corruption_test.cc.o.d"
  "model_corruption_test"
  "model_corruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
