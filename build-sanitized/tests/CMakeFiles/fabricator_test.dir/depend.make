# Empty dependencies file for fabricator_test.
# This may be replaced when dependencies are built.
