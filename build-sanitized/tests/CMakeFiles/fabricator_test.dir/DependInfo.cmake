
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fabricator_test.cc" "tests/CMakeFiles/fabricator_test.dir/fabricator_test.cc.o" "gcc" "tests/CMakeFiles/fabricator_test.dir/fabricator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitized/src/datasets/CMakeFiles/colscope_datasets.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/matching/CMakeFiles/colscope_matching.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/eval/CMakeFiles/colscope_eval.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/embed/CMakeFiles/colscope_embed.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/scoping/CMakeFiles/colscope_scoping.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/text/CMakeFiles/colscope_text.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/schema/CMakeFiles/colscope_schema.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/outlier/CMakeFiles/colscope_outlier.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/nn/CMakeFiles/colscope_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/linalg/CMakeFiles/colscope_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitized/src/common/CMakeFiles/colscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
