file(REMOVE_RECURSE
  "CMakeFiles/fabricator_test.dir/fabricator_test.cc.o"
  "CMakeFiles/fabricator_test.dir/fabricator_test.cc.o.d"
  "fabricator_test"
  "fabricator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabricator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
