file(REMOVE_RECURSE
  "CMakeFiles/active_learning_test.dir/active_learning_test.cc.o"
  "CMakeFiles/active_learning_test.dir/active_learning_test.cc.o.d"
  "active_learning_test"
  "active_learning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
