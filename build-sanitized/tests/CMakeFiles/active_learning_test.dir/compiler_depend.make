# Empty compiler generated dependencies file for active_learning_test.
# This may be replaced when dependencies are built.
