# Empty compiler generated dependencies file for sales3_test.
# This may be replaced when dependencies are built.
