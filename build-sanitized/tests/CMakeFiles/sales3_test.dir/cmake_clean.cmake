file(REMOVE_RECURSE
  "CMakeFiles/sales3_test.dir/sales3_test.cc.o"
  "CMakeFiles/sales3_test.dir/sales3_test.cc.o.d"
  "sales3_test"
  "sales3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
