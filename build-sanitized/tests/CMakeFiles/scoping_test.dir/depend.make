# Empty dependencies file for scoping_test.
# This may be replaced when dependencies are built.
