file(REMOVE_RECURSE
  "CMakeFiles/scoping_test.dir/scoping_test.cc.o"
  "CMakeFiles/scoping_test.dir/scoping_test.cc.o.d"
  "scoping_test"
  "scoping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
