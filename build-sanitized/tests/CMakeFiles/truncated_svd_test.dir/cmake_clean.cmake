file(REMOVE_RECURSE
  "CMakeFiles/truncated_svd_test.dir/truncated_svd_test.cc.o"
  "CMakeFiles/truncated_svd_test.dir/truncated_svd_test.cc.o.d"
  "truncated_svd_test"
  "truncated_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truncated_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
