# Empty compiler generated dependencies file for truncated_svd_test.
# This may be replaced when dependencies are built.
