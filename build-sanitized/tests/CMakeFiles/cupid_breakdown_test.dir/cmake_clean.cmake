file(REMOVE_RECURSE
  "CMakeFiles/cupid_breakdown_test.dir/cupid_breakdown_test.cc.o"
  "CMakeFiles/cupid_breakdown_test.dir/cupid_breakdown_test.cc.o.d"
  "cupid_breakdown_test"
  "cupid_breakdown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupid_breakdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
