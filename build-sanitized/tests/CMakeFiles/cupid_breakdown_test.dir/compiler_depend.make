# Empty compiler generated dependencies file for cupid_breakdown_test.
# This may be replaced when dependencies are built.
