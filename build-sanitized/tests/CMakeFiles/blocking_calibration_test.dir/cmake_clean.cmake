file(REMOVE_RECURSE
  "CMakeFiles/blocking_calibration_test.dir/blocking_calibration_test.cc.o"
  "CMakeFiles/blocking_calibration_test.dir/blocking_calibration_test.cc.o.d"
  "blocking_calibration_test"
  "blocking_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
