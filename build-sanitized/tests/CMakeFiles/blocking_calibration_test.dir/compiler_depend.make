# Empty compiler generated dependencies file for blocking_calibration_test.
# This may be replaced when dependencies are built.
