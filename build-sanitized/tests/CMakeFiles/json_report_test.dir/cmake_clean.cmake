file(REMOVE_RECURSE
  "CMakeFiles/json_report_test.dir/json_report_test.cc.o"
  "CMakeFiles/json_report_test.dir/json_report_test.cc.o.d"
  "json_report_test"
  "json_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
