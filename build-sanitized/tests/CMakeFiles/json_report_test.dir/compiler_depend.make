# Empty compiler generated dependencies file for json_report_test.
# This may be replaced when dependencies are built.
