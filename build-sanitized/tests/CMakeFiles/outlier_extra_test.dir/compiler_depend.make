# Empty compiler generated dependencies file for outlier_extra_test.
# This may be replaced when dependencies are built.
