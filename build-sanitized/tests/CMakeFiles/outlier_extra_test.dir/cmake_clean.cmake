file(REMOVE_RECURSE
  "CMakeFiles/outlier_extra_test.dir/outlier_extra_test.cc.o"
  "CMakeFiles/outlier_extra_test.dir/outlier_extra_test.cc.o.d"
  "outlier_extra_test"
  "outlier_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
