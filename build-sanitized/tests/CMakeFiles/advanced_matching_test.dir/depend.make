# Empty dependencies file for advanced_matching_test.
# This may be replaced when dependencies are built.
