file(REMOVE_RECURSE
  "CMakeFiles/advanced_matching_test.dir/advanced_matching_test.cc.o"
  "CMakeFiles/advanced_matching_test.dir/advanced_matching_test.cc.o.d"
  "advanced_matching_test"
  "advanced_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
