file(REMOVE_RECURSE
  "CMakeFiles/instance_serialization_test.dir/instance_serialization_test.cc.o"
  "CMakeFiles/instance_serialization_test.dir/instance_serialization_test.cc.o.d"
  "instance_serialization_test"
  "instance_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
