# Empty dependencies file for instance_serialization_test.
# This may be replaced when dependencies are built.
