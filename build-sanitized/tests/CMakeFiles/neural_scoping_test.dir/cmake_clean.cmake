file(REMOVE_RECURSE
  "CMakeFiles/neural_scoping_test.dir/neural_scoping_test.cc.o"
  "CMakeFiles/neural_scoping_test.dir/neural_scoping_test.cc.o.d"
  "neural_scoping_test"
  "neural_scoping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_scoping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
