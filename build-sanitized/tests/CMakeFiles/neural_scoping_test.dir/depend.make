# Empty dependencies file for neural_scoping_test.
# This may be replaced when dependencies are built.
