file(REMOVE_RECURSE
  "CMakeFiles/instances_test.dir/instances_test.cc.o"
  "CMakeFiles/instances_test.dir/instances_test.cc.o.d"
  "instances_test"
  "instances_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
