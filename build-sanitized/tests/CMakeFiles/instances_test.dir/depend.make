# Empty dependencies file for instances_test.
# This may be replaced when dependencies are built.
