# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for instances_test.
