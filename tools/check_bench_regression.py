#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Only *dimensionless* cells are gated, so the check is portable across
machines of different absolute speed:

  * cells ending in ``_speedup`` — a kernel's measured advantage over its
    reference implementation. The current run must retain at least
    ``(1 - tolerance)`` of the baseline ratio (improvements always pass).
  * cells named ``ok`` or ending in ``_ok`` — invariant flags
    (bit-identity, error bounds, recall floors). These must be exactly 1
    on every machine.

Rows may carry a ``simd_active`` cell recording whether runtime dispatch
selected a SIMD kernel table. When the baseline was recorded with
``simd_active`` = 1 but the current machine fell back to scalar (= 0),
that row's ``*_speedup`` cells are skipped — the ratio measures the SIMD
advantage, which a scalar-only host cannot reproduce. The ``*_ok``
invariants are still enforced there.

Absolute wall-ms / throughput / max-ulp cells are informational and
never gated.

Exit status: 0 when every gated cell passes, 1 otherwise (including a
missing row or cell, which usually means the bench and baseline drifted
apart — regenerate with tools/run_benches.sh).
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns {(table, label): {cell: value}} for one BENCH json."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[(row["table"], row["label"])] = row["cells"]
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drop in speedup ratios "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    failures = []
    checked = 0
    for key, base_cells in sorted(baseline.items()):
        table, label = key
        cur_cells = current.get(key)
        if cur_cells is None:
            failures.append(f"{table}/{label}: row missing from current run")
            continue
        simd_skipped = (base_cells.get("simd_active") == 1
                        and cur_cells.get("simd_active") == 0)
        for cell, base_value in base_cells.items():
            is_ok = cell == "ok" or cell.endswith("_ok")
            gated = cell.endswith("_speedup") or is_ok
            if not gated:
                continue
            if cell not in cur_cells:
                failures.append(f"{table}/{label}: cell '{cell}' missing")
                continue
            cur_value = cur_cells[cell]
            if cell.endswith("_speedup") and simd_skipped:
                print(f"{table}/{label} {cell}: skipped (baseline had SIMD "
                      f"dispatch active, this host fell back to scalar)")
                continue
            checked += 1
            if is_ok:
                if cur_value != 1:
                    failures.append(
                        f"{table}/{label}: invariant cell '{cell}' no "
                        f"longer holds ({cell}={cur_value})")
                continue
            floor = base_value * (1.0 - args.tolerance)
            status = "ok" if cur_value >= floor else "REGRESSED"
            print(f"{table}/{label} {cell}: baseline {base_value:.2f}x, "
                  f"current {cur_value:.2f}x, floor {floor:.2f}x -> {status}")
            if cur_value < floor:
                failures.append(
                    f"{table}/{label}: {cell} fell to {cur_value:.2f}x "
                    f"(baseline {base_value:.2f}x, floor {floor:.2f}x)")

    if checked == 0:
        failures.append("no gated cells found — baseline file is empty or "
                        "has no *_speedup / ok cells")
    if failures:
        print(f"\n{len(failures)} regression check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"all {checked} gated cells within tolerance "
          f"({args.tolerance:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
