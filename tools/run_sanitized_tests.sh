#!/bin/sh
# Builds the robustness-focused tests under three sanitizer configs and
# runs them:
#   1. ASan + UBSan over the deserialization/exchange robustness tests
#      (memory safety of the untrusted-input paths) plus the SIMD/int8
#      kernel equivalence battery (unaligned loads, padded quantized
#      stores — exactly what ASan is for);
#   2. TSan over the concurrency-facing tests (thread pool, metrics
#      registry, cancellation tokens) — races, not leaks.
# Usage: run_sanitized_tests.sh [BUILD_DIR_PREFIX]
#   (default: <repo>/build-sanitized; TSan uses <prefix>-tsan)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-sanitized}"

asan_tests='exchange_test|model_corruption_test|model_io_test|robustness_test|simd_kernels_test'
tsan_tests='thread_pool_test|obs_test|cancellation_test|parallel_paths_test'

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j \
  --target exchange_test model_corruption_test model_io_test robustness_test \
  simd_kernels_test
(cd "$build" && ctest --output-on-failure -R "^($asan_tests)\$")

cmake -B "$build-tsan" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_TSAN=ON
cmake --build "$build-tsan" -j \
  --target thread_pool_test obs_test cancellation_test parallel_paths_test
(cd "$build-tsan" && ctest --output-on-failure -R "^($tsan_tests)\$")
