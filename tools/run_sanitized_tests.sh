#!/bin/sh
# Builds the robustness-focused tests under ASan and UBSan and runs them.
# Usage: run_sanitized_tests.sh [BUILD_DIR]   (default: <repo>/build-sanitized)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-sanitized}"
tests='exchange_test|model_corruption_test|model_io_test|robustness_test'

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j \
  --target exchange_test model_corruption_test model_io_test robustness_test
cd "$build"
ctest --output-on-failure -R "^($tests)\$"
