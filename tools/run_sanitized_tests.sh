#!/bin/sh
# Builds the robustness-focused tests under three sanitizer configs and
# runs them:
#   1. ASan + UBSan over the deserialization/exchange robustness tests
#      (memory safety of the untrusted-input paths) plus the SIMD/int8
#      kernel equivalence battery (unaligned loads, padded quantized
#      stores — exactly what ASan is for);
#   2. TSan over the concurrency-facing tests (thread pool, metrics
#      registry, cancellation tokens) — races, not leaks.
# Usage: run_sanitized_tests.sh [BUILD_DIR_PREFIX]
#   (default: <repo>/build-sanitized; TSan uses <prefix>-tsan)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-sanitized}"

asan_tests='exchange_test|model_corruption_test|model_io_test|robustness_test|simd_kernels_test'
tsan_tests='thread_pool_test|obs_test|cancellation_test|parallel_paths_test'

# Compile through ccache when it is installed (the CI jobs restore a
# per-job cache); plain compilation otherwise.
launcher_flags=""
if command -v ccache > /dev/null 2>&1; then
  launcher_flags="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

# shellcheck disable=SC2086  # launcher_flags is two separate cmake args
cmake -B "$build" -S "$root" $launcher_flags \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j \
  --target exchange_test model_corruption_test model_io_test robustness_test \
  simd_kernels_test
(cd "$build" && ctest --output-on-failure -R "^($asan_tests)\$")

# shellcheck disable=SC2086
cmake -B "$build-tsan" -S "$root" $launcher_flags \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_TSAN=ON
cmake --build "$build-tsan" -j \
  --target thread_pool_test obs_test cancellation_test parallel_paths_test
(cd "$build-tsan" && ctest --output-on-failure -R "^($tsan_tests)\$")
