-- test schema: ERP
CREATE TABLE customers (
  customer_id INT PRIMARY KEY,
  customer_name VARCHAR(40),
  town VARCHAR(40),
  loyalty_tier INT
);
