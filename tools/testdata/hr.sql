-- test schema: HR
CREATE TABLE employees (
  employee_id INT PRIMARY KEY,
  full_name VARCHAR(40),
  city VARCHAR(40),
  badge_color VARCHAR(10)
);
