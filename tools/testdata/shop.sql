-- test schema: SHOP
CREATE TABLE shoppers (
  shopper_id INT PRIMARY KEY,
  shopper_name VARCHAR(40),
  home_town VARCHAR(40),
  cart_theme VARCHAR(10)
);
