-- test schema: CRM
CREATE TABLE clients (
  client_id INT PRIMARY KEY,
  name VARCHAR(40),
  city VARCHAR(40),
  fax VARCHAR(20)
);
