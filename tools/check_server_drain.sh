#!/bin/sh
# Resident-server lifecycle check for colscoped.
#
# Usage: check_server_drain.sh CLI_BINARY TESTDATA_DIR SCRATCH_DIR
#
# Four phases:
#   1. Warm byte-identity: a daemon with a resident artifact cache must
#      answer `match --json` requests byte-identical to the cold CLI —
#      on the first (cold-cache) request and on the warm repeat.
#   2. Crash recovery: kill -9 the daemon, restart it over the same
#      cache directory; the warm answer must still be byte-identical.
#      A programmatic `shutdown` RPC must then drain it to exit 0.
#   3. Overload shedding: a daemon sized to one slot and a one-deep
#      queue, slowed by --serve-delay-ms, must shed concurrent excess
#      requests with typed kOverloaded (client exit 3) while the
#      admitted requests still produce byte-identical reports.
#   4. Graceful drain: SIGTERM lands while requests are in flight; the
#      in-flight and queued work completes, new connections are
#      refused, the daemon exits 0, and the flushed metrics report
#      server.requests_shed > 0 and server.requests_completed > 0.
set -eu

cli=$1
testdata=$2
scratch=$3

rm -rf "$scratch"
mkdir -p "$scratch"

ddls="--ddl $testdata/crm.sql --ddl $testdata/erp.sql"

server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2> /dev/null || true
}
trap cleanup EXIT INT TERM

# Ephemeral ports: the daemon binds port 0 and writes the kernel's pick
# atomically (tmp + rename), so polling never reads a torn value.
wait_port() {
  tries=0
  while [ ! -s "$1" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "FAIL: daemon never wrote $1" >&2
      exit 1
    fi
    sleep 0.1
  done
  cat "$1"
}

# ---- Phase 1: warm byte-identity ------------------------------------

# shellcheck disable=SC2086
"$cli" match $ddls --v 0.6 --json > "$scratch/cold.json"

# shellcheck disable=SC2086
"$cli" serve --listen 127.0.0.1:0 --port-file "$scratch/a.port" \
  --cache-dir "$scratch/cache" --log-level error \
  --metrics-out "$scratch/a.metrics.json" 2> /dev/null &
server_pid=$!
port=$(wait_port "$scratch/a.port")

# shellcheck disable=SC2086
"$cli" match $ddls --v 0.6 --json --connect "127.0.0.1:$port" \
  > "$scratch/warm1.json"
cmp "$scratch/cold.json" "$scratch/warm1.json" || {
  echo "FAIL: first server answer differs from the cold CLI run" >&2
  exit 1
}
# shellcheck disable=SC2086
"$cli" match $ddls --v 0.6 --json --connect "127.0.0.1:$port" \
  > "$scratch/warm2.json"
cmp "$scratch/cold.json" "$scratch/warm2.json" || {
  echo "FAIL: warm-cache server answer differs from the cold CLI run" >&2
  exit 1
}

"$cli" health --connect "127.0.0.1:$port" > "$scratch/health.txt"
grep -q '^state serving$' "$scratch/health.txt" || {
  echo "FAIL: health probe did not report a serving daemon" >&2
  cat "$scratch/health.txt" >&2
  exit 1
}
grep -q '^completed 2$' "$scratch/health.txt" || {
  echo "FAIL: health probe did not count both completed requests" >&2
  cat "$scratch/health.txt" >&2
  exit 1
}

# ---- Phase 2: crash recovery over the same cache --------------------

kill -9 "$server_pid"
wait "$server_pid" 2> /dev/null || true
server_pid=""
rm -f "$scratch/a.port"

# shellcheck disable=SC2086
"$cli" serve --listen 127.0.0.1:0 --port-file "$scratch/b.port" \
  --cache-dir "$scratch/cache" --log-level error \
  --metrics-out "$scratch/b.metrics.json" 2> /dev/null &
server_pid=$!
port=$(wait_port "$scratch/b.port")

# shellcheck disable=SC2086
"$cli" match $ddls --v 0.6 --json --connect "127.0.0.1:$port" \
  > "$scratch/warm3.json"
cmp "$scratch/cold.json" "$scratch/warm3.json" || {
  echo "FAIL: post-crash restart answer differs from the cold CLI run" >&2
  exit 1
}

"$cli" shutdown --connect "127.0.0.1:$port"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] || {
  echo "FAIL: shutdown-RPC drain exited $server_rc, want 0" >&2
  exit 1
}
[ -s "$scratch/b.metrics.json" ] || {
  echo "FAIL: drained daemon did not flush its metrics snapshot" >&2
  exit 1
}

# ---- Phases 3 + 4: overload shedding, then SIGTERM mid-request ------

# One execution slot, a one-deep queue, and a 1s artificial service
# time: of four concurrent requests, the two that arrive late must be
# shed at admission; the two admitted ones ride out the drain.
# shellcheck disable=SC2086
"$cli" serve --listen 127.0.0.1:0 --port-file "$scratch/c.port" \
  --max-inflight 1 --max-queue 1 --serve-delay-ms 1000 \
  --drain-grace-ms 8000 --log-level error \
  --metrics-out "$scratch/c.metrics.json" 2> /dev/null &
server_pid=$!
port=$(wait_port "$scratch/c.port")

for i in 1 2 3 4; do
  # shellcheck disable=SC2086
  (
    rc=0
    "$cli" match $ddls --v 0.6 --json --connect "127.0.0.1:$port" \
      > "$scratch/c$i.out" 2> "$scratch/c$i.err" || rc=$?
    echo "$rc" > "$scratch/c$i.rc"
  ) &
done

# SIGTERM while request 1 sits in its execution slot and another is
# queued: the textbook mid-request drain.
sleep 0.4
kill -TERM "$server_pid"

# Once the drain began the listener is closed; a new request must be
# refused, not served.
sleep 0.3
# shellcheck disable=SC2086
if "$cli" match $ddls --v 0.6 --json --connect "127.0.0.1:$port" \
  > /dev/null 2> "$scratch/late.err"; then
  echo "FAIL: a new request was served after the drain began" >&2
  exit 1
fi

server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] || {
  echo "FAIL: SIGTERM drain under load exited $server_rc, want 0" >&2
  exit 1
}
wait || true

ok=0
shed=0
for i in 1 2 3 4; do
  [ -s "$scratch/c$i.rc" ] || {
    echo "FAIL: client $i never recorded an exit code" >&2
    exit 1
  }
  rc=$(cat "$scratch/c$i.rc")
  case "$rc" in
    0)
      cmp "$scratch/cold.json" "$scratch/c$i.out" || {
        echo "FAIL: drained in-flight answer $i differs from cold run" >&2
        exit 1
      }
      ok=$((ok + 1))
      ;;
    3)
      grep -q 'overloaded' "$scratch/c$i.err" || {
        echo "FAIL: shed client $i lacks a typed overloaded error" >&2
        cat "$scratch/c$i.err" >&2
        exit 1
      }
      shed=$((shed + 1))
      ;;
    *)
      echo "FAIL: client $i exited $rc (want 0 ok or 3 shed)" >&2
      cat "$scratch/c$i.err" >&2
      exit 1
      ;;
  esac
done
[ "$ok" -ge 1 ] || {
  echo "FAIL: no in-flight request survived the drain" >&2
  exit 1
}
[ "$shed" -ge 1 ] || {
  echo "FAIL: overload shed no request" >&2
  exit 1
}

python3 - "$scratch/c.metrics.json" << 'EOF'
import json
import sys

metrics = json.load(open(sys.argv[1]))
counters = metrics["counters"]
assert counters.get("server.requests_shed", 0) > 0, counters
assert counters.get("server.requests_completed", 0) > 0, counters
assert counters.get("server.requests_admitted", 0) >= counters[
    "server.requests_completed"], counters
assert "server.queue_depth" in metrics.get("gauges", {}), metrics.keys()
assert "server.request_ms" in metrics.get("histograms", {}), metrics.keys()
EOF

rm -rf "$scratch"
echo "resident server lifecycle OK"
