#!/bin/sh
# Shellcheck gate over the repo's shell scripts (tools/*.sh).
#
# Usage: check_shellcheck.sh REPO_ROOT
#
# Exits non-zero when shellcheck reports findings; never modifies
# anything. When shellcheck is not installed (the CI lint job has it;
# minimal local containers may not), the check is skipped with a notice
# rather than failing the build.
set -eu

root=${1:-.}

if ! command -v shellcheck > /dev/null 2>&1; then
  echo "check_shellcheck: shellcheck not found; skipping shell lint"
  exit 0
fi

bad=0
for f in "$root"/tools/*.sh; do
  if ! shellcheck "$f"; then
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_shellcheck: fix the findings above" >&2
  exit 1
fi
echo "shellcheck OK"
