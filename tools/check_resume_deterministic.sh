#!/bin/sh
# Crash/resume determinism check for the colscope CLI.
#
# Usage: check_resume_deterministic.sh CLI_BINARY TESTDATA_DIR SCRATCH_DIR
#
# 1. A gold run with no checkpointing produces reference JSON.
# 2. A checkpointed run with --crash-after local_models must exit
#    non-zero, leaving signatures + local_models checkpoints behind.
# 3. A --resume run over those checkpoints must produce JSON that is
#    byte-identical to the gold run.
# 4. After corrupting a checkpoint in place, --resume must fall back to
#    recomputation and still produce byte-identical JSON.
set -eu

cli=$1
testdata=$2
scratch=$3

rm -rf "$scratch"
mkdir -p "$scratch"
ckpt="$scratch/ckpt"

run() {
  # $1 = output file; remaining args are appended to the base command.
  out=$1
  shift
  "$cli" match \
    --ddl "$testdata/crm.sql" --ddl "$testdata/erp.sql" \
    --v 0.6 --log-level error --json "$@" > "$out"
}

run "$scratch/gold.json"

if run "$scratch/crash.json" --checkpoint-dir "$ckpt" \
    --crash-after local_models 2> /dev/null; then
  echo "FAIL: --crash-after local_models exited zero" >&2
  exit 1
fi
for f in signatures local_models; do
  if [ ! -f "$ckpt/$f.ckpt" ]; then
    echo "FAIL: expected checkpoint $f.ckpt after the crash" >&2
    exit 1
  fi
done
if [ -f "$ckpt/keep_mask.ckpt" ]; then
  echo "FAIL: keep_mask.ckpt must not exist after crashing earlier" >&2
  exit 1
fi

run "$scratch/resumed.json" --checkpoint-dir "$ckpt" --resume
cmp "$scratch/gold.json" "$scratch/resumed.json" || {
  echo "FAIL: resumed run differs from the gold run" >&2
  exit 1
}

# Flip one payload byte (the last byte of the file) in a checkpoint; the
# resume must detect the checksum mismatch, recompute, and still match.
size=$(wc -c < "$ckpt/local_models.ckpt")
head -c $((size - 2)) "$ckpt/local_models.ckpt" > "$ckpt/tmp" &&
  printf 'Z' >> "$ckpt/tmp" &&
  tail -c 1 "$ckpt/local_models.ckpt" >> "$ckpt/tmp" &&
  mv "$ckpt/tmp" "$ckpt/local_models.ckpt"

run "$scratch/recovered.json" --checkpoint-dir "$ckpt" --resume
cmp "$scratch/gold.json" "$scratch/recovered.json" || {
  echo "FAIL: run resumed over a corrupt checkpoint differs from gold" >&2
  exit 1
}

rm -rf "$scratch"
echo "resume determinism OK"
