#!/bin/sh
# Distributed quorum degradation + telemetry check for the colscope CLI.
#
# Usage: check_distributed_quorum.sh CLI_BINARY TESTDATA_DIR SCRATCH_DIR
#
# Topology: 4 schemas (crm, erp, hr, shop) sharded round-robin over 3
# worker processes — w0 owns {0, 3}, w1 owns {1}, w2 owns {2}. Worker w2
# is started with --crash-after-assign: it fits and publishes its shard,
# acks the assignment, then raise(SIGKILL)s itself — dying mid-exchange,
# after the run has committed to its ownership map but before any of its
# models can be fetched.
#
# Under --exchange-policy quorum:2 the coordinator must:
#   1. exit 0 (a lost peer degrades the run, it does not fail it),
#   2. report worker 2's schema as the lost peer in the degradation
#      block (every surviving consumer lost exactly publisher 2),
#   3. produce elements/linkages JSON blocks byte-identical to the
#      single-process in-memory run with the same peer dropped
#      (--faults drop-from=2) — the transport-independence guarantee,
#   4. with --trace-clock sim, emit one merged Chrome trace holding
#      coordinator (pid 0) and surviving-worker (pids 1, 2) spans under
#      one run trace id — and nothing from the dead worker (pid 3),
#   5. merge the survivors' harvested metrics as worker.0.* / worker.1.*
#      blocks (no worker.2.*) next to the net.rpc_ms.* histograms,
#   6. ship a flight_recorder block in the report that names worker 2 at
#      every round it missed,
#   7. reproduce 4-6 on a full re-run (fresh workers, same seed): the
#      merged trace and the flight-recorder block byte-identical, and
#      the merged metrics identical except for the counters that race
#      with the peer's death — w2's SIGKILL lands concurrently with the
#      first fetch to it, so that attempt classifies as drop (no bytes)
#      vs truncate (reset mid-payload) run to run, which also shifts
#      connect and byte tallies. Attempt/retry/fault TOTALS must still
#      agree: the race moves failures between kinds, never creates or
#      loses one.
set -eu

cli=$1
testdata=$2
scratch=$3

rm -rf "$scratch"
mkdir -p "$scratch"

ddls="--ddl $testdata/crm.sql --ddl $testdata/erp.sql \
  --ddl $testdata/hr.sql --ddl $testdata/shop.sql"

w0_pid=""
w1_pid=""
w2_pid=""
cleanup() {
  kill "$w0_pid" "$w1_pid" "$w2_pid" 2> /dev/null || true
}
trap cleanup EXIT INT TERM

# One full distributed run: 3 fresh workers (w2 crashing after assign),
# one coordinator with the simulated trace clock and telemetry outputs.
# $1 names the run ("1", "2") so artifacts land side by side.
run_once() {
  run=$1
  dir="$scratch/run$run"
  mkdir -p "$dir"

  # shellcheck disable=SC2086
  "$cli" match --role worker $ddls --listen 127.0.0.1:0 \
    --port-file "$dir/w0.port" --trace-clock sim \
    --log-level error 2> /dev/null &
  w0_pid=$!
  # shellcheck disable=SC2086
  "$cli" match --role worker $ddls --listen 127.0.0.1:0 \
    --port-file "$dir/w1.port" --trace-clock sim \
    --log-level error 2> /dev/null &
  w1_pid=$!
  # shellcheck disable=SC2086
  "$cli" match --role worker $ddls --listen 127.0.0.1:0 \
    --port-file "$dir/w2.port" --crash-after-assign --trace-clock sim \
    --log-level error 2> /dev/null &
  w2_pid=$!

  # Ephemeral ports: each worker bound port 0 and wrote the kernel's pick
  # to its port file (atomically, tmp + rename), so this poll never reads
  # a half-written value and the test never collides on a fixed port.
  for f in w0.port w1.port w2.port; do
    tries=0
    while [ ! -s "$dir/$f" ]; do
      tries=$((tries + 1))
      if [ "$tries" -gt 100 ]; then
        echo "FAIL: worker never wrote $f (run $run)" >&2
        exit 1
      fi
      sleep 0.1
    done
  done
  p0=$(cat "$dir/w0.port")
  p1=$(cat "$dir/w1.port")
  p2=$(cat "$dir/w2.port")

  # shellcheck disable=SC2086
  "$cli" match --role coordinator $ddls \
    --workers "127.0.0.1:$p0" --workers "127.0.0.1:$p1" \
    --workers "127.0.0.1:$p2" \
    --v 0.6 --exchange-policy quorum:2 --log-level error --json \
    --trace-clock sim --trace-out "$dir/trace.json" \
    --metrics-out "$dir/metrics.json" \
    > "$dir/dist.json" || {
    echo "FAIL: quorum-scoped coordinator exited non-zero (run $run)" >&2
    exit 1
  }

  # The coordinator shut the surviving workers down; the crashed one is
  # long gone. Nothing should still be running.
  for pid in "$w0_pid" "$w1_pid" "$w2_pid"; do
    tries=0
    while kill -0 "$pid" 2> /dev/null; do
      tries=$((tries + 1))
      if [ "$tries" -gt 50 ]; then
        echo "FAIL: worker $pid still alive after shutdown (run $run)" >&2
        exit 1
      fi
      sleep 0.1
    done
  done
}

run_once 1

# The in-memory twin: same schemas, same v, same policy, with every
# fetch from publisher 2 dropped — exactly what killing w2 looks like.
# shellcheck disable=SC2086
"$cli" match $ddls \
  --v 0.6 --faults drop-from=2 --exchange-policy quorum:2 \
  --log-level error --json > "$scratch/mem.json"

python3 - "$scratch/run1/dist.json" "$scratch/mem.json" "$scratch" << 'EOF'
import json
import sys

dist = json.load(open(sys.argv[1]))
mem = json.load(open(sys.argv[2]))
scratch = sys.argv[3]

assert dist["status"] == "ok", dist["status"]

# The degradation report must name the lost peer: every surviving
# consumer (0, 1, 3) lost exactly publisher 2, and consumer 2 — whose
# owner died — was re-executed at the coordinator and lost nobody.
deg = dist["degradation"]
lost = sorted((p["consumer"], p["publisher"]) for p in deg["peers_lost"])
assert lost == [(0, 2), (1, 2), (3, 2)], lost
assert deg["policy"] == "quorum", deg["policy"]
assert deg["failed_fetches"] == 3, deg["failed_fetches"]

# The run must echo the full effective exchange + transport config,
# fault seed and ownership map included.
echo = dist["exchange_config"]
assert echo["transport"] == "tcp", echo["transport"]
assert echo["quorum"] == 2, echo["quorum"]
assert "seed" in echo["faults"]
assert [o["schema"] for o in echo["owners"]] == [0, 1, 2, 3]
mem_echo = mem["exchange_config"]
assert mem_echo["transport"] == "in_memory", mem_echo["transport"]
assert mem_echo["faults"]["drop_from"] == 2

# Merged metrics: the coordinator's own instruments plus the harvested
# worker.0.* / worker.1.* blocks — and nothing from the corpse.
metrics = dist["metrics"]
counters = metrics["counters"]
assert any(n.startswith("worker.0.") for n in counters), counters.keys()
assert any(n.startswith("worker.1.") for n in counters), counters.keys()
assert not any(n.startswith("worker.2.") for n in counters), counters.keys()
histograms = metrics["histograms"]
rpc = [n for n in histograms if n.startswith("net.rpc_ms.")]
for frame_type in ("assign", "assess", "stats_request", "shutdown"):
    assert f"net.rpc_ms.{frame_type}" in rpc, rpc
assert counters.get("net.bytes_sent.assign", 0) > 0
assert counters.get("net.bytes_received.partial", 0) > 0

# Merged trace: spans from the coordinator (pid 0) and both surviving
# workers (pids 1 and 2), all sharing the run trace id; the dead worker
# (pid 3) contributes no span — holes, not errors.
trace = json.load(open(f"{scratch}/run1/trace.json"))
run_trace_id = trace["trace_id"]
assert run_trace_id != 0
events = trace["traceEvents"]
spans_by_pid = {}
names_by_pid = {}
for event in events:
    if event["ph"] == "X":
        spans_by_pid.setdefault(event["pid"], []).append(event)
    elif event["ph"] == "M" and event["name"] == "process_name":
        names_by_pid[event["pid"]] = event["args"]["name"]
assert names_by_pid[0] == "coordinator", names_by_pid
assert names_by_pid[1] == "worker.0", names_by_pid
assert names_by_pid[2] == "worker.1", names_by_pid
assert 3 not in names_by_pid and 3 not in spans_by_pid, names_by_pid
coord_names = {e["name"] for e in spans_by_pid[0]}
for want in ("coordinator.run", "rpc.assign", "rpc.assess", "rpc.stats",
             "coordinator.reexec"):
    assert want in coord_names, coord_names
for worker_pid in (1, 2):
    worker_names = {e["name"] for e in spans_by_pid[worker_pid]}
    assert "worker.assign" in worker_names, (worker_pid, worker_names)
    assert "worker.assess" in worker_names, (worker_pid, worker_names)

# Cross-process parenting: each worker.assign span names one of the
# coordinator's rpc.assign span ids as its parent.
assign_span_ids = {e["args"]["span_id"] for e in spans_by_pid[0]
                   if e["name"] == "rpc.assign"}
for worker_pid in (1, 2):
    parents = {e["args"]["parent_span_id"] for e in spans_by_pid[worker_pid]
               if e["name"] == "worker.assign"}
    assert parents and parents <= assign_span_ids, (worker_pid, parents)

# The flight recorder names the dead worker at every round it missed —
# it acked assignment, then vanished.
flight = dist["flight_recorder"]
assert flight, "flight_recorder block missing from a degraded run"
details = [e["detail"] for e in flight if e["kind"] == "rpc"]
assert "assign worker=2 ok" in details, details
assert any(d.startswith("assess worker=2 ") and not d.endswith(" ok")
           for d in details), details
assert "stats worker=2 hole" in details, details
assert "stats worker=0 ok" in details, details

# Transport independence, byte for byte: the surviving assessment set
# (elements block) and the correspondences generated from it (linkages
# block) must be identical across the two transports.
for name, run in (("dist", dist), ("mem", mem)):
    blocks = {"elements": run["elements"], "linkages": run["linkages"]}
    with open(f"{scratch}/{name}.blocks", "w") as out:
        json.dump(blocks, out, sort_keys=True)
EOF

cmp "$scratch/dist.blocks" "$scratch/mem.blocks" || {
  echo "FAIL: distributed and in-memory elements/linkages differ" >&2
  exit 1
}

# Repeat the whole distributed run — fresh worker processes, fresh
# ephemeral ports, same seed — and require the telemetry surface to
# reproduce: trace and flight-recorder byte-identical, metrics
# identical modulo the peer-death race (see header). The full reports
# are NOT compared: the exchange_config ownership map legitimately
# embeds the new ports.
run_once 2

cmp "$scratch/run1/trace.json" "$scratch/run2/trace.json" || {
  echo "FAIL: merged trace differs between identical runs" >&2
  exit 1
}
python3 - "$scratch/run1" "$scratch/run2" << 'EOF'
import json
import sys

first_dir, second_dir = sys.argv[1], sys.argv[2]

flight1 = json.load(open(f"{first_dir}/dist.json"))["flight_recorder"]
flight2 = json.load(open(f"{second_dir}/dist.json"))["flight_recorder"]
assert flight1 == flight2, "flight_recorder blocks differ between runs"

metrics1 = json.load(open(f"{first_dir}/metrics.json"))
metrics2 = json.load(open(f"{second_dir}/metrics.json"))


def racy(name):
    """Counters that race with the moment w2's SIGKILL lands: the first
    fetch to it may be refused outright or connect and reset mid-read,
    moving one failure between fault kinds and shifting connect/frame/
    byte tallies (fault-kind names also ride inside stats payloads)."""
    base = name.split(".", 2)[2] if name.startswith("worker.") else name
    return (base.startswith("exchange.faults.")
            or base.startswith("net.bytes")
            or base.startswith("net.frames_")
            or base in ("net.connects", "net.connect_failures"))


for section in ("counters", "gauges", "histograms"):
    stable1 = {k: v for k, v in metrics1.get(section, {}).items()
               if not racy(k)}
    stable2 = {k: v for k, v in metrics2.get(section, {}).items()
               if not racy(k)}
    changed = [k for k in sorted(set(stable1) | set(stable2))
               if stable1.get(k) != stable2.get(k)]
    assert not changed, f"{section} differ between identical runs: {changed}"

# The race moves failures between fault kinds; it never creates or
# loses one. Per process, the fault totals must agree exactly.
for metrics in (metrics1, metrics2):
    metrics["fault_totals"] = {}
    for name, value in metrics["counters"].items():
        if racy(name) and ".faults." in name:
            prefix = name.split("exchange.faults.")[0]
            totals = metrics["fault_totals"]
            totals[prefix] = totals.get(prefix, 0) + value
assert metrics1["fault_totals"] == metrics2["fault_totals"], (
    metrics1["fault_totals"], metrics2["fault_totals"])
EOF

rm -rf "$scratch"
echo "distributed quorum degradation + telemetry OK"
