#!/bin/sh
# Distributed quorum degradation check for the colscope CLI.
#
# Usage: check_distributed_quorum.sh CLI_BINARY TESTDATA_DIR SCRATCH_DIR
#
# Topology: 4 schemas (crm, erp, hr, shop) sharded round-robin over 3
# worker processes — w0 owns {0, 3}, w1 owns {1}, w2 owns {2}. Worker w2
# is started with --crash-after-assign: it fits and publishes its shard,
# acks the assignment, then raise(SIGKILL)s itself — dying mid-exchange,
# after the run has committed to its ownership map but before any of its
# models can be fetched.
#
# Under --exchange-policy quorum:2 the coordinator must:
#   1. exit 0 (a lost peer degrades the run, it does not fail it),
#   2. report worker 2's schema as the lost peer in the degradation
#      block (every surviving consumer lost exactly publisher 2),
#   3. produce elements/linkages JSON blocks byte-identical to the
#      single-process in-memory run with the same peer dropped
#      (--faults drop-from=2) — the transport-independence guarantee.
set -eu

cli=$1
testdata=$2
scratch=$3

rm -rf "$scratch"
mkdir -p "$scratch"

ddls="--ddl $testdata/crm.sql --ddl $testdata/erp.sql \
  --ddl $testdata/hr.sql --ddl $testdata/shop.sql"

cleanup() {
  kill "$w0_pid" "$w1_pid" "$w2_pid" 2> /dev/null || true
}
trap cleanup EXIT INT TERM

# shellcheck disable=SC2086
"$cli" match --role worker $ddls --listen 127.0.0.1:0 \
  --port-file "$scratch/w0.port" --log-level error 2> /dev/null &
w0_pid=$!
# shellcheck disable=SC2086
"$cli" match --role worker $ddls --listen 127.0.0.1:0 \
  --port-file "$scratch/w1.port" --log-level error 2> /dev/null &
w1_pid=$!
# shellcheck disable=SC2086
"$cli" match --role worker $ddls --listen 127.0.0.1:0 \
  --port-file "$scratch/w2.port" --crash-after-assign \
  --log-level error 2> /dev/null &
w2_pid=$!

# Ephemeral ports: each worker bound port 0 and wrote the kernel's pick
# to its port file (atomically, tmp + rename), so this poll never reads
# a half-written value and the test never collides on a fixed port.
for f in w0.port w1.port w2.port; do
  tries=0
  while [ ! -s "$scratch/$f" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "FAIL: worker never wrote $f" >&2
      exit 1
    fi
    sleep 0.1
  done
done
p0=$(cat "$scratch/w0.port")
p1=$(cat "$scratch/w1.port")
p2=$(cat "$scratch/w2.port")

# shellcheck disable=SC2086
"$cli" match --role coordinator $ddls \
  --workers "127.0.0.1:$p0" --workers "127.0.0.1:$p1" \
  --workers "127.0.0.1:$p2" \
  --v 0.6 --exchange-policy quorum:2 --log-level error --json \
  > "$scratch/dist.json" || {
  echo "FAIL: quorum-scoped coordinator exited non-zero" >&2
  exit 1
}

# The in-memory twin: same schemas, same v, same policy, with every
# fetch from publisher 2 dropped — exactly what killing w2 looks like.
# shellcheck disable=SC2086
"$cli" match $ddls \
  --v 0.6 --faults drop-from=2 --exchange-policy quorum:2 \
  --log-level error --json > "$scratch/mem.json"

python3 - "$scratch/dist.json" "$scratch/mem.json" "$scratch" << 'EOF'
import json
import sys

dist = json.load(open(sys.argv[1]))
mem = json.load(open(sys.argv[2]))
scratch = sys.argv[3]

assert dist["status"] == "ok", dist["status"]

# The degradation report must name the lost peer: every surviving
# consumer (0, 1, 3) lost exactly publisher 2, and consumer 2 — whose
# owner died — was re-executed at the coordinator and lost nobody.
deg = dist["degradation"]
lost = sorted((p["consumer"], p["publisher"]) for p in deg["peers_lost"])
assert lost == [(0, 2), (1, 2), (3, 2)], lost
assert deg["policy"] == "quorum", deg["policy"]
assert deg["failed_fetches"] == 3, deg["failed_fetches"]

# The run must echo the full effective exchange + transport config,
# fault seed and ownership map included.
echo = dist["exchange_config"]
assert echo["transport"] == "tcp", echo["transport"]
assert echo["quorum"] == 2, echo["quorum"]
assert "seed" in echo["faults"]
assert [o["schema"] for o in echo["owners"]] == [0, 1, 2, 3]
mem_echo = mem["exchange_config"]
assert mem_echo["transport"] == "in_memory", mem_echo["transport"]
assert mem_echo["faults"]["drop_from"] == 2

# Transport independence, byte for byte: the surviving assessment set
# (elements block) and the correspondences generated from it (linkages
# block) must be identical across the two transports.
for name, run in (("dist", dist), ("mem", mem)):
    blocks = {"elements": run["elements"], "linkages": run["linkages"]}
    with open(f"{scratch}/{name}.blocks", "w") as out:
        json.dump(blocks, out, sort_keys=True)
EOF

cmp "$scratch/dist.blocks" "$scratch/mem.blocks" || {
  echo "FAIL: distributed and in-memory elements/linkages differ" >&2
  exit 1
}

# The coordinator shut the surviving workers down; the crashed one is
# long gone. Nothing should still be running.
for pid in "$w0_pid" "$w1_pid" "$w2_pid"; do
  tries=0
  while kill -0 "$pid" 2> /dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
      echo "FAIL: worker $pid still alive after shutdown" >&2
      exit 1
    fi
    sleep 0.1
  done
done

rm -rf "$scratch"
echo "distributed quorum degradation OK"
