#!/bin/sh
# Verifies every public header compiles standalone (self-contained
# headers, per the Google style guide). Usage: check_headers.sh SRC_DIR CXX
set -e
src="$1"
cxx="${2:-c++}"
status=0
for header in $(find "$src" -name '*.h' | sort); do
  if ! "$cxx" -std=c++20 -fsyntax-only -I "$src" -x c++ "$header" 2>/tmp/hdr_err; then
    echo "NOT SELF-CONTAINED: $header"
    cat /tmp/hdr_err
    status=1
  fi
done
exit $status
