#!/bin/sh
# Verifies every public header compiles standalone (self-contained
# headers, per the Google style guide).
# Usage: check_headers.sh SRC_DIR [CXX] [EXTRA_DIR...]
# SRC_DIR is both scanned and used as the include root; any EXTRA_DIRs
# are scanned too (each added to the include path for its own headers).
set -e
src="$1"
cxx="${2:-c++}"
if [ "$#" -ge 2 ]; then shift 2; else shift 1; fi
# The while-read (rather than `for f in $(find ...)`, SC2044) keeps
# unusual filenames intact; the status file carries failures out of the
# pipeline's subshell.
status_file=$(mktemp)
for dir in "$src" "$@"; do
  find "$dir" -name '*.h' -print | sort | while IFS= read -r header; do
    if ! "$cxx" -std=c++20 -fsyntax-only -I "$src" -I "$dir" -x c++ \
        "$header" 2>/tmp/hdr_err; then
      echo "NOT SELF-CONTAINED: $header"
      cat /tmp/hdr_err
      echo fail >> "$status_file"
    fi
  done
done
if [ -s "$status_file" ]; then
  rm -f "$status_file"
  exit 1
fi
rm -f "$status_file"
exit 0
