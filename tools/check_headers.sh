#!/bin/sh
# Verifies every public header compiles standalone (self-contained
# headers, per the Google style guide).
# Usage: check_headers.sh SRC_DIR [CXX] [EXTRA_DIR...]
# SRC_DIR is both scanned and used as the include root; any EXTRA_DIRs
# are scanned too (each added to the include path for its own headers).
set -e
src="$1"
cxx="${2:-c++}"
if [ "$#" -ge 2 ]; then shift 2; else shift 1; fi
status=0
for dir in "$src" "$@"; do
  for header in $(find "$dir" -name '*.h' | sort); do
    if ! "$cxx" -std=c++20 -fsyntax-only -I "$src" -I "$dir" -x c++ \
        "$header" 2>/tmp/hdr_err; then
      echo "NOT SELF-CONTAINED: $header"
      cat /tmp/hdr_err
      status=1
    fi
  done
done
exit $status
