#!/bin/sh
# Builds the resident-server code under ASan + UBSan and runs the
# server smoke: the admission/codec/daemon unit tests (server_test),
# then the cli_server_drain ctest — a real colscoped daemon process
# serving CLI clients over TCP. The drain script byte-compares warm
# server answers against the cold CLI (including across a kill -9
# restart over the same cache directory), provokes overload shedding
# with concurrent clients, and delivers SIGTERM mid-request: the
# in-flight work must complete, new connections must be refused, and
# the daemon must exit 0 with its metrics snapshot flushed.
#
# Usage: run_server_smoke.sh [BUILD_DIR]
#   (default: <repo>/build-server-asan)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-server-asan}"

smoke_tests='server_test|cli_server_drain'

# Compile through ccache when it is installed (the CI job restores a
# per-job cache); plain compilation otherwise.
launcher_flags=""
if command -v ccache > /dev/null 2>&1; then
  launcher_flags="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

# shellcheck disable=SC2086  # launcher_flags is two separate cmake args
cmake -B "$build" -S "$root" $launcher_flags \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j --target server_test colscope_cli
(cd "$build" && ctest --output-on-failure -R "^($smoke_tests)\$")
