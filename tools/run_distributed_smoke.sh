#!/bin/sh
# Builds the distributed-exchange code under ASan + UBSan and runs the
# multi-process smoke: the wire-framing, socket-transport, and
# observability unit tests (trace merge, telemetry codec, lock-free
# flight recorder), then the cli_distributed_quorum ctest — 1
# coordinator + 3 worker processes over the TCP transport, one worker
# SIGKILLed mid-exchange. The quorum script byte-compares the surviving
# assessments against the in-memory run with the same peer dropped, and
# additionally asserts the telemetry harvest: one merged Chrome trace
# with spans from every surviving worker parented under the
# coordinator's RPC spans, merged worker.<i>.* metrics, a
# flight-recorder dump naming the killed worker, and a repeat run that
# reproduces the trace and flight bytes exactly.
#
# Usage: run_distributed_smoke.sh [BUILD_DIR]
#   (default: <repo>/build-distributed-asan)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-distributed-asan}"

smoke_tests='net_frame_test|tcp_transport_test|obs_test|cli_distributed_quorum'

# Compile through ccache when it is installed (the CI job restores a
# per-job cache); plain compilation otherwise.
launcher_flags=""
if command -v ccache > /dev/null 2>&1; then
  launcher_flags="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

# shellcheck disable=SC2086  # launcher_flags is two separate cmake args
cmake -B "$build" -S "$root" $launcher_flags \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j \
  --target net_frame_test tcp_transport_test obs_test colscope_cli
(cd "$build" && ctest --output-on-failure -R "^($smoke_tests)\$")
