#!/bin/sh
# Builds the distributed-exchange code under ASan + UBSan and runs the
# multi-process smoke: the wire-framing and socket-transport unit tests,
# then the cli_distributed_quorum ctest — 1 coordinator + 3 worker
# processes over the TCP transport, one worker SIGKILLed mid-exchange,
# byte-compared against the in-memory run with the same peer dropped.
#
# Usage: run_distributed_smoke.sh [BUILD_DIR]
#   (default: <repo>/build-distributed-asan)
set -e
root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-distributed-asan}"

smoke_tests='net_frame_test|tcp_transport_test|cli_distributed_quorum'

cmake -B "$build" -S "$root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOLSCOPE_ASAN=ON -DCOLSCOPE_UBSAN=ON
cmake --build "$build" -j \
  --target net_frame_test tcp_transport_test colscope_cli
(cd "$build" && ctest --output-on-failure -R "^($smoke_tests)\$")
