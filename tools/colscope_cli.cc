// colscope — command-line front end for the library.
//
// Usage:
//   colscope scope  --ddl a.sql --ddl b.sql [...] [--v 0.8]
//       [--scoper pca|neural|global|none] [--keep-portion 0.5]
//       Prints the per-element linkability assessment and a summary.
//
//   colscope match  --ddl a.sql --ddl b.sql [...] [--v 0.8]
//       [--matcher sim|cluster|lsh|tbsim|str] [--param X]
//       Runs the full pipeline and prints the generated correspondences
//       with cosine scores.
//
//   colscope export --ddl a.sql --ddl b.sql [...] [--v 0.8]
//       Prints the streamlined schemas as SQL DDL.
//
//   colscope fit --ddl a.sql [--v 0.8] [--out model.txt]
//       Self-trains this schema's local encoder-decoder (Algorithm 1)
//       and prints/writes the serialized model — the only artifact a
//       participant publishes in the federated workflow.
//
//   colscope assess --ddl mine.sql --model peer1.txt [--model peer2.txt]
//       Assesses this schema's elements against peers' published models
//       (Algorithm 2) without ever seeing their schemas.
//
//   colscope gen-corpus --out DIR [--seed N] [--schemas K] [--tables T]
//       [--attrs A] [--rows R] [--rename-prob P] [--drift-prob P]
//       [--dropout-prob P] [--noise-prob P]
//       Renders a seeded synthetic schema corpus (DDL + CSV per schema,
//       labels.tsv ground truth) into DIR — byte-identical for a fixed
//       seed (docs/SCALING.md).
//
// Schema names default to the DDL file's basename.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "embed/hashed_encoder.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "exchange/exchange.h"
#include "linalg/simd/kernels.h"
#include "linalg/stats.h"
#include "matching/cluster_matcher.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "matching/string_matcher.h"
#include "matching/token_blocking.h"
#include "net/coordinator.h"
#include "net/worker.h"
#include "server/client.h"
#include "server/server.h"
#include "outlier/pca_oda.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "datasets/csv_loader.h"
#include "datasets/synthetic_corpus.h"
#include "matching/ivf_index.h"
#include "schema/ddl_parser.h"
#include "schema/ddl_writer.h"
#include "scoping/explain.h"
#include "scoping/model_io.h"
#include "scoping/streamline.h"

namespace {

using namespace colscope;

struct CliArgs {
  std::string command;
  std::vector<std::string> ddl_paths;   // *.sql -> ParseDdl.
  std::vector<std::string> csv_paths;   // *.csv -> LoadCsvSchema.
  std::vector<std::string> model_paths;
  std::string out_path;
  double v = 0.8;
  double keep_portion = 0.5;
  double param = -1.0;
  std::string scoper = "pca";
  std::string matcher = "sim";
  std::string faults;           // --faults drop=0.3,corrupt=0.1,seed=42
  std::string exchange_policy;  // --exchange-policy keep-all|quorum:2|...
  std::string log_level;        // --log-level debug|info|warn|error|off
  std::string metrics_out;      // --metrics-out metrics.json
  std::string trace_out;        // --trace-out trace.json (Chrome format)
  std::string trace_clock = "real";  // --trace-clock real|sim
  double deadline_ms = 0.0;     // --deadline-ms 5000 (<= 0: none)
  std::string run_clock = "real";    // --run-clock real|sim
  std::string checkpoint_dir;   // --checkpoint-dir DIR
  bool resume = false;          // --resume (with --checkpoint-dir)
  std::string cache_dir;        // --cache-dir DIR
  uint64_t cache_max_bytes = 0;  // --cache-max-bytes N (0 = unbounded)
  std::string crash_after;      // --crash-after signatures|local_models|...
  size_t threads = 1;           // --threads N (1 = serial, 0 = hardware)
  std::string kernels;          // --kernels scalar|native ("" = auto)
  bool quantized = false;       // --quantized (int8 prefilter for lsh/tbsim)
  // IVF matcher knobs (--matcher ivf, docs/SCALING.md).
  size_t nprobe = 8;            // --nprobe N (cells probed per query)
  size_t num_lists = 0;         // --num-lists N (0 = sqrt(n), 1 = flat)
  bool token_prefilter = false;  // --token-prefilter (compose blocking)
  // gen-corpus knobs (docs/SCALING.md).
  uint64_t seed = 0xC0905;      // --seed N
  size_t corpus_schemas = 6;    // --schemas K
  size_t corpus_tables = 4;     // --tables T
  size_t corpus_attrs = 8;      // --attrs A
  size_t corpus_rows = 8;       // --rows R
  double rename_prob = 0.4;     // --rename-prob P
  double drift_prob = 0.2;      // --drift-prob P
  double dropout_prob = 0.1;    // --dropout-prob P
  double noise_prob = 0.1;      // --noise-prob P
  bool explain = false;
  bool json = false;
  // Distributed multi-process mode (see docs/DISTRIBUTED.md).
  std::string role;             // --role worker|coordinator
  std::string listen = "127.0.0.1:0";  // --listen HOST:PORT (worker)
  std::string port_file;        // --port-file FILE (worker; ephemeral port)
  std::vector<std::string> workers;    // --workers HOST:PORT (coordinator)
  bool crash_after_assign = false;     // --crash-after-assign (test hook)
  // Resident server mode (--role serve, docs/SERVER.md) and its client
  // (--connect).
  std::string connect;                 // --connect HOST:PORT (client mode)
  size_t max_queue = 16;               // --max-queue N
  size_t max_inflight = 2;             // --max-inflight N
  size_t max_connections = 32;         // --max-connections N
  double request_deadline_ms = 30000;  // --request-deadline-ms MS
  double drain_grace_ms = 5000;        // --drain-grace-ms MS
  double idle_timeout_ms = 10000;      // --idle-timeout-ms MS
  double serve_delay_ms = 0.0;         // --serve-delay-ms MS (test hook)
};

int Usage() {
  std::fprintf(stderr,
               "usage: colscope <scope|match|export> --ddl FILE [--ddl FILE "
               "...]\n"
               "  [--v 0.8] [--scoper pca|neural|global|none]\n"
               "  [--keep-portion 0.5] "
               "[--matcher sim|cluster|lsh|tbsim|str|ivf] [--param X]\n"
               "  [--nprobe N] [--num-lists N] [--token-prefilter]  "
               "(ivf knobs, docs/SCALING.md)\n"
               "  [--faults drop=P,delay=P,truncate=P,corrupt=P,stale=P,"
               "seed=N]\n"
               "  [--exchange-policy fail-closed|keep-all|quorum[:N]]\n"
               "  [--log-level debug|info|warn|error|off]\n"
               "  [--metrics-out FILE.json] [--trace-out FILE.json]\n"
               "  [--trace-clock real|sim]\n"
               "  [--deadline-ms MS] [--run-clock real|sim]\n"
               "  [--checkpoint-dir DIR] [--resume]\n"
               "  [--cache-dir DIR] [--cache-max-bytes N]\n"
               "  [--crash-after signatures|local_models|keep_mask]\n"
               "  [--threads N]  (1 = serial, 0 = hardware concurrency; "
               "output is identical at any N)\n"
               "  [--kernels scalar|native]  (span-kernel dispatch; output "
               "is identical either way)\n"
               "  [--quantized]  (int8 prefilter for lsh/tbsim candidate "
               "generation)\n"
               "\n"
               "synthetic corpus generation (docs/SCALING.md):\n"
               "  colscope gen-corpus --out DIR [--seed N] [--schemas K]\n"
               "      [--tables T] [--attrs A] [--rows R] [--rename-prob P]\n"
               "      [--drift-prob P] [--dropout-prob P] [--noise-prob P]\n"
               "\n"
               "resident server mode (docs/SERVER.md):\n"
               "  colscope serve [--listen H:P] [--port-file FILE]\n"
               "      [--max-queue N] [--max-inflight N] "
               "[--max-connections N]\n"
               "      [--request-deadline-ms MS] [--drain-grace-ms MS]\n"
               "      [--idle-timeout-ms MS] [--cache-dir DIR] "
               "[--metrics-out FILE]\n"
               "  colscope scope|match --connect H:P --json --ddl ... "
               "[--deadline-ms MS]\n"
               "  colscope health --connect H:P\n"
               "  colscope shutdown --connect H:P\n"
               "\n"
               "distributed mode (docs/DISTRIBUTED.md):\n"
               "  colscope scope --role worker --ddl ... [--listen H:P]\n"
               "      [--port-file FILE] [--crash-after-assign]\n"
               "  colscope scope|match --role coordinator --ddl ...\n"
               "      --workers H:P [--workers H:P ...] [--v 0.8]\n"
               "      [--faults SPEC] [--exchange-policy POLICY] "
               "[--deadline-ms MS]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    // Both "--flag value" and "--flag=value" are accepted.
    std::string inline_value;
    bool has_inline = false;
    const size_t eq = flag.find('=');
    if (flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--ddl") {
      const char* value = next();
      if (value == nullptr) return false;
      args.ddl_paths.push_back(value);
    } else if (flag == "--csv") {
      const char* value = next();
      if (value == nullptr) return false;
      args.csv_paths.push_back(value);
    } else if (flag == "--model") {
      const char* value = next();
      if (value == nullptr) return false;
      args.model_paths.push_back(value);
    } else if (flag == "--out") {
      const char* value = next();
      if (value == nullptr) return false;
      args.out_path = value;
    } else if (flag == "--v") {
      const char* value = next();
      if (value == nullptr) return false;
      args.v = std::atof(value);
    } else if (flag == "--keep-portion") {
      const char* value = next();
      if (value == nullptr) return false;
      args.keep_portion = std::atof(value);
    } else if (flag == "--param") {
      const char* value = next();
      if (value == nullptr) return false;
      args.param = std::atof(value);
    } else if (flag == "--scoper") {
      const char* value = next();
      if (value == nullptr) return false;
      args.scoper = value;
    } else if (flag == "--matcher") {
      const char* value = next();
      if (value == nullptr) return false;
      args.matcher = value;
    } else if (flag == "--faults") {
      const char* value = next();
      if (value == nullptr) return false;
      args.faults = value;
    } else if (flag == "--exchange-policy") {
      const char* value = next();
      if (value == nullptr) return false;
      args.exchange_policy = value;
    } else if (flag == "--log-level") {
      const char* value = next();
      if (value == nullptr) return false;
      args.log_level = value;
    } else if (flag == "--metrics-out") {
      const char* value = next();
      if (value == nullptr) return false;
      args.metrics_out = value;
    } else if (flag == "--trace-out") {
      const char* value = next();
      if (value == nullptr) return false;
      args.trace_out = value;
    } else if (flag == "--trace-clock") {
      const char* value = next();
      if (value == nullptr) return false;
      args.trace_clock = value;
    } else if (flag == "--deadline-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args.deadline_ms = std::atof(value);
    } else if (flag == "--run-clock") {
      const char* value = next();
      if (value == nullptr) return false;
      args.run_clock = value;
    } else if (flag == "--checkpoint-dir") {
      const char* value = next();
      if (value == nullptr) return false;
      args.checkpoint_dir = value;
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--cache-dir") {
      const char* value = next();
      if (value == nullptr) return false;
      args.cache_dir = value;
    } else if (flag == "--cache-max-bytes") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 0) return false;
      args.cache_max_bytes = static_cast<uint64_t>(n);
    } else if (flag == "--crash-after") {
      const char* value = next();
      if (value == nullptr) return false;
      args.crash_after = value;
    } else if (flag == "--threads") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 0) return false;
      args.threads = static_cast<size_t>(n);
    } else if (flag == "--role") {
      const char* value = next();
      if (value == nullptr) return false;
      args.role = value;
    } else if (flag == "--listen") {
      const char* value = next();
      if (value == nullptr) return false;
      args.listen = value;
    } else if (flag == "--port-file") {
      const char* value = next();
      if (value == nullptr) return false;
      args.port_file = value;
    } else if (flag == "--workers") {
      const char* value = next();
      if (value == nullptr) return false;
      args.workers.push_back(value);
    } else if (flag == "--crash-after-assign") {
      args.crash_after_assign = true;
    } else if (flag == "--connect") {
      const char* value = next();
      if (value == nullptr) return false;
      args.connect = value;
    } else if (flag == "--max-queue") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.max_queue = static_cast<size_t>(n);
    } else if (flag == "--max-inflight") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.max_inflight = static_cast<size_t>(n);
    } else if (flag == "--max-connections") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.max_connections = static_cast<size_t>(n);
    } else if (flag == "--request-deadline-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args.request_deadline_ms = std::atof(value);
    } else if (flag == "--drain-grace-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args.drain_grace_ms = std::atof(value);
    } else if (flag == "--idle-timeout-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args.idle_timeout_ms = std::atof(value);
    } else if (flag == "--serve-delay-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args.serve_delay_ms = std::atof(value);
    } else if (flag == "--kernels") {
      const char* value = next();
      if (value == nullptr) return false;
      args.kernels = value;
    } else if (flag == "--quantized") {
      args.quantized = true;
    } else if (flag == "--nprobe") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.nprobe = static_cast<size_t>(n);
    } else if (flag == "--num-lists") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 0) return false;
      args.num_lists = static_cast<size_t>(n);
    } else if (flag == "--token-prefilter") {
      args.token_prefilter = true;
    } else if (flag == "--seed") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 0) return false;
      args.seed = static_cast<uint64_t>(n);
    } else if (flag == "--schemas") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 2) return false;
      args.corpus_schemas = static_cast<size_t>(n);
    } else if (flag == "--tables") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.corpus_tables = static_cast<size_t>(n);
    } else if (flag == "--attrs") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 1) return false;
      args.corpus_attrs = static_cast<size_t>(n);
    } else if (flag == "--rows") {
      const char* value = next();
      if (value == nullptr) return false;
      const long long n = std::atoll(value);
      if (n < 0) return false;
      args.corpus_rows = static_cast<size_t>(n);
    } else if (flag == "--rename-prob") {
      const char* value = next();
      if (value == nullptr) return false;
      args.rename_prob = std::atof(value);
    } else if (flag == "--drift-prob") {
      const char* value = next();
      if (value == nullptr) return false;
      args.drift_prob = std::atof(value);
    } else if (flag == "--dropout-prob") {
      const char* value = next();
      if (value == nullptr) return false;
      args.dropout_prob = std::atof(value);
    } else if (flag == "--noise-prob") {
      const char* value = next();
      if (value == nullptr) return false;
      args.noise_prob = std::atof(value);
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--json") {
      args.json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  // The serve role, the health/shutdown probes, and the corpus
  // generator carry no schemas; everything else still requires at least
  // one --ddl/--csv.
  if (args.role == "serve" || args.command == "serve" ||
      args.command == "health" || args.command == "shutdown" ||
      args.command == "gen-corpus") {
    return true;
  }
  return !args.ddl_paths.empty() || !args.csv_paths.empty();
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.resize(dot);
  return name;
}

Result<schema::SchemaSet> LoadSchemas(const CliArgs& args) {
  std::vector<schema::Schema> schemas;
  for (const std::string& path : args.ddl_paths) {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("cannot open DDL file: " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<schema::Schema> parsed =
        schema::ParseDdl(text.str(), Basename(path));
    if (!parsed.ok()) {
      return Status::InvalidArgument(path + ": " +
                                     parsed.status().message());
    }
    schemas.push_back(std::move(parsed).value());
  }
  for (const std::string& path : args.csv_paths) {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("cannot open CSV file: " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    datasets::CsvLoadOptions options;
    options.table_name = Basename(path);
    Result<schema::Schema> loaded =
        datasets::LoadCsvSchema(text.str(), Basename(path), options);
    if (!loaded.ok()) {
      return Status::InvalidArgument(path + ": " +
                                     loaded.status().message());
    }
    schemas.push_back(std::move(loaded).value());
  }
  return schema::SchemaSet(std::move(schemas));
}

std::unique_ptr<matching::Matcher> MakeMatcher(const CliArgs& args,
                                               ThreadPool* pool) {
  if (args.matcher == "sim") {
    return std::make_unique<matching::SimMatcher>(
        args.param >= 0 ? args.param : 0.6, pool);
  }
  if (args.matcher == "cluster") {
    return std::make_unique<matching::ClusterMatcher>(
        args.param >= 0 ? static_cast<size_t>(args.param) : 5);
  }
  if (args.matcher == "lsh") {
    return std::make_unique<matching::LshMatcher>(
        args.param >= 0 ? static_cast<size_t>(args.param) : 1,
        /*approximate=*/false, args.quantized);
  }
  if (args.matcher == "tbsim") {
    return std::make_unique<matching::TokenBlockedSimMatcher>(
        args.param >= 0 ? args.param : 0.6, args.quantized);
  }
  if (args.matcher == "str") {
    return std::make_unique<matching::StringSimilarityMatcher>(
        matching::StringSimilarityMatcher::Measure::kJaroWinkler,
        args.param >= 0 ? args.param : 0.9);
  }
  if (args.matcher == "ivf") {
    matching::IvfMatcher::Options options;
    options.top_k = args.param >= 0 ? static_cast<size_t>(args.param) : 5;
    options.num_lists = args.num_lists;
    options.nprobe = args.nprobe;
    options.quantized = args.quantized;
    options.token_prefilter = args.token_prefilter;
    return std::make_unique<matching::IvfMatcher>(options, pool);
  }
  return nullptr;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text << '\n';
  return true;
}

/// Run-level trace id shared by every process of a distributed run:
/// FNV-1a of the fault seed's decimal rendering, masked to 63 bits so
/// span args survive the JSON long-long round trip, forced nonzero
/// (0 means "untraced"). Same seed -> same id, so repeat runs produce
/// byte-identical merged traces.
uint64_t DeriveTraceId(uint64_t seed) {
  const std::string key = StrFormat(
      "colscope-run-%llu", static_cast<unsigned long long>(seed));
  uint64_t hash = 1469598103934665603ull;
  for (char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash &= (1ull << 63) - 1;
  return hash == 0 ? 1 : hash;
}

/// Post-mortem: the flight recorder's recent-event ledger, dumped to
/// stderr when a run dies without producing a report.
void DumpFlightToStderr() {
  for (const obs::FlightEvent& event :
       obs::FlightRecorder::Global().Snapshot()) {
    std::fprintf(stderr, "# flight %llu %s %s\n",
                 static_cast<unsigned long long>(event.seq),
                 event.kind.c_str(), event.detail.c_str());
  }
}

/// `colscope gen-corpus`: render a seeded synthetic schema corpus
/// (per-schema DDL, per-table CSV, labels.tsv) into --out. Generation is
/// a pure function of the seed and the shape knobs, so repeated runs —
/// at any --threads setting — produce byte-identical directories.
int RunGenCorpus(const CliArgs& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "gen-corpus requires --out DIR\n");
    return 2;
  }
  datasets::CorpusOptions options;
  options.num_schemas = args.corpus_schemas;
  options.tables_per_schema = args.corpus_tables;
  options.attrs_per_table = args.corpus_attrs;
  options.rows_per_table = args.corpus_rows;
  options.rename_probability = args.rename_prob;
  options.type_drift_probability = args.drift_prob;
  options.dropout_probability = args.dropout_prob;
  options.value_noise_probability = args.noise_prob;
  options.seed = args.seed;
  const datasets::SyntheticCorpus corpus =
      datasets::BuildSyntheticCorpus(options);

  std::error_code ec;
  std::filesystem::create_directories(args.out_path, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", args.out_path.c_str(),
                 ec.message().c_str());
    return 1;
  }
  auto write_raw = [&](const std::string& name,
                       const std::string& contents) {
    const std::string path = args.out_path + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out || !(out << contents)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    return true;
  };
  for (const datasets::CorpusFile& file : corpus.files) {
    if (!write_raw(file.name, file.contents)) return 1;
  }
  if (!write_raw("labels.tsv", corpus.labels_tsv)) return 1;
  std::printf(
      "# gen-corpus seed=%llu: %zu schemas, %zu elements, %zu linkages, "
      "%zu files -> %s\n",
      static_cast<unsigned long long>(options.seed),
      corpus.scenario.set.num_schemas(), corpus.scenario.set.num_elements(),
      corpus.scenario.truth.size(), corpus.files.size() + 1,
      args.out_path.c_str());
  return 0;
}

/// `colscope fit`: train + publish this schema's local model.
int RunFit(const CliArgs& args) {
  Result<schema::SchemaSet> set = LoadSchemas(args);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(*set, encoder);
  auto model = scoping::LocalModel::Fit(signatures.SchemaSignatures(0),
                                        args.v, /*schema_index=*/0);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const std::string serialized = scoping::SerializeLocalModel(*model);
  if (args.out_path.empty()) {
    std::fputs(serialized.c_str(), stdout);
  } else {
    std::ofstream out(args.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
      return 1;
    }
    out << serialized;
    std::fprintf(stderr, "model (%zu components, l=%.3g) -> %s\n",
                 model->pca().n_components(), model->linkability_range(),
                 args.out_path.c_str());
  }
  return 0;
}

/// `colscope assess`: judge local elements against peers' models.
int RunAssess(const CliArgs& args) {
  if (args.model_paths.empty()) {
    std::fprintf(stderr, "assess requires at least one --model\n");
    return 2;
  }
  Result<schema::SchemaSet> set = LoadSchemas(args);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  std::vector<scoping::LocalModel> models;
  for (const std::string& path : args.model_paths) {
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<scoping::LocalModel> model =
        scoping::DeserializeLocalModel(*text);
    if (!model.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    models.push_back(std::move(model).value());
  }
  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(*set, encoder);
  const auto local = signatures.SchemaSignatures(0);
  // own_schema_index = -1: every loaded model is a foreign peer.
  const auto linkable = scoping::AssessLinkability(local, -1, models);
  size_t kept = 0;
  const auto rows = signatures.RowsOfSchema(0);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-9s %s\n", linkable[i] ? "linkable" : "pruned",
                set->QualifiedName(signatures.refs[rows[i]]).c_str());
    kept += linkable[i];
  }
  std::printf("# kept %zu / %zu elements against %zu peer model(s)\n", kept,
              rows.size(), models.size());
  return 0;
}

/// `--role worker`: one worker process of a distributed run. Loads its
/// schemas, builds signatures, and serves kAssign / kGetModel / kAssess
/// until a coordinator sends kShutdown. Raw signature rows never leave
/// the process — only fitted models and reduced keep bits do.
///
/// Always instrumented: the per-process registry and tracer feed the
/// coordinator's kStatsRequest harvest, so `--metrics-out`/`--trace-out`
/// are optional local copies, not prerequisites for telemetry.
int RunWorker(const CliArgs& args) {
  Result<schema::SchemaSet> set = LoadSchemas(args);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(*set, encoder);

  Result<net::Endpoint> listen = net::ParseEndpoint(args.listen);
  if (!listen.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen.status().ToString().c_str());
    return 2;
  }
  if (args.trace_clock != "real" && args.trace_clock != "sim") {
    std::fprintf(stderr, "unknown trace clock (want real|sim): %s\n",
                 args.trace_clock.c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  obs::SystemTraceClock real_clock;
  obs::SimulatedTraceClock sim_clock;
  obs::TraceClock* clock = args.trace_clock == "sim"
                               ? static_cast<obs::TraceClock*>(&sim_clock)
                               : &real_clock;
  obs::Tracer tracer(clock);
  tracer.set_process_name("worker");

  net::WorkerOptions options;
  options.listen = *listen;
  options.port_file = args.port_file;
  options.crash_after_assign = args.crash_after_assign;
  options.net.metrics = &registry;
  options.net.tracer = &tracer;
  options.net.clock = clock;
  Result<net::WorkerServer> server =
      net::WorkerServer::Create(&signatures, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# worker listening on %s:%u\n",
               listen->host.c_str(), server->port());
  Status served = server->Serve();
  // Local telemetry copies are written even after a failed serve loop —
  // that is exactly when they are most interesting.
  if (!args.metrics_out.empty() &&
      !WriteTextFile(args.metrics_out,
                     obs::SnapshotToJsonString(registry.Snapshot()))) {
    return 1;
  }
  if (!args.trace_out.empty() &&
      !WriteTextFile(args.trace_out, tracer.ToChromeJson())) {
    return 1;
  }
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    DumpFlightToStderr();
    return 1;
  }
  return 0;
}

/// `--role coordinator`: shards the schemas over worker processes, runs
/// the distributed scope (phase II + III), then finishes streamline +
/// match locally and emits the same report shape as the in-memory
/// pipeline — a quorum-degraded distributed run and the equivalent
/// in-memory `--faults drop-from=K` run print byte-identical
/// elements/linkages blocks.
int RunCoordinator(const CliArgs& args) {
  if (args.workers.empty()) {
    std::fprintf(stderr, "coordinator requires at least one --workers\n");
    return 2;
  }
  Result<schema::SchemaSet> set = LoadSchemas(args);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  if (args.trace_clock != "real" && args.trace_clock != "sim") {
    std::fprintf(stderr, "unknown trace clock (want real|sim): %s\n",
                 args.trace_clock.c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  obs::SystemTraceClock real_trace_clock;
  obs::SimulatedTraceClock sim_trace_clock;
  obs::TraceClock* trace_clock =
      args.trace_clock == "sim"
          ? static_cast<obs::TraceClock*>(&sim_trace_clock)
          : &real_trace_clock;
  obs::Tracer tracer(trace_clock);
  tracer.set_process_name("coordinator");
  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(*set, encoder);

  net::CoordinatorOptions options;
  for (const std::string& spec : args.workers) {
    Result<net::Endpoint> endpoint = net::ParseEndpoint(spec);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "--workers: %s\n",
                   endpoint.status().ToString().c_str());
      return 2;
    }
    options.workers.push_back(*endpoint);
  }
  options.v = args.v;
  if (!args.faults.empty()) {
    Result<FaultProfile> profile = ParseFaultSpec(args.faults);
    if (!profile.ok()) {
      std::fprintf(stderr, "--faults: %s\n",
                   profile.status().ToString().c_str());
      return 2;
    }
    options.faults = *profile;
  }
  if (!args.exchange_policy.empty()) {
    Result<scoping::DegradedOptions> degraded =
        scoping::ParseDegradedPolicy(args.exchange_policy);
    if (!degraded.ok()) {
      std::fprintf(stderr, "--exchange-policy: %s\n",
                   degraded.status().ToString().c_str());
      return 2;
    }
    options.degraded = *degraded;
  }
  SystemRunClock run_clock;
  if (args.deadline_ms > 0) {
    options.net.deadline = Deadline::After(&run_clock, args.deadline_ms);
  }
  options.net.metrics = &registry;
  options.net.tracer = &tracer;
  options.net.clock = trace_clock;
  // The run-level trace id every worker span carries: derived from the
  // fault seed so the coordinator and the byte-compare harness agree on
  // it without coordination.
  tracer.set_trace_id(DeriveTraceId(options.faults.seed));

  Result<net::DistributedScopeResult> scoped = [&]() {
    // Root span enclosing the distributed phases and the shutdown round;
    // closed before any serialization so the trace buffer is complete.
    obs::ScopedSpan span(&tracer, "coordinator.run");
    Result<net::DistributedScopeResult> result = net::DistributedScope(
        signatures, set->num_schemas(), options, &registry);
    // Live workers are shut down either way; a dead one cannot object.
    net::ShutdownWorkers(options.workers, options.net);
    return result;
  }();
  if (!scoped.ok()) {
    std::fprintf(stderr, "%s\n", scoped.status().ToString().c_str());
    // No report will be written — the flight recorder's ledger of the
    // last RPC/fault/retry events is the post-mortem.
    DumpFlightToStderr();
    return 1;
  }

  // Merged observability artifacts: the coordinator's own telemetry
  // plus everything harvested from surviving workers. Dead workers are
  // holes, so the merge never blocks on a corpse.
  obs::MetricsSnapshot merged_metrics = registry.Snapshot();
  for (size_t w = 0; w < scoped->telemetry.size(); ++w) {
    if (!scoped->telemetry[w].has_value()) continue;
    obs::MergePrefixed(merged_metrics, StrFormat("worker.%zu.", w),
                       scoped->telemetry[w]->metrics);
  }
  if (!args.trace_out.empty()) {
    std::vector<obs::ProcessTrace> processes;
    obs::ProcessTrace coord;
    coord.pid = 0;
    coord.name = "coordinator";
    coord.trace_id = tracer.trace_id();
    coord.thread_names = tracer.ThreadNames();
    coord.events = tracer.Events();
    processes.push_back(std::move(coord));
    for (size_t w = 0; w < scoped->telemetry.size(); ++w) {
      if (!scoped->telemetry[w].has_value()) continue;
      const net::WorkerTelemetry& telemetry = *scoped->telemetry[w];
      obs::ProcessTrace proc;
      proc.pid = static_cast<int>(w) + 1;
      proc.name = StrFormat("worker.%zu", w);
      proc.trace_id = telemetry.trace_id;
      proc.thread_names = telemetry.thread_names;
      proc.events = telemetry.events;
      processes.push_back(std::move(proc));
    }
    if (!WriteTextFile(args.trace_out,
                       obs::MergedTraceToChromeJson(processes))) {
      return 1;
    }
  }

  std::optional<ThreadPool> pool;
  if (args.threads != 1) pool.emplace(args.threads);
  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(args, pool.has_value() ? &*pool : nullptr);
  if (matcher == nullptr) {
    std::fprintf(stderr, "unknown matcher: %s\n", args.matcher.c_str());
    return 2;
  }

  // Assemble a PipelineRun so distributed runs reuse the in-memory
  // report writer verbatim.
  pipeline::PipelineRun run;
  run.signatures = signatures;
  run.keep = scoped->keep;
  run.streamlined =
      scoping::BuildStreamlinedSchemas(*set, run.signatures, run.keep);
  run.linkages = matcher->Match(run.signatures, run.keep);
  run.degradation = scoped->degradation;
  exchange::ExchangeConfigEcho echo;
  echo.transport = "tcp";
  echo.faults = options.faults;
  echo.retry = options.retry;
  echo.policy = scoping::DegradedPolicyToString(options.degraded.policy);
  echo.quorum = options.degraded.quorum;
  for (const auto& [schema_index, endpoint] : scoped->assign.owners) {
    echo.owners.emplace_back(schema_index, endpoint.ToString());
  }
  run.exchange_config = std::move(echo);
  run.metrics = merged_metrics;
  run.phases_completed = {"signatures", "local_models", "keep_mask",
                          "streamline", "match"};
  if (!scoped->lost_workers.empty()) {
    // A degraded run ships its flight-recorder ledger in the report:
    // which worker died, at which round, and what the re-executions did.
    run.flight = obs::FlightRecorder::Global().Snapshot();
  }

  if (!args.metrics_out.empty() &&
      !WriteTextFile(args.metrics_out,
                     obs::SnapshotToJsonString(merged_metrics))) {
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", pipeline::RunToJson(run, *set).c_str());
    return 0;
  }
  std::printf("# exchange: %s\n",
              exchange::FormatDegradationReport(*run.degradation).c_str());
  if (!scoped->lost_workers.empty()) {
    std::printf("# lost workers:");
    for (size_t worker : scoped->lost_workers) {
      std::printf(" %zu (%s)", worker,
                  options.workers[worker].ToString().c_str());
    }
    std::printf("\n");
  }
  if (args.command == "match") {
    std::printf("# %zu correspondences from %s on streamlined schemas\n",
                run.linkages.size(), matcher->name().c_str());
    for (const auto& [a, b] : run.linkages) {
      std::printf("%s <-> %s\n", set->QualifiedName(a).c_str(),
                  set->QualifiedName(b).c_str());
    }
    return 0;
  }
  for (size_t i = 0; i < run.keep.size(); ++i) {
    std::printf("%-9s %s\n", run.keep[i] ? "linkable" : "pruned",
                set->QualifiedName(run.signatures.refs[i]).c_str());
  }
  std::printf("# kept %zu / %zu elements\n", run.num_kept(),
              run.keep.size());
  return 0;
}

/// `colscope serve` / `--role serve`: the resident colscoped daemon
/// (docs/SERVER.md). Keeps encoder + artifact cache warm and serves
/// scope requests until SIGTERM (or a kShutdown frame) drains it.
int RunServe(const CliArgs& args) {
  Result<net::Endpoint> listen = net::ParseEndpoint(args.listen);
  if (!listen.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen.status().ToString().c_str());
    return 2;
  }
  obs::MetricsRegistry registry;
  server::ScopeServerOptions options;
  options.listen = *listen;
  options.port_file = args.port_file;
  options.max_queue = args.max_queue;
  options.max_inflight = args.max_inflight;
  options.max_connections = args.max_connections;
  options.request_deadline_ms = args.request_deadline_ms;
  options.drain_grace_ms = args.drain_grace_ms;
  options.idle_timeout_ms = args.idle_timeout_ms;
  options.serve_delay_ms = args.serve_delay_ms;
  options.cache_dir = args.cache_dir;
  options.cache_max_bytes = args.cache_max_bytes;
  options.threads = args.threads;
  options.metrics = &registry;
  options.net.metrics = &registry;

  Result<server::ScopeServer> daemon =
      server::ScopeServer::Create(std::move(options));
  if (!daemon.ok()) {
    std::fprintf(stderr, "%s\n", daemon.status().ToString().c_str());
    return 1;
  }
  daemon->InstallSignalHandlers();
  std::fprintf(stderr, "# colscoped listening on %s:%u\n",
               listen->host.c_str(), daemon->port());
  const Status served = daemon->Serve();
  // Flush telemetry after the drain — the snapshot is part of the
  // graceful-exit contract even (especially) when serving failed.
  if (!args.metrics_out.empty() &&
      !WriteTextFile(args.metrics_out,
                     obs::SnapshotToJsonString(registry.Snapshot()))) {
    return 1;
  }
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    DumpFlightToStderr();
    return 1;
  }
  const server::HealthInfo health = daemon->Health();
  std::fprintf(stderr,
               "# colscoped drained: completed=%llu shed=%llu "
               "deadline_exceeded=%llu failed=%llu\n",
               static_cast<unsigned long long>(health.completed),
               static_cast<unsigned long long>(health.shed),
               static_cast<unsigned long long>(health.deadline_exceeded),
               static_cast<unsigned long long>(health.failed));
  return 0;
}

/// Client-side NetOptions for one server round trip: the io timeout must
/// cover the server's whole execution (queue wait + pipeline), so it
/// follows the request deadline with headroom rather than the 30s
/// per-frame default.
net::NetOptions ClientNetOptions(const CliArgs& args) {
  net::NetOptions net;
  const double deadline =
      args.deadline_ms > 0 ? args.deadline_ms : args.request_deadline_ms;
  net.io_timeout_ms = deadline > 0 ? deadline + 5000.0 : 600000.0;
  return net;
}

/// `colscope scope|match --connect H:P --json`: ships the schemas to a
/// resident daemon and prints the JSON report it returns — byte-identical
/// to the same cold `--json` invocation.
int RunScopeClient(const CliArgs& args) {
  if (!args.json) {
    std::fprintf(stderr, "--connect requires --json\n");
    return 2;
  }
  Result<net::Endpoint> endpoint = net::ParseEndpoint(args.connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  server::ScopeRequest request;
  request.scoper = args.scoper;
  request.matcher = args.matcher;
  request.param = args.param;
  request.v = args.v;
  request.keep_portion = args.keep_portion;
  request.deadline_ms = args.deadline_ms;
  // Same order as LoadSchemas: every --ddl, then every --csv — the
  // schema-set order the report depends on.
  for (const std::string& path : args.ddl_paths) {
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    server::ScopeRequestSchema schema;
    schema.kind = "ddl";
    schema.name = Basename(path);
    schema.text = std::move(text).value();
    request.schemas.push_back(std::move(schema));
  }
  for (const std::string& path : args.csv_paths) {
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    server::ScopeRequestSchema schema;
    schema.kind = "csv";
    schema.name = Basename(path);
    schema.text = std::move(text).value();
    request.schemas.push_back(std::move(schema));
  }
  Result<std::string> report =
      server::RequestScope(*endpoint, request, ClientNetOptions(args));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    // Typed rejections exit distinctly so harnesses can tell a shed
    // request (3) from a hard failure (1).
    return report.status().code() == StatusCode::kOverloaded ? 3 : 1;
  }
  std::printf("%s\n", report->c_str());
  return 0;
}

/// `colscope health --connect H:P`: lifecycle + accounting probe.
int RunHealthClient(const CliArgs& args) {
  if (args.connect.empty()) {
    std::fprintf(stderr, "health requires --connect HOST:PORT\n");
    return 2;
  }
  Result<net::Endpoint> endpoint = net::ParseEndpoint(args.connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  net::NetOptions net;
  Result<server::HealthInfo> health = server::RequestHealth(*endpoint, net);
  if (!health.ok()) {
    std::fprintf(stderr, "%s\n", health.status().ToString().c_str());
    return 1;
  }
  std::printf("state %s\n", health->state.c_str());
  std::printf("queue_depth %zu\n", health->queue_depth);
  std::printf("inflight %zu\n", health->inflight);
  std::printf("admitted %llu\n",
              static_cast<unsigned long long>(health->admitted));
  std::printf("shed %llu\n", static_cast<unsigned long long>(health->shed));
  std::printf("deadline_exceeded %llu\n",
              static_cast<unsigned long long>(health->deadline_exceeded));
  std::printf("completed %llu\n",
              static_cast<unsigned long long>(health->completed));
  std::printf("failed %llu\n",
              static_cast<unsigned long long>(health->failed));
  return 0;
}

/// `colscope shutdown --connect H:P`: programmatic drain trigger.
int RunShutdownClient(const CliArgs& args) {
  if (args.connect.empty()) {
    std::fprintf(stderr, "shutdown requires --connect HOST:PORT\n");
    return 2;
  }
  Result<net::Endpoint> endpoint = net::ParseEndpoint(args.connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  net::NetOptions net;
  const Status status = server::RequestShutdown(*endpoint, net);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunPipeline(const CliArgs& args) {
  Result<schema::SchemaSet> set = LoadSchemas(args);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }

  // Observability: a per-run registry plus a tracer over the chosen
  // clock. The simulated clock makes trace/metrics files byte-identical
  // across identical runs (profiling uses the real clock).
  const bool observe = !args.metrics_out.empty() || !args.trace_out.empty();
  obs::MetricsRegistry registry;
  obs::SystemTraceClock real_clock;
  obs::SimulatedTraceClock sim_clock;
  if (args.trace_clock != "real" && args.trace_clock != "sim") {
    std::fprintf(stderr, "unknown trace clock (want real|sim): %s\n",
                 args.trace_clock.c_str());
    return 2;
  }
  obs::Tracer tracer(args.trace_clock == "sim"
                         ? static_cast<obs::TraceClock*>(&sim_clock)
                         : &real_clock);

  const embed::HashedLexiconEncoder encoder;
  const outlier::PcaDetector detector(0.5);

  // One worker pool shared by the pipeline's parallel phases and the
  // matcher; absent in the default --threads 1 configuration. Output is
  // byte-identical at any thread count (parallel stages merge per-index
  // slots in index order), so --threads is purely a speed knob.
  std::optional<ThreadPool> pool;
  if (args.threads != 1) pool.emplace(args.threads);

  pipeline::PipelineOptions options;
  if (observe) {
    options.metrics = &registry;
    options.tracer = &tracer;
  }
  options.num_threads = args.threads;
  if (pool.has_value()) options.pool = &*pool;
  options.explained_variance = args.v;
  options.keep_portion = args.keep_portion;

  // Robustness controls: deadline on the chosen run clock, checkpoint
  // directory, resume, and the crash-injection test hook. The simulated
  // run clock advances 1ms per observation, so deadline exhaustion (and
  // therefore the partial report) is byte-reproducible in tests.
  if (args.run_clock != "real" && args.run_clock != "sim") {
    std::fprintf(stderr, "unknown run clock (want real|sim): %s\n",
                 args.run_clock.c_str());
    return 2;
  }
  SystemRunClock real_run_clock;
  SimulatedRunClock sim_run_clock(/*tick_ms=*/1.0);
  if (args.run_clock == "sim") options.clock = &sim_run_clock;
  else options.clock = &real_run_clock;
  options.deadline_ms = args.deadline_ms;
  options.checkpoint_dir = args.checkpoint_dir;
  options.resume = args.resume;
  options.crash_after_phase = args.crash_after;
  if (args.resume && args.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  options.cache_dir = args.cache_dir;
  options.cache_max_bytes = args.cache_max_bytes;
  if (args.cache_max_bytes != 0 && args.cache_dir.empty()) {
    std::fprintf(stderr, "--cache-max-bytes requires --cache-dir\n");
    return 2;
  }
  if (args.scoper == "pca") {
    options.scoper = pipeline::ScoperKind::kCollaborativePca;
  } else if (args.scoper == "neural") {
    options.scoper = pipeline::ScoperKind::kCollaborativeNeural;
  } else if (args.scoper == "global") {
    options.scoper = pipeline::ScoperKind::kGlobalScoping;
    options.detector = &detector;
  } else if (args.scoper == "none") {
    options.scoper = pipeline::ScoperKind::kNone;
  } else {
    std::fprintf(stderr, "unknown scoper: %s\n", args.scoper.c_str());
    return 2;
  }

  if (!args.faults.empty() || !args.exchange_policy.empty()) {
    options.exchange.enabled = true;
    if (!args.faults.empty()) {
      Result<FaultProfile> profile = ParseFaultSpec(args.faults);
      if (!profile.ok()) {
        std::fprintf(stderr, "--faults: %s\n",
                     profile.status().ToString().c_str());
        return 2;
      }
      options.exchange.faults = *profile;
    }
    if (!args.exchange_policy.empty()) {
      Result<scoping::DegradedOptions> degraded =
          scoping::ParseDegradedPolicy(args.exchange_policy);
      if (!degraded.ok()) {
        std::fprintf(stderr, "--exchange-policy: %s\n",
                     degraded.status().ToString().c_str());
        return 2;
      }
      options.exchange.degraded = *degraded;
    }
  }

  std::unique_ptr<matching::Matcher> matcher =
      MakeMatcher(args, pool.has_value() ? &*pool : nullptr);
  if (matcher == nullptr) {
    std::fprintf(stderr, "unknown matcher: %s\n", args.matcher.c_str());
    return 2;
  }

  pipeline::Pipeline pipe(&encoder, options);
  Result<pipeline::PipelineRun> run = pipe.Run(*set, *matcher);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  if (run->degradation.has_value() && !args.json) {
    std::printf("# exchange: %s\n",
                exchange::FormatDegradationReport(*run->degradation).c_str());
  }

  if (!args.metrics_out.empty() &&
      !WriteTextFile(args.metrics_out,
                     obs::SnapshotToJsonString(registry.Snapshot()))) {
    return 1;
  }
  if (!args.trace_out.empty() &&
      !WriteTextFile(args.trace_out, tracer.ToChromeJson())) {
    return 1;
  }

  if (!run->status.ok()) {
    // Deadline/cancellation stopped the run at a phase boundary. The
    // partial artifacts are still valid, so emit the report (its
    // "status" field says why it is incomplete) and exit cleanly, with
    // the flight recorder's recent-event ledger as the post-mortem.
    run->flight = obs::FlightRecorder::Global().Snapshot();
    if (args.json) {
      std::printf("%s\n", pipeline::RunToJson(*run, *set).c_str());
      return 0;
    }
    std::printf("# run stopped early (%s) after phases:",
                StatusCodeToString(run->status.code()));
    for (const std::string& phase : run->phases_completed) {
      std::printf(" %s", phase.c_str());
    }
    std::printf("\n");
    return 0;
  }

  if (args.command == "scope") {
    std::printf("# linkability assessment (%s, v=%.2f)\n",
                args.scoper.c_str(), args.v);
    if (args.explain && args.scoper == "pca") {
      // Full audit: every foreign model's verdict per element.
      auto models = scoping::FitLocalModels(run->signatures,
                                            set->num_schemas(), args.v);
      if (!models.ok()) {
        std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
        return 1;
      }
      const auto explanations =
          scoping::ExplainLinkability(run->signatures, *models);
      for (const auto& explanation : explanations) {
        std::printf("%s\n",
                    scoping::FormatExplanation(explanation, *set).c_str());
      }
    } else {
      for (size_t i = 0; i < run->keep.size(); ++i) {
        std::printf("%-9s %s\n", run->keep[i] ? "linkable" : "pruned",
                    set->QualifiedName(run->signatures.refs[i]).c_str());
      }
    }
    std::printf("# kept %zu / %zu elements\n", run->num_kept(),
                run->keep.size());
    return 0;
  }
  if (args.command == "match") {
    if (args.json) {
      std::printf("%s\n", pipeline::RunToJson(*run, *set).c_str());
      return 0;
    }
    std::printf("# %zu correspondences from %s on streamlined schemas\n",
                run->linkages.size(), matcher->name().c_str());
    for (const auto& [a, b] : run->linkages) {
      const double cosine = linalg::CosineSimilarity(
          run->signatures.signatures.Row(set->IndexOf(a)),
          run->signatures.signatures.Row(set->IndexOf(b)));
      std::printf("%.3f  %s <-> %s\n", cosine,
                  set->QualifiedName(a).c_str(),
                  set->QualifiedName(b).c_str());
    }
    return 0;
  }
  if (args.command == "export") {
    for (const schema::Schema& s : run->streamlined.schemas()) {
      std::printf("%s\n", schema::WriteDdl(s).c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, args)) return Usage();
  if (!args.kernels.empty()) {
    const Status forced = linalg::simd::ForceMode(args.kernels);
    if (!forced.ok()) {
      std::fprintf(stderr, "--kernels: %s\n", forced.ToString().c_str());
      return 2;
    }
  }
  if (!args.log_level.empty()) {
    Result<obs::LogLevel> level = obs::ParseLogLevel(args.log_level);
    if (!level.ok()) {
      std::fprintf(stderr, "--log-level: %s\n",
                   level.status().ToString().c_str());
      return 2;
    }
    obs::Logger::Global().set_level(*level);
  }
  if (!args.role.empty()) {
    if (args.role == "worker") return RunWorker(args);
    if (args.role == "coordinator") {
      if (args.command != "scope" && args.command != "match") return Usage();
      return RunCoordinator(args);
    }
    if (args.role == "serve") return RunServe(args);
    std::fprintf(stderr, "unknown role (want worker|coordinator|serve): %s\n",
                 args.role.c_str());
    return 2;
  }
  if (args.command == "serve") return RunServe(args);
  if (args.command == "health") return RunHealthClient(args);
  if (args.command == "shutdown") return RunShutdownClient(args);
  if (args.command == "gen-corpus") return RunGenCorpus(args);
  if (args.command == "fit") return RunFit(args);
  if (args.command == "assess") return RunAssess(args);
  if (args.command != "scope" && args.command != "match" &&
      args.command != "export") {
    return Usage();
  }
  if (!args.connect.empty()) {
    if (args.command != "scope" && args.command != "match") {
      std::fprintf(stderr, "--connect only supports scope|match\n");
      return 2;
    }
    return RunScopeClient(args);
  }
  return RunPipeline(args);
}
