#!/bin/sh
# Artifact-cache determinism and invalidation check for the colscope CLI.
#
# Usage: check_cache_deterministic.sh CLI_BINARY TESTDATA_DIR SCRATCH_DIR
#
# 1. A gold run with no cache produces reference JSON.
# 2. A cold cached run must write every artifact (misses > 0, hits = 0)
#    and still produce byte-identical JSON.
# 3. Warm runs at --threads 1 and --threads 8 must both be all-hit and
#    byte-identical to gold.
# 4. Renaming a source file (identical content) must stay all-hit.
# 5. Editing one source must recompute only that source's artifacts:
#    with two schemas that is exactly 2 hits (the clean source's
#    signature block and model) and 5 misses (the dirty signature block
#    and model, both keep slices, and the similarity block).
#
# Byte-identity runs deliberately omit --metrics-out: the embedded
# metrics snapshot includes cache counters, which legitimately differ
# between cold and warm runs. Counters are asserted from separate
# --metrics-out files instead.
set -eu

cli=$1
testdata=$2
scratch=$3

rm -rf "$scratch"
mkdir -p "$scratch"
cache="$scratch/cache"

run() {
  # $1 = output file; remaining args are appended to the base command.
  out=$1
  shift
  "$cli" match \
    --ddl "$testdata/crm.sql" --ddl "$testdata/erp.sql" \
    --v 0.6 --log-level error --json "$@" > "$out"
}

# expect_counter FILE NAME VALUE: the metrics snapshot must report the
# counter at exactly that value ("absent" means the key must not appear,
# i.e. the counter stayed zero).
expect_counter() {
  if [ "$3" = absent ]; then
    if grep -q "\"$2\"" "$1"; then
      echo "FAIL: expected no $2 counter in $1" >&2
      exit 1
    fi
  elif ! grep -q "\"$2\":$3" "$1"; then
    echo "FAIL: expected $2=$3 in $1, got:" >&2
    grep -o '"cache[^,}]*' "$1" >&2 || echo "  (no cache counters)" >&2
    exit 1
  fi
}

run "$scratch/gold.json"

run "$scratch/cold.json" --cache-dir "$cache"
cmp "$scratch/gold.json" "$scratch/cold.json" || {
  echo "FAIL: cold cached run differs from the uncached gold run" >&2
  exit 1
}

for threads in 1 8; do
  run "$scratch/warm$threads.json" --cache-dir "$cache" --threads "$threads"
  cmp "$scratch/gold.json" "$scratch/warm$threads.json" || {
    echo "FAIL: warm run at --threads $threads differs from gold" >&2
    exit 1
  }
done

run /dev/null --cache-dir "$cache" --metrics-out "$scratch/warm_m.json"
expect_counter "$scratch/warm_m.json" cache.misses absent
expect_counter "$scratch/warm_m.json" cache.hits 7

# A renamed-but-identical source file must still be all-hit: cache keys
# fingerprint serialized content, and no serialized text mentions the
# schema (file) name.
cp "$testdata/erp.sql" "$scratch/renamed_copy.sql"
"$cli" match --ddl "$testdata/crm.sql" --ddl "$scratch/renamed_copy.sql" \
  --v 0.6 --log-level error --json --cache-dir "$cache" \
  --metrics-out "$scratch/rename_m.json" > /dev/null
expect_counter "$scratch/rename_m.json" cache.misses absent
expect_counter "$scratch/rename_m.json" cache.hits 7

# Editing one source must invalidate only its own artifacts plus the
# shared ones derived from it.
sed 's/fax/telefax/' "$testdata/crm.sql" > "$scratch/crm_edited.sql"
"$cli" match --ddl "$scratch/crm_edited.sql" --ddl "$testdata/erp.sql" \
  --v 0.6 --log-level error --json --cache-dir "$cache" \
  --metrics-out "$scratch/delta_m.json" > /dev/null
expect_counter "$scratch/delta_m.json" cache.hits 2
expect_counter "$scratch/delta_m.json" cache.misses 5

rm -rf "$scratch"
echo "cache determinism OK"
