#!/usr/bin/env bash
# Builds and runs the kernel benchmarks, writing BENCH_*.json result
# files, and (when baselines exist) checks the kernel speedup ratios
# against them.
#
# Usage:
#   tools/run_benches.sh [--smoke] [--out DIR] [--build-dir DIR] [--all]
#
#   --smoke       tiny sizes (seconds; what the bench_smoke ctest runs)
#   --out DIR     where BENCH_*.json land (default: bench/baselines[/smoke]
#                 so a run refreshes the committed baselines in place)
#   --build-dir   CMake build tree (default: build)
#   --all         also run every paper-table bench binary after the
#                 kernel bench (slow; results land in the same --out)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
OUT=""
BUILD_DIR=build
RUN_ALL=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --all) RUN_ALL=1; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

if [[ -z "$OUT" ]]; then
  if [[ "$SMOKE" -eq 1 ]]; then OUT=bench/baselines/smoke; else OUT=bench/baselines; fi
fi
mkdir -p "$OUT"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
cmake --build "$BUILD_DIR" --target linalg_kernels cache_warm_vs_cold \
  server_load corpus_scale -j "$(nproc)" >/dev/null

SMOKE_FLAG=()
if [[ "$SMOKE" -eq 1 ]]; then SMOKE_FLAG=(--smoke); fi
"$BUILD_DIR/bench/linalg_kernels" "${SMOKE_FLAG[@]}" --out "$OUT"
"$BUILD_DIR/bench/cache_warm_vs_cold" "${SMOKE_FLAG[@]}" --out "$OUT"
"$BUILD_DIR/bench/server_load" "${SMOKE_FLAG[@]}" --out "$OUT"
"$BUILD_DIR/bench/corpus_scale" "${SMOKE_FLAG[@]}" --out "$OUT"

# Gate against the committed baselines unless this run just rewrote
# them. The cache gate runs looser than the kernel gate: whole-pipeline
# timings are noisier than kernel microbenchmarks.
BASELINE_DIR=bench/baselines
if [[ "$SMOKE" -eq 1 ]]; then BASELINE_DIR=bench/baselines/smoke; fi
BASELINE="$BASELINE_DIR/BENCH_linalg_kernels.json"
CURRENT="$OUT/BENCH_linalg_kernels.json"
if [[ -f "$BASELINE" && "$BASELINE" != "$CURRENT" ]]; then
  python3 tools/check_bench_regression.py \
    --baseline "$BASELINE" --current "$CURRENT"
fi
BASELINE="$BASELINE_DIR/BENCH_cache_warm_vs_cold.json"
CURRENT="$OUT/BENCH_cache_warm_vs_cold.json"
if [[ -f "$BASELINE" && "$BASELINE" != "$CURRENT" ]]; then
  python3 tools/check_bench_regression.py \
    --baseline "$BASELINE" --current "$CURRENT" --tolerance 0.6
fi
# The server-load gate only checks the dimensionless "ok" invariant
# cells (served/shed/drain behavior); latencies are informational.
BASELINE="$BASELINE_DIR/BENCH_server_load.json"
CURRENT="$OUT/BENCH_server_load.json"
if [[ -f "$BASELINE" && "$BASELINE" != "$CURRENT" ]]; then
  python3 tools/check_bench_regression.py \
    --baseline "$BASELINE" --current "$CURRENT"
fi

# The corpus-scale gate checks deterministic recall/F1/sub-linearity
# invariants everywhere; its timing-ratio cell (ivf_speedup) exists
# only in the full baseline, so PR smoke runs never gate on wall time.
BASELINE="$BASELINE_DIR/BENCH_corpus_scale.json"
CURRENT="$OUT/BENCH_corpus_scale.json"
if [[ -f "$BASELINE" && "$BASELINE" != "$CURRENT" ]]; then
  python3 tools/check_bench_regression.py \
    --baseline "$BASELINE" --current "$CURRENT" --tolerance 0.5
fi

if [[ "$RUN_ALL" -eq 1 ]]; then
  cmake --build "$BUILD_DIR" --target all -j "$(nproc)" >/dev/null
  for bench in table2_datasets table3_cartesian table4_scoping_auc \
      fig5_oc3_curves fig6_oc3fo_curves fig7_ablation discussion_tradeoff \
      ablation_overhead ablation_encoders ablation_instances ablation_er \
      ablation_valentine ablation_generalization; do
    echo "== $bench =="
    (cd "$OUT" && "$OLDPWD/$BUILD_DIR/bench/$bench")
  done
fi
