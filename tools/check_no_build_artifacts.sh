#!/bin/sh
# Fails when build artifacts (build trees, object files, CMake caches)
# are tracked by git. Usage: check_no_build_artifacts.sh [REPO_DIR]
repo="${1:-.}"
cd "$repo" || exit 1
if ! git -C . rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "not a git checkout; skipping build-artifact check"
  exit 0
fi
bad=$(git ls-files |
  grep -E '(^|/)build[^/]*/|\.(o|a|so)$|(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/' \
  || true)
if [ -n "$bad" ]; then
  count=$(echo "$bad" | wc -l)
  echo "FOUND $count tracked build artifact(s), e.g.:"
  echo "$bad" | head -10
  echo "fix: git rm -r --cached <paths>  (and keep .gitignore covering them)"
  exit 1
fi
echo "no tracked build artifacts"
exit 0
