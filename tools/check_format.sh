#!/bin/sh
# Check-only clang-format gate over the repo's C++ sources.
#
# Usage: check_format.sh REPO_ROOT
#
# Exits non-zero listing every file that clang-format would rewrite;
# never modifies anything. When clang-format is not installed (the CI
# lint job has it; minimal local containers may not), the check is
# skipped with a notice rather than failing the build.
set -eu

root=${1:-.}

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping format check"
  exit 0
fi

bad=0
for f in $(find "$root/src" "$root/tests" "$root/bench" "$root/tools" \
    -name '*.cc' -o -name '*.h' 2> /dev/null | LC_ALL=C sort); do
  if ! clang-format --style=file --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f" >&2
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_format: run clang-format -i on the files above" >&2
  exit 1
fi
echo "format OK"
