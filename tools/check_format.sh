#!/bin/sh
# Check-only clang-format gate over the repo's C++ sources.
#
# Usage: check_format.sh REPO_ROOT
#
# Exits non-zero listing every file that clang-format would rewrite;
# never modifies anything. When clang-format is not installed (the CI
# lint job has it; minimal local containers may not), the check is
# skipped with a notice rather than failing the build.
set -eu

root=${1:-.}

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping format check"
  exit 0
fi

# while-read instead of `for f in $(find ...)` (SC2044); the bad-files
# list carries failures out of the pipeline's subshell.
bad=$(find "$root/src" "$root/tests" "$root/bench" "$root/tools" \
    \( -name '*.cc' -o -name '*.h' \) -print 2> /dev/null | LC_ALL=C sort |
  while IFS= read -r f; do
    if ! clang-format --style=file --dry-run --Werror "$f" > /dev/null 2>&1; then
      printf '%s\n' "$f"
    fi
  done)

if [ -n "$bad" ]; then
  printf 'needs formatting: %s\n' "$bad" >&2
  echo "check_format: run clang-format -i on the files above" >&2
  exit 1
fi
echo "format OK"
