#!/bin/sh
# Replays every .github/workflows/ci.yml job locally, in order:
#
#   1. build-test matrix: {gcc, clang} x {Debug, Release} + ctest
#   2. sanitizers:        tools/run_sanitized_tests.sh
#   3. distributed-smoke: tools/run_distributed_smoke.sh (multi-process
#                         coordinator/worker quorum + telemetry-harvest
#                         test under ASan/UBSan)
#   4. server-smoke:      tools/run_server_smoke.sh (resident colscoped
#                         daemon: drain, overload shedding, crash-restart
#                         byte-identity, under ASan/UBSan)
#   5. kernels-matrix:    kernel equivalence tests under native dispatch
#                         and with COLSCOPE_FORCE_SCALAR=1
#   6. bench-smoke:       tools/run_benches.sh --smoke + regression gates
#   7. lint:              header / build-artifact / format / shell checks
#
# With --nightly the bench job mirrors the CI nightly-bench lane
# instead (tools/run_benches.sh --all at full sizes, results in
# bench-results-full/ — the lane CI keeps as 90-day artifacts).
#
# Toolchains the machine lacks (clang, ccache, clang-format,
# shellcheck) are detected and skipped with a notice instead of
# failing, so the script is useful both on full dev boxes and minimal
# containers. Any check that *runs* and fails fails the script.
#
# Usage: tools/run_ci_local.sh [--skip-sanitizers] [--skip-bench] [--nightly]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

skip_sanitizers=0
skip_bench=0
nightly=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) skip_sanitizers=1 ;;
    --skip-bench) skip_bench=1 ;;
    --nightly) nightly=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

note() { printf '\n== %s ==\n' "$1"; }

launcher_flags=""
if command -v ccache > /dev/null 2>&1; then
  launcher_flags="-DCMAKE_C_COMPILER_LAUNCHER=ccache \
    -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
else
  note "ccache not found; building without a compiler launcher"
fi

# Job 1: build-test matrix.
for compiler in gcc clang; do
  case "$compiler" in
    gcc) cc=gcc cxx=g++ ;;
    clang) cc=clang cxx=clang++ ;;
  esac
  if ! command -v "$cxx" > /dev/null 2>&1; then
    note "build-test[$compiler]: $cxx not found; skipping"
    continue
  fi
  for build_type in Debug Release; do
    note "build-test[$compiler/$build_type]"
    build="build-ci-$compiler-$(echo "$build_type" | tr '[:upper:]' '[:lower:]')"
    # shellcheck disable=SC2086  # launcher_flags is intentionally split
    CC=$cc CXX=$cxx cmake -B "$build" -S . \
      -DCMAKE_BUILD_TYPE="$build_type" $launcher_flags > /dev/null
    cmake --build "$build" -j "$(nproc)" > /dev/null
    (cd "$build" && ctest --output-on-failure -j "$(nproc)")
  done
done

# Job 2: sanitizers.
if [ "$skip_sanitizers" -eq 1 ]; then
  note "sanitizers: skipped (--skip-sanitizers)"
else
  note "sanitizers"
  tools/run_sanitized_tests.sh
fi

# Job 3: distributed multi-process smoke under sanitizers. Shares the
# --skip-sanitizers flag: both jobs exist to run instrumented builds.
if [ "$skip_sanitizers" -eq 1 ]; then
  note "distributed-smoke: skipped (--skip-sanitizers)"
else
  note "distributed-smoke"
  tools/run_distributed_smoke.sh
fi

# Job 4: resident-server smoke under sanitizers. Shares the
# --skip-sanitizers flag for the same reason as job 3.
if [ "$skip_sanitizers" -eq 1 ]; then
  note "server-smoke: skipped (--skip-sanitizers)"
else
  note "server-smoke"
  tools/run_server_smoke.sh
fi

# Job 5: kernel dispatch matrix. The equivalence battery must pass with
# whatever SIMD table the runtime dispatcher picked AND with the
# COLSCOPE_FORCE_SCALAR escape hatch pinning the scalar reference.
note "kernels-matrix"
kernels_build="build-ci-kernels"
# shellcheck disable=SC2086  # launcher_flags is intentionally split
cmake -B "$kernels_build" -S . -DCMAKE_BUILD_TYPE=Release \
  $launcher_flags > /dev/null
cmake --build "$kernels_build" -j "$(nproc)" \
  --target simd_kernels_test linalg_kernels_test > /dev/null
note "kernels-matrix[native]"
(cd "$kernels_build" && \
  ctest --output-on-failure -R '^(simd_kernels_test|linalg_kernels_test)$')
note "kernels-matrix[scalar]"
(cd "$kernels_build" && COLSCOPE_FORCE_SCALAR=1 \
  ctest --output-on-failure -R '^(simd_kernels_test|linalg_kernels_test)$')

# Job 6: bench smoke + regression gates. With --nightly this mirrors
# the CI nightly-bench lane: every bench at full (non-smoke) sizes,
# gated against the committed full baselines.
if [ "$skip_bench" -eq 1 ]; then
  note "bench: skipped (--skip-bench)"
elif [ "$nightly" -eq 1 ]; then
  note "nightly-bench (full sizes, --all)"
  tools/run_benches.sh --all --out bench-results-full
else
  note "bench-smoke"
  tools/run_benches.sh --smoke --out bench-results
fi

# Job 7: lint.
note "lint"
tools/check_headers.sh src "${CXX:-c++}" bench
tools/check_no_build_artifacts.sh .
tools/check_format.sh .
tools/check_shellcheck.sh .

note "all local CI jobs passed"
