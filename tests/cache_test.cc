#include "cache/artifact_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/pipeline_cache.h"
#include "common/checksum.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "obs/metrics.h"
#include "pipeline/checkpoint.h"
#include "pipeline/pipeline.h"
#include "schema/fingerprint.h"

namespace colscope::cache {
namespace {

/// Fresh per-test scratch directory under the system temp dir, removed
/// on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("colscope_cache_" + name))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ArtifactCache OpenOrDie(ArtifactCacheOptions options) {
  Result<ArtifactCache> cache = ArtifactCache::Open(std::move(options));
  EXPECT_TRUE(cache.ok()) << cache.status().ToString();
  return std::move(cache).value();
}

ArtifactCacheOptions MakeOptions(const std::string& dir,
                                 obs::MetricsRegistry* metrics = nullptr,
                                 uint64_t max_bytes = 0,
                                 const CancellationToken* cancel = nullptr) {
  ArtifactCacheOptions options;
  options.dir = dir;
  options.max_bytes = max_bytes;
  options.metrics = metrics;
  options.cancel = cancel;
  return options;
}

uint64_t CounterValue(obs::MetricsRegistry& metrics, const char* name) {
  return metrics.GetCounter(name).value();
}

TEST(CacheKeyBuilderTest, KeyTextIsCanonicalAndHashMatches) {
  const CacheKey key = CacheKeyBuilder("sig")
                           .AddHex("src", 0xdeadbeefULL)
                           .AddText("ev", "0.8")
                           .Build();
  EXPECT_EQ(key.text, "sig|src=00000000deadbeef|ev=0.8");
  EXPECT_EQ(key.hash, Fnv1a64(key.text));
}

TEST(ArtifactCacheTest, RoundTripsPayloadBytes) {
  ScratchDir dir("roundtrip");
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path()));
  const CacheKey key = CacheKeyBuilder("sig").AddHex("src", 1).Build();
  const std::string payload = "row 1 2 3\nrow 4 5 6\nbinary \x01\x02\n";
  ASSERT_TRUE(cache.Put(key, payload).ok());
  Result<std::string> got = cache.Get(key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
}

TEST(ArtifactCacheTest, MissIsNotFoundAndCounted) {
  ScratchDir dir("miss");
  obs::MetricsRegistry metrics;
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path(), &metrics));
  Result<std::string> got =
      cache.Get(CacheKeyBuilder("sig").AddHex("src", 2).Build());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue(metrics, "cache.misses"), 1u);
  EXPECT_EQ(CounterValue(metrics, "cache.hits"), 0u);
}

TEST(ArtifactCacheTest, ReopenSeesPersistedEntries) {
  ScratchDir dir("reopen");
  const CacheKey key = CacheKeyBuilder("model").AddHex("src", 3).Build();
  {
    ArtifactCache cache = OpenOrDie(MakeOptions(dir.path()));
    ASSERT_TRUE(cache.Put(key, "persisted").ok());
  }
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path()));
  Result<std::string> got = cache.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "persisted");
  EXPECT_GT(cache.total_bytes(), 0u);
}

TEST(ArtifactCacheTest, IncompatibleVersionStampRefusesToOpen) {
  ScratchDir dir("version");
  std::filesystem::create_directories(dir.path());
  std::ofstream(dir.path() + "/CACHE_VERSION") << "colscope-cache v999\n";
  Result<ArtifactCache> cache = ArtifactCache::Open(MakeOptions(dir.path()));
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArtifactCacheTest, CorruptedEntryFallsThroughToMiss) {
  ScratchDir dir("corrupt");
  obs::MetricsRegistry metrics;
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path(), &metrics));
  const CacheKey key = CacheKeyBuilder("sig").AddHex("src", 4).Build();
  ASSERT_TRUE(cache.Put(key, "the quick brown fox").ok());

  // Flip one payload byte on disk; the checksum must catch it.
  const std::string path = cache.PathFor(key);
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  contents[contents.size() - 5] ^= 0x20;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << contents;

  Result<std::string> got = cache.Get(key);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue(metrics, "cache.corrupt"), 1u);
  EXPECT_EQ(CounterValue(metrics, "cache.misses"), 1u);
}

TEST(ArtifactCacheTest, TruncatedEntryFallsThroughToMiss) {
  ScratchDir dir("truncate");
  obs::MetricsRegistry metrics;
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path(), &metrics));
  const CacheKey key = CacheKeyBuilder("sig").AddHex("src", 5).Build();
  ASSERT_TRUE(cache.Put(key, std::string(256, 'x')).ok());

  const std::string path = cache.PathFor(key);
  std::filesystem::resize_file(path, 40);  // Mid-envelope.

  Result<std::string> got = cache.Get(key);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue(metrics, "cache.corrupt"), 1u);
}

TEST(ArtifactCacheTest, HashCollisionDegradesToMissNotWrongPayload) {
  ScratchDir dir("collision");
  obs::MetricsRegistry metrics;
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path(), &metrics));
  const CacheKey a = CacheKeyBuilder("sig").AddHex("src", 6).Build();
  ASSERT_TRUE(cache.Put(a, "payload of a").ok());

  // Simulate a 64-bit collision: a different key whose hash (and
  // therefore on-disk path) equals a's. The stored key text must reject
  // the lookup instead of serving a's payload.
  CacheKey impostor = CacheKeyBuilder("sig").AddHex("src", 7).Build();
  impostor.hash = a.hash;
  Result<std::string> got = cache.Get(impostor);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue(metrics, "cache.collisions"), 1u);
  // The true key still hits.
  EXPECT_TRUE(cache.Get(a).ok());
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedUnderSizeCap) {
  ScratchDir dir("evict");
  obs::MetricsRegistry metrics;
  // The cap covers whole entries (envelope + payload, ~240 bytes each
  // here): two fit under 600, three do not.
  ArtifactCache cache = OpenOrDie(
      MakeOptions(dir.path(), &metrics, /*max_bytes=*/600));
  const CacheKey k1 = CacheKeyBuilder("sig").AddHex("src", 11).Build();
  const CacheKey k2 = CacheKeyBuilder("sig").AddHex("src", 12).Build();
  const CacheKey k3 = CacheKeyBuilder("sig").AddHex("src", 13).Build();
  ASSERT_TRUE(cache.Put(k1, std::string(150, 'a')).ok());
  ASSERT_TRUE(cache.Put(k2, std::string(150, 'b')).ok());
  ASSERT_EQ(CounterValue(metrics, "cache.evictions"), 0u);
  // Touch k1 so k2 becomes the least recently used.
  ASSERT_TRUE(cache.Get(k1).ok());
  // k3 pushes the total over the cap; k2 must go, k3 must survive.
  ASSERT_TRUE(cache.Put(k3, std::string(150, 'c')).ok());
  EXPECT_GE(CounterValue(metrics, "cache.evictions"), 1u);
  EXPECT_TRUE(cache.Get(k3).ok()) << "the just-written entry was evicted";
  EXPECT_FALSE(cache.Get(k2).ok()) << "the LRU entry survived the cap";
  EXPECT_LE(cache.total_bytes(), 600u);
}

TEST(ArtifactCacheTest, CancelledTokenStopsLookups) {
  ScratchDir dir("cancel");
  CancellationToken cancel;
  ArtifactCache cache = OpenOrDie(MakeOptions(dir.path(), nullptr, 0, &cancel));
  const CacheKey key = CacheKeyBuilder("sig").AddHex("src", 20).Build();
  ASSERT_TRUE(cache.Put(key, "data").ok());
  cancel.Cancel();
  Result<std::string> got = cache.Get(key);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(cache.Put(key, "data").code(), StatusCode::kCancelled);
}

TEST(ArtifactCacheTest, ExpiredDeadlineStopsLookups) {
  ScratchDir dir("deadline");
  SimulatedRunClock clock;
  ArtifactCacheOptions options = MakeOptions(dir.path());
  options.deadline = Deadline::After(&clock, 10.0);
  ArtifactCache cache = OpenOrDie(std::move(options));
  const CacheKey key = CacheKeyBuilder("sig").AddHex("src", 21).Build();
  ASSERT_TRUE(cache.Put(key, "data").ok());
  clock.Advance(11.0);
  Result<std::string> got = cache.Get(key);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SchemaFingerprintTest, ContentNotNameOrPosition) {
  const auto scenario = datasets::BuildToyScenario();
  const schema::Schema& original = scenario.set.schema(0);

  schema::Schema renamed = original;
  renamed.set_name("completely_different_name");
  EXPECT_EQ(schema::SchemaContentFingerprint(original),
            schema::SchemaContentFingerprint(renamed));

  schema::Schema edited = original;
  edited.mutable_tables()[0].attributes[0].raw_type = "BLOB";
  edited.mutable_tables()[0].attributes[0].type = schema::DataType::kBlob;
  EXPECT_NE(schema::SchemaContentFingerprint(original),
            schema::SchemaContentFingerprint(edited));
}

/// Pipeline-level fixture: runs the toy scenario through Pipeline::Run
/// with a cache directory and inspects the per-source invalidation.
class PipelineCacheTest : public ::testing::Test {
 protected:
  pipeline::PipelineRun RunWith(const schema::SchemaSet& set,
                                const std::string& cache_dir,
                                obs::MetricsRegistry* metrics,
                                size_t threads = 1) {
    pipeline::PipelineOptions options;
    options.explained_variance = 0.5;
    options.cache_dir = cache_dir;
    options.metrics = metrics;
    options.num_threads = threads;
    pipeline::Pipeline pipe(&encoder_, options);
    auto run = pipe.Run(set, matcher_);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(run).value();
  }

  embed::HashedLexiconEncoder encoder_;
  matching::SimMatcher matcher_{0.6};
  datasets::MatchingScenario scenario_ = datasets::BuildToyScenario();
};

TEST_F(PipelineCacheTest, WarmRunHitsEverythingAndMatchesColdBitForBit) {
  ScratchDir dir("pipeline_warm");
  obs::MetricsRegistry cold_metrics;
  const pipeline::PipelineRun cold =
      RunWith(scenario_.set, dir.path(), &cold_metrics);
  EXPECT_EQ(CounterValue(cold_metrics, "cache.hits"), 0u);
  EXPECT_GT(CounterValue(cold_metrics, "cache.misses"), 0u);

  obs::MetricsRegistry warm_metrics;
  const pipeline::PipelineRun warm =
      RunWith(scenario_.set, dir.path(), &warm_metrics, /*threads=*/4);
  EXPECT_EQ(CounterValue(warm_metrics, "cache.misses"), 0u);
  EXPECT_GT(CounterValue(warm_metrics, "cache.hits"), 0u);

  EXPECT_EQ(cold.signatures.signatures.data(),
            warm.signatures.signatures.data());
  EXPECT_EQ(cold.keep, warm.keep);
  EXPECT_EQ(cold.linkages, warm.linkages);
}

TEST_F(PipelineCacheTest, EditingOneSourceRecomputesOnlyItsArtifacts) {
  ScratchDir dir("pipeline_delta");
  // Two sources so artifact counts are exact: 2 signature blocks,
  // 2 models, 2 keep slices, 1 similarity block = 7 artifacts.
  std::vector<schema::Schema> two = {scenario_.set.schema(0),
                                     scenario_.set.schema(1)};
  obs::MetricsRegistry cold_metrics;
  RunWith(schema::SchemaSet(two), dir.path(), &cold_metrics);
  EXPECT_EQ(CounterValue(cold_metrics, "cache.misses"), 7u);
  EXPECT_EQ(CounterValue(cold_metrics, "cache.writes"), 7u);

  // Edit one attribute of source 0; source 1 stays untouched.
  two[0].mutable_tables()[0].attributes[0].name = "renamed_attr";

  obs::MetricsRegistry delta_metrics;
  RunWith(schema::SchemaSet(two), dir.path(), &delta_metrics);
  // Dirty (misses): source 0's signature block and model, both keep
  // slices (the shared model set changed), and the similarity block.
  // Clean (hits): source 1's signature block and model.
  EXPECT_EQ(CounterValue(delta_metrics, "cache.hits"), 2u);
  EXPECT_EQ(CounterValue(delta_metrics, "cache.misses"), 5u);
}

TEST_F(PipelineCacheTest, RenamedSourceIsACacheHit) {
  ScratchDir dir("pipeline_rename");
  obs::MetricsRegistry cold_metrics;
  RunWith(scenario_.set, dir.path(), &cold_metrics);

  std::vector<schema::Schema> schemas = scenario_.set.schemas();
  for (auto& schema : schemas) schema.set_name(schema.name() + "_renamed");
  const schema::SchemaSet renamed(schemas);

  obs::MetricsRegistry warm_metrics;
  RunWith(renamed, dir.path(), &warm_metrics);
  EXPECT_EQ(CounterValue(warm_metrics, "cache.misses"), 0u);
}

TEST_F(PipelineCacheTest, ResumeAndCacheCompose) {
  ScratchDir cache_dir("pipeline_cache_resume");
  ScratchDir ckpt_dir("pipeline_ckpt_resume");

  pipeline::PipelineOptions options;
  options.explained_variance = 0.5;
  options.cache_dir = cache_dir.path();
  options.checkpoint_dir = ckpt_dir.path();
  pipeline::Pipeline cold(&encoder_, options);
  auto cold_run = cold.Run(scenario_.set, matcher_);
  ASSERT_TRUE(cold_run.ok());

  // Resume: checkpoints win for the phases they cover; the cache still
  // serves the similarity blocks. The run must agree bit-for-bit.
  obs::MetricsRegistry metrics;
  options.resume = true;
  options.metrics = &metrics;
  pipeline::Pipeline warm(&encoder_, options);
  auto warm_run = warm.Run(scenario_.set, matcher_);
  ASSERT_TRUE(warm_run.ok());
  EXPECT_GT(warm_run->phases_resumed, 0u);
  EXPECT_EQ(CounterValue(metrics, "cache.misses"), 0u);
  EXPECT_EQ(cold_run->keep, warm_run->keep);
  EXPECT_EQ(cold_run->linkages, warm_run->linkages);
  EXPECT_EQ(cold_run->signatures.signatures.data(),
            warm_run->signatures.signatures.data());
}

}  // namespace
}  // namespace colscope::cache
