// The SIMD dispatch contract, end to end: every double-precision kernel
// of every compiled-in table is bit-identical to the scalar reference
// (the canonical 16-lane reduction tree), the int8 kernels are exact
// integer arithmetic, ForceMode/COLSCOPE_FORCE_SCALAR steer dispatch,
// dot_fast stays within its forward error bound, the quantized
// signature store round-trips within its error bounds, and the
// quantized prefilters never change what the exact matchers return.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "embed/quantized_store.h"
#include "linalg/matrix.h"
#include "linalg/simd/kernels.h"
#include "linalg/stats.h"
#include "matching/flat_index.h"
#include "matching/token_blocking.h"
#include "scoping/signatures.h"

namespace colscope::linalg::simd {
namespace {

/// Lengths that straddle every boundary the kernels care about: empty,
/// sub-lane tails, exact lane multiples, the AVX2 dot_fast 16-wide
/// body, the int8 32-wide body, and signature-sized spans.
const size_t kLengths[] = {0,  1,  2,  3,  5,  7,  8,  9,  15, 16,  17,
                           31, 32, 33, 63, 64, 65, 96, 100, 255, 256,
                           257, 767, 768, 769};

std::vector<double> RandomSpan(size_t n, uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed);
  for (double& x : v) x = rng.NextGaussian();
  return v;
}

std::vector<int8_t> RandomCodes(size_t n, uint64_t seed) {
  std::vector<int8_t> v(n);
  Rng rng(seed);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(static_cast<int>(rng.NextBounded(255)) - 127);
  }
  return v;
}

/// Every table this build can run: scalar always, native when the host
/// supports it.
std::vector<const KernelTable*> RunnableTables() {
  std::vector<const KernelTable*> tables = {&ScalarKernels()};
  if (NativeKernels() != nullptr) tables.push_back(NativeKernels());
  return tables;
}

TEST(SimdKernelsTest, DoubleKernelsBitIdenticalToScalarAcrossLengths) {
  const KernelTable& scalar = ScalarKernels();
  for (const KernelTable* table : RunnableTables()) {
    for (size_t n : kLengths) {
      const auto a = RandomSpan(n, 1000 + n);
      const auto b = RandomSpan(n, 2000 + n);
      EXPECT_EQ(table->dot(a.data(), b.data(), n),
                scalar.dot(a.data(), b.data(), n))
          << table->name << " dot n=" << n;
      EXPECT_EQ(table->squared_l2(a.data(), b.data(), n),
                scalar.squared_l2(a.data(), b.data(), n))
          << table->name << " squared_l2 n=" << n;
      double d1, na1, nb1, d2, na2, nb2;
      table->cosine_terms(a.data(), b.data(), n, &d1, &na1, &nb1);
      scalar.cosine_terms(a.data(), b.data(), n, &d2, &na2, &nb2);
      EXPECT_EQ(d1, d2) << table->name << " cosine dot n=" << n;
      EXPECT_EQ(na1, na2) << table->name << " cosine norm2_a n=" << n;
      EXPECT_EQ(nb1, nb2) << table->name << " cosine norm2_b n=" << n;
    }
  }
}

TEST(SimdKernelsTest, DoubleKernelsBitIdenticalOnUnalignedSpans) {
  // Offset views of an over-allocated buffer shift the base pointer off
  // every 64/32/16-byte boundary; results must not depend on alignment.
  const size_t n = 768;
  const auto a = RandomSpan(n + 8, 31);
  const auto b = RandomSpan(n + 8, 32);
  const KernelTable& scalar = ScalarKernels();
  for (const KernelTable* table : RunnableTables()) {
    for (size_t off = 0; off < 8; ++off) {
      EXPECT_EQ(table->dot(a.data() + off, b.data() + off, n),
                scalar.dot(a.data() + off, b.data() + off, n))
          << table->name << " offset=" << off;
      EXPECT_EQ(table->squared_l2(a.data() + off, b.data() + off, n),
                scalar.squared_l2(a.data() + off, b.data() + off, n))
          << table->name << " offset=" << off;
    }
  }
}

TEST(SimdKernelsTest, CosineTermsMatchesThreeSeparateKernelCalls) {
  for (const KernelTable* table : RunnableTables()) {
    for (size_t n : {size_t{7}, size_t{64}, size_t{768}}) {
      const auto a = RandomSpan(n, 71 + n);
      const auto b = RandomSpan(n, 72 + n);
      double d, na, nb;
      table->cosine_terms(a.data(), b.data(), n, &d, &na, &nb);
      EXPECT_EQ(d, table->dot(a.data(), b.data(), n)) << table->name;
      EXPECT_EQ(na, table->dot(a.data(), a.data(), n)) << table->name;
      EXPECT_EQ(nb, table->dot(b.data(), b.data(), n)) << table->name;
    }
  }
}

TEST(SimdKernelsTest, Int8KernelsExactAcrossLengths) {
  // Integer arithmetic has one right answer; every table must return it.
  for (const KernelTable* table : RunnableTables()) {
    for (size_t n : kLengths) {
      const auto a = RandomCodes(n, 300 + n);
      const auto b = RandomCodes(n, 400 + n);
      int64_t dot = 0, l2 = 0;
      for (size_t i = 0; i < n; ++i) {
        dot += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
        const int32_t d =
            static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
        l2 += d * d;
      }
      EXPECT_EQ(table->dot_i8(a.data(), b.data(), n), dot)
          << table->name << " n=" << n;
      EXPECT_EQ(table->squared_l2_i8(a.data(), b.data(), n), l2)
          << table->name << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, Int8KernelsSaturatedExtremesDoNotOverflow) {
  // All-(-127) against all-127 maximizes every intermediate product;
  // a long span would overflow a careless 32-bit accumulation.
  const size_t n = 1 << 20;
  std::vector<int8_t> lo(n, -127), hi(n, 127);
  const int64_t expect_dot = -127ll * 127ll * static_cast<int64_t>(n);
  const int64_t expect_l2 = 254ll * 254ll * static_cast<int64_t>(n);
  for (const KernelTable* table : RunnableTables()) {
    EXPECT_EQ(table->dot_i8(lo.data(), hi.data(), n), expect_dot)
        << table->name;
    EXPECT_EQ(table->squared_l2_i8(lo.data(), hi.data(), n), expect_l2)
        << table->name;
  }
}

TEST(SimdKernelsTest, DotFastStaysWithinForwardErrorBoundOfDot) {
  // dot_fast is off the determinism contract but must stay numerically
  // honest: both the treewise dot and the FMA dot satisfy the standard
  // forward error bound |computed - true| <= n*eps*sum|a[i]*b[i]|, so
  // their difference is bounded by twice that. A raw ulp bound is the
  // wrong gate here — when the true dot lands near zero (cancellation),
  // the ulp distance blows up while the absolute error stays tiny.
  for (const KernelTable* table : RunnableTables()) {
    for (size_t n : {size_t{16}, size_t{100}, size_t{768}}) {
      const auto a = RandomSpan(n, 500 + n);
      const auto b = RandomSpan(n, 600 + n);
      const double exact = table->dot(a.data(), b.data(), n);
      const double fast = table->dot_fast(a.data(), b.data(), n);
      double absdot = 0.0;
      for (size_t i = 0; i < n; ++i) absdot += std::fabs(a[i] * b[i]);
      const double bound = 2.0 * static_cast<double>(n) *
                           std::numeric_limits<double>::epsilon() * absdot;
      EXPECT_LE(std::fabs(exact - fast), bound) << table->name << " n=" << n;
    }
  }
}

TEST(SimdDispatchTest, ForceModeOverridesAndRejects) {
  ASSERT_TRUE(ForceMode("scalar").ok());
  EXPECT_STREQ(ActiveName(), "scalar");
  ASSERT_TRUE(ForceMode("native").ok());
  if (NativeKernels() != nullptr) {
    EXPECT_STREQ(ActiveName(), NativeKernels()->name);
  } else {
    // "native" on a scalar-only host keeps scalar gracefully.
    EXPECT_STREQ(ActiveName(), "scalar");
  }
  EXPECT_FALSE(ForceMode("avx512").ok());
  EXPECT_FALSE(ForceMode("").ok());
  ResetDispatchForTesting();
}

TEST(SimdDispatchTest, EnvVarForcesScalar) {
  ResetDispatchForTesting();
  ASSERT_EQ(setenv("COLSCOPE_FORCE_SCALAR", "1", 1), 0);
  EXPECT_STREQ(ActiveName(), "scalar");
  ASSERT_EQ(unsetenv("COLSCOPE_FORCE_SCALAR"), 0);
  ResetDispatchForTesting();
  if (NativeKernels() != nullptr) {
    EXPECT_STREQ(ActiveName(), NativeKernels()->name);
  } else {
    EXPECT_STREQ(ActiveName(), "scalar");
  }
}

TEST(SimdDispatchTest, StatsEntryPointsIdenticalUnderBothModes) {
  // The public linalg:: wrappers are what the pipeline calls; forcing
  // the mode around them must never change a bit of their output.
  const auto a = RandomSpan(768, 9001);
  const auto b = RandomSpan(768, 9002);
  ASSERT_TRUE(ForceMode("native").ok());
  const double dot_native = linalg::Dot(a, b);
  const double l2_native = linalg::SquaredL2Distance(a, b);
  const double cos_native = linalg::CosineSimilarity(a, b);
  const double mse_native = linalg::MeanSquaredError(a, b);
  ASSERT_TRUE(ForceMode("scalar").ok());
  EXPECT_EQ(linalg::Dot(a, b), dot_native);
  EXPECT_EQ(linalg::SquaredL2Distance(a, b), l2_native);
  EXPECT_EQ(linalg::CosineSimilarity(a, b), cos_native);
  EXPECT_EQ(linalg::MeanSquaredError(a, b), mse_native);
  ResetDispatchForTesting();
}

linalg::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  linalg::Matrix m(rows, cols);
  Rng rng(seed);
  for (double& v : m.data()) v = rng.NextGaussian();
  return m;
}

TEST(QuantizedStoreTest, StorageIsAlignedAndPadded) {
  const auto m = RandomMatrix(5, 100, 11);
  const embed::QuantizedSignatureStore store(m);
  EXPECT_EQ(store.rows(), 5u);
  EXPECT_EQ(store.cols(), 100u);
  EXPECT_EQ(store.stride() % 64, 0u);
  EXPECT_GE(store.stride(), store.cols());
  for (size_t r = 0; r < store.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(store.RowCodes(r)) % 64, 0u)
        << "row " << r;
    for (size_t c = store.cols(); c < store.stride(); ++c) {
      EXPECT_EQ(store.RowCodes(r)[c], 0) << "padding row " << r;
    }
  }
}

TEST(QuantizedStoreTest, RoundTripErrorWithinHalfScalePerElement) {
  const auto m = RandomMatrix(8, 768, 22);
  const embed::QuantizedSignatureStore store(m);
  for (size_t r = 0; r < store.rows(); ++r) {
    const double scale = store.RowScale(r);
    ASSERT_GT(scale, 0.0);
    for (size_t c = 0; c < store.cols(); ++c) {
      const double dequant = scale * static_cast<double>(store.RowCodes(r)[c]);
      EXPECT_NEAR(dequant, m.RowPtr(r)[c], scale * 0.5 + 1e-12)
          << "(" << r << ", " << c << ")";
    }
  }
}

TEST(QuantizedStoreTest, ApproxDotWithinDocumentedBound) {
  // Wide pair sweep at the paper's dimensionality: with 64 rows of
  // 768-dim data the quantization errors across elements accumulate
  // enough that a bound stated in the wrong norm (the L2 norm is too
  // small by up to sqrt(cols)) fails here — keep this sweep large.
  const auto m = RandomMatrix(64, 768, 33);
  const embed::QuantizedSignatureStore store(m);
  std::vector<int8_t> qcodes;
  for (size_t r = 0; r < store.rows(); ++r) {
    for (size_t s = 0; s < store.rows(); ++s) {
      const double exact = linalg::Dot(m.RowSpan(r), m.RowSpan(s));
      const double approx = store.ApproxDot(r, s);
      const double bound =
          store.DotErrorBound(r, store.RowScale(s), store.RowL1(s));
      EXPECT_LE(std::fabs(exact - approx), bound)
          << "(" << r << ", " << s << ")";
    }
  }
  // The query path quantizes identically to the build path.
  double qnorm2 = 0.0;
  double ql1 = 0.0;
  const double qscale =
      store.QuantizeQuery(m.RowSpan(0), &qcodes, &qnorm2, &ql1);
  EXPECT_EQ(qscale, store.RowScale(0));
  EXPECT_EQ(qnorm2, store.RowNorm2(0));
  EXPECT_EQ(ql1, store.RowL1(0));
  EXPECT_EQ(store.ApproxDot(1, qcodes.data(), qscale), store.ApproxDot(1, 0));
}

TEST(QuantizedStoreTest, ZeroRowsQuantizeToZeroAndStayFinite) {
  linalg::Matrix m(3, 64, 0.0);
  m.RowPtr(1)[5] = 2.0;
  const embed::QuantizedSignatureStore store(m);
  EXPECT_EQ(store.RowScale(0), 0.0);
  EXPECT_EQ(store.ApproxDot(0, 1), 0.0);
  std::vector<int8_t> qcodes;
  double qnorm2 = 0.0;
  const double qscale = store.QuantizeQuery(m.RowSpan(0), &qcodes, &qnorm2);
  EXPECT_EQ(qscale, 0.0);
  EXPECT_EQ(qnorm2, 0.0);
  EXPECT_EQ(store.ApproxCosine(1, qcodes.data(), qscale, qnorm2), 0.0);
}

TEST(QuantizedFlatIndexTest, PerfectRecallOnSignatureCorpus) {
  // Real (toy-scenario) signatures: the quantized path with default
  // rescoring must return exactly the exact index's top-k lists here —
  // unit-norm 768-dim signatures are far apart relative to int8 error.
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const linalg::Matrix& vectors = signatures.signatures;
  const matching::FlatL2Index exact(vectors);
  const matching::FlatL2Index quant(
      vectors, matching::FlatL2Index::Options{.quantized = true});
  ASSERT_TRUE(quant.quantized());
  ASSERT_FALSE(exact.quantized());
  for (size_t q = 0; q < vectors.rows(); ++q) {
    const linalg::Vector query = vectors.Row(q);
    EXPECT_EQ(quant.Search(query, 5), exact.Search(query, 5)) << "query " << q;
  }
}

TEST(QuantizedFlatIndexTest, DegeneratePoolSizesStayExact) {
  const auto m = RandomMatrix(10, 64, 44);
  const matching::FlatL2Index exact(m);
  const matching::FlatL2Index quant(
      m, matching::FlatL2Index::Options{.quantized = true,
                                        .rescore_factor = 1});
  const linalg::Vector query = m.Row(3);
  // k >= n: the pool covers everything, so even factor 1 is exact.
  EXPECT_EQ(quant.Search(query, 10), exact.Search(query, 10));
  EXPECT_EQ(quant.Search(query, 20), exact.Search(query, 20));
  EXPECT_EQ(quant.Search(query, 0), exact.Search(query, 0));
}

TEST(QuantizedTokenBlockingTest, QuantizedPrefilterPreservesMatchesExactly) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> active(signatures.size(), true);
  for (double threshold : {0.3, 0.6, 0.9}) {
    const matching::TokenBlockedSimMatcher exact(threshold);
    const matching::TokenBlockedSimMatcher quant(threshold,
                                                 /*quantized=*/true);
    EXPECT_EQ(quant.Match(signatures, active), exact.Match(signatures, active))
        << "threshold " << threshold;
  }
}

}  // namespace
}  // namespace colscope::linalg::simd
