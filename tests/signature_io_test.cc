#include "scoping/signature_io.h"

#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/model_io.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

SignatureSet BuildToySignatures() {
  const auto scenario = datasets::BuildToyScenario();
  const embed::HashedLexiconEncoder encoder;
  return BuildSignatures(scenario.set, encoder);
}

TEST(SignatureSetIoTest, RoundTripsExactly) {
  const SignatureSet original = BuildToySignatures();
  const std::string text = SerializeSignatureSet(original);
  Result<SignatureSet> restored = DeserializeSignatureSet(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), original.size());
  ASSERT_EQ(restored->signatures.cols(), original.signatures.cols());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored->refs[i].schema, original.refs[i].schema);
    EXPECT_EQ(restored->refs[i].table, original.refs[i].table);
    EXPECT_EQ(restored->refs[i].attribute, original.refs[i].attribute);
    EXPECT_EQ(restored->texts[i], original.texts[i]);
    // Bit-exact doubles: the byte-identical-resume guarantee needs it.
    EXPECT_EQ(restored->signatures.Row(i), original.signatures.Row(i));
  }
  // Re-serializing the restored set reproduces the bytes.
  EXPECT_EQ(SerializeSignatureSet(*restored), text);
}

TEST(SignatureSetIoTest, RoundTripsTextsWithNewlinesAndBackslashes) {
  SignatureSet set;
  set.refs.push_back({0, 0, -1});
  set.texts.push_back("line one\nline\\two\rcarriage");
  set.signatures = linalg::Matrix(1, 2);
  set.signatures.SetRow(0, linalg::Vector{1.5, -2.25});
  Result<SignatureSet> restored =
      DeserializeSignatureSet(SerializeSignatureSet(set));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->texts[0], set.texts[0]);
}

TEST(SignatureSetIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(DeserializeSignatureSet("elements 0\ndims 0\n").ok());
}

TEST(SignatureSetIoTest, RejectsCountMismatch) {
  const SignatureSet original = BuildToySignatures();
  std::string text = SerializeSignatureSet(original);
  // Drop the last line (a row), leaving fewer rows than declared.
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  EXPECT_FALSE(DeserializeSignatureSet(text).ok());
}

TEST(SignatureSetIoTest, RejectsHugeDeclaredShape) {
  EXPECT_FALSE(DeserializeSignatureSet("colscope-signature-set v1\n"
                                       "elements 9999999999999\ndims 4\n")
                   .ok());
  EXPECT_FALSE(DeserializeSignatureSet("colscope-signature-set v1\n"
                                       "elements 1048576\ndims 1048576\n")
                   .ok());
}

TEST(SignatureSetIoTest, RejectsNonFiniteValues) {
  EXPECT_FALSE(DeserializeSignatureSet("colscope-signature-set v1\n"
                                       "elements 1\ndims 1\nref 0 0 -1\n"
                                       "text x\nrow nan\n")
                   .ok());
  EXPECT_FALSE(DeserializeSignatureSet("colscope-signature-set v1\n"
                                       "elements 1\ndims 1\nref 0 0 -1\n"
                                       "text x\nrow inf\n")
                   .ok());
}

TEST(KeepMaskIoTest, RoundTrips) {
  const std::vector<bool> keep = {true, false, true, true, false};
  Result<std::vector<bool>> restored =
      DeserializeKeepMask(SerializeKeepMask(keep));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, keep);
}

TEST(KeepMaskIoTest, RoundTripsEmptyMask) {
  Result<std::vector<bool>> restored =
      DeserializeKeepMask(SerializeKeepMask({}));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->empty());
}

TEST(KeepMaskIoTest, RejectsBitCountMismatch) {
  EXPECT_FALSE(
      DeserializeKeepMask("colscope-keep-mask v1\nelements 3\nmask 10\n")
          .ok());
}

TEST(KeepMaskIoTest, RejectsNonBinaryBits) {
  EXPECT_FALSE(
      DeserializeKeepMask("colscope-keep-mask v1\nelements 2\nmask 1x\n")
          .ok());
}

TEST(KeepMaskIoTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(DeserializeKeepMask(
                   "colscope-keep-mask v1\nelements 1\nmask 1\nextra\n")
                   .ok());
}

TEST(ModelSetIoTest, RoundTripsFittedModels) {
  const SignatureSet signatures = BuildToySignatures();
  Result<std::vector<LocalModel>> models =
      FitLocalModels(signatures, 4, 0.7);
  ASSERT_TRUE(models.ok());
  const std::string text = SerializeLocalModelSet(*models);
  Result<std::vector<LocalModel>> restored =
      DeserializeLocalModelSet(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), models->size());
  for (size_t s = 0; s < models->size(); ++s) {
    EXPECT_EQ((*restored)[s].schema_index(), (*models)[s].schema_index());
    EXPECT_EQ((*restored)[s].linkability_range(),
              (*models)[s].linkability_range());
  }
  EXPECT_EQ(SerializeLocalModelSet(*restored), text);
}

TEST(ModelSetIoTest, RejectsDeclaredCountMismatch) {
  const SignatureSet signatures = BuildToySignatures();
  Result<std::vector<LocalModel>> models =
      FitLocalModels(signatures, 4, 0.7);
  ASSERT_TRUE(models.ok());
  std::string text = SerializeLocalModelSet(*models);
  const size_t at = text.find("models 4");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 8, "models 3");
  EXPECT_FALSE(DeserializeLocalModelSet(text).ok());
}

TEST(ModelSetIoTest, RejectsGarbageBeforeFirstModel) {
  EXPECT_FALSE(DeserializeLocalModelSet(
                   "colscope-model-set v1\nmodels 0\nstray line\n")
                   .ok());
}

}  // namespace
}  // namespace colscope::scoping
