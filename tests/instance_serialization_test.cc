// Tests for instance-sample serialization — the Section 2.3 footnote-2
// experiment: appending instance values to the serialized sequence moves
// similarities both ways.

#include <gtest/gtest.h>

#include "embed/hashed_encoder.h"
#include "linalg/stats.h"
#include "schema/serialize.h"
#include "scoping/signatures.h"

namespace colscope::schema {
namespace {

Attribute MakeAttribute(const char* name, const char* table,
                        std::vector<std::string> samples) {
  Attribute a;
  a.name = name;
  a.table_name = table;
  a.raw_type = "VARCHAR";
  a.type = DataType::kString;
  a.samples = std::move(samples);
  return a;
}

TEST(InstanceSerializationTest, DefaultOmitsSamples) {
  const Attribute a = MakeAttribute("NAME", "CLIENT", {"Michael Scott"});
  EXPECT_EQ(SerializeAttribute(a), "NAME CLIENT VARCHAR");
}

TEST(InstanceSerializationTest, OptInAppendsParenthesizedSamples) {
  const Attribute a = MakeAttribute("NAME", "CLIENT", {"Michael Scott"});
  SerializeOptions options;
  options.include_instance_samples = true;
  EXPECT_EQ(SerializeAttribute(a, options),
            "NAME CLIENT VARCHAR (Michael Scott)");
}

TEST(InstanceSerializationTest, MaxSamplesCapsOutput) {
  const Attribute a =
      MakeAttribute("CITY", "CLIENT", {"Berlin", "Paris", "Oslo", "Rome"});
  SerializeOptions options;
  options.include_instance_samples = true;
  options.max_samples = 2;
  EXPECT_EQ(SerializeAttribute(a, options),
            "CITY CLIENT VARCHAR (Berlin, Paris)");
}

TEST(InstanceSerializationTest, NoSamplesIsUnchangedEvenWhenEnabled) {
  const Attribute a = MakeAttribute("NAME", "CLIENT", {});
  SerializeOptions options;
  options.include_instance_samples = true;
  EXPECT_EQ(SerializeAttribute(a, options), "NAME CLIENT VARCHAR");
}

TEST(InstanceSerializationTest, FootnoteTwoEffectReproduced) {
  // Section 2.3: with samples, cos(NAME CLIENT (Michael Scott),
  // FIRST_NAME CUSTOMER (Michael)) increases (+5% in the paper) while
  // cos(NAME CLIENT (Michael Scott), LAST_NAME CUSTOMER (Bluth))
  // decreases (-11%).
  const embed::HashedLexiconEncoder encoder;
  const Attribute name =
      MakeAttribute("NAME", "CLIENT", {"Michael Scott"});
  const Attribute first =
      MakeAttribute("FIRST_NAME", "CUSTOMER", {"Michael"});
  const Attribute last = MakeAttribute("LAST_NAME", "CUSTOMER", {"Bluth"});

  SerializeOptions with;
  with.include_instance_samples = true;
  auto cosine = [&](const Attribute& a, const Attribute& b,
                    const SerializeOptions& options) {
    return linalg::CosineSimilarity(
        encoder.Encode(SerializeAttribute(a, options)),
        encoder.Encode(SerializeAttribute(b, options)));
  };

  const double first_without = cosine(name, first, {});
  const double first_with = cosine(name, first, with);
  const double last_without = cosine(name, last, {});
  const double last_with = cosine(name, last, with);

  EXPECT_GT(first_with, first_without);  // Shared sample token helps.
  EXPECT_LT(last_with, last_without);    // Disjoint sample dilutes.
}

TEST(InstanceSerializationTest, BuildSignaturesThreadsOptionsThrough) {
  Schema s1("S1");
  Table t1;
  t1.name = "CLIENT";
  t1.attributes.push_back(MakeAttribute("NAME", "CLIENT", {"Ada"}));
  ASSERT_TRUE(s1.AddTable(t1).ok());
  Schema s2("S2");
  Table t2;
  t2.name = "CUSTOMER";
  t2.attributes.push_back(MakeAttribute("NAME", "CUSTOMER", {"Grace"}));
  ASSERT_TRUE(s2.AddTable(t2).ok());
  SchemaSet set({s1, s2});

  const embed::HashedLexiconEncoder encoder;
  SerializeOptions options;
  options.include_instance_samples = true;
  const auto sig = scoping::BuildSignatures(set, encoder, options);
  EXPECT_EQ(sig.texts[1], "NAME CLIENT VARCHAR (Ada)");
  const auto metadata_only = scoping::BuildSignatures(set, encoder);
  EXPECT_EQ(metadata_only.texts[1], "NAME CLIENT VARCHAR");
  EXPECT_NE(sig.signatures.Row(1), metadata_only.signatures.Row(1));
}

}  // namespace
}  // namespace colscope::schema
