#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "outlier/pca_oda.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/signatures.h"
#include "scoping/streamline.h"

namespace colscope::scoping {
namespace {

class ScopingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = BuildSignatures(scenario_.set, encoder_);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  SignatureSet signatures_;
};

// --- Signature pipeline -----------------------------------------------------

TEST_F(ScopingFixture, SignatureRowsAlignWithSchemaSetElements) {
  ASSERT_EQ(signatures_.size(), scenario_.set.num_elements());
  for (size_t i = 0; i < signatures_.size(); ++i) {
    EXPECT_EQ(signatures_.refs[i], scenario_.set.elements()[i]);
  }
  EXPECT_EQ(signatures_.signatures.rows(), signatures_.size());
  EXPECT_EQ(signatures_.signatures.cols(), encoder_.dims());
}

TEST_F(ScopingFixture, SerializedTextsMatchPaperFormat) {
  // First element of S1 is the CLIENT table.
  EXPECT_EQ(signatures_.texts[0], "CLIENT [CID, NAME, ADDRESS, PHONE]");
  // Its first attribute: "CID CLIENT NUMBER PRIMARY KEY".
  EXPECT_EQ(signatures_.texts[1], "CID CLIENT NUMBER PRIMARY KEY");
}

TEST_F(ScopingFixture, RowsOfSchemaPartitionTheSet) {
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const auto rows = signatures_.RowsOfSchema(s);
    total += rows.size();
    for (size_t r : rows) EXPECT_EQ(signatures_.refs[r].schema, s);
  }
  EXPECT_EQ(total, signatures_.size());
  EXPECT_EQ(signatures_.SchemaSignatures(0).rows(), 5u);
}

// --- Global scoping (rank / sort / filter) -----------------------------------

TEST(ScopeByScoresTest, BoundaryPortions) {
  const linalg::Vector scores{3.0, 1.0, 2.0, 0.5};
  EXPECT_EQ(ScopeByScores(scores, 1.0),
            (std::vector<bool>{true, true, true, true}));
  EXPECT_EQ(ScopeByScores(scores, 0.0),
            (std::vector<bool>{false, false, false, false}));
}

TEST(ScopeByScoresTest, KeepsLowestScores) {
  const linalg::Vector scores{3.0, 1.0, 2.0, 0.5};
  // p = 0.5 keeps the two lowest: indices 3 and 1.
  EXPECT_EQ(ScopeByScores(scores, 0.5),
            (std::vector<bool>{false, true, false, true}));
}

TEST(ScopeByScoresTest, TieBreakIsStable) {
  const linalg::Vector scores{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(ScopeByScores(scores, 0.5),
            (std::vector<bool>{true, true, false, false}));
}

TEST(ScopeByScoresTest, MonotoneInP) {
  const linalg::Vector scores{5, 1, 4, 2, 3, 0, 6, 9, 8, 7};
  std::vector<bool> prev(scores.size(), false);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const auto keep = ScopeByScores(scores, p);
    for (size_t i = 0; i < keep.size(); ++i) {
      if (prev[i]) EXPECT_TRUE(keep[i]);  // Kept sets only grow with p.
    }
    prev = keep;
  }
}

TEST_F(ScopingFixture, GlobalScopingRunsEndToEnd) {
  outlier::PcaDetector detector(0.5);
  const auto keep = GlobalScoping(signatures_, detector, 0.6);
  EXPECT_EQ(keep.size(), signatures_.size());
  size_t kept = CountKept(keep);
  EXPECT_EQ(kept, static_cast<size_t>(0.6 * 24 + 0.5));
}

// --- Collaborative scoping (Algorithms 1 and 2) -----------------------------------

TEST_F(ScopingFixture, LocalModelTrainingElementsAllPassOwnRange) {
  // By Definition 3, l_k is the max training error, so every training
  // element reconstructs within [0, l_k].
  const linalg::Matrix local = signatures_.SchemaSignatures(1);
  auto model = LocalModel::Fit(local, 0.7, 1);
  ASSERT_TRUE(model.ok());
  for (size_t r = 0; r < local.rows(); ++r) {
    EXPECT_TRUE(model->Recognizes(local.Row(r)));
  }
  EXPECT_EQ(model->schema_index(), 1);
  EXPECT_GE(model->linkability_range(), 0.0);
}

TEST_F(ScopingFixture, HigherVarianceShrinksLinkabilityRange) {
  const linalg::Matrix local = signatures_.SchemaSignatures(1);
  auto low = LocalModel::Fit(local, 0.3, 1);
  auto high = LocalModel::Fit(local, 0.95, 1);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LE(high->linkability_range(), low->linkability_range() + 1e-15);
}

TEST_F(ScopingFixture, FitRejectsEmptySchemaAndBadVariance) {
  EXPECT_FALSE(LocalModel::Fit(linalg::Matrix(), 0.5, 0).ok());
  const linalg::Matrix local = signatures_.SchemaSignatures(0);
  EXPECT_FALSE(LocalModel::Fit(local, 0.0, 0).ok());
  EXPECT_FALSE(LocalModel::Fit(local, 1.5, 0).ok());
}

TEST_F(ScopingFixture, AssessmentSkipsOwnModel) {
  auto models = FitLocalModels(signatures_, 4, 0.6);
  ASSERT_TRUE(models.ok());
  const linalg::Matrix local = signatures_.SchemaSignatures(0);
  // With only its own model available, nothing is linkable.
  std::vector<LocalModel> own_only{(*models)[0]};
  const auto linkable = AssessLinkability(local, 0, own_only);
  for (bool l : linkable) EXPECT_FALSE(l);
}

TEST_F(ScopingFixture, CollaborativeScopingPrunesCarSchema) {
  // The Formula One style CAR schema (S4) must be (nearly) fully pruned
  // while the kept set stays precise. The toy schemas are extremely small
  // (3-10 elements), so collaborative scoping is conservative here: it
  // keeps a small, high-precision subset (precision well above the 62%
  // linkable base rate) rather than a high-recall one.
  auto keep = CollaborativeScoping(signatures_, 4, 0.5);
  ASSERT_TRUE(keep.ok());
  const auto labels = scenario_.truth.LinkabilityLabels(scenario_.set);

  size_t s4_kept = 0;
  for (size_t i = 0; i < keep->size(); ++i) {
    if (signatures_.refs[i].schema == 3 && (*keep)[i]) ++s4_kept;
  }
  EXPECT_LE(s4_kept, 1u);  // At most one CAR element survives.

  size_t kept_total = 0, kept_true = 0;
  for (size_t i = 0; i < keep->size(); ++i) {
    if ((*keep)[i]) {
      ++kept_total;
      kept_true += labels[i];
    }
  }
  ASSERT_GT(kept_total, 2u);                     // Keeps something...
  EXPECT_GE(kept_true * 100, kept_total * 70u);  // ...at >= 70% precision.
}

TEST_F(ScopingFixture, CollaborativeKeptSetPurerThanBaseRate) {
  // Precision of the kept set must beat the 15/24 linkable base rate —
  // keeping elements at random would match it in expectation.
  auto keep = CollaborativeScoping(signatures_, 4, 0.5);
  ASSERT_TRUE(keep.ok());
  const auto labels = scenario_.truth.LinkabilityLabels(scenario_.set);
  size_t kept_total = 0, kept_true = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if ((*keep)[i]) {
      ++kept_total;
      kept_true += labels[i];
    }
  }
  ASSERT_GT(kept_total, 0u);
  EXPECT_GT(kept_true * 24, kept_total * 15);
}

// --- Streamlined schema construction ---------------------------------------------

TEST_F(ScopingFixture, StreamlineDropsPrunedElements) {
  std::vector<bool> keep(signatures_.size(), false);
  // Keep only S1.CLIENT (table) and S1.CLIENT.CID.
  keep[0] = true;  // CLIENT table element.
  keep[1] = true;  // CID.
  const auto streamlined =
      BuildStreamlinedSchemas(scenario_.set, signatures_, keep);
  EXPECT_EQ(streamlined.schema(0).num_tables(), 1u);
  EXPECT_EQ(streamlined.schema(0).num_attributes(), 1u);
  EXPECT_EQ(streamlined.schema(1).num_elements(), 0u);
  EXPECT_EQ(streamlined.schema(3).num_elements(), 0u);
}

TEST_F(ScopingFixture, StreamlineKeepsTableShellForOrphanAttributes) {
  std::vector<bool> keep(signatures_.size(), false);
  keep[1] = true;  // S1.CLIENT.CID kept, table element pruned.
  const auto streamlined =
      BuildStreamlinedSchemas(scenario_.set, signatures_, keep);
  // The CLIENT table shell survives as container.
  EXPECT_EQ(streamlined.schema(0).num_tables(), 1u);
  EXPECT_EQ(streamlined.schema(0).num_attributes(), 1u);
}

TEST_F(ScopingFixture, FullMaskIsIdentity) {
  std::vector<bool> keep(signatures_.size(), true);
  const auto streamlined =
      BuildStreamlinedSchemas(scenario_.set, signatures_, keep);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(streamlined.schema(s).num_elements(),
              scenario_.set.schema(s).num_elements());
  }
}

}  // namespace
}  // namespace colscope::scoping
