// Tests of the fault-tolerant model-exchange layer: deterministic fault
// injection, transport semantics, retry/backoff/deadline accounting, and
// degraded-mode collaborative scoping end to end through the pipeline.

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "exchange/exchange.h"
#include "exchange/transport.h"
#include "matching/sim.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "scoping/collaborative.h"
#include "scoping/model_io.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

using exchange::FetchModelWithRetry;
using exchange::InMemoryTransport;
using exchange::RetryPolicy;
using scoping::DegradedOptions;
using scoping::DegradedPolicy;
using scoping::LocalModel;

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjectorTest, DeterministicAcrossInstancesAndCallOrder) {
  FaultProfile profile;
  profile.drop_probability = 0.3;
  profile.corrupt_probability = 0.3;
  profile.delay_probability = 0.2;
  profile.seed = 1234;
  const FaultInjector a(profile);
  const FaultInjector b(profile);

  // Same (publisher, consumer, attempt) -> same decision, and querying b
  // in reverse order must not change anything.
  std::vector<FaultInjector::Decision> forward, backward;
  for (int i = 0; i < 50; ++i) {
    forward.push_back(a.Decide(i % 5, i % 3, i, 100));
  }
  for (int i = 49; i >= 0; --i) {
    backward.push_back(b.Decide(i % 5, i % 3, i, 100));
  }
  for (int i = 0; i < 50; ++i) {
    const auto& f = forward[i];
    const auto& r = backward[49 - i];
    EXPECT_EQ(f.kind, r.kind);
    EXPECT_EQ(f.latency_ms, r.latency_ms);
    EXPECT_EQ(f.truncate_at, r.truncate_at);
    EXPECT_EQ(f.corrupt_pos, r.corrupt_pos);
    EXPECT_EQ(f.corrupt_mask, r.corrupt_mask);
  }
}

TEST(FaultInjectorTest, ProbabilitiesRoughlyRespected) {
  FaultProfile profile;
  profile.drop_probability = 0.5;
  profile.seed = 7;
  const FaultInjector injector(profile);
  int drops = 0;
  for (int i = 0; i < 1000; ++i) {
    if (injector.Decide(0, 1, i, 64).kind == FaultKind::kDrop) ++drops;
  }
  EXPECT_GT(drops, 400);
  EXPECT_LT(drops, 600);
}

TEST(FaultInjectorTest, ParseFaultSpec) {
  auto profile =
      ParseFaultSpec("drop=0.25,corrupt=0.5,seed=99,delay-latency=10");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_DOUBLE_EQ(profile->drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(profile->corrupt_probability, 0.5);
  EXPECT_EQ(profile->seed, 99u);
  EXPECT_DOUBLE_EQ(profile->delay_latency_ms, 10.0);

  EXPECT_FALSE(ParseFaultSpec("drop=1.5").ok());
  EXPECT_FALSE(ParseFaultSpec("drop=nan").ok());
  EXPECT_FALSE(ParseFaultSpec("bogus=0.1").ok());
  EXPECT_FALSE(ParseFaultSpec("drop").ok());
  EXPECT_FALSE(ParseFaultSpec("seed=-3").ok());
}

TEST(DegradedPolicyTest, ParseDegradedPolicy) {
  auto keep = scoping::ParseDegradedPolicy("keep-all");
  ASSERT_TRUE(keep.ok());
  EXPECT_EQ(keep->policy, DegradedPolicy::kKeepAll);

  auto quorum = scoping::ParseDegradedPolicy("quorum:2");
  ASSERT_TRUE(quorum.ok());
  EXPECT_EQ(quorum->policy, DegradedPolicy::kQuorum);
  EXPECT_EQ(quorum->quorum, 2u);

  auto bare_quorum = scoping::ParseDegradedPolicy("quorum");
  ASSERT_TRUE(bare_quorum.ok());
  EXPECT_EQ(bare_quorum->quorum, 1u);

  EXPECT_FALSE(scoping::ParseDegradedPolicy("quorum:0").ok());
  EXPECT_FALSE(scoping::ParseDegradedPolicy("quorum:x").ok());
  EXPECT_FALSE(scoping::ParseDegradedPolicy("open").ok());
}

// --- Transport + retry -------------------------------------------------------

class ExchangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    auto models = scoping::FitLocalModels(
        signatures_, scenario_.set.num_schemas(), 0.8);
    ASSERT_TRUE(models.ok());
    models_ = std::move(models).value();
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<LocalModel> models_;
};

TEST_F(ExchangeTest, HealthyTransportDeliversVerbatim) {
  InMemoryTransport transport;
  ASSERT_TRUE(
      transport.Publish(0, scoping::SerializeLocalModel(models_[0])).ok());

  const auto response = transport.Fetch(0, 1, 0);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.payload, scoping::SerializeLocalModel(models_[0]));
  EXPECT_EQ(response.fault, FaultKind::kNone);

  EXPECT_EQ(transport.Fetch(42, 1, 0).status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(transport.Publish(3, "").ok());
}

TEST_F(ExchangeTest, StaleFaultServesOldestVersion) {
  FaultProfile profile;
  profile.stale_probability = 1.0;
  InMemoryTransport transport{FaultInjector(profile)};
  ASSERT_TRUE(transport.Publish(0, "colscope-local-model v0-old").ok());
  ASSERT_TRUE(
      transport.Publish(0, scoping::SerializeLocalModel(models_[0])).ok());
  EXPECT_EQ(transport.NumVersions(0), 2u);

  const auto response = transport.Fetch(0, 1, 0);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.fault, FaultKind::kStale);
  EXPECT_EQ(response.payload, "colscope-local-model v0-old");
}

TEST_F(ExchangeTest, AllDropsExhaustRetries) {
  FaultProfile profile;
  profile.drop_probability = 1.0;
  InMemoryTransport transport{FaultInjector(profile)};
  ASSERT_TRUE(
      transport.Publish(0, scoping::SerializeLocalModel(models_[0])).ok());

  RetryPolicy policy;
  policy.max_attempts = 5;
  const auto outcome = FetchModelWithRetry(transport, 0, 1, policy, 7);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(outcome.attempts, 5);
  EXPECT_EQ(outcome.faults.size(), 5u);
  for (FaultKind fault : outcome.faults) {
    EXPECT_EQ(fault, FaultKind::kDrop);
  }
  EXPECT_GT(outcome.elapsed_ms, 0.0);
}

TEST_F(ExchangeTest, DelayBeyondDeadlineTimesOut) {
  FaultProfile profile;
  profile.delay_probability = 1.0;
  profile.delay_latency_ms = 1000.0;
  InMemoryTransport transport{FaultInjector(profile)};
  ASSERT_TRUE(
      transport.Publish(0, scoping::SerializeLocalModel(models_[0])).ok());

  RetryPolicy policy;
  policy.deadline_ms = 100.0;
  const auto outcome = FetchModelWithRetry(transport, 0, 1, policy, 7);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(outcome.elapsed_ms, policy.deadline_ms);
}

TEST_F(ExchangeTest, RetryRecoversFromTransientCorruption) {
  // 60% corruption: with 6 attempts the overwhelming majority of fetches
  // eventually land an intact payload.
  FaultProfile profile;
  profile.corrupt_probability = 0.6;
  profile.seed = 11;
  InMemoryTransport transport{FaultInjector(profile)};
  for (const LocalModel& model : models_) {
    ASSERT_TRUE(transport
                    .Publish(model.schema_index(),
                             scoping::SerializeLocalModel(model))
                    .ok());
  }
  RetryPolicy policy;
  policy.max_attempts = 6;
  auto result = exchange::ExchangeLocalModels(models_, transport, policy, 11);
  ASSERT_TRUE(result.ok());
  size_t retried = 0, arrived = 0;
  for (const auto& fetch : result->fetches) {
    if (fetch.attempts > 1) ++retried;
  }
  for (const auto& per_schema : result->arrived) arrived += per_schema.size();
  EXPECT_GT(retried, 0u);   // Some fetches needed retries...
  EXPECT_GT(arrived, 6u);   // ...and most models still made it through.
}

TEST_F(ExchangeTest, MissingPublisherFailsWithoutRetry) {
  InMemoryTransport transport;
  RetryPolicy policy;
  policy.max_attempts = 4;
  const auto outcome = FetchModelWithRetry(transport, 9, 0, policy, 0);
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(outcome.attempts, 1);  // Permanent errors are not retried.
}

// --- Degraded-mode scoping ---------------------------------------------------

TEST_F(ExchangeTest, FailClosedRejectsSparseModelSets) {
  const size_t n = scenario_.set.num_schemas();
  std::vector<std::vector<LocalModel>> arrived(n);  // Nothing arrived.
  DegradedOptions options;
  options.policy = DegradedPolicy::kFailClosed;
  const auto keep =
      scoping::AssessAllSparse(signatures_, n, arrived, options);
  EXPECT_FALSE(keep.ok());
  EXPECT_EQ(keep.status().code(), StatusCode::kUnavailable);
}

TEST_F(ExchangeTest, FullArrivalsMatchClassicAssessment) {
  const size_t n = scenario_.set.num_schemas();
  std::vector<std::vector<LocalModel>> arrived(n);
  for (size_t c = 0; c < n; ++c) {
    for (const LocalModel& model : models_) {
      if (model.schema_index() != static_cast<int>(c)) {
        arrived[c].push_back(model);
      }
    }
  }
  for (DegradedPolicy policy : {DegradedPolicy::kFailClosed,
                                DegradedPolicy::kKeepAll,
                                DegradedPolicy::kQuorum}) {
    DegradedOptions options;
    options.policy = policy;
    const auto keep =
        scoping::AssessAllSparse(signatures_, n, arrived, options);
    ASSERT_TRUE(keep.ok()) << keep.status().ToString();
    EXPECT_EQ(*keep, scoping::AssessAll(signatures_, n, models_));
  }
}

TEST_F(ExchangeTest, QuorumBelowThresholdErrors) {
  const size_t n = scenario_.set.num_schemas();
  std::vector<std::vector<LocalModel>> arrived(n);
  // Every consumer reaches exactly one peer (schema 0's model, except
  // consumer 0, which reaches schema 1's).
  for (size_t c = 0; c < n; ++c) {
    arrived[c].push_back(models_[c == 0 ? 1 : 0]);
  }
  DegradedOptions options;
  options.policy = DegradedPolicy::kQuorum;
  options.quorum = 1;
  EXPECT_TRUE(scoping::AssessAllSparse(signatures_, n, arrived, options).ok());
  options.quorum = 2;
  const auto keep = scoping::AssessAllSparse(signatures_, n, arrived, options);
  EXPECT_FALSE(keep.ok());
  EXPECT_EQ(keep.status().code(), StatusCode::kUnavailable);
}

// --- Pipeline under faults ---------------------------------------------------

matching::SimMatcher Matcher() { return matching::SimMatcher(0.6); }

TEST_F(ExchangeTest, KeepAllWithAllPeersDownEqualsTraditionalPipeline) {
  // Acceptance criterion: 100% drop + kKeepAll completes and reproduces
  // the ScoperKind::kNone run exactly.
  pipeline::PipelineOptions faulty;
  faulty.scoper = pipeline::ScoperKind::kCollaborativePca;
  faulty.exchange.enabled = true;
  faulty.exchange.faults.drop_probability = 1.0;
  faulty.exchange.faults.seed = 3;
  faulty.exchange.retry.max_attempts = 2;
  faulty.exchange.degraded.policy = DegradedPolicy::kKeepAll;

  pipeline::PipelineOptions none;
  none.scoper = pipeline::ScoperKind::kNone;

  const auto matcher = Matcher();
  const pipeline::Pipeline faulty_pipe(&encoder_, faulty);
  const pipeline::Pipeline none_pipe(&encoder_, none);
  const auto degraded = faulty_pipe.Run(scenario_.set, matcher);
  const auto baseline = none_pipe.Run(scenario_.set, matcher);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_TRUE(baseline.ok());

  EXPECT_EQ(degraded->keep, baseline->keep);
  EXPECT_EQ(degraded->linkages, baseline->linkages);
  EXPECT_EQ(degraded->num_kept(), degraded->keep.size());

  ASSERT_TRUE(degraded->degradation.has_value());
  const auto& report = *degraded->degradation;
  EXPECT_EQ(report.policy, "keep_all");
  EXPECT_EQ(report.total_fetches, report.failed_fetches);
  const size_t n = scenario_.set.num_schemas();
  EXPECT_EQ(report.peers_lost.size(), n * (n - 1));
  for (size_t arrived : report.arrived_per_schema) EXPECT_EQ(arrived, 0u);
}

TEST_F(ExchangeTest, FaultFreeExchangeMatchesDirectScoping) {
  pipeline::PipelineOptions exchanged;
  exchanged.exchange.enabled = true;  // No faults configured.
  exchanged.exchange.degraded.policy = DegradedPolicy::kFailClosed;

  pipeline::PipelineOptions direct;
  direct.scoper = pipeline::ScoperKind::kCollaborativePca;

  const auto matcher = Matcher();
  const auto via_exchange =
      pipeline::Pipeline(&encoder_, exchanged).Run(scenario_.set, matcher);
  const auto classic =
      pipeline::Pipeline(&encoder_, direct).Run(scenario_.set, matcher);
  ASSERT_TRUE(via_exchange.ok()) << via_exchange.status().ToString();
  ASSERT_TRUE(classic.ok());
  EXPECT_EQ(via_exchange->keep, classic->keep);
  EXPECT_EQ(via_exchange->linkages, classic->linkages);
  ASSERT_TRUE(via_exchange->degradation.has_value());
  EXPECT_EQ(via_exchange->degradation->failed_fetches, 0u);
  EXPECT_EQ(via_exchange->degradation->total_retries, 0u);
}

TEST_F(ExchangeTest, FailClosedUnderTotalLossErrors) {
  pipeline::PipelineOptions options;
  options.exchange.enabled = true;
  options.exchange.faults.drop_probability = 1.0;
  options.exchange.retry.max_attempts = 2;
  options.exchange.degraded.policy = DegradedPolicy::kFailClosed;
  const auto matcher = Matcher();
  const auto run =
      pipeline::Pipeline(&encoder_, options).Run(scenario_.set, matcher);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST_F(ExchangeTest, DegradationReportIsByteIdenticalAcrossRuns) {
  // Acceptance criterion: fixed seed + nonzero fault rates -> two
  // identical runs produce byte-identical reports.
  pipeline::PipelineOptions options;
  options.exchange.enabled = true;
  options.exchange.faults.drop_probability = 0.3;
  options.exchange.faults.corrupt_probability = 0.2;
  options.exchange.faults.truncate_probability = 0.1;
  options.exchange.faults.seed = 42;
  options.exchange.degraded.policy = DegradedPolicy::kKeepAll;

  const auto matcher = Matcher();
  const pipeline::Pipeline pipe(&encoder_, options);
  const auto first = pipe.Run(scenario_.set, matcher);
  const auto second = pipe.Run(scenario_.set, matcher);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(first->degradation.has_value());
  ASSERT_TRUE(second->degradation.has_value());

  EXPECT_EQ(exchange::FormatDegradationReport(*first->degradation),
            exchange::FormatDegradationReport(*second->degradation));
  EXPECT_EQ(pipeline::RunToJson(*first, scenario_.set),
            pipeline::RunToJson(*second, scenario_.set));
  // And the JSON actually carries the degradation block.
  EXPECT_NE(pipeline::RunToJson(*first, scenario_.set).find("\"degradation\""),
            std::string::npos);
}

TEST_F(ExchangeTest, ExchangeRequiresPcaScoper) {
  pipeline::PipelineOptions options;
  options.scoper = pipeline::ScoperKind::kNone;
  options.exchange.enabled = true;
  const auto matcher = Matcher();
  const auto run =
      pipeline::Pipeline(&encoder_, options).Run(scenario_.set, matcher);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace colscope
