#include <gtest/gtest.h>

#include "datasets/fabricator.h"
#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/lsh_matcher.h"
#include "scoping/signatures.h"

namespace colscope::datasets {
namespace {

const schema::Table& SourceTable() {
  static const schema::Schema* const kSchema =
      new schema::Schema(LoadMySqlSchema());
  return *kSchema->FindTable("customers");  // 13 attributes, has a PK.
}

class FabricatorParamTest
    : public ::testing::TestWithParam<FabricationKind> {};

TEST_P(FabricatorParamTest, ProducesConsistentScenario) {
  FabricatorOptions options;
  options.kind = GetParam();
  const MatchingScenario scenario = FabricatePair(SourceTable(), options);
  ASSERT_EQ(scenario.set.num_schemas(), 2u);
  EXPECT_EQ(scenario.set.schema(0).num_tables(), 1u);
  EXPECT_EQ(scenario.set.schema(1).num_tables(), 1u);
  // At least the table pair plus the key-column pair.
  EXPECT_GE(scenario.truth.size(), 2u);
  for (const Linkage& l : scenario.truth.linkages()) {
    EXPECT_NE(l.a.schema, l.b.schema);
  }
}

TEST_P(FabricatorParamTest, DeterministicForSeed) {
  FabricatorOptions options;
  options.kind = GetParam();
  const auto a = FabricatePair(SourceTable(), options);
  const auto b = FabricatePair(SourceTable(), options);
  EXPECT_EQ(a.truth.size(), b.truth.size());
  EXPECT_EQ(a.set.schema(1).num_attributes(),
            b.set.schema(1).num_attributes());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FabricatorParamTest,
    ::testing::Values(FabricationKind::kUnionable,
                      FabricationKind::kViewUnionable,
                      FabricationKind::kJoinable,
                      FabricationKind::kSemanticallyJoinable));

TEST(FabricatorTest, UnionableKeepsEverythingOnBothSides) {
  FabricatorOptions options;
  options.kind = FabricationKind::kUnionable;
  const auto scenario = FabricatePair(SourceTable(), options);
  const size_t n = SourceTable().attributes.size();
  EXPECT_EQ(scenario.set.schema(0).num_attributes(), n);
  EXPECT_EQ(scenario.set.schema(1).num_attributes(), n);
  // Every column is annotated (plus the table pair).
  EXPECT_EQ(scenario.truth.size(), n + 1);
}

TEST(FabricatorTest, JoinableSharesOnlyTheKey) {
  FabricatorOptions options;
  options.kind = FabricationKind::kJoinable;
  options.rename_probability = 0.0;
  const auto scenario = FabricatePair(SourceTable(), options);
  // Table pair + exactly one shared (key) column.
  EXPECT_EQ(scenario.truth.size(), 2u);
  const size_t n = SourceTable().attributes.size();
  EXPECT_EQ(scenario.set.schema(0).num_attributes() +
                scenario.set.schema(1).num_attributes(),
            n + 1);  // Key counted on both sides.
}

TEST(FabricatorTest, SemanticallyJoinableHasNoVerbatimNames) {
  FabricatorOptions options;
  options.kind = FabricationKind::kSemanticallyJoinable;
  const auto scenario = FabricatePair(SourceTable(), options);
  // Every annotated attribute pair is sub-typed (renamed), never
  // inter-identical.
  for (const Linkage& l : scenario.truth.linkages()) {
    if (l.a.is_table()) continue;
    EXPECT_EQ(l.type, LinkType::kInterSubTyped);
  }
}

TEST(FabricatorTest, ZeroRenameProbabilityKeepsNamesVerbatim) {
  FabricatorOptions options;
  options.kind = FabricationKind::kUnionable;
  options.rename_probability = 0.0;
  const auto scenario = FabricatePair(SourceTable(), options);
  for (const Linkage& l : scenario.truth.linkages()) {
    EXPECT_EQ(l.type, LinkType::kInterIdentical);
  }
}

TEST(FabricatorTest, MatcherRecoversFabricatedGroundTruth) {
  // End-to-end sanity: on an unrenamed unionable pair, top-1 LSH
  // recovers essentially the whole ground truth.
  FabricatorOptions options;
  options.kind = FabricationKind::kUnionable;
  options.rename_probability = 0.0;
  const auto scenario = FabricatePair(SourceTable(), options);
  const embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> all(signatures.size(), true);
  const auto pairs = matching::LshMatcher(1).Match(signatures, all);
  const auto quality = eval::EvaluateMatching(
      pairs, scenario.truth,
      scenario.set.TableCartesianSize() +
          scenario.set.AttributeCartesianSize());
  EXPECT_GT(quality.PairCompleteness(), 0.9);
}

TEST(FabricatorTest, SemanticJoinHarderThanVerbatimJoin) {
  // The Valentine difficulty ordering: semantically-joinable (synonyms
  // only) yields no better completeness than plain joinable for a
  // signature matcher.
  const embed::HashedLexiconEncoder encoder;
  auto run = [&](FabricationKind kind) {
    FabricatorOptions options;
    options.kind = kind;
    options.rename_probability = 0.0;
    const auto scenario = FabricatePair(SourceTable(), options);
    const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
    const std::vector<bool> all(signatures.size(), true);
    const auto pairs = matching::LshMatcher(1).Match(signatures, all);
    return eval::EvaluateMatching(pairs, scenario.truth,
                                  scenario.set.TableCartesianSize() +
                                      scenario.set.AttributeCartesianSize())
        .PairCompleteness();
  };
  EXPECT_GE(run(FabricationKind::kJoinable),
            run(FabricationKind::kSemanticallyJoinable));
}

}  // namespace
}  // namespace colscope::datasets
