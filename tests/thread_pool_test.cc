#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  const Status status =
      pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSurfacesThrownExceptionAsStatus) {
  ThreadPool pool(4);
  // Without the catch in ParallelFor, an exception escaping a worker
  // thread would std::terminate the whole process.
  const Status status = pool.ParallelFor(128, [&](size_t i) {
    if (i == 17) throw std::runtime_error("task 17 exploded");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task 17 exploded"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForExceptionCancelsRemainingWork) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  const Status status = pool.ParallelFor(10000, [&](size_t i) {
    executed.fetch_add(1);
    if (i == 0) throw std::runtime_error("early failure");
  });
  ASSERT_FALSE(status.ok());
  // The failure cancels scheduling/execution of most of the remaining
  // indices; without propagation all 10000 would have run.
  EXPECT_LT(executed.load(), 10000);
}

TEST(ThreadPoolTest, ParallelForNonStdExceptionIsInternal) {
  ThreadPool pool(2);
  const Status status =
      pool.ParallelFor(4, [&](size_t i) {
        if (i == 1) throw 42;  // NOLINT(hicpp-exception-baseclass)
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ThreadPoolTest, ParallelForPoolSurvivesAfterException) {
  ThreadPool pool(2);
  (void)pool.ParallelFor(8, [&](size_t i) {
    if (i % 2 == 0) throw std::runtime_error("boom");
  });
  // The pool must remain fully usable for subsequent batches.
  std::atomic<int> counter{0};
  const Status status =
      pool.ParallelFor(32, [&](size_t) { counter.fetch_add(1); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ParallelForPreCancelledTokenSkipsAllWork) {
  ThreadPool pool(2);
  CancellationToken cancel;
  cancel.Cancel();
  std::atomic<int> executed{0};
  const Status status = pool.ParallelFor(
      64, [&](size_t) { executed.fetch_add(1); }, &cancel);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCancelMidFlightStopsEarly) {
  ThreadPool pool(2);
  CancellationToken cancel;
  std::atomic<int> executed{0};
  const Status status = pool.ParallelFor(100000, [&](size_t i) {
    executed.fetch_add(1);
    if (i == 10) cancel.Cancel();
  }, &cancel);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_LT(executed.load(), 100000);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelFitTest, MatchesSequentialFit) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures =
      scoping::BuildSignatures(scenario.set, encoder);
  const auto sequential = scoping::FitLocalModels(signatures, 4, 0.7);
  const auto parallel =
      scoping::FitLocalModelsParallel(signatures, 4, 0.7, 3);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t s = 0; s < sequential->size(); ++s) {
    EXPECT_EQ((*sequential)[s].schema_index(),
              (*parallel)[s].schema_index());
    EXPECT_DOUBLE_EQ((*sequential)[s].linkability_range(),
                     (*parallel)[s].linkability_range());
    // Behavioural equality: identical reconstruction errors.
    const auto local = signatures.SchemaSignatures(static_cast<int>(s));
    EXPECT_EQ((*sequential)[s].ReconstructionErrors(local),
              (*parallel)[s].ReconstructionErrors(local));
  }
}

TEST(ParallelFitTest, PropagatesFitErrors) {
  // An empty schema must surface as an error, not a crash.
  scoping::SignatureSet empty;
  const auto result = scoping::FitLocalModelsParallel(empty, 1, 0.5, 2);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace colscope
