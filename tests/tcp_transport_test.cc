// Socket-level tests of the distributed exchange: TcpTransport against a
// live WorkerServer in this process — byte-identical model round trips,
// the socket fault taxonomy (refused connect, mid-frame truncation,
// corruption under an honest checksum, staleness), ephemeral-port
// binding with the port file, and cancellation of blocked I/O.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injector.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "exchange/exchange.h"
#include "net/coordinator.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "net/telemetry.h"
#include "net/worker.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scoping/model_io.h"
#include "scoping/signatures.h"

namespace colscope::net {
namespace {

using exchange::FetchModelWithRetry;
using exchange::RetryPolicy;

// One in-process worker serving the toy scenario's schemas, plus the
// plumbing to assign it a shard and point a TcpTransport at it.
class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    num_schemas_ = scenario_.set.num_schemas();
  }

  void TearDown() override {
    for (auto& worker : workers_) {
      worker.server.RequestStop();
    }
    for (auto& worker : workers_) {
      if (worker.thread.joinable()) worker.thread.join();
    }
  }

  struct LiveWorker {
    WorkerServer server;
    std::thread thread;
    Endpoint endpoint;
  };

  // Starts a worker on an ephemeral port and begins serving.
  LiveWorker& StartWorker(WorkerOptions options = {}) {
    options.listen = Endpoint{"127.0.0.1", 0};
    auto server = WorkerServer::Create(&signatures_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    workers_.push_back(LiveWorker{std::move(server).value(), {}, {}});
    LiveWorker& worker = workers_.back();
    worker.endpoint = Endpoint{"127.0.0.1", worker.server.port()};
    worker.thread = std::thread([&worker] { (void)worker.server.Serve(); });
    return worker;
  }

  // Ships `worker` an assignment covering every schema, with the given
  // fault profile applied server-side to kGetModel.
  void Assign(const LiveWorker& worker, const FaultProfile& faults) {
    AssignConfig config;
    config.num_schemas = num_schemas_;
    config.v = 0.8;
    config.faults = faults;
    for (size_t i = 0; i < num_schemas_; ++i) {
      config.shard.push_back(static_cast<int>(i));
      config.owners[static_cast<int>(i)] = worker.endpoint;
    }
    NetOptions net;
    auto socket = Socket::Connect(worker.endpoint, net);
    ASSERT_TRUE(socket.ok()) << socket.status().ToString();
    ASSERT_TRUE(socket->SendFrame(FrameType::kAssign, EncodeAssign(config),
                                  net)
                    .ok());
    auto ack = socket->RecvFrame(net);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_EQ(ack->type, FrameType::kAssignAck);
  }

  // A transport whose every schema is owned by `worker` (nothing local).
  TcpTransport RemoteTransport(const LiveWorker& worker,
                               const FaultProfile& faults = {},
                               NetOptions net = {}) {
    std::map<int, Endpoint> owners;
    for (size_t i = 0; i < num_schemas_; ++i) {
      owners[static_cast<int>(i)] = worker.endpoint;
    }
    return TcpTransport(std::move(owners), FaultInjector(faults), net);
  }

  std::string ExpectedModel(int schema) {
    auto model = scoping::LocalModel::Fit(
        signatures_.SchemaSignatures(static_cast<size_t>(schema)), 0.8,
        schema);
    EXPECT_TRUE(model.ok());
    return scoping::SerializeLocalModel(*model);
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  size_t num_schemas_ = 0;
  std::vector<LiveWorker> workers_;
};

TEST_F(TcpTransportTest, EphemeralPortAndPortFile) {
  const std::string port_file =
      ::testing::TempDir() + "/tcp_transport_test.port";
  WorkerOptions options;
  options.port_file = port_file;
  LiveWorker& worker = StartWorker(options);
  EXPECT_NE(worker.server.port(), 0);

  // The harness plumbing: the real port is readable from the file.
  std::ifstream in(port_file);
  ASSERT_TRUE(in.good());
  int port = 0;
  in >> port;
  EXPECT_EQ(port, worker.server.port());
}

TEST_F(TcpTransportTest, RemoteFetchByteIdenticalToInMemoryPayload) {
  LiveWorker& worker = StartWorker();
  Assign(worker, FaultProfile{});
  TcpTransport transport = RemoteTransport(worker);

  for (size_t schema = 0; schema < num_schemas_; ++schema) {
    const auto response = transport.Fetch(static_cast<int>(schema), 0, 0);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.fault, FaultKind::kNone);
    // The wire payload is byte-identical to what the in-memory transport
    // would deliver: the hardened serialization of the fitted model.
    EXPECT_EQ(response.payload, ExpectedModel(static_cast<int>(schema)));
    // And it deserializes cleanly at the receiver.
    EXPECT_TRUE(scoping::DeserializeLocalModel(response.payload).ok());
  }
}

TEST_F(TcpTransportTest, LocalPublishersNeverCrossTheSocket) {
  // No worker at this endpoint: any remote fetch would drop. Published
  // (local) schemas must still be served, through the embedded in-memory
  // transport.
  std::map<int, Endpoint> owners;
  for (size_t i = 0; i < num_schemas_; ++i) {
    owners[static_cast<int>(i)] = Endpoint{"127.0.0.1", 1};
  }
  TcpTransport transport(owners, FaultInjector(FaultProfile{}), NetOptions{});
  const std::string model = ExpectedModel(0);
  ASSERT_TRUE(transport.Publish(0, model).ok());

  const auto local = transport.Fetch(0, 1, 0);
  ASSERT_TRUE(local.status.ok());
  EXPECT_EQ(local.payload, model);

  const auto remote = transport.Fetch(1, 0, 0);
  EXPECT_FALSE(remote.status.ok());
  EXPECT_EQ(remote.fault, FaultKind::kDrop);
}

TEST_F(TcpTransportTest, UnownedSchemaIsNotFound) {
  TcpTransport transport({}, FaultInjector(FaultProfile{}), NetOptions{});
  const auto response = transport.Fetch(7, 0, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
}

TEST_F(TcpTransportTest, RefusedConnectClassifiedAsDrop) {
  LiveWorker& worker = StartWorker();
  Assign(worker, FaultProfile{});
  // Point the transport at a port nobody listens on.
  std::map<int, Endpoint> owners;
  owners[0] = Endpoint{"127.0.0.1", 1};
  NetOptions net;
  net.connect_timeout_ms = 500.0;
  TcpTransport transport(owners, FaultInjector(FaultProfile{}), net);
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(response.fault, FaultKind::kDrop);
}

TEST_F(TcpTransportTest, ServerSideDropFault) {
  LiveWorker& worker = StartWorker();
  FaultProfile faults;
  faults.drop_probability = 1.0;
  Assign(worker, faults);
  TcpTransport transport = RemoteTransport(worker);

  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.fault, FaultKind::kDrop);
}

TEST_F(TcpTransportTest, ServerSideTruncationFault) {
  LiveWorker& worker = StartWorker();
  FaultProfile faults;
  faults.truncate_probability = 1.0;
  Assign(worker, faults);
  TcpTransport transport = RemoteTransport(worker);

  // The worker sends a strict prefix of the encoded frame, then closes:
  // the transport sees a mid-frame EOF and classifies it kTruncate. No
  // allocation blowup — the header's length field was validated first.
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_FALSE(response.status.ok());
  EXPECT_TRUE(response.fault == FaultKind::kTruncate ||
              response.fault == FaultKind::kDrop)
      << FaultKindToString(response.fault);
}

TEST_F(TcpTransportTest, ServerSideCorruptionSurvivesTheWireButNotParsing) {
  LiveWorker& worker = StartWorker();
  FaultProfile faults;
  faults.corrupt_probability = 1.0;
  Assign(worker, faults);
  TcpTransport transport = RemoteTransport(worker);

  // Corruption under an honest checksum: the frame layer accepts it (the
  // checksum covers the corrupted bytes), exactly like the in-memory
  // transport, and the receiver detects it by parsing.
  const auto response = transport.Fetch(0, 1, 0);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_NE(response.payload, ExpectedModel(0));
  EXPECT_FALSE(scoping::DeserializeLocalModel(response.payload).ok());
}

TEST_F(TcpTransportTest, RetryLoopRecoversOverTcpLikeInMemory) {
  LiveWorker& worker = StartWorker();
  FaultProfile faults;
  faults.drop_probability = 0.5;
  faults.seed = 11;
  Assign(worker, faults);
  TcpTransport transport = RemoteTransport(worker, faults);

  RetryPolicy policy;
  policy.max_attempts = 8;
  const auto outcome = FetchModelWithRetry(transport, 0, 1, policy, 11);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(scoping::SerializeLocalModel(*outcome.model), ExpectedModel(0));
}

TEST_F(TcpTransportTest, CancelledTokenAbortsFetch) {
  LiveWorker& worker = StartWorker();
  Assign(worker, FaultProfile{});
  CancellationToken cancel;
  cancel.Cancel();
  NetOptions net;
  net.cancel = &cancel;
  TcpTransport transport = RemoteTransport(worker, FaultProfile{}, net);
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
}

TEST_F(TcpTransportTest, ExpiredDeadlineAbortsFetch) {
  LiveWorker& worker = StartWorker();
  Assign(worker, FaultProfile{});
  SystemRunClock clock;
  NetOptions net;
  net.deadline = Deadline::After(&clock, 0.0);
  TcpTransport transport = RemoteTransport(worker, FaultProfile{}, net);
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(TcpTransportTest, AssessConsumerMatchesSingleProcessRun) {
  LiveWorker& worker = StartWorker();
  FaultProfile faults;
  faults.drop_probability = 0.3;
  faults.seed = 42;
  Assign(worker, faults);
  TcpTransport tcp = RemoteTransport(worker, faults);

  // The same consumer assessed over the in-memory transport with the
  // same fault stream must produce identical keep bits and identical
  // per-fetch fault sequences — the equivalence the distributed report
  // guarantee rests on.
  exchange::InMemoryTransport memory{FaultInjector(faults)};
  for (size_t i = 0; i < num_schemas_; ++i) {
    ASSERT_TRUE(
        memory
            .Publish(static_cast<int>(i), ExpectedModel(static_cast<int>(i)))
            .ok());
  }

  RetryPolicy retry;
  scoping::DegradedOptions degraded;
  degraded.policy = scoping::DegradedPolicy::kKeepAll;
  std::vector<exchange::PeerFetchRecord> tcp_fetches, memory_fetches;
  const ConsumerPartial over_tcp = AssessConsumerOverTransport(
      signatures_, /*consumer=*/1, num_schemas_, tcp, retry, faults.seed,
      degraded, tcp_fetches);
  const ConsumerPartial over_memory = AssessConsumerOverTransport(
      signatures_, /*consumer=*/1, num_schemas_, memory, retry, faults.seed,
      degraded, memory_fetches);

  EXPECT_EQ(over_tcp.ok, over_memory.ok);
  EXPECT_EQ(over_tcp.arrived, over_memory.arrived);
  EXPECT_EQ(over_tcp.bits, over_memory.bits);
  ASSERT_EQ(tcp_fetches.size(), memory_fetches.size());
  for (size_t i = 0; i < tcp_fetches.size(); ++i) {
    EXPECT_EQ(tcp_fetches[i].ok, memory_fetches[i].ok) << i;
    EXPECT_EQ(tcp_fetches[i].attempts, memory_fetches[i].attempts) << i;
    EXPECT_EQ(tcp_fetches[i].faults, memory_fetches[i].faults) << i;
  }
}

// --- Partition fault injection -----------------------------------------------

TEST_F(TcpTransportTest, PartitionedPublisherClassifiedAsPartition) {
  // Bound the worker-side stall so the handler thread self-terminates.
  WorkerOptions options;
  options.net.io_timeout_ms = 2000.0;
  LiveWorker& worker = StartWorker(options);
  FaultProfile faults;
  faults.partition_from = 0;
  Assign(worker, faults);
  NetOptions net;
  net.io_timeout_ms = 300.0;
  TcpTransport transport = RemoteTransport(worker, FaultProfile{}, net);

  // The connection is accepted and the request sent; the reply never
  // comes. Distinct from a crash (refused connect) and from a drop
  // (clean close): with the run deadline intact, the io timeout
  // classifies as a partitioned peer — kUnavailable (so the retry loop
  // treats it as transient) tagged kPartition.
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(response.fault, FaultKind::kPartition)
      << FaultKindToString(response.fault);

  // The partition is per-publisher: the same worker still serves its
  // other schemas on fresh connections.
  const auto healthy = transport.Fetch(1, 0, 0);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();
  EXPECT_EQ(healthy.payload, ExpectedModel(1));
}

TEST_F(TcpTransportTest, PartitionStallUnderRunDeadlineStaysDeadline) {
  WorkerOptions options;
  options.net.io_timeout_ms = 2000.0;
  LiveWorker& worker = StartWorker(options);
  FaultProfile faults;
  faults.partition_from = 0;
  Assign(worker, faults);
  SystemRunClock clock;
  NetOptions net;
  net.io_timeout_ms = 5000.0;
  net.deadline = Deadline::After(&clock, 150.0);
  TcpTransport transport = RemoteTransport(worker, FaultProfile{}, net);

  // When the *run's* budget (not the per-frame io timeout) expires during
  // the stall, the verdict must stay kDeadlineExceeded — retrying a
  // fetch whose run is out of time would be lying to the retry loop.
  const auto response = transport.Fetch(0, 1, 0);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(response.fault, FaultKind::kPartition);
}

TEST_F(TcpTransportTest, QuorumSurvivesPartitionedPublisher) {
  WorkerOptions options;
  options.net.io_timeout_ms = 2000.0;
  LiveWorker& worker = StartWorker(options);
  FaultProfile faults;
  faults.partition_from = 0;
  Assign(worker, faults);
  NetOptions net;
  net.io_timeout_ms = 250.0;
  TcpTransport transport = RemoteTransport(worker, FaultProfile{}, net);

  RetryPolicy retry;
  retry.max_attempts = 2;
  scoping::DegradedOptions degraded;
  degraded.policy = scoping::DegradedPolicy::kQuorum;
  degraded.quorum = 1;
  std::vector<exchange::PeerFetchRecord> fetches;
  const ConsumerPartial partial = AssessConsumerOverTransport(
      signatures_, /*consumer=*/1, num_schemas_, transport, retry,
      /*seed=*/0, degraded, fetches);

  // Every publisher except the partitioned one arrived, so quorum:1 is
  // met and the consumer assesses against the models it did get.
  EXPECT_TRUE(partial.ok) << partial.error;
  EXPECT_EQ(partial.arrived, num_schemas_ - 2);  // minus self, minus 0.
  size_t consumer_elements = 0;
  for (const schema::ElementRef& ref : signatures_.refs) {
    if (ref.schema == 1) ++consumer_elements;
  }
  EXPECT_EQ(partial.bits.size(), consumer_elements);

  // The fetch record for the partitioned publisher shows the retries and
  // names the fault kind the report's degradation block will echo.
  bool saw_partitioned_fetch = false;
  for (const auto& record : fetches) {
    if (record.publisher != 0) {
      EXPECT_TRUE(record.ok) << record.error;
      continue;
    }
    saw_partitioned_fetch = true;
    EXPECT_FALSE(record.ok);
    EXPECT_EQ(record.attempts, retry.max_attempts);
    ASSERT_FALSE(record.faults.empty());
    for (const FaultKind kind : record.faults) {
      EXPECT_EQ(kind, FaultKind::kPartition) << FaultKindToString(kind);
    }
  }
  EXPECT_TRUE(saw_partitioned_fetch);
}

// --- Distributed telemetry ---------------------------------------------------

/// Finds a counter by name in a snapshot; 0 when absent.
uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

bool HasHistogram(const obs::MetricsSnapshot& snapshot,
                  const std::string& name) {
  for (const auto& [histogram_name, unused] : snapshot.histograms) {
    if (histogram_name == name) return true;
  }
  return false;
}

TEST_F(TcpTransportTest, TelemetryHarvestAndTracePropagation) {
  // Worker side: its own registry, tracer, and simulated clock — what
  // `--role worker --trace-clock sim` wires up.
  obs::MetricsRegistry worker_registry;
  obs::SimulatedTraceClock worker_clock;
  obs::Tracer worker_tracer(&worker_clock);
  WorkerOptions worker_options;
  worker_options.net.metrics = &worker_registry;
  worker_options.net.tracer = &worker_tracer;
  worker_options.net.clock = &worker_clock;
  LiveWorker& worker = StartWorker(worker_options);

  // Coordinator side, with a nonzero run trace id.
  obs::MetricsRegistry coord_registry;
  obs::SimulatedTraceClock coord_clock;
  obs::Tracer coord_tracer(&coord_clock);
  coord_tracer.set_trace_id(777);
  CoordinatorOptions options;
  options.workers = {worker.endpoint};
  options.degraded.policy = scoping::DegradedPolicy::kKeepAll;
  options.net.metrics = &coord_registry;
  options.net.tracer = &coord_tracer;
  options.net.clock = &coord_clock;

  auto scoped = DistributedScope(signatures_, num_schemas_, options,
                                 &coord_registry);
  ASSERT_TRUE(scoped.ok()) << scoped.status().ToString();
  ShutdownWorkers(options.workers, options.net);
  for (auto& live : workers_) {
    if (live.thread.joinable()) live.thread.join();
  }

  // The harvest delivered one telemetry blob, carrying the run trace id
  // the kAssign frame propagated.
  ASSERT_EQ(scoped->telemetry.size(), 1u);
  ASSERT_TRUE(scoped->telemetry[0].has_value());
  const WorkerTelemetry& telemetry = *scoped->telemetry[0];
  EXPECT_EQ(telemetry.trace_id, 777u);

  // The worker's handler threads registered under their protocol names.
  ASSERT_GE(telemetry.thread_names.size(), 2u);
  EXPECT_EQ(telemetry.thread_names[0], "assign");
  EXPECT_EQ(telemetry.thread_names[1], "assess");

  // Worker spans parent under the coordinator's RPC spans: the
  // worker.assign span's parent id is the rpc.assign span's id.
  const auto coord_events = coord_tracer.Events();
  uint64_t rpc_assign_span = 0;
  for (const auto& event : coord_events) {
    if (event.name == "rpc.assign") rpc_assign_span = event.span_id;
  }
  ASSERT_NE(rpc_assign_span, 0u);
  bool saw_worker_assign = false, saw_worker_assess = false;
  for (const auto& event : telemetry.events) {
    if (event.name == "worker.assign") {
      saw_worker_assign = true;
      EXPECT_EQ(event.parent_span_id, rpc_assign_span);
    }
    if (event.name == "worker.assess") saw_worker_assess = true;
  }
  EXPECT_TRUE(saw_worker_assign);
  EXPECT_TRUE(saw_worker_assess);

  // Client-side RPC latency histograms and per-type byte counters landed
  // on the coordinator...
  const auto coord_snapshot = coord_registry.Snapshot();
  EXPECT_TRUE(HasHistogram(coord_snapshot, "net.rpc_ms.assign"));
  EXPECT_TRUE(HasHistogram(coord_snapshot, "net.rpc_ms.assess"));
  EXPECT_TRUE(HasHistogram(coord_snapshot, "net.rpc_ms.stats_request"));
  EXPECT_GT(CounterValue(coord_snapshot, "net.bytes_sent.assign"), 0u);
  EXPECT_GT(CounterValue(coord_snapshot, "net.bytes_received.assign_ack"),
            0u);
  EXPECT_GT(CounterValue(coord_snapshot, "net.bytes_received.partial"), 0u);
  // ...and the harvested worker snapshot counted its serving side.
  EXPECT_GT(CounterValue(telemetry.metrics, "net.bytes_received.assign"),
            0u);
  EXPECT_GT(CounterValue(telemetry.metrics, "net.bytes_sent.partial"), 0u);
  EXPECT_GT(CounterValue(telemetry.metrics, "exchange.fetches"), 0u);
}

TEST_F(TcpTransportTest, DeadWorkerLeavesTelemetryHoleNotError) {
  obs::FlightRecorder::Global().Clear();
  LiveWorker& alive = StartWorker();
  CoordinatorOptions options;
  // Worker 1 is an endpoint nobody listens on: lost at assignment.
  options.workers = {alive.endpoint, Endpoint{"127.0.0.1", 1}};
  options.degraded.policy = scoping::DegradedPolicy::kKeepAll;
  options.net.connect_timeout_ms = 500.0;

  auto scoped = DistributedScope(signatures_, num_schemas_, options);
  ASSERT_TRUE(scoped.ok()) << scoped.status().ToString();
  ShutdownWorkers(options.workers, options.net);
  for (auto& live : workers_) {
    if (live.thread.joinable()) live.thread.join();
  }

  EXPECT_EQ(scoped->lost_workers, (std::vector<size_t>{1}));
  ASSERT_EQ(scoped->telemetry.size(), 2u);
  EXPECT_TRUE(scoped->telemetry[0].has_value());
  EXPECT_FALSE(scoped->telemetry[1].has_value());

  // The flight recorder named the dead worker at every round it missed.
  bool saw_lost_assign = false, saw_stats_hole = false;
  for (const auto& event : obs::FlightRecorder::Global().Snapshot()) {
    if (event.kind != "rpc") continue;
    if (event.detail.rfind("assign worker=1 ", 0) == 0 &&
        event.detail.find(" ok") == std::string::npos) {
      saw_lost_assign = true;
    }
    if (event.detail == "stats worker=1 hole") saw_stats_hole = true;
  }
  EXPECT_TRUE(saw_lost_assign);
  EXPECT_TRUE(saw_stats_hole);
}

TEST_F(TcpTransportTest, ShutdownStopsServeLoop) {
  LiveWorker& worker = StartWorker();
  NetOptions net;
  auto socket = Socket::Connect(worker.endpoint, net);
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket->SendFrame(FrameType::kShutdown, "", net).ok());
  auto ack = socket->RecvFrame(net);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, FrameType::kShutdownAck);
  worker.thread.join();  // Serve() must return on its own.
}

}  // namespace
}  // namespace colscope::net
