// Wire-framing tests: the length-prefixed, versioned, checksummed frame
// codec must reject truncated, oversized, corrupt, and version-skewed
// frames — before any payload allocation for header-level defects — and
// round-trip payloads byte for byte. Plus the line-oriented protocol
// payload codecs (assign / get-model / error / partial).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/telemetry.h"
#include "obs/metrics.h"

namespace colscope::net {
namespace {

// --- Frame encode / decode ---------------------------------------------------

TEST(FrameTest, RoundTripByteIdentical) {
  const std::string payload = "colscope-local-model v1\nmean 3 1 2 3\n";
  const std::string wire = EncodeFrame(FrameType::kModel, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  auto frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kModel);
  EXPECT_EQ(frame->payload, payload);

  // Encoding is deterministic: same input, same bytes.
  EXPECT_EQ(wire, EncodeFrame(FrameType::kModel, payload));
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::string wire = EncodeFrame(FrameType::kShutdown, "");
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  auto frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameTest, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  auto frame = DecodeFrame(EncodeFrame(FrameType::kPartial, payload));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, TruncatedHeaderRejected) {
  const std::string wire = EncodeFrame(FrameType::kModel, "payload");
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    EXPECT_FALSE(DecodeFrame(wire.substr(0, len)).ok()) << len;
  }
}

TEST(FrameTest, TruncatedPayloadRejected) {
  const std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  for (size_t cut = kFrameHeaderSize; cut < wire.size(); ++cut) {
    auto frame = DecodeFrame(wire.substr(0, cut));
    EXPECT_FALSE(frame.ok()) << cut;
  }
}

TEST(FrameTest, TrailingGarbageRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  wire += "x";
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(FrameTest, BadMagicRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[0] = 'X';
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("magic"), std::string::npos);
}

TEST(FrameTest, VersionSkewRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[4] = static_cast<char>(kFrameVersion + 1);  // little-endian lo byte
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("version"), std::string::npos);
}

TEST(FrameTest, UnknownTypeRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[6] = 0;  // type byte; 0 is not a FrameType
  EXPECT_FALSE(DecodeFrame(wire).ok());
  wire[6] = 99;
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(IsKnownFrameType(0));
  EXPECT_FALSE(IsKnownFrameType(99));
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(FrameType::kModel)));
}

TEST(FrameTest, OversizedLengthRejectedFromHeaderAlone) {
  // A hostile length field must be rejected by ParseFrameHeader — i.e.
  // before anyone allocates payload_len bytes. Build a header claiming a
  // payload just over the cap.
  std::string wire = EncodeFrame(FrameType::kModel, "tiny");
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  auto header = ParseFrameHeader(std::string_view(wire).substr(
      0, kFrameHeaderSize));
  EXPECT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("payload"), std::string::npos);

  // At the cap is still structurally acceptable header-wise.
  const uint32_t at_cap = kMaxFramePayload;
  std::memcpy(&wire[8], &at_cap, sizeof(at_cap));
  EXPECT_TRUE(
      ParseFrameHeader(std::string_view(wire).substr(0, kFrameHeaderSize))
          .ok());
}

TEST(FrameTest, ChecksumMismatchRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  wire[kFrameHeaderSize + 3] ^= 0x40;  // flip one payload bit
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("checksum"), std::string::npos);
}

TEST(FrameTest, EveryHeaderByteFlipDetected) {
  // Flipping any single header byte must never yield a *different*
  // successfully-decoded frame: either the decode fails, or (for the
  // flags/reserved byte) it may be tolerated only if the decode result
  // is unchanged. This is the allocation-safety net for line noise.
  const std::string payload = "abcdefgh";
  const std::string wire = EncodeFrame(FrameType::kAssign, payload);
  for (size_t i = 0; i < kFrameHeaderSize; ++i) {
    std::string bent = wire;
    bent[i] ^= 0x01;
    auto frame = DecodeFrame(bent);
    if (frame.ok()) {
      EXPECT_EQ(frame->type, FrameType::kAssign) << "byte " << i;
      EXPECT_EQ(frame->payload, payload) << "byte " << i;
    }
  }
}

// --- Protocol payload codecs -------------------------------------------------

TEST(ProtocolTest, AssignRoundTrip) {
  AssignConfig config;
  config.num_schemas = 4;
  config.v = 0.65;
  config.degraded.policy = scoping::DegradedPolicy::kQuorum;
  config.degraded.quorum = 2;
  config.retry.max_attempts = 3;
  config.retry.deadline_ms = 1234.5;
  config.faults.drop_probability = 0.25;
  config.faults.seed = 99;
  config.faults.drop_from = 2;
  config.shard = {1, 3};
  config.owners[0] = {"127.0.0.1", 7001};
  config.owners[1] = {"127.0.0.1", 7002};
  config.owners[2] = {"127.0.0.1", 7001};
  config.owners[3] = {"127.0.0.1", 7002};

  auto decoded = DecodeAssign(EncodeAssign(config));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_schemas, 4u);
  EXPECT_DOUBLE_EQ(decoded->v, 0.65);
  EXPECT_EQ(decoded->degraded.policy, scoping::DegradedPolicy::kQuorum);
  EXPECT_EQ(decoded->degraded.quorum, 2u);
  EXPECT_EQ(decoded->retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(decoded->retry.deadline_ms, 1234.5);
  EXPECT_DOUBLE_EQ(decoded->faults.drop_probability, 0.25);
  EXPECT_EQ(decoded->faults.seed, 99u);
  EXPECT_EQ(decoded->faults.drop_from, 2);
  EXPECT_EQ(decoded->shard, (std::vector<int>{1, 3}));
  ASSERT_EQ(decoded->owners.size(), 4u);
  EXPECT_EQ(decoded->owners[1].port, 7002);

  // Encoding is deterministic.
  EXPECT_EQ(EncodeAssign(config), EncodeAssign(config));
}

TEST(ProtocolTest, AssignRejectsGarbage) {
  EXPECT_FALSE(DecodeAssign("").ok());
  EXPECT_FALSE(DecodeAssign("not-an-assign v1\n").ok());
  EXPECT_FALSE(DecodeAssign("colscope-assign v2\n").ok());
  // Truncations of a valid encoding must never decode.
  AssignConfig config;
  config.num_schemas = 2;
  config.shard = {0};
  config.owners[0] = {"127.0.0.1", 7001};
  config.owners[1] = {"127.0.0.1", 7002};
  const std::string wire = EncodeAssign(config);
  for (size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(DecodeAssign(wire.substr(0, cut)).ok()) << cut;
  }
}

TEST(ProtocolTest, GetModelRoundTrip) {
  GetModelRequest request{3, 1, 4, {}};
  auto decoded = DecodeGetModel(EncodeGetModel(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->publisher, 3);
  EXPECT_EQ(decoded->consumer, 1);
  EXPECT_EQ(decoded->attempt, 4);
  EXPECT_FALSE(DecodeGetModel("bogus").ok());
  EXPECT_FALSE(DecodeGetModel("").ok());
}

TEST(ProtocolTest, ErrorPayloadRoundTrip) {
  const Status status = Status::NotFound("model 3 not published");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "model 3 not published");
  // Unknown code decodes towards retry, not crash.
  EXPECT_EQ(DecodeErrorPayload("WAT broken").code(),
            StatusCode::kUnavailable);
}

TEST(ProtocolTest, PartialRoundTrip) {
  PartialResult partial;
  ConsumerPartial good;
  good.consumer = 1;
  good.ok = true;
  good.arrived = 2;
  good.bits = {true, false, true};
  ConsumerPartial bad;
  bad.consumer = 3;
  bad.ok = false;
  bad.arrived = 0;
  bad.error = "quorum unmet: 0 < 2";
  partial.consumers = {good, bad};
  exchange::PeerFetchRecord record;
  record.publisher = 0;
  record.consumer = 1;
  record.attempts = 2;
  record.elapsed_ms = 12.5;
  record.ok = true;
  record.faults = {FaultKind::kDrop, FaultKind::kNone};
  partial.fetches = {record};

  auto decoded = DecodePartial(EncodePartial(partial));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->consumers.size(), 2u);
  EXPECT_TRUE(decoded->consumers[0].ok);
  EXPECT_EQ(decoded->consumers[0].arrived, 2u);
  EXPECT_EQ(decoded->consumers[0].bits,
            (std::vector<bool>{true, false, true}));
  EXPECT_FALSE(decoded->consumers[1].ok);
  EXPECT_EQ(decoded->consumers[1].error, "quorum unmet: 0 < 2");
  ASSERT_EQ(decoded->fetches.size(), 1u);
  EXPECT_EQ(decoded->fetches[0].attempts, 2);
  EXPECT_DOUBLE_EQ(decoded->fetches[0].elapsed_ms, 12.5);
  EXPECT_EQ(decoded->fetches[0].faults,
            (std::vector<FaultKind>{FaultKind::kDrop, FaultKind::kNone}));

  // Framed round trip is byte-identical to the in-memory payload.
  const std::string payload = EncodePartial(partial);
  auto frame = DecodeFrame(EncodeFrame(FrameType::kPartial, payload));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, payload);
}

TEST(ProtocolTest, PartialRejectsTruncationAndCountLies) {
  PartialResult partial;
  ConsumerPartial one;
  one.consumer = 0;
  one.ok = true;
  one.arrived = 1;
  one.bits = {true};
  partial.consumers = {one};
  const std::string wire = EncodePartial(partial);
  for (size_t cut = 0; cut < wire.size(); cut += 5) {
    EXPECT_FALSE(DecodePartial(wire.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(DecodePartial("colscope-partial v1\nconsumers 9999999999\n")
                   .ok());
}

// --- Version skew and new frame types ----------------------------------------

TEST(FrameTest, OlderPeerVersionAccepted) {
  // A v1 peer (pre-telemetry build) must still interoperate: the
  // checksum covers only the payload, so rewriting the version bytes to
  // kMinFrameVersion yields a frame this build accepts unchanged.
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[4] = static_cast<char>(kMinFrameVersion);
  wire[5] = '\0';
  auto frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kModel);
  EXPECT_EQ(frame->payload, "payload");

  auto header =
      ParseFrameHeader(std::string_view(wire).substr(0, kFrameHeaderSize));
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, kMinFrameVersion);

  // Below the floor (version 0) is rejected like a future version.
  wire[4] = '\0';
  auto rejected = DecodeFrame(wire);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("version"), std::string::npos);
}

TEST(FrameTest, TelemetryFrameTypesRoundTrip) {
  auto request = DecodeFrame(EncodeFrame(FrameType::kStatsRequest, ""));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, FrameType::kStatsRequest);
  auto stats = DecodeFrame(EncodeFrame(FrameType::kStats, "colscope-stats"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->type, FrameType::kStats);
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(FrameType::kStats)));
  EXPECT_FALSE(IsKnownFrameType(15));
}

TEST(FrameTest, ServerFrameTypesRoundTrip) {
  auto request = DecodeFrame(EncodeFrame(FrameType::kScopeRequest, "req"));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, FrameType::kScopeRequest);
  auto response = DecodeFrame(EncodeFrame(FrameType::kScopeResponse, "{}"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kScopeResponse);
  auto health = DecodeFrame(EncodeFrame(FrameType::kHealth, ""));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, FrameType::kHealth);
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(FrameType::kHealth)));
}

TEST(FrameTest, FrameTypeNamesAreStable) {
  // These labels key the net.bytes_*/net.rpc_ms.* metric names and the
  // flight-recorder lines — renaming one silently breaks dashboards.
  EXPECT_STREQ(FrameTypeToString(FrameType::kAssign), "assign");
  EXPECT_STREQ(FrameTypeToString(FrameType::kGetModel), "get_model");
  EXPECT_STREQ(FrameTypeToString(FrameType::kAssess), "assess");
  EXPECT_STREQ(FrameTypeToString(FrameType::kStatsRequest), "stats_request");
  EXPECT_STREQ(FrameTypeToString(FrameType::kStats), "stats");
  EXPECT_STREQ(FrameTypeToString(FrameType::kScopeRequest), "scope_request");
  EXPECT_STREQ(FrameTypeToString(FrameType::kScopeResponse),
               "scope_response");
  EXPECT_STREQ(FrameTypeToString(FrameType::kHealth), "health");
  EXPECT_STREQ(FrameTypeToString(static_cast<FrameType>(99)), "unknown");
}

// --- Trace context on the payload codecs -------------------------------------

TEST(ProtocolTest, AssignTraceContextRoundTrip) {
  AssignConfig config;
  config.num_schemas = 2;
  config.shard = {0};
  config.owners[0] = {"127.0.0.1", 7001};
  config.owners[1] = {"127.0.0.1", 7002};

  // Untraced configs encode no trace line — byte-compatible with v1.
  EXPECT_EQ(EncodeAssign(config).find("trace"), std::string::npos);
  auto untraced = DecodeAssign(EncodeAssign(config));
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace.trace_id, 0u);
  EXPECT_EQ(untraced->trace.parent_span, 0u);

  config.trace.trace_id = 0x7ffffffffffffffeull;
  config.trace.parent_span = 17;
  auto traced = DecodeAssign(EncodeAssign(config));
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  EXPECT_EQ(traced->trace.trace_id, 0x7ffffffffffffffeull);
  EXPECT_EQ(traced->trace.parent_span, 17u);
}

TEST(ProtocolTest, GetModelTraceContextRoundTrip) {
  GetModelRequest request;
  request.publisher = 3;
  request.consumer = 1;
  request.attempt = 4;
  // The v1 shape (4 tokens) still decodes with zero trace context.
  auto untraced = DecodeGetModel(EncodeGetModel(request));
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace.trace_id, 0u);

  request.trace.trace_id = 42;
  request.trace.parent_span = 7;
  auto traced = DecodeGetModel(EncodeGetModel(request));
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  EXPECT_EQ(traced->publisher, 3);
  EXPECT_EQ(traced->trace.trace_id, 42u);
  EXPECT_EQ(traced->trace.parent_span, 7u);
  // 5 tokens (a half trace context) is malformed, not "optional".
  EXPECT_FALSE(DecodeGetModel("get_model 3 1 4 42").ok());
}

TEST(ProtocolTest, AssessRequestRoundTrip) {
  // The empty payload is the v1 wire shape and decodes as untraced.
  AssessRequest untraced;
  EXPECT_TRUE(EncodeAssess(untraced).empty());
  auto decoded = DecodeAssess("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace.trace_id, 0u);

  AssessRequest traced;
  traced.trace.trace_id = 9;
  traced.trace.parent_span = 5;
  auto round = DecodeAssess(EncodeAssess(traced));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->trace.trace_id, 9u);
  EXPECT_EQ(round->trace.parent_span, 5u);
  EXPECT_FALSE(DecodeAssess("assess 9").ok());
  EXPECT_FALSE(DecodeAssess("bogus 9 5").ok());
}

// --- Stats (telemetry) codec -------------------------------------------------

TEST(TelemetryTest, StatsTokenEscaping) {
  EXPECT_EQ(EncodeStatsToken("plain.name"), "plain.name");
  EXPECT_EQ(EncodeStatsToken(""), "%");
  EXPECT_EQ(EncodeStatsToken("has space"), "has%20space");
  EXPECT_EQ(EncodeStatsToken("1%2"), "1%252");
  for (const std::string& raw :
       {std::string("a b\nc%d\te"), std::string("\x01\x7f"),
        std::string("worker \"zero\"")}) {
    auto decoded = DecodeStatsToken(EncodeStatsToken(raw));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, raw);
    // The encoded form is line-framing safe: one whitespace-free token.
    const std::string encoded = EncodeStatsToken(raw);
    EXPECT_EQ(encoded.find(' '), std::string::npos);
    EXPECT_EQ(encoded.find('\n'), std::string::npos);
  }
  EXPECT_FALSE(DecodeStatsToken("trailing%2").ok());
  EXPECT_FALSE(DecodeStatsToken("bad%zz").ok());
}

TEST(TelemetryTest, StatsRoundTripPreservesEverything) {
  WorkerTelemetry telemetry;
  telemetry.trace_id = 0x1234567890abcdefull & 0x7fffffffffffffffull;
  obs::MetricsRegistry registry;
  registry.GetCounter("exchange.fetches").Increment(5);
  registry.GetCounter("weird name\nwith\"bytes").Increment(1);
  registry.GetGauge("queue.depth").Set(-2.5);
  registry.GetHistogram("net.rpc_ms.get_model", {1.0, 8.0}).Observe(3.0);
  telemetry.metrics = registry.Snapshot();
  telemetry.thread_names = {"assign", "assess thread"};
  obs::TraceEvent event;
  event.name = "worker.assign";
  event.ts_us = 12.5;
  event.dur_us = 3.25;
  event.tid = 0;
  event.span_id = 4;
  event.parent_span_id = 2;
  event.args = {{"schemas", 2}, {"arg with space", -1}};
  telemetry.events.push_back(event);

  const std::string wire = EncodeStats(telemetry);
  // Deterministic bytes: the harvest is part of the byte-compare surface.
  EXPECT_EQ(wire, EncodeStats(telemetry));

  auto decoded = DecodeStats(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, telemetry.trace_id);
  ASSERT_EQ(decoded->metrics.counters.size(), 2u);
  EXPECT_EQ(decoded->metrics.counters[0].first, "exchange.fetches");
  EXPECT_EQ(decoded->metrics.counters[0].second, 5u);
  EXPECT_EQ(decoded->metrics.counters[1].first, "weird name\nwith\"bytes");
  ASSERT_EQ(decoded->metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded->metrics.gauges[0].second, -2.5);
  ASSERT_EQ(decoded->metrics.histograms.size(), 1u);
  const auto& histogram = decoded->metrics.histograms[0].second;
  EXPECT_EQ(histogram.total_count, 1u);
  EXPECT_DOUBLE_EQ(histogram.sum, 3.0);
  ASSERT_EQ(histogram.upper_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(histogram.upper_bounds[1], 8.0);
  ASSERT_EQ(histogram.counts.size(), 3u);
  EXPECT_EQ(histogram.counts[1], 1u);
  EXPECT_EQ(decoded->thread_names,
            (std::vector<std::string>{"assign", "assess thread"}));
  ASSERT_EQ(decoded->events.size(), 1u);
  EXPECT_EQ(decoded->events[0].name, "worker.assign");
  EXPECT_DOUBLE_EQ(decoded->events[0].ts_us, 12.5);
  EXPECT_DOUBLE_EQ(decoded->events[0].dur_us, 3.25);
  EXPECT_EQ(decoded->events[0].span_id, 4u);
  EXPECT_EQ(decoded->events[0].parent_span_id, 2u);
  ASSERT_EQ(decoded->events[0].args.size(), 2u);
  EXPECT_EQ(decoded->events[0].args[1].first, "arg with space");
  EXPECT_EQ(decoded->events[0].args[1].second, -1);
}

TEST(TelemetryTest, StatsRejectsMalformedPayloads) {
  EXPECT_FALSE(DecodeStats("").ok());
  EXPECT_FALSE(DecodeStats("not-stats v1\nend\n").ok());
  // Missing "end" marker: a truncated harvest must not half-decode.
  EXPECT_FALSE(DecodeStats("colscope-stats v1\ntrace_id 1\n").ok());
  // Hostile counts must be rejected, not allocated.
  EXPECT_FALSE(
      DecodeStats("colscope-stats v1\nhist h 1 1.0 4294967295 1.0\nend\n")
          .ok());
  // Thread ids must arrive densely in order.
  EXPECT_FALSE(
      DecodeStats("colscope-stats v1\nthread 3 late\nend\n").ok());
  // Truncations of a valid encoding never decode.
  WorkerTelemetry telemetry;
  obs::MetricsRegistry registry;
  registry.GetCounter("a").Increment(1);
  telemetry.metrics = registry.Snapshot();
  telemetry.thread_names = {"main"};
  const std::string wire = EncodeStats(telemetry);
  for (size_t cut = 0; cut < wire.size(); cut += 3) {
    EXPECT_FALSE(DecodeStats(wire.substr(0, cut)).ok()) << cut;
  }
}

}  // namespace
}  // namespace colscope::net
