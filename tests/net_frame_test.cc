// Wire-framing tests: the length-prefixed, versioned, checksummed frame
// codec must reject truncated, oversized, corrupt, and version-skewed
// frames — before any payload allocation for header-level defects — and
// round-trip payloads byte for byte. Plus the line-oriented protocol
// payload codecs (assign / get-model / error / partial).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/checksum.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace colscope::net {
namespace {

// --- Frame encode / decode ---------------------------------------------------

TEST(FrameTest, RoundTripByteIdentical) {
  const std::string payload = "colscope-local-model v1\nmean 3 1 2 3\n";
  const std::string wire = EncodeFrame(FrameType::kModel, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  auto frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kModel);
  EXPECT_EQ(frame->payload, payload);

  // Encoding is deterministic: same input, same bytes.
  EXPECT_EQ(wire, EncodeFrame(FrameType::kModel, payload));
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::string wire = EncodeFrame(FrameType::kShutdown, "");
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  auto frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameTest, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  auto frame = DecodeFrame(EncodeFrame(FrameType::kPartial, payload));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, TruncatedHeaderRejected) {
  const std::string wire = EncodeFrame(FrameType::kModel, "payload");
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    EXPECT_FALSE(DecodeFrame(wire.substr(0, len)).ok()) << len;
  }
}

TEST(FrameTest, TruncatedPayloadRejected) {
  const std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  for (size_t cut = kFrameHeaderSize; cut < wire.size(); ++cut) {
    auto frame = DecodeFrame(wire.substr(0, cut));
    EXPECT_FALSE(frame.ok()) << cut;
  }
}

TEST(FrameTest, TrailingGarbageRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  wire += "x";
  EXPECT_FALSE(DecodeFrame(wire).ok());
}

TEST(FrameTest, BadMagicRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[0] = 'X';
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("magic"), std::string::npos);
}

TEST(FrameTest, VersionSkewRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[4] = static_cast<char>(kFrameVersion + 1);  // little-endian lo byte
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("version"), std::string::npos);
}

TEST(FrameTest, UnknownTypeRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "payload");
  wire[6] = 0;  // type byte; 0 is not a FrameType
  EXPECT_FALSE(DecodeFrame(wire).ok());
  wire[6] = 99;
  EXPECT_FALSE(DecodeFrame(wire).ok());
  EXPECT_FALSE(IsKnownFrameType(0));
  EXPECT_FALSE(IsKnownFrameType(99));
  EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>(FrameType::kModel)));
}

TEST(FrameTest, OversizedLengthRejectedFromHeaderAlone) {
  // A hostile length field must be rejected by ParseFrameHeader — i.e.
  // before anyone allocates payload_len bytes. Build a header claiming a
  // payload just over the cap.
  std::string wire = EncodeFrame(FrameType::kModel, "tiny");
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  auto header = ParseFrameHeader(std::string_view(wire).substr(
      0, kFrameHeaderSize));
  EXPECT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("payload"), std::string::npos);

  // At the cap is still structurally acceptable header-wise.
  const uint32_t at_cap = kMaxFramePayload;
  std::memcpy(&wire[8], &at_cap, sizeof(at_cap));
  EXPECT_TRUE(
      ParseFrameHeader(std::string_view(wire).substr(0, kFrameHeaderSize))
          .ok());
}

TEST(FrameTest, ChecksumMismatchRejected) {
  std::string wire = EncodeFrame(FrameType::kModel, "some payload");
  wire[kFrameHeaderSize + 3] ^= 0x40;  // flip one payload bit
  auto frame = DecodeFrame(wire);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("checksum"), std::string::npos);
}

TEST(FrameTest, EveryHeaderByteFlipDetected) {
  // Flipping any single header byte must never yield a *different*
  // successfully-decoded frame: either the decode fails, or (for the
  // flags/reserved byte) it may be tolerated only if the decode result
  // is unchanged. This is the allocation-safety net for line noise.
  const std::string payload = "abcdefgh";
  const std::string wire = EncodeFrame(FrameType::kAssign, payload);
  for (size_t i = 0; i < kFrameHeaderSize; ++i) {
    std::string bent = wire;
    bent[i] ^= 0x01;
    auto frame = DecodeFrame(bent);
    if (frame.ok()) {
      EXPECT_EQ(frame->type, FrameType::kAssign) << "byte " << i;
      EXPECT_EQ(frame->payload, payload) << "byte " << i;
    }
  }
}

// --- Protocol payload codecs -------------------------------------------------

TEST(ProtocolTest, AssignRoundTrip) {
  AssignConfig config;
  config.num_schemas = 4;
  config.v = 0.65;
  config.degraded.policy = scoping::DegradedPolicy::kQuorum;
  config.degraded.quorum = 2;
  config.retry.max_attempts = 3;
  config.retry.deadline_ms = 1234.5;
  config.faults.drop_probability = 0.25;
  config.faults.seed = 99;
  config.faults.drop_from = 2;
  config.shard = {1, 3};
  config.owners[0] = {"127.0.0.1", 7001};
  config.owners[1] = {"127.0.0.1", 7002};
  config.owners[2] = {"127.0.0.1", 7001};
  config.owners[3] = {"127.0.0.1", 7002};

  auto decoded = DecodeAssign(EncodeAssign(config));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_schemas, 4u);
  EXPECT_DOUBLE_EQ(decoded->v, 0.65);
  EXPECT_EQ(decoded->degraded.policy, scoping::DegradedPolicy::kQuorum);
  EXPECT_EQ(decoded->degraded.quorum, 2u);
  EXPECT_EQ(decoded->retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(decoded->retry.deadline_ms, 1234.5);
  EXPECT_DOUBLE_EQ(decoded->faults.drop_probability, 0.25);
  EXPECT_EQ(decoded->faults.seed, 99u);
  EXPECT_EQ(decoded->faults.drop_from, 2);
  EXPECT_EQ(decoded->shard, (std::vector<int>{1, 3}));
  ASSERT_EQ(decoded->owners.size(), 4u);
  EXPECT_EQ(decoded->owners[1].port, 7002);

  // Encoding is deterministic.
  EXPECT_EQ(EncodeAssign(config), EncodeAssign(config));
}

TEST(ProtocolTest, AssignRejectsGarbage) {
  EXPECT_FALSE(DecodeAssign("").ok());
  EXPECT_FALSE(DecodeAssign("not-an-assign v1\n").ok());
  EXPECT_FALSE(DecodeAssign("colscope-assign v2\n").ok());
  // Truncations of a valid encoding must never decode.
  AssignConfig config;
  config.num_schemas = 2;
  config.shard = {0};
  config.owners[0] = {"127.0.0.1", 7001};
  config.owners[1] = {"127.0.0.1", 7002};
  const std::string wire = EncodeAssign(config);
  for (size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(DecodeAssign(wire.substr(0, cut)).ok()) << cut;
  }
}

TEST(ProtocolTest, GetModelRoundTrip) {
  GetModelRequest request{3, 1, 4};
  auto decoded = DecodeGetModel(EncodeGetModel(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->publisher, 3);
  EXPECT_EQ(decoded->consumer, 1);
  EXPECT_EQ(decoded->attempt, 4);
  EXPECT_FALSE(DecodeGetModel("bogus").ok());
  EXPECT_FALSE(DecodeGetModel("").ok());
}

TEST(ProtocolTest, ErrorPayloadRoundTrip) {
  const Status status = Status::NotFound("model 3 not published");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "model 3 not published");
  // Unknown code decodes towards retry, not crash.
  EXPECT_EQ(DecodeErrorPayload("WAT broken").code(),
            StatusCode::kUnavailable);
}

TEST(ProtocolTest, PartialRoundTrip) {
  PartialResult partial;
  ConsumerPartial good;
  good.consumer = 1;
  good.ok = true;
  good.arrived = 2;
  good.bits = {true, false, true};
  ConsumerPartial bad;
  bad.consumer = 3;
  bad.ok = false;
  bad.arrived = 0;
  bad.error = "quorum unmet: 0 < 2";
  partial.consumers = {good, bad};
  exchange::PeerFetchRecord record;
  record.publisher = 0;
  record.consumer = 1;
  record.attempts = 2;
  record.elapsed_ms = 12.5;
  record.ok = true;
  record.faults = {FaultKind::kDrop, FaultKind::kNone};
  partial.fetches = {record};

  auto decoded = DecodePartial(EncodePartial(partial));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->consumers.size(), 2u);
  EXPECT_TRUE(decoded->consumers[0].ok);
  EXPECT_EQ(decoded->consumers[0].arrived, 2u);
  EXPECT_EQ(decoded->consumers[0].bits,
            (std::vector<bool>{true, false, true}));
  EXPECT_FALSE(decoded->consumers[1].ok);
  EXPECT_EQ(decoded->consumers[1].error, "quorum unmet: 0 < 2");
  ASSERT_EQ(decoded->fetches.size(), 1u);
  EXPECT_EQ(decoded->fetches[0].attempts, 2);
  EXPECT_DOUBLE_EQ(decoded->fetches[0].elapsed_ms, 12.5);
  EXPECT_EQ(decoded->fetches[0].faults,
            (std::vector<FaultKind>{FaultKind::kDrop, FaultKind::kNone}));

  // Framed round trip is byte-identical to the in-memory payload.
  const std::string payload = EncodePartial(partial);
  auto frame = DecodeFrame(EncodeFrame(FrameType::kPartial, payload));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, payload);
}

TEST(ProtocolTest, PartialRejectsTruncationAndCountLies) {
  PartialResult partial;
  ConsumerPartial one;
  one.consumer = 0;
  one.ok = true;
  one.arrived = 1;
  one.bits = {true};
  partial.consumers = {one};
  const std::string wire = EncodePartial(partial);
  for (size_t cut = 0; cut < wire.size(); cut += 5) {
    EXPECT_FALSE(DecodePartial(wire.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(DecodePartial("colscope-partial v1\nconsumers 9999999999\n")
                   .ok());
}

}  // namespace
}  // namespace colscope::net
