#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/model_io.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = BuildSignatures(scenario_.set, encoder_);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  SignatureSet signatures_;
};

TEST_F(ModelIoTest, RoundTripPreservesBehaviour) {
  const linalg::Matrix local = signatures_.SchemaSignatures(1);
  auto model = LocalModel::Fit(local, 0.7, 1);
  ASSERT_TRUE(model.ok());

  const std::string serialized = SerializeLocalModel(*model);
  auto restored = DeserializeLocalModel(serialized);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->schema_index(), 1);
  EXPECT_DOUBLE_EQ(restored->linkability_range(),
                   model->linkability_range());
  // Reconstruction errors — the model's observable behaviour — match
  // bit-for-bit on both local and foreign signatures (%.17g round-trips
  // doubles exactly).
  const auto foreign = signatures_.SchemaSignatures(0);
  EXPECT_EQ(restored->ReconstructionErrors(local),
            model->ReconstructionErrors(local));
  EXPECT_EQ(restored->ReconstructionErrors(foreign),
            model->ReconstructionErrors(foreign));
}

TEST_F(ModelIoTest, DistributedAssessmentViaSerializedModels) {
  // The full federation story: each schema publishes only its serialized
  // model; a peer deserializes them and assesses its own elements.
  std::vector<std::string> published;
  for (int s = 1; s < 4; ++s) {
    auto model =
        LocalModel::Fit(signatures_.SchemaSignatures(s), 0.6, s);
    ASSERT_TRUE(model.ok());
    published.push_back(SerializeLocalModel(*model));
  }
  std::vector<LocalModel> foreign;
  for (const std::string& text : published) {
    auto restored = DeserializeLocalModel(text);
    ASSERT_TRUE(restored.ok());
    foreign.push_back(std::move(restored).value());
  }
  const auto direct_models = FitLocalModels(signatures_, 4, 0.6);
  ASSERT_TRUE(direct_models.ok());

  const linalg::Matrix local = signatures_.SchemaSignatures(0);
  const auto via_serialized = AssessLinkability(local, 0, foreign);
  const auto direct = AssessLinkability(local, 0, *direct_models);
  EXPECT_EQ(via_serialized, direct);
}

TEST_F(ModelIoTest, HeaderAndShapeValidation) {
  EXPECT_FALSE(DeserializeLocalModel("").ok());
  EXPECT_FALSE(DeserializeLocalModel("not a model\n").ok());

  const linalg::Matrix local = signatures_.SchemaSignatures(2);
  auto model = LocalModel::Fit(local, 0.5, 2);
  ASSERT_TRUE(model.ok());
  std::string text = SerializeLocalModel(*model);

  // Truncated pc lines.
  const size_t last_pc = text.rfind("pc ");
  ASSERT_NE(last_pc, std::string::npos);
  EXPECT_FALSE(DeserializeLocalModel(text.substr(0, last_pc)).ok());

  // Corrupted number.
  std::string corrupted = text;
  const size_t range_pos = corrupted.find("range ");
  corrupted.replace(range_pos, 7, "range x");
  EXPECT_FALSE(DeserializeLocalModel(corrupted).ok());

  // Unknown key.
  EXPECT_FALSE(DeserializeLocalModel(
                   "colscope-local-model v1\nbogus 1\n")
                   .ok());
}

TEST_F(ModelIoTest, FromPartsValidation) {
  EXPECT_FALSE(linalg::PcaModel::FromParts({}, linalg::Matrix(1, 3)).ok());
  EXPECT_FALSE(
      linalg::PcaModel::FromParts({1.0, 2.0}, linalg::Matrix(1, 3)).ok());
  auto pca = linalg::PcaModel::FromParts({1.0, 2.0, 3.0},
                                         linalg::Matrix(1, 3, 0.5));
  ASSERT_TRUE(pca.ok());
  EXPECT_FALSE(LocalModel::FromParts(*pca, -1.0, 0).ok());
  EXPECT_TRUE(LocalModel::FromParts(*pca, 0.5, 0).ok());
}

}  // namespace
}  // namespace colscope::scoping
