#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/stats.h"
#include "linalg/truncated_svd.h"

namespace colscope::linalg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.NextGaussian();
  return m;
}

/// Low-rank-plus-noise matrix: rank `r` dominant structure.
Matrix LowRankMatrix(size_t rows, size_t cols, size_t r, double noise,
                     uint64_t seed) {
  Rng rng(seed);
  Matrix a = RandomMatrix(rows, r, seed + 1);
  Matrix b = RandomMatrix(r, cols, seed + 2);
  Matrix m = a.Multiply(b);
  for (double& v : m.data()) v += noise * rng.NextGaussian();
  return m;
}

TEST(TruncatedSvdTest, MatchesExactTopSingularValues) {
  const Matrix x = LowRankMatrix(60, 40, 5, 0.01, 3);
  const SvdResult exact = ThinSvd(x);
  const SvdResult approx = TruncatedSvd(x, 5);
  ASSERT_EQ(approx.singular_values.size(), 5u);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(approx.singular_values[k], exact.singular_values[k],
                1e-3 * exact.singular_values[0]);
  }
}

TEST(TruncatedSvdTest, SubspaceMatchesExact) {
  const Matrix x = LowRankMatrix(50, 30, 3, 0.0, 7);
  const SvdResult exact = ThinSvd(x);
  const SvdResult approx = TruncatedSvd(x, 3);
  // Right singular vectors agree up to sign.
  for (size_t k = 0; k < 3; ++k) {
    const double dot =
        std::fabs(Dot(approx.vt.Row(k), exact.vt.Row(k)));
    EXPECT_NEAR(dot, 1.0, 1e-6) << "component " << k;
  }
}

TEST(TruncatedSvdTest, ReconstructionErrorNearOptimal) {
  const Matrix x = LowRankMatrix(40, 60, 4, 0.05, 11);
  const SvdResult approx = TruncatedSvd(x, 4);
  // Rebuild rank-4 approximation and compare residual against the exact
  // rank-4 optimum (within 5%).
  auto residual = [&](const SvdResult& svd, size_t rank) {
    double err = 0.0;
    for (size_t r = 0; r < x.rows(); ++r) {
      for (size_t c = 0; c < x.cols(); ++c) {
        double value = 0.0;
        for (size_t k = 0; k < rank; ++k) {
          value += svd.u(r, k) * svd.singular_values[k] * svd.vt(k, c);
        }
        const double diff = x(r, c) - value;
        err += diff * diff;
      }
    }
    return err;
  };
  const SvdResult exact = ThinSvd(x);
  EXPECT_LE(residual(approx, 4), 1.05 * residual(exact, 4) + 1e-12);
}

TEST(TruncatedSvdTest, OrthonormalFactors) {
  const Matrix x = RandomMatrix(30, 50, 13);
  const SvdResult svd = TruncatedSvd(x, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(Dot(svd.vt.Row(i), svd.vt.Row(j)), i == j ? 1.0 : 0.0,
                  1e-6);
    }
  }
}

TEST(TruncatedSvdTest, DeterministicForSeed) {
  const Matrix x = RandomMatrix(25, 25, 17);
  const SvdResult a = TruncatedSvd(x, 4, 6, 99);
  const SvdResult b = TruncatedSvd(x, 4, 6, 99);
  EXPECT_EQ(a.singular_values, b.singular_values);
  EXPECT_EQ(a.vt.data(), b.vt.data());
}

TEST(TruncatedSvdTest, RankClampsToMatrixShape) {
  const Matrix x = RandomMatrix(5, 8, 19);
  const SvdResult svd = TruncatedSvd(x, 100);
  EXPECT_LE(svd.singular_values.size(), 5u);
  EXPECT_TRUE(TruncatedSvd(Matrix(), 3).singular_values.empty());
}

TEST(TruncatedSvdTest, HandlesZeroMatrix) {
  const SvdResult svd = TruncatedSvd(Matrix(6, 6, 0.0), 2);
  for (double s : svd.singular_values) EXPECT_NEAR(s, 0.0, 1e-12);
}

}  // namespace
}  // namespace colscope::linalg
