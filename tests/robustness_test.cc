// Failure-injection and robustness tests: malformed inputs, degenerate
// shapes, and adversarial edge cases across the public API surface.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "embed/hashed_encoder.h"
#include "eval/curves.h"
#include "eval/sweep.h"
#include "linalg/stats.h"
#include "linalg/svd.h"
#include "matching/sim.h"
#include "schema/ddl_parser.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"
#include "scoping/streamline.h"

namespace colscope {
namespace {

// --- DDL parser under malformed / hostile input ------------------------------

TEST(DdlRobustnessTest, GarbageInputsNeverCrash) {
  const char* inputs[] = {
      "", ";;;", "CREATE", "CREATE TABLE", "CREATE TABLE T", "(((((",
      ")))))", "CREATE TABLE T (", "CREATE TABLE T (A", "--only a comment",
      "/* unterminated block", "CREATE TABLE T (A INT,,B INT);",
      "create table t (a int); drop all; CREATE TABLE", "\"\"\"\"\"",
      "CREATE TABLE T (A INT DEFAULT (1 + (2 * 3)));",
      "CREATE TABLE \xff\xfe (A INT);",
  };
  for (const char* input : inputs) {
    // Must return (possibly an error), never crash or hang.
    auto result = schema::ParseDdl(input, "S");
    if (result.ok()) {
      EXPECT_GE(result->num_tables(), 0u);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(DdlRobustnessTest, DeeplyNestedParensTerminate) {
  std::string ddl = "CREATE TABLE T (A INT DEFAULT ";
  for (int i = 0; i < 200; ++i) ddl += "(";
  ddl += "1";
  for (int i = 0; i < 200; ++i) ddl += ")";
  ddl += ");";
  auto result = schema::ParseDdl(ddl, "S");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_attributes(), 1u);
}

TEST(DdlRobustnessTest, VeryLongIdentifier) {
  const std::string long_name(5000, 'x');
  const std::string ddl = "CREATE TABLE " + long_name + " (A INT);";
  auto result = schema::ParseDdl(ddl, "S");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tables()[0].name.size(), 5000u);
}

TEST(DdlRobustnessTest, ManyTables) {
  std::string ddl;
  for (int i = 0; i < 300; ++i) {
    ddl += "CREATE TABLE T" + std::to_string(i) + " (A INT, B VARCHAR(5));";
  }
  auto result = schema::ParseDdl(ddl, "S");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_tables(), 300u);
  EXPECT_EQ(result->num_attributes(), 600u);
}

// --- Encoder on unusual text ----------------------------------------------------

TEST(EncoderRobustnessTest, HandlesUnusualSequences) {
  embed::HashedLexiconEncoder encoder;
  for (const char* text :
       {"", " ", "___", "123 456", "[,,,]",
        "a b c d e f g h i j k l m n o p q r s t u v w x y z",
        "\xc3\xa9\xc3\xbc"}) {  // Non-ASCII bytes.
    const auto v = encoder.Encode(text);
    EXPECT_EQ(v.size(), encoder.dims());
    for (double x : v) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(EncoderRobustnessTest, VeryLongSequence) {
  embed::HashedLexiconEncoder encoder;
  std::string text;
  for (int i = 0; i < 2000; ++i) text += "token" + std::to_string(i) + " ";
  const auto v = encoder.Encode(text);
  EXPECT_NEAR(linalg::Norm(v), 1.0, 1e-9);
}

// --- SVD / PCA degenerate shapes ---------------------------------------------------

TEST(SvdRobustnessTest, DegenerateShapes) {
  // Single row.
  linalg::Matrix one_row(1, 5);
  one_row(0, 2) = 3.0;
  auto svd = linalg::ThinSvd(one_row);
  EXPECT_EQ(svd.singular_values.size(), 1u);
  // Single column.
  linalg::Matrix one_col(5, 1);
  for (size_t r = 0; r < 5; ++r) one_col(r, 0) = static_cast<double>(r);
  svd = linalg::ThinSvd(one_col);
  EXPECT_EQ(svd.singular_values.size(), 1u);
  // All zeros: keeps one (defined) triplet.
  svd = linalg::ThinSvd(linalg::Matrix(4, 4, 0.0));
  EXPECT_EQ(svd.singular_values.size(), 1u);
  EXPECT_DOUBLE_EQ(svd.singular_values[0], 0.0);
  // Empty.
  svd = linalg::ThinSvd(linalg::Matrix());
  EXPECT_TRUE(svd.singular_values.empty());
}

// --- Collaborative scoping with degenerate schemas ----------------------------------

TEST(ScopingRobustnessTest, SingleElementSchema) {
  // A schema with exactly one element still fits a (trivial) model.
  auto s1 = schema::ParseDdl("CREATE TABLE only (x INT);", "S1");
  auto s2 = schema::ParseDdl("CREATE TABLE a (x INT, y INT);", "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  schema::SchemaSet set({*s1, *s2});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  const auto keep = scoping::CollaborativeScoping(signatures, 2, 0.5);
  ASSERT_TRUE(keep.ok()) << keep.status().ToString();
  EXPECT_EQ(keep->size(), 5u);
}

TEST(ScopingRobustnessTest, IdenticalSchemasEverythingLinkable) {
  // Two byte-identical schemas: every element reconstructs exactly under
  // the other's model, so everything must be kept at any v.
  const char* ddl =
      "CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR(10), "
      "city VARCHAR(10));";
  auto s1 = schema::ParseDdl(ddl, "S1");
  auto s2 = schema::ParseDdl(ddl, "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  schema::SchemaSet set({*s1, *s2});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  for (double v : {0.1, 0.5, 0.9}) {
    const auto keep = scoping::CollaborativeScoping(signatures, 2, v);
    ASSERT_TRUE(keep.ok());
    for (size_t i = 0; i < keep->size(); ++i) {
      EXPECT_TRUE((*keep)[i]) << "v=" << v << " i=" << i;
    }
  }
}

TEST(ScopingRobustnessTest, CompletelyDisjointDomains) {
  // Two schemas with zero token overlap: at strict v nearly everything
  // should be pruned.
  auto s1 = schema::ParseDdl(
      "CREATE TABLE glacier (moraine INT, crevasse INT, serac INT, firn "
      "INT);",
      "ICE");
  auto s2 = schema::ParseDdl(
      "CREATE TABLE quasar (pulsar INT, blazar INT, magnetar INT, corona "
      "INT);",
      "SKY");
  ASSERT_TRUE(s1.ok() && s2.ok());
  schema::SchemaSet set({*s1, *s2});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  const auto keep = scoping::CollaborativeScoping(signatures, 2, 0.9);
  ASSERT_TRUE(keep.ok());
  size_t kept = 0;
  for (bool k : *keep) kept += k;
  EXPECT_LE(kept, 2u);
}

// --- Streamline with mismatched mask fails loudly -------------------------------------

TEST(StreamlineRobustnessTest, EmptyMaskYieldsEmptySchemas) {
  auto s1 = schema::ParseDdl("CREATE TABLE a (x INT);", "S1");
  auto s2 = schema::ParseDdl("CREATE TABLE b (y INT);", "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  schema::SchemaSet set({*s1, *s2});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  const std::vector<bool> none(signatures.size(), false);
  const auto streamlined =
      scoping::BuildStreamlinedSchemas(set, signatures, none);
  EXPECT_EQ(streamlined.schema(0).num_elements(), 0u);
  EXPECT_EQ(streamlined.schema(1).num_elements(), 0u);
}

// --- Matcher with masks that deactivate whole schemas ---------------------------------

TEST(MatcherRobustnessTest, WholeSchemaMaskedOut) {
  auto s1 = schema::ParseDdl("CREATE TABLE a (x INT, y INT);", "S1");
  auto s2 = schema::ParseDdl("CREATE TABLE b (z INT);", "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  schema::SchemaSet set({*s1, *s2});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  std::vector<bool> mask(signatures.size(), true);
  for (size_t i = 0; i < signatures.size(); ++i) {
    if (signatures.refs[i].schema == 1) mask[i] = false;
  }
  EXPECT_TRUE(matching::SimMatcher(0.0).Match(signatures, mask).empty());
}

// --- Curve construction on pathological inputs ------------------------------------------

TEST(CurveRobustnessTest, AllSameLabel) {
  const std::vector<bool> all_positive(10, true);
  const std::vector<bool> all_negative(10, false);
  std::vector<double> scores(10);
  Rng rng(5);
  for (double& s : scores) s = rng.NextDouble();
  // No negatives: FPR undefined -> reported as 0; curve stays in box.
  for (const auto& labels : {all_positive, all_negative}) {
    const auto roc = eval::RocFromScores(labels, scores);
    for (const auto& p : roc) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
    EXPECT_GE(eval::AveragePrecisionFromScores(labels, scores), 0.0);
  }
}

TEST(CurveRobustnessTest, SmoothingEmptyAndSingleton) {
  EXPECT_TRUE(eval::SmoothRocCurve({}).empty());
  const auto one = eval::SmoothRocCurve({{0.5, 0.5}});
  // Anchored at (0,0) and extended to (1, y).
  EXPECT_DOUBLE_EQ(one.front().x, 0.0);
  EXPECT_DOUBLE_EQ(one.back().x, 1.0);
}

}  // namespace
}  // namespace colscope
