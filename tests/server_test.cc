// Resident-server tests: the scope-request/health codecs, the admission
// controller's typed shedding, and the full daemon lifecycle in-process —
// byte-identity with a direct pipeline run, overload shedding, request
// deadlines, and SIGTERM-initiated graceful drain.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "net/socket.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "schema/ddl_parser.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace colscope::server {
namespace {

constexpr char kCrmDdl[] =
    "CREATE TABLE customers (customer_id INT, full_name TEXT, email TEXT,"
    " phone TEXT);"
    "CREATE TABLE invoices (invoice_id INT, customer_id INT, total REAL,"
    " issued_on TEXT);";
constexpr char kErpDdl[] =
    "CREATE TABLE clients (client_id INT, client_name TEXT, mail TEXT);"
    "CREATE TABLE orders (order_id INT, client_id INT, amount REAL);";
constexpr char kCsvText[] =
    "employee_id,employee_name,salary\n1,Ada,100\n2,Grace,200\n";

ScopeRequest MakeRequest() {
  ScopeRequest request;
  ScopeRequestSchema crm;
  crm.kind = "ddl";
  crm.name = "crm.sql";
  crm.text = kCrmDdl;
  request.schemas.push_back(crm);
  ScopeRequestSchema erp;
  erp.kind = "ddl";
  erp.name = "erp.sql";
  erp.text = kErpDdl;
  request.schemas.push_back(erp);
  return request;
}

// --- Codecs ------------------------------------------------------------------

TEST(ScopeProtocolTest, RequestRoundTripsAllFields) {
  ScopeRequest request = MakeRequest();
  ScopeRequestSchema csv;
  csv.kind = "csv";
  csv.name = "people.csv";
  csv.text = kCsvText;  // Newlines and commas must survive the tokens.
  request.schemas.push_back(csv);
  request.scoper = "global";
  request.matcher = "lsh";
  request.param = 2.0;
  request.v = 0.6;
  request.keep_portion = 0.25;
  request.deadline_ms = 1234.5;
  request.trace.trace_id = 7;
  request.trace.parent_span = 9;

  auto decoded = DecodeScopeRequest(EncodeScopeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->schemas.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->schemas[i].kind, request.schemas[i].kind) << i;
    EXPECT_EQ(decoded->schemas[i].name, request.schemas[i].name) << i;
    EXPECT_EQ(decoded->schemas[i].text, request.schemas[i].text) << i;
  }
  EXPECT_EQ(decoded->scoper, "global");
  EXPECT_EQ(decoded->matcher, "lsh");
  EXPECT_DOUBLE_EQ(decoded->param, 2.0);
  EXPECT_DOUBLE_EQ(decoded->v, 0.6);
  EXPECT_DOUBLE_EQ(decoded->keep_portion, 0.25);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, 1234.5);
  EXPECT_EQ(decoded->trace.trace_id, 7u);
  EXPECT_EQ(decoded->trace.parent_span, 9u);
}

TEST(ScopeProtocolTest, MalformedRequestsAreTypedErrors) {
  // Every reject must be kInvalidArgument — never a crash, never an
  // unbounded allocation.
  const std::string valid = EncodeScopeRequest(MakeRequest());
  const std::vector<std::string> bad = {
      "",                                  // empty
      "not-a-header v1\nend\n",            // wrong magic
      "colscope-scope v2\nend\n",          // wrong version
      "colscope-scope v1\nend\n",          // no config, no schemas
      "colscope-scope v1\n"                // schema before config
      "schema ddl a CREATE\nend\n",
      "colscope-scope v1\n"                // bad kind
      "config pca sim -1 0.8 0.5 0\n"
      "schema pdf a text\nend\n",
      "colscope-scope v1\n"                // v out of range
      "config pca sim -1 1.5 0.5 0\n"
      "schema ddl a text\nend\n",
      valid.substr(0, valid.size() / 2),   // truncated mid-stream
  };
  for (const std::string& payload : bad) {
    auto decoded = DecodeScopeRequest(payload);
    EXPECT_FALSE(decoded.ok()) << payload;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << payload;
  }
}

TEST(ScopeProtocolTest, HealthRoundTrips) {
  HealthInfo info;
  info.state = "draining";
  info.queue_depth = 3;
  info.inflight = 2;
  info.admitted = 10;
  info.shed = 4;
  info.deadline_exceeded = 1;
  info.completed = 8;
  info.failed = 2;
  auto decoded = DecodeHealthInfo(EncodeHealthInfo(info));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->state, "draining");
  EXPECT_EQ(decoded->queue_depth, 3u);
  EXPECT_EQ(decoded->inflight, 2u);
  EXPECT_EQ(decoded->admitted, 10u);
  EXPECT_EQ(decoded->shed, 4u);
  EXPECT_EQ(decoded->deadline_exceeded, 1u);
  EXPECT_EQ(decoded->completed, 8u);
  EXPECT_EQ(decoded->failed, 2u);
  EXPECT_FALSE(DecodeHealthInfo("bogus").ok());
}

// --- Admission ---------------------------------------------------------------

TEST(AdmissionTest, ShedsWhenQueueIsFull) {
  AdmissionOptions options;
  options.max_queue = 1;
  options.max_inflight = 1;
  AdmissionController admission(options);
  SystemRunClock clock;

  // First request takes the slot without queueing.
  ASSERT_TRUE(admission.Admit(1, Deadline::Infinite(), nullptr).ok());
  EXPECT_EQ(admission.inflight(), 1u);

  // A second would queue; admit it from a helper thread so the queue is
  // genuinely occupied when the third arrives.
  std::atomic<bool> second_done{false};
  std::thread second([&] {
    const Status status =
        admission.Admit(1, Deadline::After(&clock, 2000.0), nullptr);
    EXPECT_TRUE(status.ok()) << status.ToString();
    second_done.store(true);
  });
  while (admission.queue_depth() == 0) {
    std::this_thread::yield();
  }

  // Queue full: the third is shed immediately with the typed code.
  const Status third = admission.Admit(1, Deadline::Infinite(), nullptr);
  EXPECT_EQ(third.code(), StatusCode::kOverloaded) << third.ToString();

  admission.Release(1);  // Frees the slot; the queued request takes it.
  second.join();
  EXPECT_TRUE(second_done.load());
  admission.Release(1);
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(AdmissionTest, ShedsWhenCostBudgetIsExceeded) {
  AdmissionOptions options;
  options.max_queue = 8;
  options.max_inflight = 8;
  options.max_cost_bytes = 100;
  AdmissionController admission(options);

  ASSERT_TRUE(admission.Admit(60, Deadline::Infinite(), nullptr).ok());
  const Status over = admission.Admit(60, Deadline::Infinite(), nullptr);
  EXPECT_EQ(over.code(), StatusCode::kOverloaded) << over.ToString();
  admission.Release(60);
  // With the budget freed the same request is admissible again.
  EXPECT_TRUE(admission.Admit(60, Deadline::Infinite(), nullptr).ok());
}

TEST(AdmissionTest, QueuedRequestHonorsDeadline) {
  AdmissionOptions options;
  options.max_queue = 4;
  options.max_inflight = 1;
  AdmissionController admission(options);
  SystemRunClock clock;

  ASSERT_TRUE(admission.Admit(1, Deadline::Infinite(), nullptr).ok());
  const Status queued =
      admission.Admit(1, Deadline::After(&clock, 50.0), nullptr);
  EXPECT_EQ(queued.code(), StatusCode::kDeadlineExceeded)
      << queued.ToString();
  // The expired request released its queue slot and cost.
  EXPECT_EQ(admission.queue_depth(), 0u);
}

TEST(AdmissionTest, QueuedRequestHonorsHardStop) {
  AdmissionOptions options;
  options.max_queue = 4;
  options.max_inflight = 1;
  AdmissionController admission(options);
  CancellationToken hard_stop;
  hard_stop.Cancel();

  ASSERT_TRUE(admission.Admit(1, Deadline::Infinite(), &hard_stop).ok());
  const Status queued =
      admission.Admit(1, Deadline::Infinite(), &hard_stop);
  EXPECT_EQ(queued.code(), StatusCode::kCancelled) << queued.ToString();
}

TEST(AdmissionTest, DrainingShedsNewArrivals) {
  AdmissionController admission(AdmissionOptions{});
  admission.BeginDrain();
  const Status status = admission.Admit(1, Deadline::Infinite(), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kOverloaded) << status.ToString();
  EXPECT_TRUE(admission.draining());
}

// --- Daemon lifecycle --------------------------------------------------------

class ScopeServerTest : public ::testing::Test {
 protected:
  struct LiveServer {
    ScopeServer server;
    std::thread thread;
    net::Endpoint endpoint;
    Status serve_status = Status::Ok();
  };

  LiveServer& StartServer(ScopeServerOptions options = {}) {
    options.listen = net::Endpoint{"127.0.0.1", 0};
    auto created = ScopeServer::Create(std::move(options));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    servers_.push_back(std::make_unique<LiveServer>());
    LiveServer& live = *servers_.back();
    live.server = std::move(created).value();
    // Also clears the process-wide drain flag a previous test's SIGTERM
    // may have left set — before the serve loop starts polling it.
    live.server.InstallSignalHandlers();
    live.endpoint = net::Endpoint{"127.0.0.1", live.server.port()};
    live.thread = std::thread(
        [&live] { live.serve_status = live.server.Serve(); });
    return live;
  }

  void TearDown() override {
    for (auto& live : servers_) {
      live->server.RequestDrain();
    }
    for (auto& live : servers_) {
      if (live->thread.joinable()) live->thread.join();
    }
  }

  /// The report the cold path produces for MakeRequest(): same parsers,
  /// same defaults, fresh encoder — what the server must match byte for
  /// byte.
  std::string DirectReport() {
    std::vector<schema::Schema> schemas;
    for (const auto& [text, name] :
         {std::pair<const char*, const char*>{kCrmDdl, "crm.sql"},
          std::pair<const char*, const char*>{kErpDdl, "erp.sql"}}) {
      auto parsed = schema::ParseDdl(text, name);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      schemas.push_back(std::move(parsed).value());
    }
    schema::SchemaSet set(std::move(schemas));
    embed::HashedLexiconEncoder encoder;
    matching::SimMatcher matcher(0.6, nullptr);
    pipeline::Pipeline pipe(&encoder, pipeline::PipelineOptions{});
    auto run = pipe.Run(set, matcher);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->status.ok()) << run->status.ToString();
    return pipeline::RunToJson(*run, set);
  }

  std::vector<std::unique_ptr<LiveServer>> servers_;
};

TEST_F(ScopeServerTest, WarmAnswersByteIdenticalToDirectRun) {
  LiveServer& live = StartServer();
  const std::string expected = DirectReport();
  net::NetOptions net;
  // Twice: once cold, once against whatever state the first request left
  // resident. Both must be the exact cold-path bytes.
  for (int round = 0; round < 2; ++round) {
    auto report = RequestScope(live.endpoint, MakeRequest(), net);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(*report, expected) << "round " << round;
  }
  auto health = RequestHealth(live.endpoint, net);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "serving");
  EXPECT_EQ(health->completed, 2u);
  EXPECT_EQ(health->admitted, 2u);
  EXPECT_EQ(health->shed, 0u);
}

TEST_F(ScopeServerTest, MalformedRequestGetsTypedErrorNotDisconnect) {
  LiveServer& live = StartServer();
  net::NetOptions net;
  ScopeRequest request = MakeRequest();
  request.schemas[0].text = "NOT DDL AT ALL ((((";
  auto report = RequestScope(live.endpoint, request, net);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument)
      << report.status().ToString();
  // The daemon is still healthy afterwards.
  auto health = RequestHealth(live.endpoint, net);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->failed, 1u);
}

TEST_F(ScopeServerTest, OverloadShedsWithTypedStatus) {
  ScopeServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 1;
  options.serve_delay_ms = 400.0;
  LiveServer& live = StartServer(options);

  constexpr int kClients = 4;
  std::vector<Status> results(kClients, Status::Ok());
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&live, &results, i] {
      net::NetOptions net;
      auto report = RequestScope(live.endpoint, MakeRequest(), net);
      results[static_cast<size_t>(i)] = report.status();
    });
  }
  for (std::thread& client : clients) client.join();

  int ok = 0, shed = 0;
  for (const Status& status : results) {
    if (status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kOverloaded) << status.ToString();
      ++shed;
    }
  }
  // One slot + one queue entry: at least one served, at least one shed.
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(ok + shed, kClients);

  net::NetOptions net;
  auto health = RequestHealth(live.endpoint, net);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->shed, static_cast<uint64_t>(shed));
  EXPECT_EQ(health->completed, static_cast<uint64_t>(ok));
}

TEST_F(ScopeServerTest, RequestDeadlineProducesTypedTimeout) {
  ScopeServerOptions options;
  options.serve_delay_ms = 300.0;
  LiveServer& live = StartServer(options);
  ScopeRequest request = MakeRequest();
  request.deadline_ms = 50.0;  // Expires inside the execution delay.
  net::NetOptions net;
  auto report = RequestScope(live.endpoint, request, net);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded)
      << report.status().ToString();
  auto health = RequestHealth(live.endpoint, net);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->deadline_exceeded, 1u);
  EXPECT_EQ(health->completed, 0u);
}

TEST_F(ScopeServerTest, SigtermDrainsInFlightWorkThenStops) {
  ScopeServerOptions options;
  options.serve_delay_ms = 400.0;
  options.drain_grace_ms = 5000.0;
  LiveServer& live = StartServer(options);
  live.server.InstallSignalHandlers();
  const std::string expected = DirectReport();

  // An in-flight request, mid-execution when the signal lands.
  std::thread inflight([&live, &expected] {
    net::NetOptions net;
    auto report = RequestScope(live.endpoint, MakeRequest(), net);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(*report, expected);
  });
  // Wait until the request is admitted, then deliver SIGTERM.
  for (int i = 0; i < 200 && live.server.Health().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(live.server.Health().inflight, 1u);
  std::raise(SIGTERM);

  // The serve loop exits cleanly after the in-flight request completed.
  live.thread.join();
  EXPECT_TRUE(live.serve_status.ok()) << live.serve_status.ToString();
  inflight.join();
  const HealthInfo health = live.server.Health();
  EXPECT_EQ(health.state, "draining");
  EXPECT_EQ(health.completed, 1u);
  EXPECT_EQ(health.inflight, 0u);

  // The listener is gone: a post-drain request cannot be served.
  net::NetOptions net;
  net.connect_timeout_ms = 500.0;
  auto late = RequestScope(live.endpoint, MakeRequest(), net);
  EXPECT_FALSE(late.ok());
}

TEST_F(ScopeServerTest, ShutdownRpcDrainsLikeSigterm) {
  LiveServer& live = StartServer();
  net::NetOptions net;
  ASSERT_TRUE(RequestShutdown(live.endpoint, net).ok());
  live.thread.join();
  EXPECT_TRUE(live.serve_status.ok()) << live.serve_status.ToString();
  EXPECT_EQ(live.server.Health().state, "draining");
}

}  // namespace
}  // namespace colscope::server
