#include <gtest/gtest.h>

#include "datasets/sales3.h"

namespace colscope::datasets {
namespace {

TEST(Sales3Test, SchemaShapes) {
  const auto tpch = LoadTpchSchema();
  EXPECT_EQ(tpch.num_tables(), 8u);
  EXPECT_EQ(tpch.num_attributes(), 61u);  // dbgen's column count.
  const auto northwind = LoadNorthwindSchema();
  EXPECT_EQ(northwind.num_tables(), 11u);
  const auto ssb = LoadSsbSchema();
  EXPECT_EQ(ssb.num_tables(), 5u);
  // SSB lineorder has its canonical 17 columns.
  EXPECT_EQ(ssb.FindTable("ssb_lineorder")->attributes.size(), 17u);
}

TEST(Sales3Test, ScenarioConsistency) {
  const auto scenario = BuildSales3Scenario();
  EXPECT_EQ(scenario.set.num_schemas(), 3u);
  EXPECT_GT(scenario.truth.size(), 90u);
  for (const Linkage& l : scenario.truth.linkages()) {
    EXPECT_NE(l.a.schema, l.b.schema);
    EXPECT_EQ(l.a.is_table(), l.b.is_table());
  }
  // Every pair of schemas carries annotations.
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      EXPECT_GT(scenario.truth.CountsForSchemaPair(a, b).total(), 20u)
          << a << "-" << b;
    }
  }
}

TEST(Sales3Test, KnownUnlinkablesStayUnlinkable) {
  const auto scenario = BuildSales3Scenario();
  // HR / warehouse-specific elements have no counterpart anywhere.
  for (const char* path :
       {"Employees.HireDate", "Territories.TerritoryDescription",
        "CustomerDemographics.CustomerDesc"}) {
    auto ref = scenario.set.Resolve("Northwind", path);
    ASSERT_TRUE(ref.ok()) << path;
    EXPECT_FALSE(scenario.truth.IsLinkable(*ref)) << path;
  }
  for (const char* path : {"ssb_date.d_holidayfl", "ssb_date"}) {
    auto ref = scenario.set.Resolve("SSB", path);
    ASSERT_TRUE(ref.ok()) << path;
    EXPECT_FALSE(scenario.truth.IsLinkable(*ref)) << path;
  }
}

TEST(Sales3Test, DenormalizationLinkagesPresent) {
  const auto scenario = BuildSales3Scenario();
  // The SSB lineorder is the denormalized join of TPC-H orders+lineitem:
  // both table pairs must be annotated (one-to-many table linkages).
  auto lineitem = scenario.set.Resolve("TPCH", "lineitem");
  auto orders = scenario.set.Resolve("TPCH", "orders");
  auto lineorder = scenario.set.Resolve("SSB", "ssb_lineorder");
  ASSERT_TRUE(lineitem.ok() && orders.ok() && lineorder.ok());
  EXPECT_TRUE(scenario.truth.ContainsPair(*lineitem, *lineorder));
  EXPECT_TRUE(scenario.truth.ContainsPair(*orders, *lineorder));
}

TEST(Sales3Test, ModerateUnlinkableOverhead) {
  const auto scenario = BuildSales3Scenario();
  const double overhead = scenario.UnlinkableOverhead();
  // Homogeneous sales universe: overhead sits well below OC3's 103%.
  EXPECT_GT(overhead, 0.3);
  EXPECT_LT(overhead, 1.0);
}

}  // namespace
}  // namespace colscope::datasets
