#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/csv_export.h"
#include "eval/metrics.h"
#include "scoping/collaborative.h"
#include "scoping/ensemble.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

class EnsembleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new datasets::MatchingScenario(datasets::BuildOc3Scenario());
    encoder_ = new embed::HashedLexiconEncoder();
    signatures_ = new SignatureSet(
        BuildSignatures(scenario_->set, *encoder_));
  }
  static void TearDownTestSuite() {
    delete signatures_;
    delete encoder_;
    delete scenario_;
    signatures_ = nullptr;
    encoder_ = nullptr;
    scenario_ = nullptr;
  }
  static datasets::MatchingScenario* scenario_;
  static embed::HashedLexiconEncoder* encoder_;
  static SignatureSet* signatures_;
};

datasets::MatchingScenario* EnsembleTest::scenario_ = nullptr;
embed::HashedLexiconEncoder* EnsembleTest::encoder_ = nullptr;
SignatureSet* EnsembleTest::signatures_ = nullptr;

TEST_F(EnsembleTest, VotesBoundedByLevels) {
  const std::vector<double> levels = {0.9, 0.7, 0.5};
  const auto votes = CollaborativeVotes(*signatures_, 3, levels);
  ASSERT_TRUE(votes.ok());
  for (size_t v : *votes) EXPECT_LE(v, levels.size());
}

TEST_F(EnsembleTest, UnionAndIntersectionNest) {
  EnsembleOptions loose;
  loose.min_votes = 1;
  EnsembleOptions strict;
  strict.min_votes = strict.variance_levels.size();
  const auto union_mask = EnsembleCollaborativeScoping(*signatures_, 3, loose);
  const auto inter_mask =
      EnsembleCollaborativeScoping(*signatures_, 3, strict);
  ASSERT_TRUE(union_mask.ok());
  ASSERT_TRUE(inter_mask.ok());
  size_t union_kept = 0, inter_kept = 0;
  for (size_t i = 0; i < union_mask->size(); ++i) {
    union_kept += (*union_mask)[i];
    inter_kept += (*inter_mask)[i];
    if ((*inter_mask)[i]) {
      EXPECT_TRUE((*union_mask)[i]);  // Nesting.
    }
  }
  EXPECT_GE(union_kept, inter_kept);
}

TEST_F(EnsembleTest, StrictVotingIsMorePrecise) {
  const auto labels = scenario_->truth.LinkabilityLabels(scenario_->set);
  EnsembleOptions loose;
  loose.min_votes = 1;
  EnsembleOptions strict;
  strict.min_votes = strict.variance_levels.size();
  const auto loose_mask =
      EnsembleCollaborativeScoping(*signatures_, 3, loose);
  const auto strict_mask =
      EnsembleCollaborativeScoping(*signatures_, 3, strict);
  ASSERT_TRUE(loose_mask.ok());
  ASSERT_TRUE(strict_mask.ok());
  const auto loose_c = eval::Evaluate(labels, *loose_mask);
  const auto strict_c = eval::Evaluate(labels, *strict_mask);
  EXPECT_GE(strict_c.Precision(), loose_c.Precision());
  EXPECT_GE(loose_c.Recall(), strict_c.Recall());
}

TEST_F(EnsembleTest, SingleLevelEqualsPlainCollaborative) {
  EnsembleOptions options;
  options.variance_levels = {0.8};
  options.min_votes = 1;
  const auto ensemble =
      EnsembleCollaborativeScoping(*signatures_, 3, options);
  const auto plain = CollaborativeScoping(*signatures_, 3, 0.8);
  ASSERT_TRUE(ensemble.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*ensemble, *plain);
}

TEST_F(EnsembleTest, InvalidConfigurationsRejected) {
  EnsembleOptions zero_votes;
  zero_votes.min_votes = 0;
  EXPECT_FALSE(EnsembleCollaborativeScoping(*signatures_, 3, zero_votes).ok());
  EnsembleOptions too_many;
  too_many.min_votes = too_many.variance_levels.size() + 1;
  EXPECT_FALSE(EnsembleCollaborativeScoping(*signatures_, 3, too_many).ok());
  EXPECT_FALSE(CollaborativeVotes(*signatures_, 3, {}).ok());
}

// --- CSV export ------------------------------------------------------------

TEST(CsvExportTest, CurveToCsv) {
  const eval::Curve curve{{0.0, 0.5}, {1.0, 0.75}};
  const std::string csv = eval::CurveToCsv(curve, "fpr", "tpr");
  EXPECT_EQ(csv, "fpr,tpr\n0.000000,0.500000\n1.000000,0.750000\n");
}

TEST(CsvExportTest, SweepToCsvHeaders) {
  std::vector<eval::SweepPoint> sweep(1);
  sweep[0].parameter = 0.5;
  sweep[0].confusion = eval::Evaluate({true, false}, {true, false});
  const std::string csv = eval::SweepToCsv(sweep, "v");
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "v,accuracy,precision,recall,f1");
  EXPECT_NE(csv.find("0.5000,1.000000,1.000000,1.000000,1.000000"),
            std::string::npos);
}

TEST(CsvExportTest, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/colscope_csv_test.csv";
  ASSERT_TRUE(eval::WriteTextFile(path, "a,b\n1,2\n").ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
  EXPECT_FALSE(eval::WriteTextFile("/nonexistent-dir/x.csv", "x").ok());
}

}  // namespace
}  // namespace colscope::scoping
