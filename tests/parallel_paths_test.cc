// Determinism tests for every pool-aware stage: signature encoding,
// similarity-matrix construction, SIM matching, threshold sweeps, and
// local-model fitting must produce byte-identical results with a pool
// of any size as they do serially. This binary is also part of the
// TSan suite (tools/run_sanitized_tests.sh), so the same cases double
// as data-race checks on the parallel paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "eval/sweep.h"
#include "linalg/matrix.h"
#include "matching/sim.h"
#include "matching/similarity_matrix.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

void ExpectBitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.RowPtr(r)[c], b.RowPtr(r)[c])
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
}

std::vector<std::string> ToyTexts() {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  return scoping::BuildSignatures(scenario.set, encoder).texts;
}

TEST(ParallelEncodeTest, EncodeAllMatchesSerialAtAnyThreadCount) {
  const std::vector<std::string> texts = ToyTexts();
  embed::HashedLexiconEncoder encoder;
  const linalg::Matrix serial = encoder.EncodeAll(texts);
  for (size_t threads : {2u, 5u, 8u}) {
    ThreadPool pool(threads);
    ExpectBitIdentical(encoder.EncodeAll(texts, &pool), serial);
  }
}

TEST(ParallelEncodeTest, NullOrSingleThreadPoolFallsBackToSerial) {
  const std::vector<std::string> texts = ToyTexts();
  embed::HashedLexiconEncoder encoder;
  const linalg::Matrix serial = encoder.EncodeAll(texts);
  ExpectBitIdentical(encoder.EncodeAll(texts, nullptr), serial);
  ThreadPool single(1);
  ExpectBitIdentical(encoder.EncodeAll(texts, &single), serial);
}

TEST(ParallelEncodeTest, PreCancelledBatchLeavesRowsZero) {
  const std::vector<std::string> texts = ToyTexts();
  embed::HashedLexiconEncoder encoder;
  ThreadPool pool(3);
  CancellationToken cancel;
  cancel.Cancel();
  const linalg::Matrix out = encoder.EncodeAll(texts, &pool, &cancel);
  ASSERT_EQ(out.rows(), texts.size());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_EQ(out.RowPtr(r)[c], 0.0);
    }
  }
}

TEST(ParallelSignaturesTest, BuildSignaturesMatchesSerial) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto serial = scoping::BuildSignatures(scenario.set, encoder);
  ThreadPool pool(4);
  const auto parallel = scoping::BuildSignatures(
      scenario.set, encoder, /*serialize_options=*/{}, /*tracer=*/nullptr,
      &pool);
  ASSERT_EQ(parallel.refs, serial.refs);
  ASSERT_EQ(parallel.texts, serial.texts);
  ExpectBitIdentical(parallel.signatures, serial.signatures);
}

TEST(ParallelSimilarityMatrixTest, PoolBuildIsIdenticalToSerial) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> active(signatures.size(), true);
  const matching::CosineScorer scorer;
  const auto serial =
      matching::BuildSimilarityMatrix(signatures, active, scorer);
  for (size_t threads : {2u, 7u}) {
    ThreadPool pool(threads);
    const auto parallel =
        matching::BuildSimilarityMatrix(signatures, active, scorer, &pool);
    // Map equality covers both the pair set and every score bit.
    EXPECT_EQ(parallel.scores(), serial.scores());
  }
}

TEST(ParallelSimilarityMatrixTest, PartialMaskStillIdentical) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  std::vector<bool> active(signatures.size(), true);
  for (size_t i = 0; i < active.size(); i += 3) active[i] = false;
  const matching::NameScorer scorer;
  const auto serial =
      matching::BuildSimilarityMatrix(signatures, active, scorer);
  ThreadPool pool(4);
  const auto parallel =
      matching::BuildSimilarityMatrix(signatures, active, scorer, &pool);
  EXPECT_EQ(parallel.scores(), serial.scores());
}

TEST(ParallelSimMatcherTest, LinkageSetIdenticalToSerial) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> active(signatures.size(), true);
  const matching::SimMatcher serial(0.6);
  const auto expected = serial.Match(signatures, active);
  EXPECT_FALSE(expected.empty());
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const matching::SimMatcher parallel(0.6, &pool);
    EXPECT_EQ(parallel.Match(signatures, active), expected);
  }
}

void ExpectSameSweep(const std::vector<eval::SweepPoint>& a,
                     const std::vector<eval::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].parameter, b[i].parameter);
    EXPECT_EQ(a[i].confusion.true_positive, b[i].confusion.true_positive);
    EXPECT_EQ(a[i].confusion.false_positive, b[i].confusion.false_positive);
    EXPECT_EQ(a[i].confusion.true_negative, b[i].confusion.true_negative);
    EXPECT_EQ(a[i].confusion.false_negative, b[i].confusion.false_negative);
  }
}

TEST(ParallelSweepTest, ScopingSweepFromScoresMatchesSerial) {
  const auto scenario = datasets::BuildToyScenario();
  const std::vector<bool> labels =
      scenario.truth.LinkabilityLabels(scenario.set);
  std::vector<double> scores(labels.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>((i * 7919) % 100) / 100.0;
  }
  const auto grid = eval::ParameterGrid(0.05);
  const auto serial = eval::ScopingSweepFromScores(scores, labels, grid);
  ThreadPool pool(4);
  const auto parallel =
      eval::ScopingSweepFromScores(scores, labels, grid, &pool);
  ExpectSameSweep(parallel, serial);
}

TEST(ParallelSweepTest, CollaborativeSweepMatchesSerial) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> labels =
      scenario.truth.LinkabilityLabels(scenario.set);
  // A coarse grid keeps the per-point refits cheap; correctness is
  // about slot placement, not grid resolution.
  const std::vector<double> grid = {0.3, 0.5, 0.7, 0.9};
  const auto serial =
      eval::CollaborativeSweep(signatures, 4, labels, grid);
  ThreadPool pool(3);
  const auto parallel =
      eval::CollaborativeSweep(signatures, 4, labels, grid, &pool);
  ExpectSameSweep(parallel, serial);
}

TEST(ParallelFitOnPoolTest, SharedPoolMatchesSequentialFit) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto sequential = scoping::FitLocalModels(signatures, 4, 0.7);
  ASSERT_TRUE(sequential.ok());
  ThreadPool pool(4);
  // Reusing one pool across calls is the pipeline's usage pattern.
  for (int round = 0; round < 2; ++round) {
    const auto parallel =
        scoping::FitLocalModelsOnPool(signatures, 4, 0.7, pool);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t s = 0; s < sequential->size(); ++s) {
      const auto local = signatures.SchemaSignatures(static_cast<int>(s));
      EXPECT_EQ((*sequential)[s].ReconstructionErrors(local),
                (*parallel)[s].ReconstructionErrors(local));
    }
  }
}

TEST(ParallelFitOnPoolTest, PreCancelledFitReturnsCancelled) {
  const auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  ThreadPool pool(2);
  CancellationToken cancel;
  cancel.Cancel();
  const auto result =
      scoping::FitLocalModelsOnPool(signatures, 4, 0.7, pool, &cancel);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// Concurrent reads of one shared encoder exercise the shared_mutex
// basis cache from many threads at once — the TSan target.
TEST(SharedEncoderTest, ConcurrentEncodeAllCallsAgree) {
  const std::vector<std::string> texts = ToyTexts();
  embed::HashedLexiconEncoder encoder;
  const linalg::Matrix expected = encoder.EncodeAll(texts);
  ThreadPool outer(4);
  std::vector<linalg::Matrix> results(8);
  ASSERT_TRUE(outer
                  .ParallelFor(results.size(),
                               [&](size_t i) {
                                 ThreadPool inner(2);
                                 results[i] =
                                     encoder.EncodeAll(texts, &inner);
                               })
                  .ok());
  for (const linalg::Matrix& m : results) ExpectBitIdentical(m, expected);
}

}  // namespace
}  // namespace colscope
