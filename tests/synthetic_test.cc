#include <gtest/gtest.h>

#include "datasets/synthetic.h"

namespace colscope::datasets {
namespace {

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticOptions options;
  auto a = BuildSyntheticScenario(options);
  auto b = BuildSyntheticScenario(options);
  EXPECT_EQ(a.set.num_elements(), b.set.num_elements());
  EXPECT_EQ(a.truth.size(), b.truth.size());
  for (size_t i = 0; i < a.set.num_elements(); ++i) {
    EXPECT_EQ(a.set.QualifiedName(a.set.elements()[i]),
              b.set.QualifiedName(b.set.elements()[i]));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticOptions a_options;
  SyntheticOptions b_options;
  b_options.seed = 999;
  auto a = BuildSyntheticScenario(a_options);
  auto b = BuildSyntheticScenario(b_options);
  // Same vocabulary, but alias/dropout decisions differ.
  bool any_diff = a.set.num_elements() != b.set.num_elements() ||
                  a.truth.size() != b.truth.size();
  if (!any_diff) {
    for (size_t i = 0; i < a.set.num_elements(); ++i) {
      if (a.set.QualifiedName(a.set.elements()[i]) !=
          b.set.QualifiedName(b.set.elements()[i])) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, RequestedShape) {
  SyntheticOptions options;
  options.num_schemas = 4;
  options.private_per_schema = 10;
  options.dropout_probability = 0.0;
  auto sc = BuildSyntheticScenario(options);
  EXPECT_EQ(sc.set.num_schemas(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    // shared concepts + private attrs.
    EXPECT_EQ(sc.set.schema(static_cast<int>(s)).num_attributes(),
              options.shared_concepts + options.private_per_schema);
  }
}

TEST(SyntheticTest, PrivateElementsAreUnlinkable) {
  SyntheticOptions options;
  options.private_per_schema = 6;
  auto sc = BuildSyntheticScenario(options);
  const auto labels = sc.truth.LinkabilityLabels(sc.set);
  // Every linkage references shared-concept attributes only, so the
  // number of linkable elements is bounded by shared concepts + entity
  // tables per schema.
  for (size_t s = 0; s < sc.set.num_schemas(); ++s) {
    EXPECT_LE(sc.truth.NumLinkableInSchema(static_cast<int>(s)),
              options.shared_concepts + 4);
  }
  // And private side tables are never linkable.
  for (size_t i = 0; i < labels.size(); ++i) {
    const auto& ref = sc.set.elements()[i];
    const std::string name = sc.set.QualifiedName(ref);
    if (name.find("_ledger") != std::string::npos) {
      EXPECT_FALSE(labels[i]) << name;
    }
  }
}

TEST(SyntheticTest, OverheadGrowsWithPrivateElements) {
  SyntheticOptions low;
  low.private_per_schema = 2;
  SyntheticOptions high = low;
  high.private_per_schema = 30;
  EXPECT_LT(BuildSyntheticScenario(low).UnlinkableOverhead(),
            BuildSyntheticScenario(high).UnlinkableOverhead());
}

TEST(SyntheticTest, EveryConceptAnnotatedSomewhere) {
  SyntheticOptions options;
  options.dropout_probability = 0.4;  // Aggressive dropout.
  auto sc = BuildSyntheticScenario(options);
  EXPECT_GT(sc.truth.size(), 0u);
  // Ground-truth invariants hold under dropout.
  for (const Linkage& l : sc.truth.linkages()) {
    EXPECT_NE(l.a.schema, l.b.schema);
    EXPECT_EQ(l.a.is_table(), l.b.is_table());
  }
}

TEST(SyntheticTest, ScalesToManySchemas) {
  SyntheticOptions options;
  options.num_schemas = 8;
  auto sc = BuildSyntheticScenario(options);
  EXPECT_EQ(sc.set.num_schemas(), 8u);
  // All 8C2 = 28 schema pairs can carry annotations; at least some do.
  size_t annotated_pairs = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      annotated_pairs += sc.truth.CountsForSchemaPair(a, b).total() > 0;
    }
  }
  EXPECT_GT(annotated_pairs, 20u);
}

TEST(SyntheticTest, VocabularyCapRespected) {
  SyntheticOptions options;
  options.shared_concepts = 10000;  // Way past the vocabulary.
  auto sc = BuildSyntheticScenario(options);
  for (size_t s = 0; s < sc.set.num_schemas(); ++s) {
    EXPECT_LE(sc.set.schema(static_cast<int>(s)).num_attributes(),
              SyntheticVocabularySize() + options.private_per_schema);
  }
}

}  // namespace
}  // namespace colscope::datasets
