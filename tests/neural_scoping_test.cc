#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/neural_collaborative.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

class NeuralScopingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = BuildSignatures(scenario_.set, encoder_);
    options_.hidden_dims = {16, 4, 16};  // Small for test speed.
    options_.epochs = 20;
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  SignatureSet signatures_;
  NeuralLocalModelOptions options_;
};

TEST_F(NeuralScopingTest, TrainingElementsPassOwnRange) {
  // Definition 3 carries over: l_k is the max training error, so every
  // training element reconstructs within range.
  const linalg::Matrix local = signatures_.SchemaSignatures(1);
  auto model = NeuralLocalModel::Fit(local, options_, 1);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const auto errors = model->ReconstructionErrors(local);
  for (double e : errors) {
    EXPECT_LE(e, model->linkability_range() + 1e-12);
  }
  EXPECT_EQ(model->schema_index(), 1);
}

TEST_F(NeuralScopingTest, RejectsEmptyAndBadConfig) {
  EXPECT_FALSE(NeuralLocalModel::Fit(linalg::Matrix(), options_, 0).ok());
  NeuralLocalModelOptions no_hidden;
  no_hidden.hidden_dims = {};
  EXPECT_FALSE(
      NeuralLocalModel::Fit(signatures_.SchemaSignatures(0), no_hidden, 0)
          .ok());
}

TEST_F(NeuralScopingTest, DeterministicForSeed) {
  const linalg::Matrix local = signatures_.SchemaSignatures(0);
  auto a = NeuralLocalModel::Fit(local, options_, 0);
  auto b = NeuralLocalModel::Fit(local, options_, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->linkability_range(), b->linkability_range());
  EXPECT_EQ(a->ReconstructionErrors(local), b->ReconstructionErrors(local));
}

TEST_F(NeuralScopingTest, SchemasGetIndependentInitializations) {
  const linalg::Matrix local = signatures_.SchemaSignatures(0);
  auto m0 = NeuralLocalModel::Fit(local, options_, 0);
  auto m1 = NeuralLocalModel::Fit(local, options_, 1);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  // Same data, different schema index -> different seed -> different net.
  EXPECT_NE(m0->ReconstructionErrors(local), m1->ReconstructionErrors(local));
}

TEST_F(NeuralScopingTest, EndToEndProducesMask) {
  auto keep = CollaborativeScopingNeural(signatures_, 4, options_);
  ASSERT_TRUE(keep.ok()) << keep.status().ToString();
  EXPECT_EQ(keep->size(), signatures_.size());
}

TEST_F(NeuralScopingTest, MoreEpochsTightenTheRange) {
  const linalg::Matrix local = signatures_.SchemaSignatures(1);
  NeuralLocalModelOptions few = options_;
  few.epochs = 2;
  NeuralLocalModelOptions many = options_;
  many.epochs = 120;
  auto loose = NeuralLocalModel::Fit(local, few, 1);
  auto tight = NeuralLocalModel::Fit(local, many, 1);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  // Longer training fits the local distribution better -> smaller max
  // reconstruction error (the autoencoder analogue of raising v).
  EXPECT_LT(tight->linkability_range(), loose->linkability_range());
}

}  // namespace
}  // namespace colscope::scoping
