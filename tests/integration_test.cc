// End-to-end integration tests: the paper's headline results, asserted
// on the full OC3 / OC3-FO pipeline (coarse sweep grids keep the suite
// fast; the bench binaries run the fine-grained versions).

#include <gtest/gtest.h>

#include "datasets/oc3.h"
#include "embed/hashed_encoder.h"
#include "eval/breakdown.h"
#include "eval/matching_metrics.h"
#include "eval/sweep.h"
#include "matching/cluster_matcher.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"
#include "scoping/collaborative.h"
#include "scoping/ensemble.h"
#include "scoping/model_io.h"
#include "scoping/scoping.h"
#include "scoping/signatures.h"
#include "scoping/streamline.h"

namespace colscope {
namespace {

/// Shared expensive fixture: signatures and sweeps are computed once.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    state_->oc3 = datasets::BuildOc3Scenario();
    state_->fo = datasets::BuildOc3FoScenario();
    embed::HashedLexiconEncoder encoder;
    state_->sig_oc3 = scoping::BuildSignatures(state_->oc3.set, encoder);
    state_->sig_fo = scoping::BuildSignatures(state_->fo.set, encoder);
    state_->labels_oc3 = state_->oc3.truth.LinkabilityLabels(state_->oc3.set);
    state_->labels_fo = state_->fo.truth.LinkabilityLabels(state_->fo.set);

    const auto grid = eval::ParameterGrid(0.05, 0.95);
    state_->collab_oc3 = eval::ReportForCollaborative(
        eval::CollaborativeSweep(state_->sig_oc3, 3, state_->labels_oc3,
                                 grid));
    state_->collab_fo = eval::ReportForCollaborative(
        eval::CollaborativeSweep(state_->sig_fo, 4, state_->labels_fo, grid));

    auto run_scoping = [&](const scoping::SignatureSet& sig,
                           const std::vector<bool>& labels,
                           const outlier::OutlierDetector& detector) {
      const auto scores = detector.Scores(sig.signatures);
      const auto sweep = eval::ScopingSweepFromScores(scores, labels, grid);
      return eval::ReportForScoping(labels, scores, sweep);
    };
    const outlier::ZScoreDetector zscore;
    const outlier::LofDetector lof(20);
    const outlier::PcaDetector pca3(0.3), pca5(0.5), pca7(0.7);
    const std::vector<const outlier::OutlierDetector*> detectors = {
        &zscore, &lof, &pca3, &pca5, &pca7};
    for (const outlier::OutlierDetector* d : detectors) {
      state_->scoping_oc3.push_back(
          run_scoping(state_->sig_oc3, state_->labels_oc3, *d));
      state_->scoping_fo.push_back(
          run_scoping(state_->sig_fo, state_->labels_fo, *d));
    }
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    datasets::MatchingScenario oc3, fo;
    scoping::SignatureSet sig_oc3, sig_fo;
    std::vector<bool> labels_oc3, labels_fo;
    eval::AucReport collab_oc3, collab_fo;
    std::vector<eval::AucReport> scoping_oc3, scoping_fo;
  };
  static State* state_;

  static double BestScopingF1(const std::vector<eval::AucReport>& reports) {
    double best = 0.0;
    for (const auto& r : reports) best = std::max(best, r.auc_f1);
    return best;
  }
  static double BestScopingPr(const std::vector<eval::AucReport>& reports) {
    double best = 0.0;
    for (const auto& r : reports) best = std::max(best, r.auc_pr);
    return best;
  }
};

PipelineTest::State* PipelineTest::state_ = nullptr;

// --- Observation 1 (Section 4): collaborative beats scoping in AUC-F1 ----

TEST_F(PipelineTest, CollaborativeBeatsAllScopingBaselinesInF1OnOc3) {
  EXPECT_GT(state_->collab_oc3.auc_f1, BestScopingF1(state_->scoping_oc3));
}

TEST_F(PipelineTest, CollaborativeBeatsAllScopingBaselinesInF1OnOc3Fo) {
  EXPECT_GT(state_->collab_fo.auc_f1, BestScopingF1(state_->scoping_fo));
}

TEST_F(PipelineTest, CollaborativeBeatsAllScopingBaselinesInPrOnOc3Fo) {
  EXPECT_GT(state_->collab_fo.auc_pr, BestScopingPr(state_->scoping_fo));
}

// --- Observation 2: scoping collapses on heterogeneous schemas while
// collaborative stays robust ------------------------------------------------

TEST_F(PipelineTest, ScopingDegradesFromOc3ToOc3Fo) {
  // Every scoping baseline loses AUC-PR when the Formula One schema
  // joins; the drop exceeds 15 points for each of them.
  for (size_t i = 0; i < state_->scoping_oc3.size(); ++i) {
    EXPECT_GT(state_->scoping_oc3[i].auc_pr,
              state_->scoping_fo[i].auc_pr + 15.0)
        << "baseline " << i;
  }
}

TEST_F(PipelineTest, CollaborativeRobustToHeterogeneity) {
  // Collaborative scoping's AUC-PR moves by only a few points between
  // the 103% and 263% unlinkable-overhead scenarios.
  EXPECT_LT(std::abs(state_->collab_oc3.auc_pr - state_->collab_fo.auc_pr),
            10.0);
  // And its smoothed ROC actually improves on OC3-FO (paper: +13%).
  EXPECT_GT(state_->collab_fo.auc_roc_smoothed,
            state_->collab_oc3.auc_roc_smoothed);
}

TEST_F(PipelineTest, ZScoreNearOrBelowRandomOnOc3Fo) {
  // Paper: most baselines perform at or below chance once the Formula
  // One schema dominates the global distribution (Section 4.3).
  EXPECT_LT(state_->scoping_fo[0].auc_roc, 55.0);  // z-score.
}

TEST_F(PipelineTest, SmoothedRocNeverBelowRawRoc) {
  EXPECT_GE(state_->collab_oc3.auc_roc_smoothed,
            state_->collab_oc3.auc_roc - 1e-9);
  EXPECT_GE(state_->collab_fo.auc_roc_smoothed,
            state_->collab_fo.auc_roc - 1e-9);
}

// --- Observation 3 (ablation): streamlined schemas boost matching PQ and
// never hurt the reduction ratio ----------------------------------------------

TEST_F(PipelineTest, ScopingBoostsClusterAndLshPairQuality) {
  const size_t cartesian = state_->fo.set.TableCartesianSize() +
                           state_->fo.set.AttributeCartesianSize();
  const std::vector<bool> all(state_->sig_fo.size(), true);
  const auto keep = scoping::CollaborativeScoping(state_->sig_fo, 4, 0.9);
  ASSERT_TRUE(keep.ok());

  const matching::ClusterMatcher cluster(20);
  const matching::LshMatcher lsh(1);
  const std::vector<const matching::Matcher*> matchers = {&cluster, &lsh};
  for (const matching::Matcher* m : matchers) {
    const auto before = eval::EvaluateMatching(
        m->Match(state_->sig_fo, all), state_->fo.truth, cartesian);
    const auto after = eval::EvaluateMatching(
        m->Match(state_->sig_fo, *keep), state_->fo.truth, cartesian);
    EXPECT_GT(after.PairQuality(), 1.5 * before.PairQuality()) << m->name();
    EXPECT_GT(after.ReductionRatio(), before.ReductionRatio()) << m->name();
  }
}

TEST_F(PipelineTest, ReductionRatioImprovesForEveryMatcherAndVariance) {
  const size_t cartesian = state_->oc3.set.TableCartesianSize() +
                           state_->oc3.set.AttributeCartesianSize();
  const std::vector<bool> all(state_->sig_oc3.size(), true);
  const matching::SimMatcher sim(0.4);
  const auto before = eval::EvaluateMatching(
      sim.Match(state_->sig_oc3, all), state_->oc3.truth, cartesian);
  for (double v : {0.9, 0.6, 0.3}) {
    const auto keep = scoping::CollaborativeScoping(state_->sig_oc3, 3, v);
    ASSERT_TRUE(keep.ok());
    const auto after = eval::EvaluateMatching(
        sim.Match(state_->sig_oc3, *keep), state_->oc3.truth, cartesian);
    EXPECT_GE(after.ReductionRatio(), before.ReductionRatio());
  }
}

// --- Section 4.4 trade-off numbers (exact) -----------------------------------

TEST_F(PipelineTest, EncoderDecoderPassCountsMatchPaper) {
  // OC3: 160 elements x 2 foreign models = 320 passes = 4.76% of 6718.
  const size_t oc3_passes = state_->sig_oc3.size() * 2;
  const size_t oc3_cartesian = state_->oc3.set.TableCartesianSize() +
                               state_->oc3.set.AttributeCartesianSize();
  EXPECT_EQ(oc3_passes, 320u);
  EXPECT_NEAR(100.0 * oc3_passes / oc3_cartesian, 4.76, 0.01);
  // OC3-FO: 287 x 3 = 861 = 3.78% of 22768.
  const size_t fo_passes = state_->sig_fo.size() * 3;
  const size_t fo_cartesian = state_->fo.set.TableCartesianSize() +
                              state_->fo.set.AttributeCartesianSize();
  EXPECT_EQ(fo_passes, 861u);
  EXPECT_NEAR(100.0 * fo_passes / fo_cartesian, 3.78, 0.01);
}

TEST_F(PipelineTest, EvenMostPermissiveVariancePrunesSomething) {
  // Paper: v = 0.01 still prunes 9.37% (OC3) / 19.86% (OC3-FO); ours
  // prunes a nonzero share with the same ordering.
  const auto keep_oc3 = scoping::CollaborativeScoping(state_->sig_oc3, 3,
                                                      0.01);
  const auto keep_fo = scoping::CollaborativeScoping(state_->sig_fo, 4, 0.01);
  ASSERT_TRUE(keep_oc3.ok());
  ASSERT_TRUE(keep_fo.ok());
  const double pruned_oc3 =
      1.0 - static_cast<double>(scoping::CountKept(*keep_oc3)) /
                static_cast<double>(keep_oc3->size());
  const double pruned_fo =
      1.0 - static_cast<double>(scoping::CountKept(*keep_fo)) /
                static_cast<double>(keep_fo->size());
  EXPECT_GT(pruned_oc3, 0.0);
  EXPECT_GT(pruned_fo, pruned_oc3);  // More heterogeneity, more pruning.
}

// --- Streamlined schema materialization over the real datasets ----------------

TEST_F(PipelineTest, StreamlinedSchemasShrinkAndPreserveNames) {
  const auto keep = scoping::CollaborativeScoping(state_->sig_fo, 4, 0.85);
  ASSERT_TRUE(keep.ok());
  const auto streamlined = scoping::BuildStreamlinedSchemas(
      state_->fo.set, state_->sig_fo, *keep);
  ASSERT_EQ(streamlined.num_schemas(), 4u);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(streamlined.schema(s).name(), state_->fo.set.schema(s).name());
    EXPECT_LE(streamlined.schema(s).num_elements(),
              state_->fo.set.schema(s).num_elements());
    total += streamlined.schema(s).num_elements();
  }
  EXPECT_LT(total, state_->fo.set.num_elements());
  // The Formula One schema shrinks dramatically relative to its size.
  EXPECT_LT(streamlined.schema(3).num_elements() * 2,
            state_->fo.set.schema(3).num_elements());
}

// --- Cross-cutting extensions on the full datasets ---------------------------

TEST_F(PipelineTest, ParallelFitIdenticalToSequentialOnOc3Fo) {
  const auto sequential = scoping::FitLocalModels(state_->sig_fo, 4, 0.8);
  const auto parallel =
      scoping::FitLocalModelsParallel(state_->sig_fo, 4, 0.8);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(scoping::AssessAll(state_->sig_fo, 4, *sequential),
            scoping::AssessAll(state_->sig_fo, 4, *parallel));
}

TEST_F(PipelineTest, ModelRoundTripPreservesAssessmentOnOc3) {
  auto models = scoping::FitLocalModels(state_->sig_oc3, 3, 0.8);
  ASSERT_TRUE(models.ok());
  std::vector<scoping::LocalModel> restored;
  for (const auto& model : *models) {
    auto back = scoping::DeserializeLocalModel(
        scoping::SerializeLocalModel(model));
    ASSERT_TRUE(back.ok());
    restored.push_back(std::move(back).value());
  }
  EXPECT_EQ(scoping::AssessAll(state_->sig_oc3, 3, *models),
            scoping::AssessAll(state_->sig_oc3, 3, restored));
}

TEST_F(PipelineTest, EnsembleMajorityBetweenUnionAndIntersection) {
  scoping::EnsembleOptions majority;  // 3-of-5 default.
  const auto mask =
      scoping::EnsembleCollaborativeScoping(state_->sig_fo, 4, majority);
  ASSERT_TRUE(mask.ok());
  const auto c = eval::Evaluate(state_->labels_fo, *mask);
  // A sane operating point: clearly better than keeping everything
  // (precision = base rate 0.275) and with usable recall.
  EXPECT_GT(c.Precision(), 0.45);
  EXPECT_GT(c.Recall(), 0.5);
}

TEST_F(PipelineTest, PerPairBreakdownConsistentOnOc3) {
  const std::vector<bool> all(state_->sig_oc3.size(), true);
  const auto pairs =
      matching::SimMatcher(0.6).Match(state_->sig_oc3, all);
  const auto global = eval::EvaluateMatching(
      pairs, state_->oc3.truth,
      state_->oc3.set.TableCartesianSize() +
          state_->oc3.set.AttributeCartesianSize());
  const auto breakdown = eval::EvaluateMatchingPerPair(
      pairs, state_->oc3.truth, state_->oc3.set);
  ASSERT_EQ(breakdown.size(), 3u);
  size_t generated = 0, truth_total = 0;
  for (const auto& [key, quality] : breakdown) {
    generated += quality.generated;
    truth_total += quality.ground_truth;
  }
  EXPECT_EQ(generated, global.generated);
  EXPECT_EQ(truth_total, 70u);  // 36 + 18 + 16 (Table 3 per-pair rows).
}

}  // namespace
}  // namespace colscope
