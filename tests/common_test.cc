#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace colscope {
namespace {

// --- Status / Result ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- Strings ---------------------------------------------------------------

TEST(StringsTest, SplitStringBasic) {
  EXPECT_EQ(SplitString("a,b,,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ","), std::vector<std::string>{});
  EXPECT_EQ(SplitString("one", ","), std::vector<std::string>{"one"});
}

TEST(StringsTest, SplitStringMultipleDelims) {
  EXPECT_EQ(SplitString("a b\tc", " \t"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"one"}, ","), "one");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("MiXeD_09"), "mixed_09");
  EXPECT_EQ(ToUpperAscii("MiXeD_09"), "MIXED_09");
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(StringsTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("fo", "foo"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// --- RNG --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All buckets hit in 1000 draws.
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  // Advancing the state changes the output.
  EXPECT_NE(SplitMix64(s1), SplitMix64(s1));
}

}  // namespace
}  // namespace colscope
