#include <gtest/gtest.h>

#include "text/string_similarity.h"

namespace colscope::text {
namespace {

// --- Levenshtein -----------------------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, SymmetricAndTriangle) {
  const char* words[] = {"order", "orders", "ordered", "odor"};
  for (const char* a : words) {
    for (const char* b : words) {
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
      for (const char* c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

// --- Jaro / Jaro-Winkler ------------------------------------------------------

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  // Winkler never decreases Jaro.
  const char* pairs[][2] = {{"order_id", "order_nr"},
                            {"customer", "costumer"},
                            {"city", "code"}};
  for (const auto& p : pairs) {
    EXPECT_GE(JaroWinklerSimilarity(p[0], p[1]),
              JaroSimilarity(p[0], p[1]) - 1e-12);
  }
  // Bounded by 1.
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
}

// --- Token Jaccard -----------------------------------------------------------

TEST(TokenJaccardTest, CaseAndConventionInsensitive) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("ORDER_DATE", "orderDate"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("order_date", "order_status"),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("x", "y"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("", ""), 1.0);
}

TEST(TokenJaccardTest, LabelingConflictMotivation) {
  // The paper's criticism of string matching: lexically similar names
  // with different semantics score high (CNAME of a car vs a client),
  // while true synonyms score zero (CLIENT vs CUSTOMER).
  EXPECT_GT(TokenJaccardSimilarity("CNAME", "CNAME"), 0.99);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("CLIENT", "CUSTOMER"), 0.0);
}

}  // namespace
}  // namespace colscope::text
