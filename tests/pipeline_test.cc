#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "outlier/pca_oda.h"
#include "pipeline/pipeline.h"

namespace colscope::pipeline {
namespace {

class PipelineApiTest : public ::testing::Test {
 protected:
  void SetUp() override { scenario_ = datasets::BuildToyScenario(); }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  matching::SimMatcher matcher_{0.6};
};

TEST_F(PipelineApiTest, CollaborativeEndToEnd) {
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativePca;
  options.explained_variance = 0.5;
  Pipeline pipeline(&encoder_, options);

  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->keep.size(), scenario_.set.num_elements());
  EXPECT_GT(run->num_kept(), 0u);
  EXPECT_GT(run->num_pruned(), 0u);
  EXPECT_EQ(run->streamlined.num_schemas(), 4u);
  ASSERT_TRUE(run->quality.has_value());
  EXPECT_EQ(run->quality->cartesian,
            scenario_.set.TableCartesianSize() +
                scenario_.set.AttributeCartesianSize());
}

TEST_F(PipelineApiTest, NoScopingKeepsEverything) {
  PipelineOptions options;
  options.scoper = ScoperKind::kNone;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_kept(), scenario_.set.num_elements());
  EXPECT_FALSE(run->quality.has_value());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(run->streamlined.schema(s).num_elements(),
              scenario_.set.schema(s).num_elements());
  }
}

TEST_F(PipelineApiTest, GlobalScopingPath) {
  outlier::PcaDetector detector(0.5);
  PipelineOptions options;
  options.scoper = ScoperKind::kGlobalScoping;
  options.keep_portion = 0.5;
  options.detector = &detector;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->num_kept(), 12u);  // Half of 24.
}

TEST_F(PipelineApiTest, GlobalScopingRequiresDetector) {
  PipelineOptions options;
  options.scoper = ScoperKind::kGlobalScoping;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineApiTest, NeuralScopingPath) {
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativeNeural;
  options.neural.hidden_dims = {16, 4, 16};
  options.neural.epochs = 10;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->keep.size(), 24u);
}

TEST_F(PipelineApiTest, RejectsSingleSchemaSet) {
  schema::SchemaSet single({scenario_.set.schema(0)});
  Pipeline pipeline(&encoder_, PipelineOptions{});
  auto run = pipeline.Run(single, matcher_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineApiTest, ScopingImprovesOrMaintainsReductionRatio) {
  PipelineOptions with;
  with.scoper = ScoperKind::kCollaborativePca;
  with.explained_variance = 0.5;
  PipelineOptions without;
  without.scoper = ScoperKind::kNone;

  auto scoped = Pipeline(&encoder_, with)
                    .Run(scenario_.set, matcher_, &scenario_.truth);
  auto raw = Pipeline(&encoder_, without)
                 .Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(scoped.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_GE(scoped->quality->ReductionRatio(),
            raw->quality->ReductionRatio());
}

}  // namespace
}  // namespace colscope::pipeline
