#include <gtest/gtest.h>

#include <filesystem>

#include "common/cancellation.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "obs/metrics.h"
#include "outlier/pca_oda.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"

namespace colscope::pipeline {
namespace {

class PipelineApiTest : public ::testing::Test {
 protected:
  void SetUp() override { scenario_ = datasets::BuildToyScenario(); }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  matching::SimMatcher matcher_{0.6};
};

TEST_F(PipelineApiTest, CollaborativeEndToEnd) {
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativePca;
  options.explained_variance = 0.5;
  Pipeline pipeline(&encoder_, options);

  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->keep.size(), scenario_.set.num_elements());
  EXPECT_GT(run->num_kept(), 0u);
  EXPECT_GT(run->num_pruned(), 0u);
  EXPECT_EQ(run->streamlined.num_schemas(), 4u);
  ASSERT_TRUE(run->quality.has_value());
  EXPECT_EQ(run->quality->cartesian,
            scenario_.set.TableCartesianSize() +
                scenario_.set.AttributeCartesianSize());
}

TEST_F(PipelineApiTest, NoScopingKeepsEverything) {
  PipelineOptions options;
  options.scoper = ScoperKind::kNone;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_kept(), scenario_.set.num_elements());
  EXPECT_FALSE(run->quality.has_value());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(run->streamlined.schema(s).num_elements(),
              scenario_.set.schema(s).num_elements());
  }
}

TEST_F(PipelineApiTest, GlobalScopingPath) {
  outlier::PcaDetector detector(0.5);
  PipelineOptions options;
  options.scoper = ScoperKind::kGlobalScoping;
  options.keep_portion = 0.5;
  options.detector = &detector;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->num_kept(), 12u);  // Half of 24.
}

TEST_F(PipelineApiTest, GlobalScopingRequiresDetector) {
  PipelineOptions options;
  options.scoper = ScoperKind::kGlobalScoping;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineApiTest, NeuralScopingPath) {
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativeNeural;
  options.neural.hidden_dims = {16, 4, 16};
  options.neural.epochs = 10;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->keep.size(), 24u);
}

TEST_F(PipelineApiTest, RejectsSingleSchemaSet) {
  schema::SchemaSet single({scenario_.set.schema(0)});
  Pipeline pipeline(&encoder_, PipelineOptions{});
  auto run = pipeline.Run(single, matcher_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineApiTest, CompletedRunReportsAllPhases) {
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativePca;
  options.explained_variance = 0.5;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->status.ok());
  EXPECT_EQ(run->phases_completed,
            (std::vector<std::string>{"signatures", "local_models",
                                      "keep_mask", "streamline", "match",
                                      "evaluate"}));
  EXPECT_EQ(run->phases_resumed, 0u);
}

TEST_F(PipelineApiTest, PreCancelledRunStopsAfterSignatures) {
  CancellationToken cancel;
  cancel.Cancel();
  obs::MetricsRegistry metrics;
  PipelineOptions options;
  options.cancel = &cancel;
  options.metrics = &metrics;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(run->phases_completed,
            std::vector<std::string>{"signatures"});
  EXPECT_TRUE(run->keep.empty());
  EXPECT_EQ(metrics.GetCounter("pipeline.cancelled").value(), 1u);
  // The partial run still snapshots metrics and renders as a report.
  ASSERT_TRUE(run->metrics.has_value());
  const std::string json = RunToJson(*run, scenario_.set);
  EXPECT_NE(json.find("\"status\":\"cancelled\""), std::string::npos);
}

TEST_F(PipelineApiTest, ExhaustedDeadlineStopsRunCleanly) {
  SimulatedRunClock clock(/*tick_ms=*/1.0);
  obs::MetricsRegistry metrics;
  PipelineOptions options;
  options.deadline_ms = 0.5;  // Expired after the first clock tick.
  options.clock = &clock;
  options.metrics = &metrics;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(run->phases_completed,
            std::vector<std::string>{"signatures"});
  EXPECT_EQ(metrics.GetCounter("pipeline.deadline_exceeded").value(), 1u);
}

TEST_F(PipelineApiTest, GenerousDeadlineDoesNotInterfere) {
  PipelineOptions options;
  options.deadline_ms = 1e9;
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->status.ok());
}

TEST_F(PipelineApiTest, CrashAfterPhaseHookFailsTheRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "colscope_crash_hook")
          .string();
  std::filesystem::remove_all(dir);
  PipelineOptions options;
  options.checkpoint_dir = dir;
  options.crash_after_phase = "local_models";
  Pipeline pipeline(&encoder_, options);
  auto run = pipeline.Run(scenario_.set, matcher_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  // The crash fired after the checkpoint committed.
  EXPECT_TRUE(std::filesystem::exists(dir + "/signatures.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/local_models.ckpt"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/keep_mask.ckpt"));
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineApiTest, ResumeAfterCrashMatchesUninterruptedRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "colscope_resume")
          .string();
  std::filesystem::remove_all(dir);
  PipelineOptions options;
  options.scoper = ScoperKind::kCollaborativePca;
  options.explained_variance = 0.5;

  auto gold = Pipeline(&encoder_, options)
                  .Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(gold.ok());

  PipelineOptions crash = options;
  crash.checkpoint_dir = dir;
  crash.crash_after_phase = "local_models";
  ASSERT_FALSE(
      Pipeline(&encoder_, crash).Run(scenario_.set, matcher_).ok());

  obs::MetricsRegistry metrics;
  PipelineOptions resume = options;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.metrics = &metrics;
  auto resumed = Pipeline(&encoder_, resume)
                     .Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->phases_resumed, 2u);
  EXPECT_EQ(metrics.GetCounter("pipeline.phases_resumed").value(), 2u);
  EXPECT_EQ(resumed->keep, gold->keep);
  EXPECT_EQ(resumed->linkages, gold->linkages);
  // The signatures restored from disk are bit-identical to recomputed.
  for (size_t i = 0; i < gold->signatures.size(); ++i) {
    EXPECT_EQ(resumed->signatures.signatures.Row(i),
              gold->signatures.signatures.Row(i));
  }
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineApiTest, ResumeIgnoresCheckpointsFromDifferentConfig) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "colscope_stale_cfg")
          .string();
  std::filesystem::remove_all(dir);
  PipelineOptions first;
  first.explained_variance = 0.5;
  first.checkpoint_dir = dir;
  ASSERT_TRUE(
      Pipeline(&encoder_, first).Run(scenario_.set, matcher_).ok());

  // Same directory, different explained variance: the fingerprint
  // differs, so nothing must be resumed.
  PipelineOptions second = first;
  second.explained_variance = 0.9;
  second.resume = true;
  auto run = Pipeline(&encoder_, second).Run(scenario_.set, matcher_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->phases_resumed, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineApiTest, ScopingImprovesOrMaintainsReductionRatio) {
  PipelineOptions with;
  with.scoper = ScoperKind::kCollaborativePca;
  with.explained_variance = 0.5;
  PipelineOptions without;
  without.scoper = ScoperKind::kNone;

  auto scoped = Pipeline(&encoder_, with)
                    .Run(scenario_.set, matcher_, &scenario_.truth);
  auto raw = Pipeline(&encoder_, without)
                 .Run(scenario_.set, matcher_, &scenario_.truth);
  ASSERT_TRUE(scoped.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_GE(scoped->quality->ReductionRatio(),
            raw->quality->ReductionRatio());
}

}  // namespace
}  // namespace colscope::pipeline
