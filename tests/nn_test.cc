#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/stats.h"
#include "nn/network.h"

namespace colscope::nn {
namespace {

using linalg::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.NextGaussian();
  return m;
}

TEST(DenseLayerTest, ForwardShapesAndLinearity) {
  Rng rng(1);
  DenseLayer layer(3, 2, /*relu=*/false, rng);
  Matrix x = RandomMatrix(5, 3, 2);
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
  // Linearity: f(2x) - f(x) == f(x) - f(0) for a linear layer.
  Matrix x2 = x;
  for (double& v : x2.data()) v *= 2.0;
  Matrix y2 = layer.Forward(x2);
  Matrix zero(5, 3, 0.0);
  Matrix y0 = layer.Forward(zero);
  for (size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_NEAR(y2.data()[i] - y.data()[i], y.data()[i] - y0.data()[i], 1e-9);
  }
}

TEST(DenseLayerTest, ReluClampsNegatives) {
  Rng rng(3);
  DenseLayer layer(4, 8, /*relu=*/true, rng);
  Matrix x = RandomMatrix(10, 4, 4);
  Matrix y = layer.Forward(x);
  for (double v : y.data()) EXPECT_GE(v, 0.0);
}

TEST(DenseLayerTest, BackwardGradientMatchesFiniteDifference) {
  // Check dL/dx for L = sum(y) via finite differences.
  Rng rng(5);
  DenseLayer layer(3, 2, /*relu=*/false, rng);
  Matrix x = RandomMatrix(1, 3, 6);
  Matrix y = layer.Forward(x);
  Matrix grad_out(1, 2, 1.0);  // dL/dy = 1.
  Matrix grad_in = layer.Backward(grad_out);

  const double eps = 1e-6;
  for (size_t c = 0; c < 3; ++c) {
    Matrix xp = x;
    xp(0, c) += eps;
    Matrix xm = x;
    xm(0, c) -= eps;
    double lp = 0.0, lm = 0.0;
    Matrix yp = layer.Forward(xp);
    for (double v : yp.data()) lp += v;
    Matrix ym = layer.Forward(xm);
    for (double v : ym.data()) lm += v;
    EXPECT_NEAR(grad_in(0, c), (lp - lm) / (2 * eps), 1e-5);
  }
}

TEST(MlpTest, DeterministicForSeed) {
  Matrix x = RandomMatrix(8, 6, 7);
  Mlp a({6, 4, 6}, 42);
  Mlp b({6, 4, 6}, 42);
  Matrix ya = a.Predict(x);
  Matrix yb = b.Predict(x);
  EXPECT_EQ(ya.data(), yb.data());
}

TEST(MlpTest, TrainingReducesAutoencoderLoss) {
  // Low-rank data: 20 samples in an essentially 2-D subspace of R^8.
  Rng rng(9);
  Matrix basis = RandomMatrix(2, 8, 10);
  Matrix coeffs = RandomMatrix(20, 2, 11);
  Matrix x = coeffs.Multiply(basis);

  // The bottleneck has 4 ReLU units: representing the two signed latent
  // coefficients needs ~2 units per sign.
  Mlp net({8, 6, 4, 6, 8}, 13);
  TrainOptions options;
  options.learning_rate = 3e-3;
  options.batch_size = 5;  // Several Adam steps per epoch.
  options.epochs = 1;
  const double first = net.TrainEpoch(x, x, options);
  options.epochs = 400;
  const double last = net.Fit(x, x, options);
  EXPECT_LT(last, first * 0.5);
}

TEST(MlpTest, FitsSimpleRegression) {
  // y = x1 + x2 learned by a small network.
  Rng rng(15);
  Matrix x = RandomMatrix(64, 2, 16);
  Matrix y(64, 1);
  for (size_t r = 0; r < 64; ++r) y(r, 0) = x(r, 0) + x(r, 1);
  Mlp net({2, 8, 1}, 17);
  TrainOptions options;
  options.epochs = 500;
  options.batch_size = 16;
  const double loss = net.Fit(x, y, options);
  EXPECT_LT(loss, 0.05);
}

TEST(MlpTest, InputOutputDims) {
  Mlp net({768, 100, 10, 100, 768}, 1);
  EXPECT_EQ(net.input_dim(), 768u);
  EXPECT_EQ(net.output_dim(), 768u);
}

}  // namespace
}  // namespace colscope::nn
