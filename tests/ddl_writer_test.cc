#include <gtest/gtest.h>

#include "datasets/oc3.h"
#include "schema/ddl_parser.h"
#include "schema/ddl_writer.h"

namespace colscope::schema {
namespace {

/// Structural equality of two schemas (names, order, types, constraints).
void ExpectSchemaEqual(const Schema& a, const Schema& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t t = 0; t < a.tables().size(); ++t) {
    const Table& ta = a.tables()[t];
    const Table& tb = b.tables()[t];
    EXPECT_EQ(ta.name, tb.name);
    ASSERT_EQ(ta.attributes.size(), tb.attributes.size()) << ta.name;
    for (size_t i = 0; i < ta.attributes.size(); ++i) {
      EXPECT_EQ(ta.attributes[i].name, tb.attributes[i].name);
      EXPECT_EQ(ta.attributes[i].raw_type, tb.attributes[i].raw_type);
      EXPECT_EQ(ta.attributes[i].constraint, tb.attributes[i].constraint)
          << ta.name << "." << ta.attributes[i].name;
      EXPECT_EQ(ta.attributes[i].table_name, tb.attributes[i].table_name);
    }
  }
}

TEST(DdlWriterTest, SimpleTableRendering) {
  Table t;
  t.name = "CLIENT";
  t.attributes.push_back({"CID", "CLIENT", "NUMBER", DataType::kDecimal,
                          Constraint::kPrimaryKey});
  t.attributes.push_back({"NAME", "CLIENT", "VARCHAR(80)", DataType::kString,
                          Constraint::kNone});
  const std::string ddl = WriteTableDdl(t);
  EXPECT_NE(ddl.find("CREATE TABLE CLIENT"), std::string::npos);
  EXPECT_NE(ddl.find("CID NUMBER PRIMARY KEY,"), std::string::npos);
  EXPECT_NE(ddl.find("NAME VARCHAR(80)"), std::string::npos);
}

TEST(DdlWriterTest, RoundTripSimpleSchema) {
  const char* ddl = R"(
    CREATE TABLE A (X INT PRIMARY KEY, Y VARCHAR(10));
    CREATE TABLE B (Z INT REFERENCES A(X), W DATE);
  )";
  auto original = ParseDdl(ddl, "S");
  ASSERT_TRUE(original.ok());
  auto round_tripped = ParseDdl(WriteDdl(*original), "S");
  ASSERT_TRUE(round_tripped.ok()) << round_tripped.status().ToString();
  ExpectSchemaEqual(*original, *round_tripped);
}

TEST(DdlWriterTest, RoundTripAllOc3Schemas) {
  for (const Schema& schema :
       {datasets::LoadOracleSchema(), datasets::LoadMySqlSchema(),
        datasets::LoadHanaSchema(), datasets::LoadFormulaOneSchema()}) {
    auto round_tripped = ParseDdl(WriteDdl(schema), schema.name());
    ASSERT_TRUE(round_tripped.ok())
        << schema.name() << ": " << round_tripped.status().ToString();
    ExpectSchemaEqual(schema, *round_tripped);
  }
}

TEST(DdlWriterTest, FallsBackToNormalizedTypeName) {
  Table t;
  t.name = "T";
  Attribute a;
  a.name = "X";
  a.table_name = "T";
  a.type = DataType::kInteger;  // No raw_type recorded.
  t.attributes.push_back(a);
  EXPECT_NE(WriteTableDdl(t).find("X INTEGER"), std::string::npos);
}

TEST(DdlWriterTest, EmptySchemaRendersHeaderOnly) {
  Schema s("EMPTY");
  const std::string ddl = WriteDdl(s);
  EXPECT_NE(ddl.find("-- Schema: EMPTY"), std::string::npos);
  EXPECT_EQ(ddl.find("CREATE TABLE"), std::string::npos);
}

}  // namespace
}  // namespace colscope::schema
