#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "eval/matching_metrics.h"
#include "matching/active_learning.h"
#include "scoping/signatures.h"

namespace colscope::matching {
namespace {

using LabeledPair = ThresholdCalibrator::LabeledPair;

schema::ElementRef Ref(int s, int i) { return schema::ElementRef{s, 0, i}; }

LabeledPair Make(double score, bool match) {
  LabeledPair l;
  l.score = score;
  l.is_match = match;
  return l;
}

// --- BestF1Threshold -----------------------------------------------------------

TEST(BestF1ThresholdTest, SeparableLabels) {
  // Matches at {0.8, 0.9}, non-matches at {0.1, 0.2}: any threshold in
  // (0.2, 0.8) is perfect; the midpoint 0.5 is returned.
  const std::vector<LabeledPair> labeled = {
      Make(0.1, false), Make(0.2, false), Make(0.8, true), Make(0.9, true)};
  EXPECT_DOUBLE_EQ(BestF1Threshold(labeled), 0.5);
}

TEST(BestF1ThresholdTest, OverlappingLabels) {
  // One low-score match forces a trade-off; the F1-optimal cut keeps the
  // two high matches and drops the stray (threshold between 0.3 and 0.6).
  const std::vector<LabeledPair> labeled = {
      Make(0.3, true),  Make(0.35, false), Make(0.4, false),
      Make(0.45, false), Make(0.6, true),  Make(0.7, true)};
  const double threshold = BestF1Threshold(labeled);
  EXPECT_GT(threshold, 0.45);
  EXPECT_LT(threshold, 0.6);
}

TEST(BestF1ThresholdTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(BestF1Threshold({}), 0.5);
  // All negatives: threshold above every score (predict nothing).
  EXPECT_GT(BestF1Threshold({Make(0.4, false), Make(0.6, false)}), 0.6);
  // All positives: threshold at/below the lowest score.
  EXPECT_LE(BestF1Threshold({Make(0.4, true), Make(0.6, true)}), 0.4);
}

// --- Calibration over a synthetic matrix ------------------------------------------

class CalibratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 60 pairs: scores of true matches ~ U(0.55, 0.95), non-matches ~
    // U(0.05, 0.45) with a handful of overlapping distractors.
    int id = 0;
    for (int i = 0; i < 24; ++i) {
      const double score = 0.55 + 0.4 * (i / 24.0);
      const auto pair = MakePair(Ref(0, id), Ref(1, id));
      ++id;
      matrix_.Set(pair, score);
      truth_.insert(pair);
    }
    for (int i = 0; i < 30; ++i) {
      const double score = 0.05 + 0.4 * (i / 30.0);
      matrix_.Set(MakePair(Ref(0, id), Ref(1, id)), score);
      ++id;
    }
    for (int i = 0; i < 3; ++i) {  // Distractors on the wrong side.
      const auto pair = MakePair(Ref(0, id), Ref(1, id));
      ++id;
      matrix_.Set(pair, 0.48 + 0.01 * i);
      truth_.insert(pair);
    }
    for (int i = 0; i < 3; ++i) {
      matrix_.Set(MakePair(Ref(0, id), Ref(1, id)), 0.52 + 0.01 * i);
      ++id;
    }
    oracle_ = [this](const ElementPair& pair) {
      return truth_.count(pair) > 0;
    };
  }

  double F1At(double threshold) const {
    size_t predicted = 0, true_pos = 0;
    for (const auto& [pair, score] : matrix_.scores()) {
      if (score >= threshold) {
        ++predicted;
        true_pos += truth_.count(pair);
      }
    }
    if (predicted == 0 || truth_.empty()) return 0.0;
    const double p = static_cast<double>(true_pos) / predicted;
    const double r = static_cast<double>(true_pos) / truth_.size();
    return (p + r) == 0.0 ? 0.0 : 2 * p * r / (p + r);
  }

  SimilarityMatrix matrix_;
  std::set<ElementPair> truth_;
  ThresholdCalibrator::Oracle oracle_;
};

TEST_F(CalibratorTest, UncertaintySamplingFindsGoodThreshold) {
  ThresholdCalibrator::Options options;
  options.budget = 15;
  const auto calibration =
      ThresholdCalibrator(options).Calibrate(matrix_, oracle_);
  EXPECT_EQ(calibration.queried.size(), 15u);
  // Within 95% of the best achievable F1 on the full matrix.
  double best_f1 = 0.0;
  for (const auto& [pair, score] : matrix_.scores()) {
    best_f1 = std::max(best_f1, F1At(score));
  }
  EXPECT_GE(F1At(calibration.threshold), 0.95 * best_f1);
}

TEST_F(CalibratorTest, UncertaintyQueriesConcentrateNearBoundary) {
  ThresholdCalibrator::Options options;
  options.budget = 12;
  const auto calibration =
      ThresholdCalibrator(options).Calibrate(matrix_, oracle_);
  // Most queried pairs sit in the ambiguous band, not the extremes.
  size_t near_boundary = 0;
  for (const auto& labeled : calibration.queried) {
    near_boundary += (labeled.score > 0.3 && labeled.score < 0.7);
  }
  EXPECT_GE(near_boundary * 10, calibration.queried.size() * 7);
}

TEST_F(CalibratorTest, UncertaintyBeatsRandomOnAverage) {
  ThresholdCalibrator::Options uncertainty;
  uncertainty.budget = 10;
  const double f1_uncertainty = F1At(
      ThresholdCalibrator(uncertainty).Calibrate(matrix_, oracle_).threshold);

  double f1_random_sum = 0.0;
  const int trials = 7;
  for (int t = 0; t < trials; ++t) {
    ThresholdCalibrator::Options random;
    random.strategy = ThresholdCalibrator::Strategy::kRandom;
    random.budget = 10;
    random.seed = 1000 + t;
    f1_random_sum += F1At(
        ThresholdCalibrator(random).Calibrate(matrix_, oracle_).threshold);
  }
  EXPECT_GE(f1_uncertainty, f1_random_sum / trials - 1e-9);
}

TEST_F(CalibratorTest, ZeroBudgetKeepsInitialThreshold) {
  ThresholdCalibrator::Options options;
  options.budget = 0;
  options.initial_threshold = 0.42;
  const auto calibration =
      ThresholdCalibrator(options).Calibrate(matrix_, oracle_);
  EXPECT_DOUBLE_EQ(calibration.threshold, 0.42);
  EXPECT_TRUE(calibration.queried.empty());
}

TEST_F(CalibratorTest, BudgetClampsToPoolSize) {
  ThresholdCalibrator::Options options;
  options.budget = 10000;
  const auto calibration =
      ThresholdCalibrator(options).Calibrate(matrix_, oracle_);
  EXPECT_EQ(calibration.queried.size(), matrix_.size());
}

// --- End to end on the toy scenario -----------------------------------------------

TEST(CalibratorEndToEndTest, CalibratedSimBeatsDefaultGuess) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> all(signatures.size(), true);
  const CosineScorer cosine;
  const auto matrix = BuildSimilarityMatrix(signatures, all, cosine);

  ThresholdCalibrator::Options options;
  options.budget = 25;
  const auto calibration = ThresholdCalibrator(options).Calibrate(
      matrix, [&](const ElementPair& pair) {
        return scenario.truth.ContainsPair(pair.first, pair.second);
      });

  const size_t cartesian = scenario.set.TableCartesianSize() +
                           scenario.set.AttributeCartesianSize();
  const auto calibrated = eval::EvaluateMatching(
      matrix.SelectThreshold(calibration.threshold), scenario.truth,
      cartesian);
  const auto guessed = eval::EvaluateMatching(
      matrix.SelectThreshold(0.9), scenario.truth, cartesian);  // Too strict.
  EXPECT_GE(calibrated.F1(), guessed.F1());
  EXPECT_GT(calibrated.F1(), 0.3);
}

}  // namespace
}  // namespace colscope::matching
