#include <gtest/gtest.h>

#include "datasets/instances.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/similarity_matrix.h"
#include "schema/ddl_parser.h"
#include "scoping/signatures.h"

namespace colscope::matching {
namespace {

schema::ElementRef Ref(int s, int t, int a = -1) {
  return schema::ElementRef{s, t, a};
}

// --- SimilarityMatrix container + selection strategies ----------------------

class MatrixFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two schemas: schema 0 elements A0, A1; schema 1 elements B0, B1.
    a0_ = Ref(0, 0, 0);
    a1_ = Ref(0, 0, 1);
    b0_ = Ref(1, 0, 0);
    b1_ = Ref(1, 0, 1);
    matrix_.Set(MakePair(a0_, b0_), 0.9);
    matrix_.Set(MakePair(a0_, b1_), 0.4);
    matrix_.Set(MakePair(a1_, b0_), 0.7);
    matrix_.Set(MakePair(a1_, b1_), 0.6);
  }
  schema::ElementRef a0_, a1_, b0_, b1_;
  SimilarityMatrix matrix_;
};

TEST_F(MatrixFixture, GetAndContains) {
  EXPECT_DOUBLE_EQ(matrix_.Get(MakePair(a0_, b0_)), 0.9);
  EXPECT_DOUBLE_EQ(matrix_.Get(MakePair(a0_, Ref(1, 5, 5))), 0.0);
  EXPECT_TRUE(matrix_.Contains(MakePair(b0_, a0_)));  // Order-insensitive.
  EXPECT_EQ(matrix_.size(), 4u);
}

TEST_F(MatrixFixture, SelectThreshold) {
  const auto selected = matrix_.SelectThreshold(0.65);
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_TRUE(selected.count(MakePair(a0_, b0_)));
  EXPECT_TRUE(selected.count(MakePair(a1_, b0_)));
}

TEST_F(MatrixFixture, SelectTopOne) {
  // Per-element best partners: a0->b0 (.9), a1->b0 (.7), b0->a0 (.9),
  // b1->a1 (.6). Union: {a0b0, a1b0, a1b1}.
  const auto selected = matrix_.SelectTopK(1);
  EXPECT_TRUE(selected.count(MakePair(a0_, b0_)));
  EXPECT_TRUE(selected.count(MakePair(a1_, b0_)));
  EXPECT_TRUE(selected.count(MakePair(a1_, b1_)));
  EXPECT_FALSE(selected.count(MakePair(a0_, b1_)));
}

TEST_F(MatrixFixture, SelectReciprocalBest) {
  // Only a0<->b0 is mutually best; a1's best b0 prefers a0, b1's best a1
  // prefers b0.
  const auto selected = matrix_.SelectReciprocalBest();
  EXPECT_EQ(selected.size(), 1u);
  EXPECT_TRUE(selected.count(MakePair(a0_, b0_)));
}

TEST_F(MatrixFixture, SelectGreedyOneToOne) {
  // Greedy: a0-b0 (.9) first, then a1-b1 (.6) since b0/a0 are taken.
  const auto selected = matrix_.SelectGreedyOneToOne();
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_TRUE(selected.count(MakePair(a0_, b0_)));
  EXPECT_TRUE(selected.count(MakePair(a1_, b1_)));
  // With a floor above 0.6 the second pair disappears.
  EXPECT_EQ(matrix_.SelectGreedyOneToOne(0.65).size(), 1u);
}

// --- Aggregation -------------------------------------------------------------

TEST(AggregationTest, MaxAverageWeighted) {
  const auto p = MakePair(Ref(0, 0, 0), Ref(1, 0, 0));
  const auto q = MakePair(Ref(0, 0, 1), Ref(1, 0, 1));
  SimilarityMatrix m1, m2;
  m1.Set(p, 0.8);
  m2.Set(p, 0.4);
  m2.Set(q, 0.6);  // Missing from m1 -> counts as 0 there.

  const auto max =
      AggregateMatrices({&m1, &m2}, Aggregation::kMax);
  EXPECT_DOUBLE_EQ(max.Get(p), 0.8);
  EXPECT_DOUBLE_EQ(max.Get(q), 0.6);

  const auto avg = AggregateMatrices({&m1, &m2}, Aggregation::kAverage);
  EXPECT_DOUBLE_EQ(avg.Get(p), 0.6);
  EXPECT_DOUBLE_EQ(avg.Get(q), 0.3);

  const auto weighted = AggregateMatrices({&m1, &m2},
                                          Aggregation::kWeighted, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(weighted.Get(p), (3.0 * 0.8 + 0.4) / 4.0);
}

// --- Scorers over real signatures ------------------------------------------------

class ScorerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    datasets::AttachSyntheticSamples(scenario_.set, 1);
    schema::SerializeOptions options;
    options.include_instance_samples = true;
    signatures_ =
        scoping::BuildSignatures(scenario_.set, encoder_, options);
    all_.assign(signatures_.size(), true);
  }

  int RowOf(const char* schema, const char* path) {
    auto ref = scenario_.set.Resolve(schema, path);
    EXPECT_TRUE(ref.ok());
    return scenario_.set.IndexOf(*ref);
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> all_;
};

TEST_F(ScorerFixture, CosineScorerInUnitRange) {
  CosineScorer scorer;
  const double s = scorer.Score(signatures_, RowOf("S1", "CLIENT.CID"),
                                RowOf("S2", "CUSTOMER.CID"));
  EXPECT_GT(s, 0.5);
  EXPECT_LE(s, 1.0);
}

TEST_F(ScorerFixture, NameScorerIdenticalNamesScoreOne) {
  NameScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(signatures_, RowOf("S1", "CLIENT.CID"),
                                RowOf("S2", "CUSTOMER.CID")),
                   1.0);
  EXPECT_LT(scorer.Score(signatures_, RowOf("S1", "CLIENT.NAME"),
                         RowOf("S2", "CUSTOMER.DOB")),
            0.5);
}

TEST_F(ScorerFixture, InstanceScorerSharedPoolsOverlap) {
  InstanceScorer scorer;
  // CID columns draw from the shared id pool in both schemas; DOB draws
  // from dates.
  const double id_pair = scorer.Score(signatures_, RowOf("S1", "CLIENT.CID"),
                                      RowOf("S2", "CUSTOMER.CID"));
  const double mixed = scorer.Score(signatures_, RowOf("S1", "CLIENT.CID"),
                                    RowOf("S2", "CUSTOMER.DOB"));
  EXPECT_GE(id_pair, mixed);
}

TEST_F(ScorerFixture, InstanceScorerZeroWithoutSamples) {
  const auto metadata_only =
      scoping::BuildSignatures(scenario_.set, encoder_);
  InstanceScorer scorer;
  EXPECT_DOUBLE_EQ(scorer.Score(metadata_only, RowOf("S1", "CLIENT.CID"),
                                RowOf("S2", "CUSTOMER.CID")),
                   0.0);
}

// --- CompositeMatcher end to end ----------------------------------------------------

TEST_F(ScorerFixture, CompositeMatcherFindsTruePairs) {
  CosineScorer cosine;
  NameScorer name;
  CompositeMatcher::Options options;
  options.aggregation = Aggregation::kAverage;
  options.selection = CompositeMatcher::Selection::kThreshold;
  options.threshold = 0.7;
  CompositeMatcher composite({&cosine, &name}, options);
  EXPECT_EQ(composite.name(), "COMPOSITE(cosine+name)");
  const auto pairs = composite.Match(signatures_, all_);
  size_t true_pairs = 0;
  for (const auto& [a, b] : pairs) {
    true_pairs += scenario_.truth.ContainsPair(a, b);
  }
  EXPECT_GT(true_pairs, 3u);
}

TEST_F(ScorerFixture, OneToOneSelectionIsInjective) {
  CosineScorer cosine;
  CompositeMatcher::Options options;
  options.selection = CompositeMatcher::Selection::kOneToOne;
  options.threshold = 0.3;
  CompositeMatcher composite({&cosine}, options);
  const auto pairs = composite.Match(signatures_, all_);
  std::set<schema::ElementRef> seen;
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
  }
}

TEST_F(ScorerFixture, ReciprocalBestIsSubsetOfTopOne) {
  CosineScorer cosine;
  const auto matrix = BuildSimilarityMatrix(signatures_, all_, cosine);
  const auto reciprocal = matrix.SelectReciprocalBest();
  const auto top1 = matrix.SelectTopK(1);
  for (const auto& pair : reciprocal) {
    EXPECT_TRUE(top1.count(pair));
  }
  EXPECT_LE(reciprocal.size(), top1.size());
}

TEST_F(ScorerFixture, MatrixRespectsMask) {
  CosineScorer cosine;
  std::vector<bool> none(signatures_.size(), false);
  EXPECT_EQ(BuildSimilarityMatrix(signatures_, none, cosine).size(), 0u);
}

}  // namespace
}  // namespace colscope::matching
