// Tests for the extended matching substrate: silhouette-based self-tuned
// clustering (ALITE-style) and Similarity Flooding.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/toy.h"
#include "schema/ddl_parser.h"
#include "embed/hashed_encoder.h"
#include "matching/cluster_matcher.h"
#include "matching/silhouette.h"
#include "matching/similarity_flooding.h"
#include "scoping/signatures.h"

namespace colscope::matching {
namespace {

using linalg::Matrix;

// --- Silhouette -------------------------------------------------------------

Matrix TwoBlobs(size_t per_blob, double separation, uint64_t seed) {
  Rng rng(seed);
  Matrix m(2 * per_blob, 2);
  for (size_t i = 0; i < per_blob; ++i) {
    m(i, 0) = 0.1 * rng.NextGaussian();
    m(i, 1) = 0.1 * rng.NextGaussian();
    m(per_blob + i, 0) = separation + 0.1 * rng.NextGaussian();
    m(per_blob + i, 1) = separation + 0.1 * rng.NextGaussian();
  }
  return m;
}

TEST(SilhouetteTest, PerfectClusteringScoresHigh) {
  Matrix m = TwoBlobs(10, 10.0, 1);
  std::vector<size_t> good(20, 0);
  for (size_t i = 10; i < 20; ++i) good[i] = 1;
  EXPECT_GT(MeanSilhouette(m, good), 0.9);
}

TEST(SilhouetteTest, ScrambledClusteringScoresLow) {
  Matrix m = TwoBlobs(10, 10.0, 2);
  std::vector<size_t> bad(20);
  for (size_t i = 0; i < 20; ++i) bad[i] = i % 2;  // Mixes the blobs.
  EXPECT_LT(MeanSilhouette(m, bad), 0.1);
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  Matrix m = TwoBlobs(5, 4.0, 3);
  EXPECT_DOUBLE_EQ(MeanSilhouette(m, std::vector<size_t>(10, 0)), 0.0);
}

TEST(SilhouetteTest, TinyInputs) {
  EXPECT_DOUBLE_EQ(MeanSilhouette(Matrix(), {}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSilhouette(Matrix(1, 2, 0.0), {0}), 0.0);
}

TEST(SilhouetteTest, BestKFindsTwoBlobs) {
  Matrix m = TwoBlobs(12, 10.0, 4);
  EXPECT_EQ(SilhouetteBestK(m, 2, 8), 2u);
}

TEST(SilhouetteTest, BestKFindsFourBlobs) {
  Rng rng(5);
  Matrix m(40, 2);
  const double centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  for (size_t i = 0; i < 40; ++i) {
    m(i, 0) = centers[i % 4][0] + 0.1 * rng.NextGaussian();
    m(i, 1) = centers[i % 4][1] + 0.1 * rng.NextGaussian();
  }
  EXPECT_EQ(SilhouetteBestK(m, 2, 8), 4u);
}

TEST(AutoClusterMatcherTest, RunsEndToEnd) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> all(signatures.size(), true);
  ClusterMatcher auto_k(0);
  EXPECT_EQ(auto_k.name(), "CLUSTER(auto)");
  const auto pairs = auto_k.Match(signatures, all);
  EXPECT_FALSE(pairs.empty());
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.schema, b.schema);
    EXPECT_EQ(a.is_table(), b.is_table());
  }
}

// --- Similarity Flooding ------------------------------------------------------

class SimilarityFloodingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    all_.assign(signatures_.size(), true);
  }

  std::map<ElementPair, double> FloodScoresFor(
      const SimilarityFloodingMatcher& sf, int a, int b) {
    return sf.FloodScores(signatures_, all_, a, b);
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> all_;
};

TEST_F(SimilarityFloodingTest, IdenticalNamesBeatDissimilarOnes) {
  // S1.CLIENT.CID pairs best with an identically-named CID column, not
  // with lexically unrelated S2 attributes.
  SimilarityFloodingMatcher sf;
  const auto scores = FloodScoresFor(sf, 0, 1);
  auto cid_a = scenario_.set.Resolve("S1", "CLIENT.CID");
  auto cid_b = scenario_.set.Resolve("S2", "CUSTOMER.CID");
  ASSERT_TRUE(cid_a.ok() && cid_b.ok());
  const auto cid_pair = scores.find(MakePair(*cid_a, *cid_b));
  ASSERT_NE(cid_pair, scores.end());
  EXPECT_GT(cid_pair->second, 0.3);
  for (const char* other : {"CUSTOMER.DOB", "CUSTOMER.FIRST_NAME",
                            "SHIPMENTS.DELIVERY_TIME"}) {
    auto ref = scenario_.set.Resolve("S2", other);
    ASSERT_TRUE(ref.ok());
    const auto it = scores.find(MakePair(*cid_a, *ref));
    ASSERT_NE(it, scores.end()) << other;
    EXPECT_GT(cid_pair->second, it->second) << other;
  }
}

TEST_F(SimilarityFloodingTest, ScoresNormalizedToUnitMax) {
  SimilarityFloodingMatcher sf;
  const auto scores = FloodScoresFor(sf, 0, 2);
  ASSERT_FALSE(scores.empty());
  double max_score = 0.0;
  for (const auto& [pair, score] : scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0 + 1e-9);
    max_score = std::max(max_score, score);
  }
  EXPECT_NEAR(max_score, 1.0, 1e-9);
}

TEST_F(SimilarityFloodingTest, MatchFindsTrueLinkages) {
  SimilarityFloodingMatcher::Options options;
  options.threshold = 0.7;
  SimilarityFloodingMatcher sf(options);
  const auto pairs = sf.Match(signatures_, all_);
  size_t true_pairs = 0;
  for (const auto& [a, b] : pairs) {
    true_pairs += scenario_.truth.ContainsPair(a, b);
  }
  EXPECT_GT(true_pairs, 2u);
}

TEST(SimilarityFloodingStructureTest, SharedColumnsReinforceTablePairs) {
  // Two candidate target tables in the SAME pair graph: T2 shares both
  // column names with T1; T3 shares none. Flooding must rank T1-T2 above
  // T1-T3 (structural propagation through the shared columns).
  auto a = schema::ParseDdl("CREATE TABLE T1 (x INT, y INT);", "A");
  auto b = schema::ParseDdl(
      "CREATE TABLE T2 (x INT, y INT);"
      "CREATE TABLE T3 (zz1 VARCHAR(5), zz2 VARCHAR(5));",
      "B");
  ASSERT_TRUE(a.ok() && b.ok());
  schema::SchemaSet set({*a, *b});
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(set, encoder);
  const std::vector<bool> all(signatures.size(), true);

  SimilarityFloodingMatcher sf;
  const auto scores = sf.FloodScores(signatures, all, 0, 1);
  auto t1 = set.Resolve("A", "T1");
  auto t2 = set.Resolve("B", "T2");
  auto t3 = set.Resolve("B", "T3");
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  const auto good = scores.find(MakePair(*t1, *t2));
  const auto bad = scores.find(MakePair(*t1, *t3));
  ASSERT_NE(good, scores.end());
  ASSERT_NE(bad, scores.end());
  EXPECT_GT(good->second, bad->second);
}

TEST_F(SimilarityFloodingTest, RespectsActiveMask) {
  std::vector<bool> mask = all_;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_.refs[i].schema == 3) mask[i] = false;
  }
  SimilarityFloodingMatcher sf;
  for (const auto& [a, b] : sf.Match(signatures_, mask)) {
    EXPECT_NE(a.schema, 3);
    EXPECT_NE(b.schema, 3);
  }
}

TEST_F(SimilarityFloodingTest, EmptySchemaPairIsEmpty) {
  SimilarityFloodingMatcher sf;
  const std::vector<bool> none(signatures_.size(), false);
  EXPECT_TRUE(sf.FloodScores(signatures_, none, 0, 1).empty());
}

}  // namespace
}  // namespace colscope::matching
