// Tests of the observability layer: leveled logging with pluggable
// sinks, the lock-free metrics registry (counters, gauges, histograms),
// the injectable-clock span tracer, the ThreadPool metrics adapter, and
// the Debug-level retry logging of the exchange layer.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "exchange/exchange.h"
#include "exchange/transport.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/thread_pool_metrics.h"
#include "obs/trace.h"

namespace colscope {
namespace {

using obs::Counter;
using obs::ExponentialBuckets;
using obs::Gauge;
using obs::Histogram;
using obs::InMemorySink;
using obs::Logger;
using obs::LogLevel;
using obs::MetricsRegistry;
using obs::ParseLogLevel;
using obs::ScopedSpan;
using obs::SimulatedTraceClock;
using obs::Tracer;

/// Restores the global logger's level/fallback and detaches `sink` on
/// scope exit so logging tests cannot leak state into each other.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel level) : saved_level_(
      Logger::Global().level()) {
    Logger::Global().set_level(level);
    Logger::Global().set_stderr_fallback(false);
    Logger::Global().AddSink(&sink_);
  }
  ~ScopedLogCapture() {
    Logger::Global().RemoveSink(&sink_);
    Logger::Global().set_stderr_fallback(true);
    Logger::Global().set_level(saved_level_);
  }

  const InMemorySink& sink() const { return sink_; }

 private:
  LogLevel saved_level_;
  InMemorySink sink_;
};

// --- Logging -----------------------------------------------------------------

TEST(LogTest, ParseLogLevel) {
  EXPECT_EQ(*ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(*ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(*ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(*ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud").ok());
}

TEST(LogTest, RuntimeLevelFiltersStatements) {
  ScopedLogCapture capture(LogLevel::kWarn);
  COLSCOPE_LOG(Debug) << "too chatty";
  COLSCOPE_LOG(Info) << "still too chatty";
  COLSCOPE_LOG(Warn) << "warned";
  COLSCOPE_LOG(Error) << "failed";
  const std::vector<std::string> lines = capture.sink().lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("[warn"), std::string::npos);
  EXPECT_NE(lines[0].find("warned"), std::string::npos);
  EXPECT_NE(lines[1].find("[error"), std::string::npos);
  EXPECT_NE(lines[1].find("failed"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  ScopedLogCapture capture(LogLevel::kOff);
  COLSCOPE_LOG(Error) << "even errors";
  EXPECT_EQ(capture.sink().size(), 0u);
}

TEST(LogTest, MessageExpressionNotEvaluatedWhenFiltered) {
  ScopedLogCapture capture(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  COLSCOPE_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  COLSCOPE_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, FormatIncludesLevelFileAndLine) {
  ScopedLogCapture capture(LogLevel::kInfo);
  COLSCOPE_LOG(Info) << "x=" << 42;
  ASSERT_EQ(capture.sink().size(), 1u);
  const std::string line = capture.sink().lines()[0];
  EXPECT_NE(line.find("[info obs_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("x=42"), std::string::npos);
}

// --- Counters and gauges -----------------------------------------------------

TEST(MetricsTest, CounterBasics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, ConcurrentCounterIncrementsFromThreadPoolWorkers) {
  MetricsRegistry registry;
  obs::ThreadPoolMetrics observer(&registry, "pool");
  Counter& counter = registry.GetCounter("work.items");
  {
    ThreadPool pool(4, &observer);
    for (int task = 0; task < 64; ++task) {
      pool.Schedule([&counter] {
        for (int i = 0; i < 1000; ++i) counter.Increment();
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.value(), 64u * 1000u);
  // The adapter saw every Schedule and every completion.
  EXPECT_EQ(registry.GetCounter("pool.scheduled").value(), 64u);
  const auto tasks = registry
                         .GetHistogram("pool.task_us",
                                       ExponentialBuckets(1.0, 4.0, 12))
                         .TakeSnapshot();
  EXPECT_EQ(tasks.total_count, 64u);
}

TEST(MetricsTest, GaugeAddIsLosslessUnderContention) {
  Gauge gauge;
  {
    ThreadPool pool(4);
    for (int task = 0; task < 8; ++task) {
      pool.Schedule([&gauge] {
        for (int i = 0; i < 500; ++i) gauge.Add(1.0);
      });
    }
    pool.Wait();
  }
  EXPECT_DOUBLE_EQ(gauge.value(), 4000.0);
}

// --- Histograms --------------------------------------------------------------

TEST(MetricsTest, HistogramBucketAssignment) {
  Histogram histogram({1.0, 10.0, 100.0});
  for (double value : {0.5, 1.0, 5.0, 50.0, 1000.0}) {
    histogram.Observe(value);
  }
  const auto snapshot = histogram.TakeSnapshot();
  // Bounds are inclusive upper edges; 1000 overflows into +inf.
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(snapshot.counts[1], 1u);  // 5.0
  EXPECT_EQ(snapshot.counts[2], 1u);  // 50.0
  EXPECT_EQ(snapshot.counts[3], 1u);  // 1000.0
  EXPECT_EQ(snapshot.total_count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 1056.5);
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram histogram({10.0, 20.0, 30.0, 40.0});
  // 10 observations per decade bucket: uniform over (0, 40].
  for (int bucket = 0; bucket < 4; ++bucket) {
    for (int i = 0; i < 10; ++i) {
      histogram.Observe(10.0 * bucket + 5.0);
    }
  }
  const auto snapshot = histogram.TakeSnapshot();
  EXPECT_NEAR(snapshot.Quantile(0.25), 10.0, 1.0);
  EXPECT_NEAR(snapshot.Quantile(0.5), 20.0, 1.0);
  EXPECT_NEAR(snapshot.Quantile(0.75), 30.0, 1.0);
  EXPECT_LE(snapshot.Quantile(1.0), 40.0);
  // Quantiles of an empty histogram are defined (0) rather than UB.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).TakeSnapshot().Quantile(0.5), 0.0);
}

TEST(MetricsTest, ExponentialBuckets) {
  const std::vector<double> bounds = ExponentialBuckets(1.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 4.0);
  EXPECT_DOUBLE_EQ(bounds[2], 16.0);
  EXPECT_DOUBLE_EQ(bounds[3], 64.0);
}

// --- Registry and JSON -------------------------------------------------------

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits");
  Counter& b = registry.GetCounter("hits");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsTest, SnapshotIsSortedAndJsonIsDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("zebra").Increment(1);
  registry.GetCounter("aardvark").Increment(2);
  registry.GetGauge("mid").Set(1.5);
  registry.GetHistogram("lat", {1.0, 2.0}).Observe(1.5);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "aardvark");
  EXPECT_EQ(snapshot.counters[1].first, "zebra");

  const std::string json = obs::SnapshotToJsonString(snapshot);
  EXPECT_EQ(json, obs::SnapshotToJsonString(registry.Snapshot()));
  EXPECT_NE(json.find("\"counters\":{\"aardvark\":2,\"zebra\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"mid\":1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"lat\":"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  registry.GetCounter("n").Increment(5);
  registry.GetGauge("g").Set(2.0);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  registry.Reset();
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 0u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 0.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.total_count, 0u);
}

// --- Tracer ------------------------------------------------------------------

TEST(TraceTest, SpanNestingTimestampsContained) {
  SimulatedTraceClock clock(1.0);
  Tracer tracer(&clock);
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      inner.AddArg("items", 7);
    }
  }
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first; Chrome reconstructs nesting from
  // timestamp containment.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].first, "items");
  EXPECT_EQ(inner.args[0].second, 7);
}

TEST(TraceTest, SimulatedClockMakesTraceBytesReproducible) {
  auto record = [] {
    SimulatedTraceClock clock(2.0);
    Tracer tracer(&clock);
    {
      ScopedSpan a(&tracer, "phase.a");
      a.AddArg("n", 3);
      ScopedSpan b(&tracer, "phase.b");
    }
    { ScopedSpan c(&tracer, "phase.c"); }
    return tracer.ToChromeJson();
  };
  // Two identical runs must serialize to identical bytes — the property
  // the cli_obs_deterministic ctest asserts end to end.
  const std::string first = record();
  const std::string second = record();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"phase.a\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(first.find("\"args\":{\"n\":3}"), std::string::npos);
}

TEST(TraceTest, NullTracerSpansAreNoOps) {
  ScopedSpan span(nullptr, "ghost");
  span.AddArg("ignored", 1);  // Must not crash.
}

TEST(TraceTest, ClearDropsRecordedEvents) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  { ScopedSpan span(&tracer, "once"); }
  EXPECT_EQ(tracer.Events().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TraceTest, PerThreadBuffersCollectAllSpans) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Schedule([&tracer] { ScopedSpan span(&tracer, "task"); });
    }
    pool.Wait();
  }
  EXPECT_EQ(tracer.Events().size(), 32u);
}

// --- JSON escaping -----------------------------------------------------------

TEST(MetricsTest, JsonEscapesHostileMetricNames) {
  // Metric names come from schema-derived strings in some callers, so
  // quotes, backslashes, and control bytes must all survive
  // serialization as valid JSON.
  MetricsRegistry registry;
  registry.GetCounter("weird\"quote").Increment(1);
  registry.GetCounter("back\\slash").Increment(2);
  registry.GetGauge(std::string("ctl\x01" "char")).Set(3.0);
  const std::string json = obs::SnapshotToJsonString(registry.Snapshot());
  EXPECT_NE(json.find("\"weird\\\"quote\":1"), std::string::npos);
  EXPECT_NE(json.find("\"back\\\\slash\":2"), std::string::npos);
  EXPECT_NE(json.find("ctl\\u0001char"), std::string::npos);
  // No raw quote-breaking or control byte survives into the document.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(TraceTest, JsonEscapesHostileSpanAndArgNames) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  tracer.set_process_name("proc \"zero\"");
  {
    ScopedSpan span(&tracer, "span\"with\\newline\n");
    span.AddArg("arg\"key", 7);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"span\\\"with\\\\newline\\n\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\\\"key\":7"), std::string::npos);
  EXPECT_NE(json.find("\"proc \\\"zero\\\"\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// --- Metadata events and span ids --------------------------------------------

TEST(TraceTest, MetadataEventsNameProcessAndThreads) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  tracer.set_process_name("coordinator");
  tracer.NameThisThread("driver");
  { ScopedSpan span(&tracer, "phase"); }
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":0,\"args\":{\"name\":\"coordinator\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":0,\"args\":{\"name\":\"driver\"}}"),
            std::string::npos);
}

TEST(TraceTest, UnnamedThreadsGetDefaultLabels) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  { ScopedSpan span(&tracer, "main.work"); }
  std::thread([&tracer] { ScopedSpan span(&tracer, "side.work"); }).join();
  const std::vector<std::string> names = tracer.ThreadNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "main");
  EXPECT_EQ(names[1], "thread-1");
}

TEST(TraceTest, SpanIdsSerializedOnlyForDistributedTraces) {
  SimulatedTraceClock clock;
  Tracer tracer(&clock);
  { ScopedSpan span(&tracer, "solo"); }
  // Single-process traces (trace id 0) stay free of span id noise.
  EXPECT_EQ(tracer.ToChromeJson().find("span_id"), std::string::npos);

  tracer.set_trace_id(42);
  uint64_t parent_id = 0;
  {
    ScopedSpan parent(&tracer, "parent");
    parent_id = parent.id();
    EXPECT_NE(parent_id, 0u);
    ScopedSpan child(&tracer, "child");
    child.set_parent(parent_id);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":"), std::string::npos);
  EXPECT_NE(json.find(StrFormat("\"parent_span_id\":%llu",
                                static_cast<unsigned long long>(parent_id))),
            std::string::npos);
}

TEST(TraceTest, MergedTraceCoversEveryProcess) {
  auto merge = [] {
    obs::ProcessTrace coordinator;
    coordinator.pid = 0;
    coordinator.name = "coordinator";
    coordinator.trace_id = 99;
    coordinator.thread_names = {"main"};
    obs::TraceEvent rpc;
    rpc.name = "rpc.assign";
    rpc.ts_us = 1.0;
    rpc.dur_us = 4.0;
    rpc.span_id = 1;
    coordinator.events.push_back(rpc);

    obs::ProcessTrace worker;
    worker.pid = 1;
    worker.name = "worker.0";
    worker.trace_id = 99;
    worker.thread_names = {"assign", "assess"};
    obs::TraceEvent fit;
    fit.name = "worker.assign";
    fit.ts_us = 2.0;
    fit.dur_us = 1.0;
    fit.span_id = 1;
    fit.parent_span_id = 1;  // The coordinator's rpc.assign span.
    worker.events.push_back(fit);
    return obs::MergedTraceToChromeJson({coordinator, worker});
  };
  const std::string json = merge();
  // Identical inputs serialize byte-identically (the property the
  // distributed quorum harness compares across repeat runs).
  EXPECT_EQ(json, merge());
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":0,\"args\":{\"name\":\"coordinator\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":0,\"args\":{\"name\":\"worker.0\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":1,\"args\":{\"name\":\"assess\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker.assign\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":1"), std::string::npos);
  // One run-level trace id at the top of the document.
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos);
}

// --- Merged metrics ----------------------------------------------------------

TEST(MetricsTest, MergePrefixedNamespacesAndResorts) {
  MetricsRegistry coordinator;
  coordinator.GetCounter("net.bytes_sent.assign").Increment(10);
  coordinator.GetCounter("zebra").Increment(1);
  MetricsRegistry worker;
  worker.GetCounter("exchange.fetches").Increment(3);
  worker.GetGauge("queue.depth").Set(2.0);
  worker.GetHistogram("lat", {1.0}).Observe(0.5);

  obs::MetricsSnapshot merged = coordinator.Snapshot();
  obs::MergePrefixed(merged, "worker.0.", worker.Snapshot());

  ASSERT_EQ(merged.counters.size(), 3u);
  // Re-sorted by name so serialization stays canonical.
  EXPECT_EQ(merged.counters[0].first, "net.bytes_sent.assign");
  EXPECT_EQ(merged.counters[1].first, "worker.0.exchange.fetches");
  EXPECT_EQ(merged.counters[1].second, 3u);
  EXPECT_EQ(merged.counters[2].first, "zebra");
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].first, "worker.0.queue.depth");
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].first, "worker.0.lat");
  EXPECT_EQ(merged.histograms[0].second.total_count, 1u);
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RecordsInSequenceOrder) {
  obs::FlightRecorder recorder(8);
  recorder.Record("rpc", "assign worker=0 ok");
  recorder.Record("fetch", "get_model publisher=1 consumer=0 attempt=0 ok");
  recorder.Record("retry", "publisher=1 consumer=0 attempt=1 fault=drop");
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, "rpc");
  EXPECT_EQ(events[0].detail, "assign worker=0 ok");
  EXPECT_EQ(events[1].kind, "fetch");
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(recorder.total_recorded(), 3u);
}

TEST(FlightRecorderTest, RingKeepsOnlyTheNewestEvents) {
  obs::FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("rpc", StrFormat("event=%d", i));
  }
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().detail, "event=6");
  EXPECT_EQ(events.back().detail, "event=9");
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
}

TEST(FlightRecorderTest, TruncatesOversizedFields) {
  obs::FlightRecorder recorder(2);
  const std::string long_kind(100, 'k');
  const std::string long_detail(500, 'd');
  recorder.Record(long_kind, long_detail);
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind.size(), obs::FlightRecorder::kMaxKindBytes);
  EXPECT_EQ(events[0].detail.size(), obs::FlightRecorder::kMaxDetailBytes);
}

TEST(FlightRecorderTest, ClearRestartsSequenceNumbers) {
  obs::FlightRecorder recorder(4);
  recorder.Record("rpc", "before");
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.Record("rpc", "after");
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].detail, "after");
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearASlot) {
  obs::FlightRecorder recorder(16);
  {
    ThreadPool pool(4);
    for (int writer = 0; writer < 4; ++writer) {
      pool.Schedule([&recorder, writer] {
        for (int i = 0; i < 1000; ++i) {
          recorder.Record("rpc", StrFormat("writer=%d i=%d", writer, i));
          // Interleaved reads must only ever see fully published slots.
          for (const obs::FlightEvent& event : recorder.Snapshot()) {
            ASSERT_EQ(event.kind, "rpc");
            ASSERT_EQ(event.detail.rfind("writer=", 0), 0u);
          }
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(recorder.total_recorded(), 4000u);
  // Sequence numbers in a quiescent snapshot are strictly increasing.
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

// --- Exchange retry logging --------------------------------------------------

/// A transport whose fetches always fail as drops — every attempt burns
/// one retry without needing a published model.
class AlwaysDropTransport : public exchange::ModelTransport {
 public:
  Status Publish(int, std::string) override { return Status::Ok(); }
  exchange::FetchResponse Fetch(int, int, int) const override {
    exchange::FetchResponse response;
    response.status = Status::Unavailable("injected drop");
    response.latency_ms = 1.0;
    response.fault = FaultKind::kDrop;
    return response;
  }
};

TEST(ExchangeLoggingTest, EachRetryIsLoggedAtDebugLevel) {
  ScopedLogCapture capture(LogLevel::kDebug);
  AlwaysDropTransport transport;
  exchange::RetryPolicy policy;
  policy.max_attempts = 3;
  MetricsRegistry registry;
  const exchange::FetchOutcome outcome = exchange::FetchModelWithRetry(
      transport, /*publisher=*/1, /*consumer=*/0, policy,
      /*backoff_seed=*/7, &registry);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.attempts, 3);

  const std::vector<std::string> lines = capture.sink().lines();
  // One line per retry (attempts 1 and 2 back off; attempt 3 is final)
  // plus the terminal failure line.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("exchange retry: consumer=0 publisher=1 "
                          "attempt=1/3"),
            std::string::npos);
  EXPECT_NE(lines[0].find("fault=drop"), std::string::npos);
  EXPECT_NE(lines[0].find("backoff_ms="), std::string::npos);
  EXPECT_NE(lines[1].find("attempt=2/3"), std::string::npos);
  EXPECT_NE(lines[2].find("exchange fetch failed: consumer=0 publisher=1 "
                          "attempts=3"),
            std::string::npos);

  // The same fetch fed the exchange.* instruments.
  EXPECT_EQ(registry.GetCounter("exchange.retries").value(), 2u);
  EXPECT_EQ(registry.GetCounter("exchange.fetch_failures").value(), 1u);
  EXPECT_EQ(registry.GetCounter("exchange.faults.drop").value(), 3u);
}

TEST(ExchangeLoggingTest, RetriesSilentAboveDebugLevel) {
  ScopedLogCapture capture(LogLevel::kInfo);
  AlwaysDropTransport transport;
  exchange::RetryPolicy policy;
  policy.max_attempts = 3;
  exchange::FetchModelWithRetry(transport, 1, 0, policy, 7, nullptr);
  EXPECT_EQ(capture.sink().size(), 0u);
}

}  // namespace
}  // namespace colscope
