// Property-based (parameterized) test sweeps over hyperparameter grids
// and random instances: invariants that must hold for every value, not
// just hand-picked examples.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datasets/synthetic.h"
#include "embed/hashed_encoder.h"
#include "eval/curves.h"
#include "linalg/pca.h"
#include "linalg/stats.h"
#include "matching/sim.h"
#include "matching/string_matcher.h"
#include "scoping/collaborative.h"
#include "scoping/scoping.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

// --- ScopeByScores over the p grid ------------------------------------------

class ScopePortionProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScopePortionProperty, KeepCountIsRoundedPortion) {
  const double p = GetParam();
  Rng rng(1234);
  linalg::Vector scores(97);
  for (double& s : scores) s = rng.NextDouble();
  const auto keep = scoping::ScopeByScores(scores, p);
  size_t kept = 0;
  for (bool k : keep) kept += k;
  EXPECT_EQ(kept, static_cast<size_t>(std::llround(p * 97.0)));
}

TEST_P(ScopePortionProperty, KeptElementsHaveLowestScores) {
  const double p = GetParam();
  Rng rng(99);
  linalg::Vector scores(50);
  for (double& s : scores) s = rng.NextDouble();
  const auto keep = scoping::ScopeByScores(scores, p);
  double max_kept = -1.0, min_dropped = 2.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (keep[i]) {
      max_kept = std::max(max_kept, scores[i]);
    } else {
      min_dropped = std::min(min_dropped, scores[i]);
    }
  }
  if (max_kept >= 0.0 && min_dropped <= 1.0) {
    EXPECT_LE(max_kept, min_dropped);
  }
}

INSTANTIATE_TEST_SUITE_P(PortionGrid, ScopePortionProperty,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.99, 1.0));

// --- PCA over variance targets -----------------------------------------------

class PcaVarianceProperty : public ::testing::TestWithParam<double> {};

TEST_P(PcaVarianceProperty, ComponentsOrthonormalAndVarianceReached) {
  const double v = GetParam();
  Rng rng(7);
  linalg::Matrix x(40, 24);
  for (double& value : x.data()) value = rng.NextGaussian();
  auto model = linalg::PcaModel::FitWithVariance(x, v);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->total_explained_variance(), v - 1e-9);
  const auto& pc = model->components();
  for (size_t i = 0; i < pc.rows(); ++i) {
    for (size_t j = 0; j < pc.rows(); ++j) {
      EXPECT_NEAR(linalg::Dot(pc.Row(i), pc.Row(j)), i == j ? 1.0 : 0.0,
                  1e-8);
    }
  }
}

TEST_P(PcaVarianceProperty, ReconstructionErrorBoundedByResidualVariance) {
  const double v = GetParam();
  Rng rng(8);
  linalg::Matrix x(30, 16);
  for (double& value : x.data()) value = rng.NextGaussian();
  auto model = linalg::PcaModel::FitWithVariance(x, v);
  ASSERT_TRUE(model.ok());
  // Total reconstruction MSE mass equals the unexplained variance.
  const auto errors = model->ReconstructionErrors(x);
  double total_error = 0.0;
  for (double e : errors) total_error += e * 16.0;  // Undo per-dim mean.
  const auto mean = linalg::ColumnMean(x);
  const auto centered = linalg::CenterRows(x, mean);
  double total_variance = 0.0;
  for (double value : centered.data()) total_variance += value * value;
  const double unexplained = 1.0 - model->total_explained_variance();
  EXPECT_NEAR(total_error, unexplained * total_variance,
              1e-6 * total_variance + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(VarianceGrid, PcaVarianceProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.99,
                                           1.0));

// --- Collaborative scoping over the v grid ------------------------------------

class CollaborativeVarianceProperty : public ::testing::TestWithParam<double> {
 protected:
  static void SetUpTestSuite() {
    datasets::SyntheticOptions options;
    options.num_schemas = 3;
    options.private_per_schema = 6;
    scenario_ = new datasets::MatchingScenario(
        datasets::BuildSyntheticScenario(options));
    encoder_ = new embed::HashedLexiconEncoder();
    signatures_ = new scoping::SignatureSet(
        scoping::BuildSignatures(scenario_->set, *encoder_));
  }
  static void TearDownTestSuite() {
    delete signatures_;
    delete encoder_;
    delete scenario_;
    signatures_ = nullptr;
    encoder_ = nullptr;
    scenario_ = nullptr;
  }
  static datasets::MatchingScenario* scenario_;
  static embed::HashedLexiconEncoder* encoder_;
  static scoping::SignatureSet* signatures_;
};

datasets::MatchingScenario* CollaborativeVarianceProperty::scenario_ = nullptr;
embed::HashedLexiconEncoder* CollaborativeVarianceProperty::encoder_ = nullptr;
scoping::SignatureSet* CollaborativeVarianceProperty::signatures_ = nullptr;

TEST_P(CollaborativeVarianceProperty, MaskMatchesDefinitionFour) {
  const double v = GetParam();
  auto models = scoping::FitLocalModels(*signatures_, 3, v);
  ASSERT_TRUE(models.ok());
  const auto keep = scoping::AssessAll(*signatures_, 3, *models);
  // Recompute Definition 4 for every element independently.
  for (size_t i = 0; i < signatures_->size(); ++i) {
    const auto& ref = signatures_->refs[i];
    bool expected = false;
    for (const auto& model : *models) {
      if (model.schema_index() == ref.schema) continue;
      if (model.ReconstructionError(signatures_->signatures.Row(i)) <=
          model.linkability_range()) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(keep[i], expected) << signatures_->texts[i] << " at v=" << v;
  }
}

TEST_P(CollaborativeVarianceProperty, LocalRangeIsMaxTrainingError) {
  const double v = GetParam();
  auto models = scoping::FitLocalModels(*signatures_, 3, v);
  ASSERT_TRUE(models.ok());
  for (const auto& model : *models) {
    const auto local =
        signatures_->SchemaSignatures(model.schema_index());
    const auto errors = model.ReconstructionErrors(local);
    double max_error = 0.0;
    for (double e : errors) max_error = std::max(max_error, e);
    EXPECT_NEAR(model.linkability_range(), max_error, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(VGrid, CollaborativeVarianceProperty,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6, 0.8, 0.95));

// --- SIM matcher threshold monotonicity -----------------------------------------

class SimThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(SimThresholdProperty, StricterThresholdIsSubset) {
  const double t = GetParam();
  datasets::SyntheticOptions options;
  options.num_schemas = 2;
  auto scenario = datasets::BuildSyntheticScenario(options);
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const std::vector<bool> all(signatures.size(), true);
  const auto loose = matching::SimMatcher(t).Match(signatures, all);
  const auto strict = matching::SimMatcher(t + 0.1).Match(signatures, all);
  EXPECT_LE(strict.size(), loose.size());
  for (const auto& pair : strict) EXPECT_TRUE(loose.count(pair));
}

INSTANTIATE_TEST_SUITE_P(ThresholdGrid, SimThresholdProperty,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

// --- Encoder determinism over seeds and dims -------------------------------------

class EncoderSeedProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(EncoderSeedProperty, UnitNormAndDeterminism) {
  embed::HashedEncoderOptions options;
  options.seed = std::get<0>(GetParam());
  options.dims = std::get<1>(GetParam());
  embed::HashedLexiconEncoder a(options), b(options);
  for (const char* text :
       {"CID CLIENT NUMBER PRIMARY KEY", "CLIENT [CID, NAME]",
        "lap_times [race_id, driver_id, lap]"}) {
    const auto va = a.Encode(text);
    EXPECT_EQ(va, b.Encode(text));
    EXPECT_EQ(va.size(), options.dims);
    EXPECT_NEAR(linalg::Norm(va), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDims, EncoderSeedProperty,
    ::testing::Combine(::testing::Values(1u, 42u, 0xdeadbeefu),
                       ::testing::Values(size_t{64}, size_t{256},
                                         size_t{768})));

// --- ROC/PR construction over random label/score draws -----------------------------

class CurveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CurveProperty, RocIsMonotoneWithinUnitBox) {
  Rng rng(GetParam());
  std::vector<bool> labels(120);
  std::vector<double> scores(120);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.NextDouble() < 0.4;
    scores[i] = rng.NextDouble();
  }
  const auto roc = eval::RocFromScores(labels, scores);
  double prev_x = -1.0, prev_y = -1.0;
  for (const auto& p : roc) {
    EXPECT_GE(p.x, prev_x - 1e-12);
    EXPECT_GE(p.y, prev_y - 1e-12);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0 + 1e-12);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0 + 1e-12);
    prev_x = p.x;
    prev_y = p.y;
  }
  EXPECT_DOUBLE_EQ(roc.back().x, 1.0);
  EXPECT_DOUBLE_EQ(roc.back().y, 1.0);
  const double auc = eval::TrapezoidAuc(roc);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0 + 1e-12);
}

TEST_P(CurveProperty, AveragePrecisionAtLeastBaseRateForPerfectScores) {
  Rng rng(GetParam() ^ 0xabc);
  std::vector<bool> labels(80);
  std::vector<double> scores(80);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.NextDouble() < 0.3;
    scores[i] = labels[i] ? 0.0 : 1.0;  // Perfect separation.
  }
  size_t positives = 0;
  for (bool l : labels) positives += l;
  if (positives > 0) {
    EXPECT_NEAR(eval::AveragePrecisionFromScores(labels, scores), 1.0,
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveProperty,
                         ::testing::Values(3u, 17u, 255u, 9001u));

}  // namespace
}  // namespace colscope
