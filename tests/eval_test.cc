#include <gtest/gtest.h>

#include <cmath>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "eval/curves.h"
#include "eval/matching_metrics.h"
#include "eval/metrics.h"
#include "eval/sweep.h"
#include "outlier/pca_oda.h"

namespace colscope::eval {
namespace {

// --- Confusion ------------------------------------------------------------

TEST(ConfusionTest, BasicMetrics) {
  // labels:      1 1 1 0 0
  // predictions: 1 1 0 1 0
  Confusion c = Evaluate({true, true, true, false, false},
                         {true, true, false, true, false});
  EXPECT_EQ(c.true_positive, 2u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.true_negative, 1u);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(c.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.F1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRate(), 0.5);
}

TEST(ConfusionTest, DegenerateCasesAreZeroNotNan) {
  Confusion none = Evaluate({}, {});
  EXPECT_DOUBLE_EQ(none.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(none.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(none.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(none.F1(), 0.0);
  Confusion no_pred = Evaluate({true, false}, {false, false});
  EXPECT_DOUBLE_EQ(no_pred.Precision(), 0.0);
  Confusion no_pos = Evaluate({false, false}, {true, false});
  EXPECT_DOUBLE_EQ(no_pos.Recall(), 0.0);
}

// --- AUC / curves ------------------------------------------------------------

TEST(AucTest, UnitSquareDiagonalIsHalf) {
  EXPECT_DOUBLE_EQ(TrapezoidAuc({{0, 0}, {1, 1}}), 0.5);
}

TEST(AucTest, UnsortedPointsAreSorted) {
  EXPECT_DOUBLE_EQ(TrapezoidAuc({{1, 1}, {0, 0}, {0.5, 0.5}}), 0.5);
}

TEST(AucTest, MeanOverSweepIsAverageHeight) {
  EXPECT_DOUBLE_EQ(MeanOverSweep({{0, 0.2}, {1, 0.8}}), 0.5);
  // Zero span degrades to the plain mean.
  EXPECT_DOUBLE_EQ(MeanOverSweep({{0.5, 0.2}, {0.5, 0.8}}), 0.5);
  EXPECT_DOUBLE_EQ(MeanOverSweep({}), 0.0);
  EXPECT_DOUBLE_EQ(MeanOverSweep({{0.3, 0.7}}), 0.7);
}

TEST(RocTest, PerfectScoresGiveUnitAuc) {
  // Linkable (positive) elements have the LOWEST scores.
  const std::vector<bool> labels{true, true, false, false};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  Curve roc = RocFromScores(labels, scores);
  EXPECT_NEAR(TrapezoidAuc(roc), 1.0, 1e-12);
}

TEST(RocTest, ReversedScoresGiveZeroAuc) {
  const std::vector<bool> labels{false, false, true, true};
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  EXPECT_NEAR(TrapezoidAuc(RocFromScores(labels, scores)), 0.0, 1e-12);
}

TEST(RocTest, RandomScoresNearHalf) {
  std::vector<bool> labels;
  std::vector<double> scores;
  for (int i = 0; i < 2000; ++i) {
    labels.push_back(i % 2 == 0);
    scores.push_back(static_cast<double>((i * 2654435761u) % 1000));
  }
  EXPECT_NEAR(TrapezoidAuc(RocFromScores(labels, scores)), 0.5, 0.05);
}

TEST(RocTest, TiedScoresCollapseToOnePoint) {
  const std::vector<bool> labels{true, false, true, false};
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  Curve roc = RocFromScores(labels, scores);
  // (0,0) then a single point at (1,1).
  ASSERT_EQ(roc.size(), 2u);
  EXPECT_DOUBLE_EQ(roc[1].x, 1.0);
  EXPECT_DOUBLE_EQ(roc[1].y, 1.0);
}

TEST(SmoothRocTest, EnforcesMonotonicityAndFullDomain) {
  // A fluctuating sweep-style ROC that stops at FPR = 0.6.
  Curve roc{{0.0, 0.0}, {0.1, 0.5}, {0.2, 0.4}, {0.4, 0.7}, {0.6, 0.6}};
  Curve smoothed = SmoothRocCurve(roc);
  double prev = -1.0;
  for (const CurvePoint& p : smoothed) {
    EXPECT_GE(p.y, prev - 1e-12);
    prev = p.y;
  }
  EXPECT_DOUBLE_EQ(smoothed.back().x, 1.0);
  // The extension credits the final TPR across the missing FPR range, so
  // AUC-ROC' exceeds the raw truncated AUC (the paper's motivation).
  EXPECT_GT(TrapezoidAuc(smoothed), TrapezoidAuc(roc));
}

TEST(PrTest, AveragePrecisionPerfectAndWorst) {
  const std::vector<bool> labels{true, true, false, false};
  EXPECT_NEAR(AveragePrecisionFromScores(labels, {0.1, 0.2, 0.8, 0.9}), 1.0,
              1e-12);
  // Worst case: positives ranked last. AP = (0.5)*(1/3)+(0.5)*(2/4).
  const double worst =
      AveragePrecisionFromScores(labels, {0.9, 0.8, 0.2, 0.1});
  EXPECT_NEAR(worst, 0.5 * (1.0 / 3.0) + 0.5 * 0.5, 1e-12);
}

TEST(PrTest, NoPositivesYieldZero) {
  EXPECT_DOUBLE_EQ(AveragePrecisionFromScores({false, false}, {0.1, 0.2}),
                   0.0);
}

TEST(SweepCurveTest, ExtractorsAlignWithParameters) {
  std::vector<SweepPoint> sweep(2);
  sweep[0].parameter = 0.2;
  sweep[0].confusion = Evaluate({true, false}, {true, true});
  sweep[1].parameter = 0.8;
  sweep[1].confusion = Evaluate({true, false}, {true, false});
  Curve f1 = F1Curve(sweep);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_DOUBLE_EQ(f1[0].x, 0.2);
  EXPECT_DOUBLE_EQ(f1[1].y, 1.0);
  EXPECT_DOUBLE_EQ(PrecisionCurve(sweep)[0].y, 0.5);
  EXPECT_DOUBLE_EQ(RecallCurve(sweep)[0].y, 1.0);
  EXPECT_DOUBLE_EQ(AccuracyCurve(sweep)[1].y, 1.0);
  // ROC points sorted by FPR: (0,1) from point 2 and (1,1) from point 1,
  // plus the (0,0) anchor.
  Curve roc = RocFromSweep(sweep);
  ASSERT_EQ(roc.size(), 3u);
  EXPECT_DOUBLE_EQ(roc.back().x, 1.0);
}

// --- Parameter grid / sweeps ------------------------------------------------------

TEST(ParameterGridTest, CoversOpenUnitInterval) {
  const auto grid = ParameterGrid(0.01, 0.99);
  ASSERT_EQ(grid.size(), 99u);
  EXPECT_NEAR(grid.front(), 0.01, 1e-12);
  EXPECT_NEAR(grid.back(), 0.99, 1e-12);
}

class SweepFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    labels_ = scenario_.truth.LinkabilityLabels(scenario_.set);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> labels_;
};

TEST_F(SweepFixture, ScopingSweepRecallMonotone) {
  outlier::PcaDetector detector(0.5);
  const auto sweep =
      ScopingSweep(signatures_, labels_, detector, ParameterGrid(0.1, 1.0));
  double prev = 0.0;
  for (const auto& point : sweep) {
    EXPECT_GE(point.confusion.Recall(), prev - 1e-12);
    prev = point.confusion.Recall();
  }
  // p = 1 keeps everything -> recall 1.
  EXPECT_DOUBLE_EQ(sweep.back().confusion.Recall(), 1.0);
}

TEST_F(SweepFixture, CollaborativeSweepProducesReport) {
  const auto sweep =
      CollaborativeSweep(signatures_, 4, labels_, ParameterGrid(0.1, 0.9));
  ASSERT_EQ(sweep.size(), 9u);
  const AucReport report = ReportForCollaborative(sweep);
  EXPECT_GT(report.auc_f1, 0.0);
  EXPECT_LE(report.auc_f1, 100.0);
  EXPECT_GE(report.auc_roc_smoothed, report.auc_roc - 1e-9);
}

TEST_F(SweepFixture, ScopingReportInRange) {
  outlier::PcaDetector detector(0.5);
  const auto scores = detector.Scores(signatures_.signatures);
  const auto sweep =
      ScopingSweepFromScores(scores, labels_, ParameterGrid(0.05, 1.0));
  const AucReport report = ReportForScoping(labels_, scores, sweep);
  EXPECT_GT(report.auc_roc, 0.0);
  EXPECT_LE(report.auc_roc, 100.0);
  EXPECT_GT(report.auc_pr, 0.0);
  EXPECT_LE(report.auc_pr, 100.0);
}

// --- Matching metrics -----------------------------------------------------------------

TEST(MatchingMetricsTest, HandComputedExample) {
  datasets::MatchingScenario sc = datasets::BuildToyScenario();
  std::set<matching::ElementPair> generated;
  // One true pair and one false pair.
  auto a = sc.set.Resolve("S1", "CLIENT.CID");
  auto b = sc.set.Resolve("S2", "CUSTOMER.CID");
  auto c = sc.set.Resolve("S4", "CAR.YEAR");
  auto d = sc.set.Resolve("S2", "CUSTOMER.DOB");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  generated.insert(matching::MakePair(*a, *b));
  generated.insert(matching::MakePair(*c, *d));

  const MatchingQuality q = EvaluateMatching(generated, sc.truth, 137);
  EXPECT_EQ(q.generated, 2u);
  EXPECT_EQ(q.true_linkages, 1u);
  EXPECT_DOUBLE_EQ(q.PairQuality(), 0.5);
  EXPECT_DOUBLE_EQ(q.PairCompleteness(), 1.0 / 18.0);
  EXPECT_NEAR(q.ReductionRatio(), 1.0 - 2.0 / 137.0, 1e-12);
  EXPECT_GT(q.F1(), 0.0);
}

TEST(MatchingMetricsTest, EmptyGeneratedSet) {
  datasets::MatchingScenario sc = datasets::BuildToyScenario();
  const MatchingQuality q = EvaluateMatching({}, sc.truth, 100);
  EXPECT_DOUBLE_EQ(q.PairQuality(), 0.0);
  EXPECT_DOUBLE_EQ(q.PairCompleteness(), 0.0);
  EXPECT_DOUBLE_EQ(q.F1(), 0.0);
  EXPECT_DOUBLE_EQ(q.ReductionRatio(), 1.0);
}

}  // namespace
}  // namespace colscope::eval
