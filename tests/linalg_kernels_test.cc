// Equivalence tests for the optimized linalg kernels: Multiply against
// a per-cell scalar-reference-dot product (the canonical reduction tree
// of linalg/simd/kernels.h, which the dispatched kernels must match bit
// for bit), the fused MultiplyTransposedB against materializing the
// transpose, RowSpan aliasing, and the Gram-trick PCA fit against the
// covariance-path reference (identical up to component sign and
// floating-point eps).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/simd/kernels.h"

namespace colscope::linalg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    double* row = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) row[c] = rng.NextGaussian();
  }
  return m;
}

/// One scalar-reference dot per output cell over the transposed right
/// operand — the semantics Multiply must reproduce bit for bit
/// regardless of which SIMD table dispatch selected (the canonical
/// reduction tree is ISA-invariant by contract).
Matrix ReferenceMultiply(const Matrix& a, const Matrix& b) {
  const Matrix bt = b.Transposed();
  Matrix out(a.rows(), b.cols());
  const auto& scalar = simd::ScalarKernels();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      out.RowPtr(i)[j] = scalar.dot(a.RowPtr(i), bt.RowPtr(j), a.cols());
    }
  }
  return out;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.RowPtr(r)[c], b.RowPtr(r)[c])
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
}

TEST(BlockedMultiplyTest, BitIdenticalToReferenceAcrossShapes) {
  // Sizes straddle the 64-wide j-tile and the kernels' 8-lane body:
  // below, at, and past boundaries, including non-multiples so edge
  // tiles and reduction tails are exercised.
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {63, 64, 65}, {64, 64, 64}, {70, 130, 90}};
  for (const auto& [m, k, n] : shapes) {
    const Matrix a = RandomMatrix(m, k, 17 * m + n);
    const Matrix b = RandomMatrix(k, n, 31 * k + m);
    ExpectBitIdentical(a.Multiply(b), ReferenceMultiply(a, b));
  }
}

TEST(BlockedMultiplyTest, ZerosInInputDoNotChangeResult) {
  // An ancient kernel skipped k-steps where a[i][k] == 0; the dot-based
  // one must not need that branch to stay exact (x * 0.0 adds exactly).
  Matrix a = RandomMatrix(20, 33, 7);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); k += 3) a.RowPtr(i)[k] = 0.0;
  }
  const Matrix b = RandomMatrix(33, 21, 8);
  ExpectBitIdentical(a.Multiply(b), ReferenceMultiply(a, b));
}

TEST(MultiplyTransposedBTest, BitIdenticalToTransposePath) {
  // Multiply is implemented as MultiplyTransposedB over the transpose,
  // so this checks the two public spellings stay exact mirrors across
  // narrow and wide shared dimensions.
  const size_t shapes[][3] = {
      {2, 9, 5}, {57, 91, 63}, {64, 64, 64}, {30, 300, 7}};
  for (const auto& [m, d, n] : shapes) {
    const Matrix a = RandomMatrix(m, d, 100 + m);
    const Matrix b = RandomMatrix(n, d, 200 + n);  // n x d; result m x n.
    ExpectBitIdentical(a.MultiplyTransposedB(b), a.Multiply(b.Transposed()));
  }
}

TEST(TransposedTest, RoundTripsAndSwapsShape) {
  const Matrix a = RandomMatrix(37, 81, 42);
  const Matrix t = a.Transposed();
  ASSERT_EQ(t.rows(), a.cols());
  ASSERT_EQ(t.cols(), a.rows());
  ExpectBitIdentical(t.Transposed(), a);
}

TEST(RowSpanTest, AliasesRowStorageWithoutCopying) {
  const Matrix a = RandomMatrix(5, 12, 3);
  for (size_t r = 0; r < a.rows(); ++r) {
    const auto span = a.RowSpan(r);
    EXPECT_EQ(span.data(), a.RowPtr(r));
    EXPECT_EQ(span.size(), a.cols());
  }
}

/// The Gram and covariance paths diagonalize different matrices, so
/// components may differ by sign and ~1e-9 noise; everything observable
/// (subspace, explained variance, reconstructions) must agree.
void ExpectEquivalentFits(const PcaModel& gram, const PcaModel& cov,
                          const Matrix& x) {
  ASSERT_EQ(gram.n_components(), cov.n_components());
  ASSERT_EQ(gram.dims(), cov.dims());
  const double eps = 1e-6;
  for (size_t d = 0; d < gram.dims(); ++d) {
    EXPECT_NEAR(gram.mean()[d], cov.mean()[d], eps);
  }
  for (size_t c = 0; c < gram.n_components(); ++c) {
    EXPECT_NEAR(gram.explained_variance()[c], cov.explained_variance()[c],
                eps);
    // Per-component sign is arbitrary: align on the largest-magnitude
    // coordinate, then compare element-wise.
    const double* g = gram.components().RowPtr(c);
    const double* v = cov.components().RowPtr(c);
    size_t pivot = 0;
    for (size_t d = 1; d < gram.dims(); ++d) {
      if (std::abs(g[d]) > std::abs(g[pivot])) pivot = d;
    }
    const double sign = (g[pivot] * v[pivot] >= 0.0) ? 1.0 : -1.0;
    for (size_t d = 0; d < gram.dims(); ++d) {
      EXPECT_NEAR(g[d], sign * v[d], eps) << "component " << c;
    }
  }
  // Reconstruction errors are sign-invariant — the strongest observable.
  const Vector gram_errors = gram.ReconstructionErrors(x);
  const Vector cov_errors = cov.ReconstructionErrors(x);
  ASSERT_EQ(gram_errors.size(), cov_errors.size());
  for (size_t i = 0; i < gram_errors.size(); ++i) {
    EXPECT_NEAR(gram_errors[i], cov_errors[i], eps);
  }
}

TEST(PcaFitPathTest, GramMatchesCovarianceAtVarianceTarget) {
  const Matrix x = RandomMatrix(12, 40, 0x5eed);
  const auto gram = PcaModel::FitWithVariance(x, 0.8, PcaFitPath::kGram);
  const auto cov = PcaModel::FitWithVariance(x, 0.8, PcaFitPath::kCovariance);
  ASSERT_TRUE(gram.ok()) << gram.status().ToString();
  ASSERT_TRUE(cov.ok()) << cov.status().ToString();
  ExpectEquivalentFits(*gram, *cov, x);
}

TEST(PcaFitPathTest, GramMatchesCovarianceAtFixedComponents) {
  const Matrix x = RandomMatrix(9, 25, 0xfeed);
  const auto gram = PcaModel::FitWithComponents(x, 4, PcaFitPath::kGram);
  const auto cov = PcaModel::FitWithComponents(x, 4, PcaFitPath::kCovariance);
  ASSERT_TRUE(gram.ok()) << gram.status().ToString();
  ASSERT_TRUE(cov.ok()) << cov.status().ToString();
  ExpectEquivalentFits(*gram, *cov, x);
}

TEST(PcaFitPathTest, AutoPicksTheShortWideFastPathConsistently) {
  // Short-and-wide (rows << dims) is every real schema's shape; kAuto
  // must produce exactly what an explicit kGram fit produces.
  const Matrix x = RandomMatrix(8, 64, 0xabcd);
  const auto auto_fit = PcaModel::FitWithVariance(x, 0.9, PcaFitPath::kAuto);
  const auto gram_fit = PcaModel::FitWithVariance(x, 0.9, PcaFitPath::kGram);
  ASSERT_TRUE(auto_fit.ok());
  ASSERT_TRUE(gram_fit.ok());
  ASSERT_EQ(auto_fit->n_components(), gram_fit->n_components());
  ExpectBitIdentical(auto_fit->components(), gram_fit->components());
}

}  // namespace
}  // namespace colscope::linalg
