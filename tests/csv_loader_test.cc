#include <gtest/gtest.h>

#include "datasets/csv_loader.h"

namespace colscope::datasets {
namespace {

// --- SplitCsvLine -----------------------------------------------------------

TEST(SplitCsvLineTest, PlainFields) {
  EXPECT_EQ(SplitCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine(""), std::vector<std::string>{""});
  EXPECT_EQ(SplitCsvLine("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitCsvLineTest, QuotedFieldsAndEscapes) {
  EXPECT_EQ(SplitCsvLine(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine(R"("say ""hi""",x)"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(SplitCsvLineTest, CustomDelimiterAndCr) {
  EXPECT_EQ(SplitCsvLine("a;b;c\r", ';'),
            (std::vector<std::string>{"a", "b", "c"}));
}

// --- Type inference ------------------------------------------------------------

TEST(InferDataTypeTest, Families) {
  EXPECT_EQ(InferDataType({"1", "42", "-7"}), schema::DataType::kInteger);
  EXPECT_EQ(InferDataType({"1.5", "2", "-0.25"}),
            schema::DataType::kDecimal);
  EXPECT_EQ(InferDataType({"2024-01-05", "1999/12/31"}),
            schema::DataType::kDate);
  EXPECT_EQ(InferDataType({"abc", "1"}), schema::DataType::kString);
  EXPECT_EQ(InferDataType({"", ""}), schema::DataType::kString);
  EXPECT_EQ(InferDataType({"", "7"}), schema::DataType::kInteger);
  EXPECT_EQ(InferDataType({"1.2.3"}), schema::DataType::kString);
}

// --- LoadCsvSchema ----------------------------------------------------------------

constexpr char kCsv[] =
    "customer_id,name,city,signup_date,balance\n"
    "1,\"Scott, Michael\",Berlin,2024-01-05,10.50\n"
    "2,Ana Garcia,Paris,2023-11-12,0\n"
    "3,Wei Chen,Oslo,2024-06-30,-3.25\n";

TEST(LoadCsvSchemaTest, HeaderBecomesAttributes) {
  CsvLoadOptions options;
  options.table_name = "customers";
  auto schema = LoadCsvSchema(kCsv, "CRM", options);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name(), "CRM");
  EXPECT_EQ(schema->num_tables(), 1u);
  EXPECT_EQ(schema->num_attributes(), 5u);
  const auto* id = schema->FindAttribute("customers", "customer_id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->type, schema::DataType::kInteger);
  EXPECT_EQ(schema->FindAttribute("customers", "signup_date")->type,
            schema::DataType::kDate);
  EXPECT_EQ(schema->FindAttribute("customers", "balance")->type,
            schema::DataType::kDecimal);
  EXPECT_EQ(schema->FindAttribute("customers", "name")->type,
            schema::DataType::kString);
}

TEST(LoadCsvSchemaTest, SamplesAttachedAndCapped) {
  CsvLoadOptions options;
  options.table_name = "customers";
  options.max_sample_rows = 2;
  auto schema = LoadCsvSchema(kCsv, "CRM", options);
  ASSERT_TRUE(schema.ok());
  const auto* name = schema->FindAttribute("customers", "name");
  ASSERT_NE(name, nullptr);
  ASSERT_EQ(name->samples.size(), 2u);
  EXPECT_EQ(name->samples[0], "Scott, Michael");  // Quoted comma intact.
  EXPECT_EQ(name->samples[1], "Ana Garcia");
}

TEST(LoadCsvSchemaTest, MetadataOnlyMode) {
  CsvLoadOptions options;
  options.max_sample_rows = 0;
  auto schema = LoadCsvSchema(kCsv, "CRM", options);
  ASSERT_TRUE(schema.ok());
  for (const auto& attr : schema->tables()[0].attributes) {
    EXPECT_TRUE(attr.samples.empty());
  }
  // Types are still inferred from a small internal probe.
  EXPECT_EQ(schema->FindAttribute("table", "customer_id")->type,
            schema::DataType::kInteger);
}

TEST(LoadCsvSchemaTest, HeaderOnlyCsv) {
  auto schema = LoadCsvSchema("a,b,c\n", "S");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 3u);
  for (const auto& attr : schema->tables()[0].attributes) {
    EXPECT_EQ(attr.type, schema::DataType::kString);
    EXPECT_TRUE(attr.samples.empty());
  }
}

TEST(LoadCsvSchemaTest, MalformedInputs) {
  EXPECT_FALSE(LoadCsvSchema("", "S").ok());
  EXPECT_FALSE(LoadCsvSchema("\n", "S").ok());
  // Ragged row.
  EXPECT_FALSE(LoadCsvSchema("a,b\n1,2,3\n", "S").ok());
  // Empty column name.
  EXPECT_FALSE(LoadCsvSchema("a,,c\n", "S").ok());
}

TEST(LoadCsvSchemaTest, SemicolonDelimiter) {
  CsvLoadOptions options;
  options.delimiter = ';';
  auto schema = LoadCsvSchema("x;y\n1;hello\n", "S", options);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 2u);
  EXPECT_EQ(schema->FindAttribute("table", "x")->type,
            schema::DataType::kInteger);
}

}  // namespace
}  // namespace colscope::datasets
