#include <gtest/gtest.h>

#include "text/hashing.h"
#include "text/lexicon.h"
#include "text/tokenize.h"

namespace colscope::text {
namespace {

// --- Tokenizer -----------------------------------------------------------

TEST(TokenizeTest, SnakeCase) {
  EXPECT_EQ(TokenizeIdentifier("ORDER_DATETIME"),
            (std::vector<std::string>{"order", "datetime"}));
}

TEST(TokenizeTest, CamelCase) {
  EXPECT_EQ(TokenizeIdentifier("orderLineNumber"),
            (std::vector<std::string>{"order", "line", "number"}));
}

TEST(TokenizeTest, UpperRunFollowedByCamel) {
  EXPECT_EQ(TokenizeIdentifier("MSRPPrice"),
            (std::vector<std::string>{"msrp", "price"}));
}

TEST(TokenizeTest, AllCapsStaysOneToken) {
  EXPECT_EQ(TokenizeIdentifier("ORDERDATE"),
            (std::vector<std::string>{"orderdate"}));
}

TEST(TokenizeTest, DigitBoundaries) {
  EXPECT_EQ(TokenizeIdentifier("addressLine1"),
            (std::vector<std::string>{"address", "line", "1"}));
  EXPECT_EQ(TokenizeIdentifier("q3"), (std::vector<std::string>{"q", "3"}));
}

TEST(TokenizeTest, SerializedTableSequence) {
  EXPECT_EQ(TokenizeIdentifier("CLIENT [CID, NAME, ADDRESS, PHONE]"),
            (std::vector<std::string>{"client", "cid", "name", "address",
                                      "phone"}));
}

TEST(TokenizeTest, SerializedAttributeSequence) {
  EXPECT_EQ(TokenizeIdentifier("CID CLIENT NUMBER PRIMARY KEY"),
            (std::vector<std::string>{"cid", "client", "number", "primary",
                                      "key"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeIdentifier("").empty());
  EXPECT_TRUE(TokenizeIdentifier("_-[]().,").empty());
}

// --- Trigrams --------------------------------------------------------------

TEST(TrigramTest, PadsWithSentinels) {
  EXPECT_EQ(CharacterTrigrams("city"),
            (std::vector<std::string>{"^ci", "cit", "ity", "ty$"}));
}

TEST(TrigramTest, ShortTokens) {
  EXPECT_EQ(CharacterTrigrams("a"), (std::vector<std::string>{"^a$"}));
  EXPECT_EQ(CharacterTrigrams("ab"),
            (std::vector<std::string>{"^ab", "ab$"}));
  EXPECT_TRUE(CharacterTrigrams("").empty());
}

TEST(TrigramTest, SharedGramsForSimilarNames) {
  auto a = CharacterTrigrams("orderdate");
  auto b = CharacterTrigrams("orderdatetime");
  int shared = 0;
  for (const auto& g : a) {
    for (const auto& h : b) shared += (g == h);
  }
  EXPECT_GE(shared, 6);  // Substantial lexical overlap.
}

// --- Hashing ------------------------------------------------------------------

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("customer"), Hash64("customer"));
  EXPECT_NE(Hash64("customer"), Hash64("customers"));
  EXPECT_NE(Hash64(""), Hash64(" "));
}

TEST(HashTest, CombineOrderDependent) {
  const uint64_t a = Hash64("a");
  const uint64_t b = Hash64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

// --- Lexicon ----------------------------------------------------------------------

TEST(LexiconTest, SynonymsShareConcept) {
  const Lexicon& lex = DefaultSchemaLexicon();
  EXPECT_EQ(lex.Lookup("client").concept_name,
            lex.Lookup("customer").concept_name);
  EXPECT_EQ(lex.Lookup("businesspartner").concept_name,
            lex.Lookup("customer").concept_name);
}

TEST(LexiconTest, CategoriesGroupRelatedConcepts) {
  const Lexicon& lex = DefaultSchemaLexicon();
  EXPECT_EQ(lex.Lookup("address").category, "geo");
  EXPECT_EQ(lex.Lookup("city").category, "geo");
  EXPECT_NE(lex.Lookup("address").concept_name,
            lex.Lookup("city").concept_name);
}

TEST(LexiconTest, UnknownTokenIdentity) {
  const Lexicon& lex = DefaultSchemaLexicon();
  TokenSense sense = lex.Lookup("zzyzx");
  EXPECT_EQ(sense.concept_name, "zzyzx");
  EXPECT_TRUE(sense.category.empty());
  EXPECT_FALSE(lex.Contains("zzyzx"));
}

TEST(LexiconTest, LookupIsCaseInsensitive) {
  const Lexicon& lex = DefaultSchemaLexicon();
  EXPECT_EQ(lex.Lookup("CLIENT").concept_name, "customer");
}

TEST(LexiconTest, FormulaOneDomainIsSeparate) {
  const Lexicon& lex = DefaultSchemaLexicon();
  EXPECT_EQ(lex.Lookup("driver").category, "motorsport");
  EXPECT_EQ(lex.Lookup("circuit").category, "motorsport");
  EXPECT_NE(lex.Lookup("driver").concept_name,
            lex.Lookup("customer").concept_name);
}

TEST(LexiconTest, CustomLexiconOverrides) {
  Lexicon lex;
  lex.AddSynonyms("thing", {"gadget", "widget"}, "stuff");
  EXPECT_EQ(lex.Lookup("widget").concept_name, "thing");
  EXPECT_EQ(lex.Lookup("widget").category, "stuff");
  lex.SetCategory("other", {"widget"});
  EXPECT_EQ(lex.Lookup("widget").category, "other");
  EXPECT_EQ(lex.Lookup("widget").concept_name, "thing");
}

TEST(LexiconTest, SetCategoryOnUnknownTokenKeepsIdentityConcept) {
  Lexicon lex;
  lex.SetCategory("geo", {"fjord"});
  EXPECT_EQ(lex.Lookup("fjord").concept_name, "fjord");
  EXPECT_EQ(lex.Lookup("fjord").category, "geo");
}

}  // namespace
}  // namespace colscope::text
