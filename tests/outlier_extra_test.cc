#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "outlier/isolation_forest.h"
#include "outlier/knn.h"

namespace colscope::outlier {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix ClusterWithOutlier(size_t n, size_t d, double outlier_distance,
                          uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t r = 0; r + 1 < n; ++r) {
    for (size_t c = 0; c < d; ++c) m(r, c) = 0.1 * rng.NextGaussian();
  }
  for (size_t c = 0; c < d; ++c) m(n - 1, c) = outlier_distance;
  return m;
}

size_t ArgMax(const Vector& scores) {
  return static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

// --- kNN distance ODA ----------------------------------------------------

TEST(KnnDetectorTest, FlagsFarPointMeanAndMax) {
  Matrix m = ClusterWithOutlier(40, 6, 5.0, 21);
  EXPECT_EQ(ArgMax(KnnDetector(10, KnnDetector::Aggregate::kMean).Scores(m)),
            39u);
  EXPECT_EQ(ArgMax(KnnDetector(10, KnnDetector::Aggregate::kMax).Scores(m)),
            39u);
}

TEST(KnnDetectorTest, MaxAggregateDominatesMean) {
  Matrix m = ClusterWithOutlier(30, 5, 3.0, 22);
  const Vector mean_scores =
      KnnDetector(5, KnnDetector::Aggregate::kMean).Scores(m);
  const Vector max_scores =
      KnnDetector(5, KnnDetector::Aggregate::kMax).Scores(m);
  for (size_t i = 0; i < mean_scores.size(); ++i) {
    EXPECT_LE(mean_scores[i], max_scores[i] + 1e-12);
  }
}

TEST(KnnDetectorTest, SmallInputs) {
  KnnDetector detector(10);
  EXPECT_TRUE(detector.Scores(Matrix()).empty());
  EXPECT_EQ(detector.Scores(Matrix(1, 3, 0.0)), Vector{0.0});
  // k clamps to n-1.
  Matrix two(2, 2);
  two(1, 0) = 3.0;
  two(1, 1) = 4.0;
  const Vector scores = detector.Scores(two);
  EXPECT_DOUBLE_EQ(scores[0], 5.0);
  EXPECT_DOUBLE_EQ(scores[1], 5.0);
}

TEST(KnnDetectorTest, NameEncodesConfig) {
  EXPECT_EQ(KnnDetector(10).name(), "knn(k=10,mean)");
  EXPECT_EQ(KnnDetector(3, KnnDetector::Aggregate::kMax).name(),
            "knn(k=3,max)");
}

// --- Isolation Forest ------------------------------------------------------

TEST(IsolationForestTest, FlagsFarPoint) {
  Matrix m = ClusterWithOutlier(60, 4, 6.0, 23);
  IsolationForestDetector detector;
  const Vector scores = detector.Scores(m);
  EXPECT_EQ(ArgMax(scores), 59u);
  // Standard score semantics: anomaly well above 0.5, inliers below.
  EXPECT_GT(scores[59], 0.55);
  double inlier_mean = 0.0;
  for (size_t i = 0; i + 1 < 60; ++i) inlier_mean += scores[i];
  inlier_mean /= 59.0;
  EXPECT_LT(inlier_mean, scores[59]);
}

TEST(IsolationForestTest, ScoresWithinUnitInterval) {
  Rng rng(24);
  Matrix m(50, 8);
  for (double& v : m.data()) v = rng.NextGaussian();
  const Vector scores = IsolationForestDetector().Scores(m);
  for (double s : scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, DeterministicForSeed) {
  Matrix m = ClusterWithOutlier(30, 5, 3.0, 25);
  IsolationForestDetector a, b;
  EXPECT_EQ(a.Scores(m), b.Scores(m));
}

TEST(IsolationForestTest, SeedChangesScores) {
  Matrix m = ClusterWithOutlier(30, 5, 3.0, 26);
  IsolationForestOptions other;
  other.seed = 777;
  EXPECT_NE(IsolationForestDetector().Scores(m),
            IsolationForestDetector(other).Scores(m));
}

TEST(IsolationForestTest, ConstantDataIsSafe) {
  Matrix m(20, 4, 1.0);  // No split possible anywhere.
  const Vector scores = IsolationForestDetector().Scores(m);
  ASSERT_EQ(scores.size(), 20u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(IsolationForestTest, SubsampleClampAndName) {
  IsolationForestOptions options;
  options.subsample_size = 1000;  // > data size.
  options.num_trees = 10;
  Matrix m = ClusterWithOutlier(15, 3, 4.0, 27);
  const Vector scores = IsolationForestDetector(options).Scores(m);
  EXPECT_EQ(scores.size(), 15u);
  EXPECT_EQ(IsolationForestDetector().name(), "iforest(t=100,psi=64)");
}

}  // namespace
}  // namespace colscope::outlier
