#include "pipeline/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "datasets/toy.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "scoping/signature_io.h"

namespace colscope::pipeline {
namespace {

/// Fresh per-test scratch directory under the system temp dir, removed
/// on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("colscope_ckpt_" + name))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string CkptPath(const ScratchDir& dir, CheckpointPhase phase) {
  return dir.path() + "/" + CheckpointPhaseToString(phase) + ".ckpt";
}

TEST(CheckpointPhaseTest, NamesAreStable) {
  EXPECT_STREQ(CheckpointPhaseToString(CheckpointPhase::kSignatures),
               "signatures");
  EXPECT_STREQ(CheckpointPhaseToString(CheckpointPhase::kLocalModels),
               "local_models");
  EXPECT_STREQ(CheckpointPhaseToString(CheckpointPhase::kKeepMask),
               "keep_mask");
}

TEST(CheckpointStoreTest, RoundTripsPayloadBytes) {
  ScratchDir dir("roundtrip");
  CheckpointStore store(dir.path(), /*fingerprint=*/42);
  const std::string payload = "line one\nline two\nbinary \x01\x02 ok\n";
  ASSERT_TRUE(store.Write(CheckpointPhase::kSignatures, payload).ok());
  Result<std::string> loaded = store.Load(CheckpointPhase::kSignatures);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, payload);
}

TEST(CheckpointStoreTest, MissingCheckpointIsNotFound) {
  ScratchDir dir("missing");
  CheckpointStore store(dir.path(), 1);
  Result<std::string> loaded = store.Load(CheckpointPhase::kKeepMask);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, OverwriteReplacesPreviousPayload) {
  ScratchDir dir("overwrite");
  CheckpointStore store(dir.path(), 7);
  ASSERT_TRUE(store.Write(CheckpointPhase::kKeepMask, "old").ok());
  ASSERT_TRUE(store.Write(CheckpointPhase::kKeepMask, "new").ok());
  Result<std::string> loaded = store.Load(CheckpointPhase::kKeepMask);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "new");
}

TEST(CheckpointStoreTest, BitFlippedPayloadFailsChecksum) {
  ScratchDir dir("bitflip");
  obs::MetricsRegistry metrics;
  CheckpointStore store(dir.path(), 9, &metrics);
  ASSERT_TRUE(
      store.Write(CheckpointPhase::kSignatures, "payload payload").ok());
  const std::string path = CkptPath(dir, CheckpointPhase::kSignatures);
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  contents[contents.size() - 3] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  Result<std::string> loaded = store.Load(CheckpointPhase::kSignatures);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(metrics.GetCounter("checkpoint.corrupt").value(), 1u);
}

TEST(CheckpointStoreTest, TruncatedFileIsCorrupt) {
  ScratchDir dir("truncate");
  CheckpointStore store(dir.path(), 9);
  ASSERT_TRUE(store.Write(CheckpointPhase::kLocalModels,
                          std::string(256, 'x'))
                  .ok());
  const std::string path = CkptPath(dir, CheckpointPhase::kLocalModels);
  std::filesystem::resize_file(path, 60);
  Result<std::string> loaded = store.Load(CheckpointPhase::kLocalModels);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointStoreTest, GarbageFileIsCorruptNotACrash) {
  ScratchDir dir("garbage");
  CheckpointStore store(dir.path(), 9);
  std::filesystem::create_directories(dir.path());
  {
    std::ofstream out(CkptPath(dir, CheckpointPhase::kSignatures),
                      std::ios::binary);
    out << "not a checkpoint at all\n\x7f\x00\x01";
  }
  Result<std::string> loaded = store.Load(CheckpointPhase::kSignatures);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointStoreTest, WrongFingerprintIsFailedPrecondition) {
  ScratchDir dir("fingerprint");
  CheckpointStore writer(dir.path(), 1111);
  ASSERT_TRUE(writer.Write(CheckpointPhase::kKeepMask, "mask").ok());
  CheckpointStore reader(dir.path(), 2222);
  Result<std::string> loaded = reader.Load(CheckpointPhase::kKeepMask);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointStoreTest, WrongPhaseFileIsRejected) {
  ScratchDir dir("phase");
  CheckpointStore store(dir.path(), 5);
  ASSERT_TRUE(store.Write(CheckpointPhase::kSignatures, "sig").ok());
  // Pretend the signatures file is the keep mask.
  std::filesystem::copy_file(CkptPath(dir, CheckpointPhase::kSignatures),
                             CkptPath(dir, CheckpointPhase::kKeepMask));
  Result<std::string> loaded = store.Load(CheckpointPhase::kKeepMask);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointStoreTest, EmitsWriteAndLoadCounters) {
  ScratchDir dir("counters");
  obs::MetricsRegistry metrics;
  CheckpointStore store(dir.path(), 3, &metrics);
  ASSERT_TRUE(store.Write(CheckpointPhase::kSignatures, "a").ok());
  ASSERT_TRUE(store.Load(CheckpointPhase::kSignatures).ok());
  ASSERT_FALSE(store.Load(CheckpointPhase::kKeepMask).ok());
  EXPECT_EQ(metrics.GetCounter("checkpoint.write").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("checkpoint.load").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("checkpoint.miss").value(), 1u);
}

TEST(RunFingerprintTest, SensitiveToOptionsAndData) {
  const auto scenario = datasets::BuildToyScenario();
  PipelineOptions base;
  const uint64_t fp = ComputeRunFingerprint(scenario.set, base);
  EXPECT_EQ(fp, ComputeRunFingerprint(scenario.set, base));

  PipelineOptions different_v = base;
  different_v.explained_variance = 0.99;
  EXPECT_NE(fp, ComputeRunFingerprint(scenario.set, different_v));

  PipelineOptions with_exchange = base;
  with_exchange.exchange.enabled = true;
  EXPECT_NE(fp, ComputeRunFingerprint(scenario.set, with_exchange));

  schema::SchemaSet smaller(
      {scenario.set.schema(0), scenario.set.schema(1)});
  EXPECT_NE(fp, ComputeRunFingerprint(smaller, base));
}

TEST(RunFingerprintTest, IgnoresObservabilityHooks) {
  const auto scenario = datasets::BuildToyScenario();
  PipelineOptions base;
  obs::MetricsRegistry metrics;
  PipelineOptions observed = base;
  observed.metrics = &metrics;
  EXPECT_EQ(ComputeRunFingerprint(scenario.set, base),
            ComputeRunFingerprint(scenario.set, observed));
}

}  // namespace
}  // namespace colscope::pipeline
