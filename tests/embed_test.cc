#include <gtest/gtest.h>

#include "embed/hashed_encoder.h"
#include "linalg/stats.h"

namespace colscope::embed {
namespace {

using linalg::CosineSimilarity;
using linalg::Norm;
using linalg::Vector;

class EncoderTest : public ::testing::Test {
 protected:
  HashedLexiconEncoder encoder_;
};

TEST_F(EncoderTest, DimsDefaultTo768LikeSbert) {
  EXPECT_EQ(encoder_.dims(), 768u);
  EXPECT_EQ(encoder_.Encode("CID CLIENT NUMBER").size(), 768u);
}

TEST_F(EncoderTest, DeterministicAcrossInstances) {
  HashedLexiconEncoder other;
  const Vector a = encoder_.Encode("NAME CLIENT VARCHAR");
  const Vector b = other.Encode("NAME CLIENT VARCHAR");
  EXPECT_EQ(a, b);
}

TEST_F(EncoderTest, UnitNorm) {
  const Vector v = encoder_.Encode("ADDRESS CLIENT VARCHAR");
  EXPECT_NEAR(Norm(v), 1.0, 1e-12);
}

TEST_F(EncoderTest, EmptyTextYieldsZeroVector) {
  const Vector v = encoder_.Encode("");
  EXPECT_NEAR(Norm(v), 0.0, 1e-12);
}

TEST_F(EncoderTest, SynonymsAreMoreSimilarThanUnrelated) {
  const Vector client = encoder_.Encode("CLIENT");
  const Vector customer = encoder_.Encode("CUSTOMER");
  const Vector circuit = encoder_.Encode("CIRCUIT");
  EXPECT_GT(CosineSimilarity(client, customer), 0.9);
  EXPECT_LT(CosineSimilarity(client, circuit),
            CosineSimilarity(client, customer));
}

TEST_F(EncoderTest, SubTypedPairsLandBetweenIdenticalAndUnrelated) {
  // ADDRESS ~ CITY share only the geo category -> weaker than synonyms,
  // stronger than a cross-domain pair.
  const Vector address = encoder_.Encode("ADDRESS");
  const Vector city = encoder_.Encode("CITY");
  const Vector lap = encoder_.Encode("LAP");
  const double sub_typed = CosineSimilarity(address, city);
  const double identical = CosineSimilarity(address, encoder_.Encode("ADDR"));
  const double unrelated = CosineSimilarity(address, lap);
  EXPECT_GT(identical, sub_typed);
  EXPECT_GT(sub_typed, unrelated + 0.1);
}

TEST_F(EncoderTest, FullSerializationsOfTrueLinkagesAreSimilar) {
  // The Figure 1 linkage CLIENT.NAME ~ CONTACTS.CNAME.
  const Vector a = encoder_.Encode("NAME CLIENT VARCHAR");
  const Vector b = encoder_.Encode("CNAME CONTACTS VARCHAR");
  // An unrelated Formula One attribute.
  const Vector c = encoder_.Encode("LAP RACES INT");
  EXPECT_GT(CosineSimilarity(a, b), 0.6);
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c) + 0.3);
}

TEST_F(EncoderTest, LexicalTrigramSimilarityForNearIdenticalNames) {
  // ORDERDATE (one token, OOV concept) vs ORDER_DATETIME: related mostly
  // through trigrams — the paper's false-negative nuance (Section 4.3).
  const Vector a = encoder_.Encode("orderDate orders DATE");
  const Vector b = encoder_.Encode("ORDER_DATETIME ORDERS DATE");
  const Vector c = encoder_.Encode("FORENAME DRIVERS VARCHAR");
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c) + 0.2);
}

TEST_F(EncoderTest, EncodeAllStacksRows) {
  const auto m = encoder_.EncodeAll({"CLIENT", "CUSTOMER", "CAR"});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 768u);
  EXPECT_EQ(m.Row(0), encoder_.Encode("CLIENT"));
}

TEST_F(EncoderTest, SeedChangesSignatures) {
  HashedEncoderOptions options;
  options.seed = 12345;
  HashedLexiconEncoder other(options);
  const Vector a = encoder_.Encode("CLIENT");
  const Vector b = other.Encode("CLIENT");
  EXPECT_LT(CosineSimilarity(a, b), 0.5);
}

TEST_F(EncoderTest, CustomDimsRespected) {
  HashedEncoderOptions options;
  options.dims = 64;
  HashedLexiconEncoder small(options);
  EXPECT_EQ(small.Encode("CLIENT").size(), 64u);
}

TEST_F(EncoderTest, ZeroTrigramWeightStillSeparatesConcepts) {
  HashedEncoderOptions options;
  options.trigram_weight = 0.0;
  HashedLexiconEncoder enc(options);
  EXPECT_GT(CosineSimilarity(enc.Encode("CLIENT"), enc.Encode("CUSTOMER")),
            0.99);
}

}  // namespace
}  // namespace colscope::embed
