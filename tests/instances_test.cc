#include <gtest/gtest.h>

#include "datasets/instances.h"
#include "datasets/oc3.h"

namespace colscope::datasets {
namespace {

TEST(InstancesTest, AttachesRequestedSampleCount) {
  schema::Schema s = LoadOracleSchema();
  AttachSyntheticSamples(s, 1, 3);
  for (const auto& table : s.tables()) {
    for (const auto& attr : table.attributes) {
      EXPECT_EQ(attr.samples.size(), 3u) << table.name << "." << attr.name;
    }
  }
}

TEST(InstancesTest, DeterministicForSeed) {
  schema::Schema a = LoadMySqlSchema();
  schema::Schema b = LoadMySqlSchema();
  AttachSyntheticSamples(a, 7);
  AttachSyntheticSamples(b, 7);
  for (size_t t = 0; t < a.tables().size(); ++t) {
    for (size_t i = 0; i < a.tables()[t].attributes.size(); ++i) {
      EXPECT_EQ(a.tables()[t].attributes[i].samples,
                b.tables()[t].attributes[i].samples);
    }
  }
}

TEST(InstancesTest, SeedChangesSamples) {
  schema::Schema a = LoadMySqlSchema();
  schema::Schema b = LoadMySqlSchema();
  AttachSyntheticSamples(a, 7);
  AttachSyntheticSamples(b, 8);
  bool any_diff = false;
  for (size_t t = 0; t < a.tables().size() && !any_diff; ++t) {
    for (size_t i = 0; i < a.tables()[t].attributes.size(); ++i) {
      if (a.tables()[t].attributes[i].samples !=
          b.tables()[t].attributes[i].samples) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(InstancesTest, ConceptPoolsSelectedByName) {
  schema::Schema s = LoadMySqlSchema();
  AttachSyntheticSamples(s, 3);
  // city columns draw from the city pool.
  const auto* city = s.FindAttribute("customers", "city");
  ASSERT_NE(city, nullptr);
  const std::vector<std::string> cities = {"Berlin", "Paris",  "Oslo",
                                           "Nantes", "Boston", "Kyoto"};
  for (const auto& sample : city->samples) {
    EXPECT_NE(std::find(cities.begin(), cities.end(), sample),
              cities.end())
        << sample;
  }
  // Cross-schema shared concepts draw from the same pool: HANA CITY too.
  schema::Schema hana = LoadHanaSchema();
  AttachSyntheticSamples(hana, 99);
  const auto* hana_city = hana.FindAttribute("BUSINESSPARTNERS", "CITY");
  ASSERT_NE(hana_city, nullptr);
  for (const auto& sample : hana_city->samples) {
    EXPECT_NE(std::find(cities.begin(), cities.end(), sample),
              cities.end())
        << sample;
  }
}

TEST(InstancesTest, TypeFallbackForUnknownConcepts) {
  schema::Schema s("S");
  schema::Table t;
  t.name = "T";
  schema::Attribute attr;
  attr.name = "zzyzx_widget";  // No concept pool.
  attr.table_name = "T";
  attr.raw_type = "INT";
  attr.type = schema::DataType::kInteger;
  t.attributes.push_back(attr);
  ASSERT_TRUE(s.AddTable(t).ok());
  AttachSyntheticSamples(s, 5);
  for (const auto& sample : s.tables()[0].attributes[0].samples) {
    // Integer fallback pool: numeric strings.
    EXPECT_NE(sample.find_first_of("0123456789"), std::string::npos);
  }
}

TEST(InstancesTest, SchemaSetOverloadRebuildsEnumeration) {
  auto scenario = BuildOc3Scenario();
  const size_t before = scenario.set.num_elements();
  AttachSyntheticSamples(scenario.set, 11);
  EXPECT_EQ(scenario.set.num_elements(), before);
  // Samples present on some attribute.
  const auto* attr =
      scenario.set.schema(0).FindAttribute("CUSTOMERS", "EMAIL_ADDRESS");
  ASSERT_NE(attr, nullptr);
  EXPECT_FALSE(attr->samples.empty());
}

}  // namespace
}  // namespace colscope::datasets
