// Parameterized round-trip and cross-module consistency properties over
// generated schemas: WriteDdl/ParseDdl inversion, serialization +
// signature alignment, and matcher/mask invariants, swept across
// generator seeds.

#include <gtest/gtest.h>

#include "datasets/fabricator.h"
#include "datasets/oc3.h"
#include "datasets/synthetic.h"
#include "embed/hashed_encoder.h"
#include "matching/lsh_matcher.h"
#include "schema/ddl_parser.h"
#include "schema/ddl_writer.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"
#include "scoping/streamline.h"

namespace colscope {
namespace {

void ExpectSchemaEqual(const schema::Schema& a, const schema::Schema& b) {
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t t = 0; t < a.tables().size(); ++t) {
    const auto& ta = a.tables()[t];
    const auto& tb = b.tables()[t];
    EXPECT_EQ(ta.name, tb.name);
    ASSERT_EQ(ta.attributes.size(), tb.attributes.size()) << ta.name;
    for (size_t i = 0; i < ta.attributes.size(); ++i) {
      EXPECT_EQ(ta.attributes[i].name, tb.attributes[i].name);
      EXPECT_EQ(ta.attributes[i].constraint, tb.attributes[i].constraint);
    }
  }
}

class GeneratedSchemaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedSchemaProperty, DdlRoundTripOnSyntheticSchemas) {
  datasets::SyntheticOptions options;
  options.seed = GetParam();
  options.num_schemas = 3;
  const auto scenario = datasets::BuildSyntheticScenario(options);
  for (const auto& original : scenario.set.schemas()) {
    auto round_tripped =
        schema::ParseDdl(schema::WriteDdl(original), original.name());
    ASSERT_TRUE(round_tripped.ok())
        << original.name() << ": " << round_tripped.status().ToString();
    ExpectSchemaEqual(original, *round_tripped);
  }
}

TEST_P(GeneratedSchemaProperty, DdlRoundTripOnFabricatedPairs) {
  const auto mysql = datasets::LoadMySqlSchema();
  datasets::FabricatorOptions options;
  options.seed = GetParam();
  options.kind = datasets::FabricationKind::kSemanticallyJoinable;
  const auto scenario =
      datasets::FabricatePair(*mysql.FindTable("customers"), options);
  for (const auto& original : scenario.set.schemas()) {
    auto round_tripped =
        schema::ParseDdl(schema::WriteDdl(original), original.name());
    ASSERT_TRUE(round_tripped.ok());
    ExpectSchemaEqual(original, *round_tripped);
  }
}

TEST_P(GeneratedSchemaProperty, SignatureRowsAlignAfterStreamlining) {
  datasets::SyntheticOptions options;
  options.seed = GetParam();
  const auto scenario = datasets::BuildSyntheticScenario(options);
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto keep = scoping::CollaborativeScoping(
      signatures, scenario.set.num_schemas(), 0.7);
  ASSERT_TRUE(keep.ok());
  const auto streamlined = scoping::BuildStreamlinedSchemas(
      scenario.set, signatures, *keep);
  // Kept attribute count equals the streamlined attribute total.
  size_t kept_attrs = 0;
  for (size_t i = 0; i < keep->size(); ++i) {
    kept_attrs += (*keep)[i] && !signatures.refs[i].is_table();
  }
  size_t streamlined_attrs = 0;
  for (const auto& s : streamlined.schemas()) {
    streamlined_attrs += s.num_attributes();
  }
  EXPECT_EQ(kept_attrs, streamlined_attrs);
}

TEST_P(GeneratedSchemaProperty, MaskedMatcherNeverEmitsPrunedElements) {
  datasets::SyntheticOptions options;
  options.seed = GetParam();
  const auto scenario = datasets::BuildSyntheticScenario(options);
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto keep = scoping::CollaborativeScoping(
      signatures, scenario.set.num_schemas(), 0.6);
  ASSERT_TRUE(keep.ok());
  const auto pairs = matching::LshMatcher(3).Match(signatures, *keep);
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE((*keep)[scenario.set.IndexOf(a)]);
    EXPECT_TRUE((*keep)[scenario.set.IndexOf(b)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSchemaProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 0xfeedu));

}  // namespace
}  // namespace colscope
