#include <gtest/gtest.h>

#include "embed/hashed_encoder.h"
#include "er/record_scoping.h"
#include "er/synthetic_er.h"

namespace colscope::er {
namespace {

// --- EntitySet / Record -----------------------------------------------------

TEST(EntitySetTest, AddAndLookup) {
  EntitySet set("SRC");
  Record r;
  r.id = "r1";
  r.fields = {{"name", "ada"}, {"city", "london"}};
  ASSERT_TRUE(set.Add(r).ok());
  EXPECT_EQ(set.Add(r).code(), StatusCode::kAlreadyExists);
  ASSERT_NE(set.FindById("r1"), nullptr);
  EXPECT_EQ(set.FindById("r1")->FieldValue("city"), "london");
  EXPECT_EQ(set.FindById("r1")->FieldValue("nope"), "");
  EXPECT_EQ(set.FindById("r2"), nullptr);
}

TEST(EntitySetTest, SerializeRecordInterleavesFieldsAndValues) {
  Record r;
  r.id = "x";
  r.fields = {{"name", "ada lovelace"}, {"city", "london"}};
  EXPECT_EQ(SerializeRecord(r), "name ada lovelace city london");
  EXPECT_EQ(SerializeRecord(Record{}), "");
}

// --- Synthetic scenario -------------------------------------------------------

TEST(SyntheticErTest, DeterministicAndShaped) {
  SyntheticErOptions options;
  options.num_sources = 3;
  options.entities = 20;
  options.noise_per_source = 10;
  const auto a = BuildSyntheticErScenario(options);
  const auto b = BuildSyntheticErScenario(options);
  ASSERT_EQ(a.sources.size(), 3u);
  EXPECT_EQ(a.duplicates.size(), b.duplicates.size());
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.sources[s].size(), b.sources[s].size());
    // Every source holds its noise plus some entity records.
    EXPECT_GE(a.sources[s].size(), options.noise_per_source);
  }
  EXPECT_GE(a.duplicates.size(), options.entities);  // >= one pair each.
}

TEST(SyntheticErTest, DuplicatesAreCrossSourceAndCanonical) {
  const auto scenario = BuildSyntheticErScenario({});
  for (const auto& [a, b] : scenario.duplicates) {
    EXPECT_NE(a.source, b.source);
    EXPECT_TRUE(a < b);
  }
}

TEST(SyntheticErTest, NoiseRecordsAreNotMatchable) {
  const auto scenario = BuildSyntheticErScenario({});
  const auto matchable = scenario.MatchableRecords();
  for (size_t s = 0; s < scenario.sources.size(); ++s) {
    const auto& records = scenario.sources[s].records();
    for (size_t r = 0; r < records.size(); ++r) {
      const bool is_noise = records[r].id.rfind("noise", 0) == 0;
      if (is_noise) {
        EXPECT_EQ(matchable.count({static_cast<int>(s),
                                   static_cast<int>(r)}),
                  0u)
            << records[r].id;
      }
    }
  }
}

// --- Record signatures + scoping + blocking -------------------------------------

class ErPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticErOptions options;
    options.num_sources = 3;
    options.entities = 25;
    options.noise_per_source = 12;
    scenario_ = BuildSyntheticErScenario(options);
    signatures_ = BuildRecordSignatures(scenario_.sources, encoder_);
  }
  embed::HashedLexiconEncoder encoder_;
  ErScenario scenario_;
  RecordSignatureSet signatures_;
};

TEST_F(ErPipelineTest, SignatureRowsCoverAllRecords) {
  size_t total = 0;
  for (const auto& source : scenario_.sources) total += source.size();
  EXPECT_EQ(signatures_.size(), total);
  EXPECT_EQ(signatures_.signatures.rows(), total);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(signatures_.RowsOfSource(s).size(),
              scenario_.sources[s].size());
  }
}

TEST_F(ErPipelineTest, CollaborativeRecordScopingPrunesNoise) {
  const auto keep = CollaborativeRecordScoping(signatures_, 3, 0.5);
  ASSERT_TRUE(keep.ok()) << keep.status().ToString();
  const auto matchable = scenario_.MatchableRecords();
  size_t noise_total = 0, noise_kept = 0;
  size_t matchable_total = 0, matchable_kept = 0;
  for (size_t i = 0; i < keep->size(); ++i) {
    if (matchable.count(signatures_.refs[i]) > 0) {
      ++matchable_total;
      matchable_kept += (*keep)[i];
    } else {
      ++noise_total;
      noise_kept += (*keep)[i];
    }
  }
  ASSERT_GT(noise_total, 0u);
  ASSERT_GT(matchable_total, 0u);
  // Matchable records survive at a far higher rate than noise records.
  // (Record signatures are more idiosyncratic than schema-element ones,
  // so the operating range of v sits lower — see the example program.)
  const double matchable_rate =
      static_cast<double>(matchable_kept) / matchable_total;
  const double noise_rate = static_cast<double>(noise_kept) / noise_total;
  EXPECT_GT(matchable_rate, noise_rate + 0.3);
}

TEST_F(ErPipelineTest, BlockingFindsDuplicates) {
  const std::vector<bool> all(signatures_.size(), true);
  const auto candidates = BlockTopK(signatures_, all, 2);
  size_t found = 0;
  for (const auto& pair : scenario_.duplicates) {
    found += candidates.count(pair);
  }
  // Top-2 blocking recovers the clear majority of true duplicates.
  EXPECT_GT(found * 10, scenario_.duplicates.size() * 7);
}

TEST_F(ErPipelineTest, ScopingImprovesBlockingPrecision) {
  const std::vector<bool> all(signatures_.size(), true);
  const auto keep = CollaborativeRecordScoping(signatures_, 3, 0.5);
  ASSERT_TRUE(keep.ok());

  auto precision = [&](const std::set<RecordPair>& candidates) {
    if (candidates.empty()) return 0.0;
    size_t true_pairs = 0;
    for (const auto& pair : candidates) {
      true_pairs += scenario_.duplicates.count(pair);
    }
    return static_cast<double>(true_pairs) / candidates.size();
  };
  const auto unscoped = BlockTopK(signatures_, all, 2);
  const auto scoped = BlockTopK(signatures_, *keep, 2);
  EXPECT_GT(precision(scoped), precision(unscoped));
  EXPECT_LT(scoped.size(), unscoped.size());
}

TEST_F(ErPipelineTest, BlockingRespectsMask) {
  std::vector<bool> mask(signatures_.size(), false);
  EXPECT_TRUE(BlockTopK(signatures_, mask, 3).empty());
}

}  // namespace
}  // namespace colscope::er
