// Corruption matrix for the exchanged model format: every mutilation of
// a serialized LocalModel — truncation at any byte, single-byte flips,
// line reordering, hostile shapes, non-finite numbers — must come back
// as a clean Status (ok or error), never a crash, hang, or huge
// allocation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/strings.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/model_io.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

class ModelCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = BuildSignatures(scenario_.set, encoder_);
    auto model = LocalModel::Fit(signatures_.SchemaSignatures(1), 0.7, 1);
    ASSERT_TRUE(model.ok());
    serialized_ = SerializeLocalModel(*model);
  }

  /// Deserializes `text` and asserts the result is a clean Status: an ok
  /// model that can actually be used, or InvalidArgument with a message.
  void ExpectCleanOutcome(const std::string& text) {
    auto restored = DeserializeLocalModel(text);
    if (restored.ok()) {
      // A model that parsed must be usable end to end.
      const linalg::Vector probe(restored->pca().dims(), 0.25);
      EXPECT_TRUE(std::isfinite(restored->ReconstructionError(probe)));
    } else {
      EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(restored.status().message().empty());
    }
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  SignatureSet signatures_;
  std::string serialized_;
};

TEST_F(ModelCorruptionTest, TruncationMatrixIsClean) {
  // The serialized model is tens of KB, so the full O(n^2) matrix is too
  // slow for CI; cover every line boundary (the structurally interesting
  // cuts) plus a fixed stride through the interior.
  std::vector<size_t> cuts = {0, 1, serialized_.size() - 1};
  for (size_t pos = 0; pos < serialized_.size(); ++pos) {
    if (serialized_[pos] == '\n') {
      cuts.push_back(pos);
      cuts.push_back(pos + 1);
    }
  }
  for (size_t len = 0; len <= serialized_.size(); len += 97) cuts.push_back(len);
  for (size_t len : cuts) {
    ExpectCleanOutcome(serialized_.substr(0, len));
  }
  // The only prefix guaranteed to round-trip is the full document.
  EXPECT_TRUE(DeserializeLocalModel(serialized_).ok());
  EXPECT_FALSE(DeserializeLocalModel(
                   serialized_.substr(0, serialized_.size() / 2))
                   .ok());
}

TEST_F(ModelCorruptionTest, SingleByteFlipMatrixIsClean) {
  // Dense coverage of the structured prefix (header + shape lines, where
  // flips are most dangerous), strided coverage of the numeric body.
  const size_t prefix = std::min<size_t>(serialized_.size(), 256);
  for (size_t pos = 0; pos < prefix; ++pos) {
    for (int bit : {0, 2, 5, 7}) {
      std::string mutated = serialized_;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      ExpectCleanOutcome(mutated);
    }
  }
  for (size_t pos = prefix; pos < serialized_.size(); pos += 53) {
    std::string mutated = serialized_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    ExpectCleanOutcome(mutated);
  }
}

TEST_F(ModelCorruptionTest, LineReorderingsAreClean) {
  std::vector<std::string> lines = SplitString(serialized_, "\n");
  // Reversal, rotation, and every adjacent-pair swap.
  std::vector<std::string> reversed(lines.rbegin(), lines.rend());
  ExpectCleanOutcome(JoinStrings(reversed, "\n"));
  for (size_t rot = 1; rot < lines.size(); ++rot) {
    std::vector<std::string> rotated(lines.begin() + rot, lines.end());
    rotated.insert(rotated.end(), lines.begin(), lines.begin() + rot);
    ExpectCleanOutcome(JoinStrings(rotated, "\n"));
  }
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    std::vector<std::string> swapped = lines;
    std::swap(swapped[i], swapped[i + 1]);
    ExpectCleanOutcome(JoinStrings(swapped, "\n"));
  }
}

TEST_F(ModelCorruptionTest, NonFiniteNumbersRejected) {
  for (const char* bad : {"nan", "inf", "-inf", "NAN", "INF"}) {
    std::string mutated = serialized_;
    const size_t range_pos = mutated.find("range ");
    ASSERT_NE(range_pos, std::string::npos);
    const size_t eol = mutated.find('\n', range_pos);
    mutated.replace(range_pos, eol - range_pos,
                    std::string("range ") + bad);
    EXPECT_FALSE(DeserializeLocalModel(mutated).ok()) << bad;
  }
  // NaN inside the mean vector.
  std::string mutated = serialized_;
  const size_t mean_pos = mutated.find("mean ");
  ASSERT_NE(mean_pos, std::string::npos);
  mutated.replace(mean_pos + 5, 0, "nan ");
  EXPECT_FALSE(DeserializeLocalModel(mutated).ok());
}

TEST_F(ModelCorruptionTest, HostileShapesRejectedBeforeAllocation) {
  const char* hostile[] = {
      // Overflowing and absurd dims.
      "colscope-local-model v1\nschema 0\ndims 99999999999999999999\n",
      "colscope-local-model v1\nschema 0\ndims 1048577\n",
      "colscope-local-model v1\nschema 0\ndims -5\n",
      "colscope-local-model v1\nschema 0\ndims 12abc\n",
      "colscope-local-model v1\nschema 0\ndims 0\n",
      // components overflowing the total-allocation cap (2^20 * 2^16).
      "colscope-local-model v1\nschema 0\ndims 1048576\ncomponents 65536\n",
      "colscope-local-model v1\nschema 0\ndims 4\ncomponents -1\n",
      "colscope-local-model v1\nschema 0\ndims 4\ncomponents 0\n",
      // Malformed schema index.
      "colscope-local-model v1\nschema 4294967296999\n",
      "colscope-local-model v1\nschema two\n",
  };
  for (const char* text : hostile) {
    auto restored = DeserializeLocalModel(text);
    EXPECT_FALSE(restored.ok()) << text;
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ModelCorruptionTest, DuplicateAndTrailingGarbageRejected) {
  EXPECT_FALSE(DeserializeLocalModel(serialized_ + "range 1.0\n").ok());
  EXPECT_FALSE(DeserializeLocalModel(serialized_ + "dims 4\n").ok());
  EXPECT_FALSE(DeserializeLocalModel(serialized_ + "schema 1\n").ok());
  EXPECT_FALSE(
      DeserializeLocalModel(serialized_ + "mean 0 0 0 0 0 0\n").ok());
  EXPECT_FALSE(DeserializeLocalModel(serialized_ + "garbage\n").ok());
  EXPECT_FALSE(DeserializeLocalModel(serialized_ + "pc 1 2\n").ok());
  // Blank trailing lines remain fine.
  EXPECT_TRUE(DeserializeLocalModel(serialized_ + "\n\n").ok());
}

TEST_F(ModelCorruptionTest, ValidModelStillRoundTrips) {
  auto restored = DeserializeLocalModel(serialized_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->schema_index(), 1);
  EXPECT_EQ(SerializeLocalModel(*restored), serialized_);
}

}  // namespace
}  // namespace colscope::scoping
