#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "scoping/explain.h"
#include "scoping/signatures.h"

namespace colscope::scoping {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = BuildSignatures(scenario_.set, encoder_);
    auto models = FitLocalModels(signatures_, 4, 0.5);
    ASSERT_TRUE(models.ok());
    models_ = std::move(models).value();
    explanations_ = ExplainLinkability(signatures_, models_);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  SignatureSet signatures_;
  std::vector<LocalModel> models_;
  std::vector<ElementExplanation> explanations_;
};

TEST_F(ExplainTest, OneExplanationPerElementWithForeignVerdicts) {
  ASSERT_EQ(explanations_.size(), signatures_.size());
  for (const auto& e : explanations_) {
    // 4 schemas -> 3 foreign verdicts each.
    EXPECT_EQ(e.verdicts.size(), 3u);
    for (const auto& v : e.verdicts) {
      EXPECT_NE(v.schema_index, e.ref.schema);
      EXPECT_GE(v.reconstruction_error, 0.0);
      EXPECT_GE(v.linkability_range, 0.0);
      EXPECT_EQ(v.accepted,
                v.reconstruction_error <= v.linkability_range);
    }
  }
}

TEST_F(ExplainTest, KeptMatchesCollaborativeScoping) {
  const auto keep = AssessAll(signatures_, 4, models_);
  for (size_t i = 0; i < explanations_.size(); ++i) {
    EXPECT_EQ(explanations_[i].kept, keep[i]) << explanations_[i].text;
  }
}

TEST_F(ExplainTest, BestVerdictHasSmallestMargin) {
  for (const auto& e : explanations_) {
    const ModelVerdict* best = e.BestVerdict();
    ASSERT_NE(best, nullptr);
    for (const auto& v : e.verdicts) {
      EXPECT_LE(best->margin(), v.margin() + 1e-15);
    }
    // A kept element's best margin is <= 1; a pruned one's is > 1.
    if (e.kept) {
      EXPECT_LE(best->margin(), 1.0 + 1e-12);
    } else {
      EXPECT_GT(best->margin(), 1.0);
    }
  }
}

TEST_F(ExplainTest, FormatIsHumanReadable) {
  const std::string line =
      FormatExplanation(explanations_[0], scenario_.set);
  EXPECT_NE(line.find("S1.CLIENT"), std::string::npos);
  EXPECT_NE(line.find("best: M["), std::string::npos);
  EXPECT_NE(line.find("margin="), std::string::npos);
  EXPECT_TRUE(line.rfind("linkable ", 0) == 0 ||
              line.rfind("pruned", 0) == 0);
}

TEST_F(ExplainTest, NoForeignModelsCase) {
  // Only the element's own schema's model available: no verdicts.
  std::vector<LocalModel> own_only = {models_[0]};
  const auto explanations = ExplainLinkability(signatures_, own_only);
  const auto rows = signatures_.RowsOfSchema(0);
  for (size_t row : rows) {
    EXPECT_TRUE(explanations[row].verdicts.empty());
    EXPECT_FALSE(explanations[row].kept);
    EXPECT_EQ(explanations[row].BestVerdict(), nullptr);
    const std::string line =
        FormatExplanation(explanations[row], scenario_.set);
    EXPECT_NE(line.find("(no foreign models)"), std::string::npos);
  }
}

}  // namespace
}  // namespace colscope::scoping
