#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/stats.h"
#include "linalg/svd.h"

namespace colscope::linalg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r)
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.NextGaussian();
  return m;
}

// --- Matrix ------------------------------------------------------------------

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsRoundTrips) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.Row(1), (Vector{3, 4}));
}

TEST(MatrixTest, TransposedSwapsShape) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.MultiplyVector({1, 0, -1}), (Vector{-2, -2}));
}

// --- Stats ---------------------------------------------------------------------

TEST(StatsTest, ColumnMeanAndCenter) {
  Matrix m = Matrix::FromRows({{1, 10}, {3, 20}});
  Vector mean = ColumnMean(m);
  EXPECT_EQ(mean, (Vector{2, 15}));
  Matrix c = CenterRows(m, mean);
  EXPECT_DOUBLE_EQ(c(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
  Matrix back = UncenterRows(c, mean);
  EXPECT_DOUBLE_EQ(back(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(back(1, 1), 20.0);
}

TEST(StatsTest, ColumnStdDev) {
  Matrix m = Matrix::FromRows({{1, 0}, {3, 0}});
  Vector sd = ColumnStdDev(m, ColumnMean(m));
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(StatsTest, CosineSimilarityProperties) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(Vector{1, 0}, Vector{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(Vector{1, 0}, Vector{0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(Vector{1, 0}, Vector{-1, 0}), -1.0);
  // Zero vector.
  EXPECT_DOUBLE_EQ(CosineSimilarity(Vector{0, 0}, Vector{1, 0}), 0.0);
}

TEST(StatsTest, MseAndDistances) {
  EXPECT_DOUBLE_EQ(MeanSquaredError(Vector{0, 0}, Vector{3, 4}), 12.5);
  EXPECT_DOUBLE_EQ(L2Distance(Vector{0, 0}, Vector{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredL2Distance(Vector{0, 0}, Vector{3, 4}), 25.0);
}

TEST(StatsTest, RowwiseMse) {
  Matrix a = Matrix::FromRows({{0, 0}, {1, 1}});
  Matrix b = Matrix::FromRows({{3, 4}, {1, 1}});
  Vector mse = RowwiseMse(a, b);
  EXPECT_DOUBLE_EQ(mse[0], 12.5);
  EXPECT_DOUBLE_EQ(mse[1], 0.0);
}

TEST(StatsTest, NormalizeInPlace) {
  Vector v{3, 4};
  NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(Norm(v), 1.0);
  Vector zero{0, 0};
  NormalizeInPlace(zero);  // Must not divide by zero.
  EXPECT_EQ(zero, (Vector{0, 0}));
}

// --- Eigen ------------------------------------------------------------------------

TEST(EigenTest, DiagonalMatrix) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 1}});
  EigenDecomposition e = JacobiEigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  EigenDecomposition e = JacobiEigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(e.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::fabs(e.vectors(0, 1)), std::sqrt(0.5), 1e-10);
}

TEST(EigenTest, ReconstructsRandomSymmetricMatrix) {
  const size_t n = 20;
  Matrix a = RandomMatrix(n, n, 5);
  // Symmetrize.
  Matrix sym(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) sym(i, j) = 0.5 * (a(i, j) + a(j, i));

  EigenDecomposition e = JacobiEigenSymmetric(sym);
  // Rebuild A = V^T diag(values) V with vectors as rows.
  Matrix rebuilt(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < n; ++k) {
        sum += e.vectors(k, i) * e.values[k] * e.vectors(k, j);
      }
      rebuilt(i, j) = sum;
    }
  }
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) EXPECT_NEAR(rebuilt(i, j), sym(i, j), 1e-8);
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  const size_t n = 12;
  Matrix a = RandomMatrix(n, n, 6);
  Matrix sym(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) sym(i, j) = 0.5 * (a(i, j) + a(j, i));
  EigenDecomposition e = JacobiEigenSymmetric(sym);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double dot = Dot(e.vectors.Row(i), e.vectors.Row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

// --- SVD ---------------------------------------------------------------------------

TEST(SvdTest, ReconstructsWideMatrix) {
  // n < d, the shape used for schema signatures.
  Matrix x = RandomMatrix(8, 30, 7);
  SvdResult svd = ThinSvd(x);
  ASSERT_EQ(svd.singular_values.size(), 8u);
  // X ~= U diag(S) V^T.
  Matrix us(8, 8);
  for (size_t i = 0; i < 8; ++i)
    for (size_t k = 0; k < 8; ++k) us(i, k) = svd.u(i, k) * svd.singular_values[k];
  Matrix rebuilt = us.Multiply(svd.vt);
  for (size_t i = 0; i < x.rows(); ++i)
    for (size_t j = 0; j < x.cols(); ++j)
      EXPECT_NEAR(rebuilt(i, j), x(i, j), 1e-8);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  Matrix x = RandomMatrix(30, 8, 8);
  SvdResult svd = ThinSvd(x);
  ASSERT_EQ(svd.singular_values.size(), 8u);
  Matrix us(30, 8);
  for (size_t i = 0; i < 30; ++i)
    for (size_t k = 0; k < 8; ++k) us(i, k) = svd.u(i, k) * svd.singular_values[k];
  Matrix rebuilt = us.Multiply(svd.vt);
  for (size_t i = 0; i < x.rows(); ++i)
    for (size_t j = 0; j < x.cols(); ++j)
      EXPECT_NEAR(rebuilt(i, j), x(i, j), 1e-8);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  Matrix x = RandomMatrix(10, 20, 9);
  SvdResult svd = ThinSvd(x);
  for (size_t i = 1; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i - 1], svd.singular_values[i] - 1e-12);
  }
}

TEST(SvdTest, RightSingularVectorsOrthonormal) {
  Matrix x = RandomMatrix(6, 15, 10);
  SvdResult svd = ThinSvd(x);
  for (size_t i = 0; i < svd.vt.rows(); ++i) {
    for (size_t j = 0; j < svd.vt.rows(); ++j) {
      const double dot = Dot(svd.vt.Row(i), svd.vt.Row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SvdTest, RankDeficientMatrixDropsNullDirections) {
  // Two identical rows -> rank 1.
  Matrix x = Matrix::FromRows({{1, 2, 3}, {1, 2, 3}});
  SvdResult svd = ThinSvd(x);
  EXPECT_EQ(svd.singular_values.size(), 1u);
}

TEST(SvdTest, ExplainedVarianceRatiosSumToOne) {
  Matrix x = RandomMatrix(9, 12, 11);
  SvdResult svd = ThinSvd(x);
  Vector ev = ExplainedVarianceRatios(svd.singular_values);
  double sum = 0.0;
  for (double v : ev) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SvdTest, ComponentsForVarianceBoundaries) {
  Vector ev{0.5, 0.3, 0.2};
  EXPECT_EQ(ComponentsForVariance(ev, 0.4), 1u);
  EXPECT_EQ(ComponentsForVariance(ev, 0.5), 1u);
  EXPECT_EQ(ComponentsForVariance(ev, 0.51), 2u);
  EXPECT_EQ(ComponentsForVariance(ev, 0.99), 3u);
  EXPECT_EQ(ComponentsForVariance(ev, 1.0), 3u);
  EXPECT_EQ(ComponentsForVariance({}, 0.5), 1u);
}

// --- PCA ----------------------------------------------------------------------------

TEST(PcaTest, FullVarianceReconstructsExactly) {
  Matrix x = RandomMatrix(10, 6, 12);
  Result<PcaModel> model = PcaModel::FitWithVariance(x, 1.0);
  ASSERT_TRUE(model.ok());
  Vector errors = model->ReconstructionErrors(x);
  for (double e : errors) EXPECT_NEAR(e, 0.0, 1e-10);
}

TEST(PcaTest, LowVarianceLeavesResidualError) {
  Matrix x = RandomMatrix(40, 10, 13);
  Result<PcaModel> model = PcaModel::FitWithVariance(x, 0.3);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->n_components(), 10u);
  Vector errors = model->ReconstructionErrors(x);
  double total = 0.0;
  for (double e : errors) total += e;
  EXPECT_GT(total, 0.0);
}

TEST(PcaTest, MoreComponentsNeverIncreaseTrainError) {
  Matrix x = RandomMatrix(30, 12, 14);
  double prev = 1e100;
  for (size_t k : {1, 3, 6, 12}) {
    Result<PcaModel> model = PcaModel::FitWithComponents(x, k);
    ASSERT_TRUE(model.ok());
    Vector errors = model->ReconstructionErrors(x);
    double total = 0.0;
    for (double e : errors) total += e;
    EXPECT_LE(total, prev + 1e-9);
    prev = total;
  }
}

TEST(PcaTest, EncodeDecodeShapes) {
  Matrix x = RandomMatrix(5, 8, 15);
  Result<PcaModel> model = PcaModel::FitWithComponents(x, 3);
  ASSERT_TRUE(model.ok());
  Matrix z = model->Encode(x);
  EXPECT_EQ(z.rows(), 5u);
  EXPECT_EQ(z.cols(), 3u);
  Matrix back = model->Decode(z);
  EXPECT_EQ(back.rows(), 5u);
  EXPECT_EQ(back.cols(), 8u);
}

TEST(PcaTest, MeanOnlyModelForConstantData) {
  Matrix x(4, 3);
  for (size_t r = 0; r < 4; ++r)
    for (size_t c = 0; c < 3; ++c) x(r, c) = 7.0;
  Result<PcaModel> model = PcaModel::FitWithVariance(x, 0.9);
  ASSERT_TRUE(model.ok());
  // Constant data reconstructs exactly through the mean.
  EXPECT_NEAR(model->ReconstructionError(x.Row(0)), 0.0, 1e-12);
}

TEST(PcaTest, RejectsBadArguments) {
  Matrix x = RandomMatrix(4, 3, 16);
  EXPECT_FALSE(PcaModel::FitWithVariance(x, 0.0).ok());
  EXPECT_FALSE(PcaModel::FitWithVariance(x, 1.5).ok());
  EXPECT_FALSE(PcaModel::FitWithComponents(x, 0).ok());
  EXPECT_FALSE(PcaModel::FitWithVariance(Matrix(), 0.5).ok());
}

TEST(PcaTest, VarianceTargetControlsComponentCount) {
  Matrix x = RandomMatrix(50, 20, 17);
  Result<PcaModel> low = PcaModel::FitWithVariance(x, 0.2);
  Result<PcaModel> high = PcaModel::FitWithVariance(x, 0.95);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LT(low->n_components(), high->n_components());
  EXPECT_GE(low->total_explained_variance(), 0.2);
  EXPECT_GE(high->total_explained_variance(), 0.95);
}

}  // namespace
}  // namespace colscope::linalg
