// Tests for the scalable synthetic corpus generator (gen-corpus):
// byte-determinism, label consistency, round-trippable artifacts, and
// the scaling/heterogeneity knobs.

#include <gtest/gtest.h>

#include <string>

#include "datasets/csv_loader.h"
#include "datasets/synthetic_corpus.h"
#include "schema/ddl_parser.h"

namespace colscope::datasets {
namespace {

CorpusOptions SmallOptions() {
  CorpusOptions options;
  options.num_schemas = 3;
  options.tables_per_schema = 3;
  options.attrs_per_table = 6;
  options.rows_per_table = 4;
  options.seed = 42;
  return options;
}

TEST(SyntheticCorpusTest, SameSeedIsByteIdentical) {
  const SyntheticCorpus a = BuildSyntheticCorpus(SmallOptions());
  const SyntheticCorpus b = BuildSyntheticCorpus(SmallOptions());
  ASSERT_EQ(a.files.size(), b.files.size());
  for (size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].name, b.files[i].name);
    EXPECT_EQ(a.files[i].contents, b.files[i].contents);
  }
  EXPECT_EQ(a.labels_tsv, b.labels_tsv);
}

TEST(SyntheticCorpusTest, DifferentSeedDiffers) {
  CorpusOptions other = SmallOptions();
  other.seed = 43;
  const SyntheticCorpus a = BuildSyntheticCorpus(SmallOptions());
  const SyntheticCorpus b = BuildSyntheticCorpus(other);
  bool any_difference = a.labels_tsv != b.labels_tsv;
  for (size_t i = 0; !any_difference && i < a.files.size(); ++i) {
    any_difference = a.files[i].contents != b.files[i].contents;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticCorpusTest, ScenarioOnlyBuildMatchesFullBuild) {
  const SyntheticCorpus corpus = BuildSyntheticCorpus(SmallOptions());
  const MatchingScenario scenario = BuildCorpusScenario(SmallOptions());
  EXPECT_EQ(scenario.name, corpus.scenario.name);
  ASSERT_EQ(scenario.set.num_elements(), corpus.scenario.set.num_elements());
  ASSERT_EQ(scenario.truth.size(), corpus.scenario.truth.size());
  for (size_t i = 0; i < scenario.truth.size(); ++i) {
    EXPECT_TRUE(scenario.truth.linkages()[i] ==
                corpus.scenario.truth.linkages()[i]);
  }
  for (size_t i = 0; i < scenario.set.num_elements(); ++i) {
    EXPECT_EQ(scenario.set.QualifiedName(scenario.set.elements()[i]),
              corpus.scenario.set.QualifiedName(
                  corpus.scenario.set.elements()[i]));
  }
}

TEST(SyntheticCorpusTest, LabelsAreConsistent) {
  const SyntheticCorpus corpus = BuildSyntheticCorpus(SmallOptions());
  const auto& set = corpus.scenario.set;
  EXPECT_GT(corpus.scenario.truth.size(), 0u);
  for (const Linkage& linkage : corpus.scenario.truth.linkages()) {
    // Every labeled element exists, pairs are cross-schema and same-kind.
    EXPECT_GE(set.IndexOf(linkage.a), 0);
    EXPECT_GE(set.IndexOf(linkage.b), 0);
    EXPECT_NE(linkage.a.schema, linkage.b.schema);
    EXPECT_EQ(linkage.a.is_table(), linkage.b.is_table());
  }
  // One label line per linkage after the four '#' header lines.
  size_t label_lines = 0;
  size_t header_lines = 0;
  for (size_t pos = 0; pos < corpus.labels_tsv.size();) {
    const size_t end = corpus.labels_tsv.find('\n', pos);
    if (end == std::string::npos) break;
    if (corpus.labels_tsv[pos] == '#') {
      ++header_lines;
    } else {
      ++label_lines;
    }
    pos = end + 1;
  }
  EXPECT_EQ(header_lines, 4u);
  EXPECT_EQ(label_lines, corpus.scenario.truth.size());
}

TEST(SyntheticCorpusTest, DdlFilesRoundTripAndCsvFilesParse) {
  const SyntheticCorpus corpus = BuildSyntheticCorpus(SmallOptions());
  size_t ddl_files = 0;
  size_t csv_files = 0;
  for (const CorpusFile& file : corpus.files) {
    if (file.name.size() > 4 &&
        file.name.substr(file.name.size() - 4) == ".sql") {
      const std::string name = file.name.substr(0, file.name.size() - 4);
      auto parsed = schema::ParseDdl(file.contents, name);
      ASSERT_TRUE(parsed.ok()) << file.name;
      bool found = false;
      for (const schema::Schema& s : corpus.scenario.set.schemas()) {
        if (s.name() != name) continue;
        found = true;
        EXPECT_EQ(parsed->num_elements(), s.num_elements()) << file.name;
      }
      EXPECT_TRUE(found) << file.name;
      ++ddl_files;
    } else {
      auto loaded = LoadCsvSchema(file.contents, "csv");
      ASSERT_TRUE(loaded.ok()) << file.name << ": "
                               << loaded.status().message();
      ASSERT_EQ(loaded->num_tables(), 1u);
      EXPECT_EQ(loaded->tables()[0].attributes.size(),
                SmallOptions().attrs_per_table)
          << file.name;
      ++csv_files;
    }
  }
  EXPECT_EQ(ddl_files, SmallOptions().num_schemas);
  EXPECT_EQ(csv_files,
            SmallOptions().num_schemas * SmallOptions().tables_per_schema);
}

TEST(SyntheticCorpusTest, ShapeKnobsScaleElementCounts) {
  CorpusOptions options = SmallOptions();
  options.num_schemas = 4;
  options.tables_per_schema = 5;
  options.attrs_per_table = 7;
  const MatchingScenario scenario = BuildCorpusScenario(options);
  // Every table keeps its full width (dropped concepts become private
  // attributes), so the element count is exact.
  EXPECT_EQ(scenario.set.num_elements(),
            options.num_schemas * options.tables_per_schema *
                (1 + options.attrs_per_table));
}

TEST(SyntheticCorpusTest, NoRenamesNoDropoutYieldsFullIdenticalClosure) {
  CorpusOptions options = SmallOptions();
  options.rename_probability = 0.0;
  options.type_drift_probability = 0.0;
  options.dropout_probability = 0.0;
  const MatchingScenario scenario = BuildCorpusScenario(options);
  // Every slot links in every schema pair, all spelled identically.
  const size_t pairs = options.num_schemas * (options.num_schemas - 1) / 2;
  EXPECT_EQ(scenario.truth.size(),
            pairs * options.tables_per_schema *
                (options.attrs_per_table + 1));
  EXPECT_EQ(scenario.truth.TotalCounts().inter_sub_typed, 0u);
  EXPECT_DOUBLE_EQ(scenario.UnlinkableOverhead(), 0.0);
}

TEST(SyntheticCorpusTest, RenamesCreateSubTypedLinkages) {
  CorpusOptions options = SmallOptions();
  options.rename_probability = 1.0;
  options.dropout_probability = 0.0;
  const MatchingScenario scenario = BuildCorpusScenario(options);
  EXPECT_GT(scenario.truth.TotalCounts().inter_sub_typed, 0u);
}

TEST(SyntheticCorpusTest, DropoutCreatesUnlinkableOverhead) {
  CorpusOptions options = SmallOptions();
  options.dropout_probability = 0.5;
  const MatchingScenario scenario = BuildCorpusScenario(options);
  EXPECT_GT(scenario.UnlinkableOverhead(), 0.0);
}

TEST(SyntheticCorpusTest, VocabularyTilesBeyondItsSize) {
  CorpusOptions options = SmallOptions();
  options.tables_per_schema = CorpusEntityVocabularySize() + 2;
  options.attrs_per_table = CorpusFieldVocabularySize() + 3;
  const MatchingScenario scenario = BuildCorpusScenario(options);
  EXPECT_EQ(scenario.set.num_elements(),
            options.num_schemas * options.tables_per_schema *
                (1 + options.attrs_per_table));
  // Variant-suffixed names must stay unique inside each table/schema
  // (AddTable rejects duplicates behind a COLSCOPE_CHECK).
  EXPECT_GT(scenario.truth.size(), 0u);
}

}  // namespace
}  // namespace colscope::datasets
