#include <gtest/gtest.h>

#include "datasets/linkage.h"
#include "datasets/oc3.h"
#include "datasets/toy.h"

namespace colscope::datasets {
namespace {

// ===========================================================================
// These tests pin the datasets to the exact counts the paper reports in
// Table 2 (elements and linkability labels) and Table 3 (Cartesian sizes
// and annotated linkages). They are the reproduction contract.
// ===========================================================================

// --- Table 2: per-schema element counts -----------------------------------

TEST(Table2Test, OracleCounts) {
  auto s = LoadOracleSchema();
  EXPECT_EQ(s.num_tables(), 7u);
  EXPECT_EQ(s.num_attributes(), 43u);
}

TEST(Table2Test, MySqlCounts) {
  auto s = LoadMySqlSchema();
  EXPECT_EQ(s.num_tables(), 8u);
  EXPECT_EQ(s.num_attributes(), 59u);
}

TEST(Table2Test, HanaCounts) {
  auto s = LoadHanaSchema();
  EXPECT_EQ(s.num_tables(), 3u);
  EXPECT_EQ(s.num_attributes(), 40u);
}

TEST(Table2Test, FormulaOneCounts) {
  auto s = LoadFormulaOneSchema();
  EXPECT_EQ(s.num_tables(), 16u);
  EXPECT_EQ(s.num_attributes(), 111u);
}

TEST(Table2Test, Oc3Totals) {
  auto sc = BuildOc3Scenario();
  size_t tables = 0, attrs = 0;
  for (const auto& s : sc.set.schemas()) {
    tables += s.num_tables();
    attrs += s.num_attributes();
  }
  EXPECT_EQ(tables, 18u);
  EXPECT_EQ(attrs, 142u);
}

TEST(Table2Test, Oc3FoTotals) {
  auto sc = BuildOc3FoScenario();
  size_t tables = 0, attrs = 0;
  for (const auto& s : sc.set.schemas()) {
    tables += s.num_tables();
    attrs += s.num_attributes();
  }
  EXPECT_EQ(tables, 34u);
  EXPECT_EQ(attrs, 253u);
}

TEST(Table2Test, Oc3LinkabilitySplit) {
  auto sc = BuildOc3Scenario();
  const auto labels = sc.truth.LinkabilityLabels(sc.set);
  size_t linkable = 0;
  for (bool l : labels) linkable += l;
  EXPECT_EQ(linkable, 79u);
  EXPECT_EQ(labels.size() - linkable, 81u);
}

TEST(Table2Test, PerSchemaLinkableCounts) {
  auto sc = BuildOc3FoScenario();
  EXPECT_EQ(sc.truth.NumLinkableInSchema(0), 27u);  // OC-Oracle.
  EXPECT_EQ(sc.truth.NumLinkableInSchema(1), 34u);  // OC-MySQL.
  EXPECT_EQ(sc.truth.NumLinkableInSchema(2), 18u);  // OC-HANA.
  EXPECT_EQ(sc.truth.NumLinkableInSchema(3), 0u);   // Formula One.
}

TEST(Table2Test, Oc3FoLinkabilitySplit) {
  auto sc = BuildOc3FoScenario();
  const auto labels = sc.truth.LinkabilityLabels(sc.set);
  size_t linkable = 0;
  for (bool l : labels) linkable += l;
  EXPECT_EQ(linkable, 79u);
  EXPECT_EQ(labels.size() - linkable, 208u);
}

TEST(Table2Test, UnlinkableOverheads) {
  // Section 4.1: OC3 103%, OC3-FO 263%.
  EXPECT_NEAR(BuildOc3Scenario().UnlinkableOverhead(), 1.03, 0.005);
  EXPECT_NEAR(BuildOc3FoScenario().UnlinkableOverhead(), 2.63, 0.005);
}

// --- Table 3: Cartesian product sizes and linkage counts --------------------

TEST(Table3Test, Oc3CartesianSizes) {
  auto sc = BuildOc3Scenario();
  EXPECT_EQ(sc.set.TableCartesianSize(), 101u);
  EXPECT_EQ(sc.set.AttributeCartesianSize(), 6617u);
}

TEST(Table3Test, Oc3FoCartesianSizes) {
  auto sc = BuildOc3FoScenario();
  EXPECT_EQ(sc.set.TableCartesianSize(), 389u);
  EXPECT_EQ(sc.set.AttributeCartesianSize(), 22379u);
}

TEST(Table3Test, PairwiseCartesianSizes) {
  auto sc = BuildOc3Scenario();
  const auto& s = sc.set.schemas();
  EXPECT_EQ(s[0].num_tables() * s[1].num_tables(), 56u);      // Oracle-MySQL.
  EXPECT_EQ(s[0].num_attributes() * s[1].num_attributes(), 2537u);
  EXPECT_EQ(s[0].num_tables() * s[2].num_tables(), 21u);      // Oracle-HANA.
  EXPECT_EQ(s[0].num_attributes() * s[2].num_attributes(), 1720u);
  EXPECT_EQ(s[1].num_tables() * s[2].num_tables(), 24u);      // MySQL-HANA.
  EXPECT_EQ(s[1].num_attributes() * s[2].num_attributes(), 2360u);
}

TEST(Table3Test, PairwiseLinkageCounts) {
  auto sc = BuildOc3Scenario();
  auto om = sc.truth.CountsForSchemaPair(0, 1);
  EXPECT_EQ(om.inter_identical, 14u);
  EXPECT_EQ(om.inter_sub_typed, 22u);
  auto oh = sc.truth.CountsForSchemaPair(0, 2);
  EXPECT_EQ(oh.inter_identical, 10u);
  EXPECT_EQ(oh.inter_sub_typed, 8u);
  auto mh = sc.truth.CountsForSchemaPair(1, 2);
  EXPECT_EQ(mh.inter_identical, 15u);
  EXPECT_EQ(mh.inter_sub_typed, 1u);
}

TEST(Table3Test, AggregateInterIdenticalMatchesPaper) {
  // The paper's aggregate row: 39 II. (Its IS aggregate of 36 does not
  // equal the sum of its per-pair rows, 31 — see DESIGN.md.)
  auto sc = BuildOc3Scenario();
  auto total = sc.truth.TotalCounts();
  EXPECT_EQ(total.inter_identical, 39u);
  EXPECT_EQ(total.inter_sub_typed, 31u);
}

TEST(Table3Test, Oc3FoAddsNoLinkages) {
  auto oc3 = BuildOc3Scenario();
  auto fo = BuildOc3FoScenario();
  EXPECT_EQ(oc3.truth.size(), fo.truth.size());
}

// --- Ground-truth invariants --------------------------------------------------

TEST(GroundTruthTest, AllLinkagesAreInterSchema) {
  auto sc = BuildOc3FoScenario();
  for (const Linkage& l : sc.truth.linkages()) {
    EXPECT_NE(l.a.schema, l.b.schema);
    EXPECT_EQ(l.a.is_table(), l.b.is_table());
  }
}

TEST(GroundTruthTest, CanonicalOrderAndSymmetry) {
  auto sc = BuildOc3Scenario();
  for (const Linkage& l : sc.truth.linkages()) {
    EXPECT_TRUE(l.a < l.b);
    EXPECT_TRUE(sc.truth.ContainsPair(l.a, l.b));
    EXPECT_TRUE(sc.truth.ContainsPair(l.b, l.a));
  }
}

TEST(GroundTruthTest, RejectsIntraSchemaAndDuplicates) {
  auto sc = BuildOc3Scenario();
  GroundTruth& truth = sc.truth;
  const Status intra =
      truth.Add(LinkType::kInterIdentical, schema::TableRef(0, 0),
                schema::TableRef(0, 1));
  EXPECT_EQ(intra.code(), StatusCode::kInvalidArgument);
  const Linkage first = truth.linkages()[0];
  EXPECT_EQ(truth.Add(first.type, first.a, first.b).code(),
            StatusCode::kAlreadyExists);
  // Same pair under the other type is also rejected.
  const LinkType other = first.type == LinkType::kInterIdentical
                             ? LinkType::kInterSubTyped
                             : LinkType::kInterIdentical;
  EXPECT_EQ(truth.Add(other, first.a, first.b).code(),
            StatusCode::kAlreadyExists);
}

TEST(GroundTruthTest, RejectsTableToAttributePairs) {
  auto sc = BuildOc3Scenario();
  const Status st =
      sc.truth.Add(LinkType::kInterIdentical, schema::TableRef(0, 0),
                   schema::AttributeRef(1, 0, 0));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(GroundTruthTest, PaperHighlightedLinkagesPresent) {
  auto sc = BuildOc3Scenario();
  // Section 4.3: ORDER_DATETIME <-> orderDate is an annotated
  // inter-sub-typed linkage.
  auto a = sc.set.Resolve("OC-Oracle", "ORDERS.ORDER_DATETIME");
  auto b = sc.set.Resolve("OC-MySQL", "orders.orderDate");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(sc.truth.ContainsPair(*a, *b));
}

// --- Figure 1 toy scenario -----------------------------------------------------

TEST(ToyScenarioTest, ElementAndLinkabilityCounts) {
  auto sc = BuildToyScenario();
  EXPECT_EQ(sc.set.num_schemas(), 4u);
  EXPECT_EQ(sc.set.num_elements(), 24u);
  const auto labels = sc.truth.LinkabilityLabels(sc.set);
  size_t linkable = 0;
  for (bool l : labels) linkable += l;
  EXPECT_EQ(linkable, 15u);
  // Section 2.1: unlinkable overhead (24-15)/15 = 60%.
  EXPECT_NEAR(sc.UnlinkableOverhead(), 0.60, 1e-9);
}

TEST(ToyScenarioTest, S4EntirelyUnlinkable) {
  auto sc = BuildToyScenario();
  EXPECT_EQ(sc.truth.NumLinkableInSchema(3), 0u);
}

TEST(ToyScenarioTest, UnlinkableAttributesMatchFigure) {
  auto sc = BuildToyScenario();
  for (const char* path : {"CUSTOMER.DOB", "SHIPMENTS.SID",
                           "SHIPMENTS.DELIVERY_TIME"}) {
    auto ref = sc.set.Resolve("S2", path);
    ASSERT_TRUE(ref.ok()) << path;
    EXPECT_FALSE(sc.truth.IsLinkable(*ref)) << path;
  }
  auto phone = sc.set.Resolve("S1", "CLIENT.PHONE");
  ASSERT_TRUE(phone.ok());
  EXPECT_FALSE(sc.truth.IsLinkable(*phone));
}

}  // namespace
}  // namespace colscope::datasets
