#include <gtest/gtest.h>

#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "eval/breakdown.h"
#include "matching/cupid.h"
#include "matching/sim.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

class CupidFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    all_.assign(signatures_.size(), true);
  }
  int Row(const char* schema, const char* path) {
    auto ref = scenario_.set.Resolve(schema, path);
    EXPECT_TRUE(ref.ok());
    return scenario_.set.IndexOf(*ref);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> all_;
};

// --- CUPID -------------------------------------------------------------------

TEST_F(CupidFixture, IdenticalNameAndParentScoresHigh) {
  matching::CupidMatcher cupid;
  // CID under CLIENT vs CID under CUSTOMER: lsim = 1, parent ssim high
  // enough to clear 0.7 with w=0.5.
  const double wsim = cupid.WeightedSimilarity(
      signatures_, all_, Row("S1", "CLIENT.CID"), Row("S2", "CUSTOMER.CID"));
  EXPECT_GT(wsim, 0.7);
}

TEST_F(CupidFixture, StructuralWeightDiscriminatesParents) {
  // CNAME(CONTACTS) vs CNAME(CAR): identical names, different parents —
  // the structural component must pull the CAR pair below the CONTACTS
  // analogue paired with a closer parent.
  matching::CupidMatcher::Options options;
  options.structural_weight = 0.5;
  matching::CupidMatcher cupid(options);
  const double with_car = cupid.WeightedSimilarity(
      signatures_, all_, Row("S3", "CONTACTS.CNAME"), Row("S4", "CAR.CNAME"));
  // Same-name pair under structurally similar parents (CLIENT/CUSTOMER
  // share CID etc.): compare CID pairs as the reference.
  const double with_customer = cupid.WeightedSimilarity(
      signatures_, all_, Row("S1", "CLIENT.CID"), Row("S2", "CUSTOMER.CID"));
  EXPECT_LT(with_car, 1.0);
  EXPECT_GT(with_customer, 0.0);
  // Pure-linguistic configuration removes the parent signal entirely.
  matching::CupidMatcher::Options lexical_only;
  lexical_only.structural_weight = 0.0;
  matching::CupidMatcher lexical(lexical_only);
  EXPECT_DOUBLE_EQ(
      lexical.WeightedSimilarity(signatures_, all_,
                                 Row("S3", "CONTACTS.CNAME"),
                                 Row("S4", "CAR.CNAME")),
      1.0);  // The labeling conflict CUPID's wstruct is meant to dampen.
}

TEST_F(CupidFixture, TableSimilarityUsesLeafPropagation) {
  matching::CupidMatcher cupid;
  // CLIENT vs SHIPMENTS share two leaf names (CID, ADDRESS) and are a
  // true sub-typed pair; CUSTOMER vs CAR share only CID. Leaf-up
  // propagation must rank the former above the latter.
  const double shared_leaves = cupid.WeightedSimilarity(
      signatures_, all_, Row("S1", "CLIENT"), Row("S2", "SHIPMENTS"));
  const double weak_overlap = cupid.WeightedSimilarity(
      signatures_, all_, Row("S2", "CUSTOMER"), Row("S4", "CAR"));
  EXPECT_GT(shared_leaves, weak_overlap);
  // Note CUPID's known blind spot (and the paper's motivation for
  // semantic signatures): CONTACTS-CAR outranks CLIENT-CUSTOMER here
  // because CID/CNAME are lexically identical while CLIENT/CUSTOMER are
  // only synonyms — the labeling conflict of Section 2.2.
  const double synonym_pair = cupid.WeightedSimilarity(
      signatures_, all_, Row("S1", "CLIENT"), Row("S2", "CUSTOMER"));
  const double lexical_trap = cupid.WeightedSimilarity(
      signatures_, all_, Row("S3", "CONTACTS"), Row("S4", "CAR"));
  EXPECT_GT(lexical_trap, synonym_pair);
}

TEST_F(CupidFixture, MatchEmitsValidPairsAboveThreshold) {
  matching::CupidMatcher::Options options;
  options.threshold = 0.75;
  matching::CupidMatcher cupid(options);
  const auto pairs = cupid.Match(signatures_, all_);
  EXPECT_FALSE(pairs.empty());
  size_t true_pairs = 0;
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.schema, b.schema);
    EXPECT_EQ(a.is_table(), b.is_table());
    true_pairs += scenario_.truth.ContainsPair(a, b);
  }
  EXPECT_GT(true_pairs, 0u);
  EXPECT_EQ(cupid.name(), "CUPID(0.8,w=0.5)");
}

TEST_F(CupidFixture, ThresholdMonotone) {
  matching::CupidMatcher::Options loose_options;
  loose_options.threshold = 0.6;
  matching::CupidMatcher::Options strict_options;
  strict_options.threshold = 0.9;
  const auto loose =
      matching::CupidMatcher(loose_options).Match(signatures_, all_);
  const auto strict =
      matching::CupidMatcher(strict_options).Match(signatures_, all_);
  EXPECT_LE(strict.size(), loose.size());
  for (const auto& pair : strict) EXPECT_TRUE(loose.count(pair));
}

// --- Per-pair breakdown ---------------------------------------------------------

TEST_F(CupidFixture, BreakdownSumsToGlobalTotals) {
  const auto pairs = matching::SimMatcher(0.6).Match(signatures_, all_);
  const auto global = eval::EvaluateMatching(
      pairs, scenario_.truth,
      scenario_.set.TableCartesianSize() +
          scenario_.set.AttributeCartesianSize());
  const auto per_pair =
      eval::EvaluateMatchingPerPair(pairs, scenario_.truth, scenario_.set);
  ASSERT_EQ(per_pair.size(), 6u);  // 4 choose 2.
  size_t generated = 0, true_pairs = 0, truth_total = 0, cartesian = 0;
  for (const auto& [key, quality] : per_pair) {
    generated += quality.generated;
    true_pairs += quality.true_linkages;
    truth_total += quality.ground_truth;
    cartesian += quality.cartesian;
  }
  EXPECT_EQ(generated, global.generated);
  EXPECT_EQ(true_pairs, global.true_linkages);
  EXPECT_EQ(truth_total, global.ground_truth);
  EXPECT_EQ(cartesian, global.cartesian);
}

TEST_F(CupidFixture, BreakdownS4PairsHaveNoGroundTruth) {
  const auto pairs = matching::SimMatcher(0.4).Match(signatures_, all_);
  const auto per_pair =
      eval::EvaluateMatchingPerPair(pairs, scenario_.truth, scenario_.set);
  for (const auto& [key, quality] : per_pair) {
    if (key.second == 3) {  // Any pair involving the CAR schema.
      EXPECT_EQ(quality.ground_truth, 0u);
      EXPECT_EQ(quality.true_linkages, 0u);
    }
  }
}

}  // namespace
}  // namespace colscope
