// Tests for the IVF index and matcher: exactness in the degenerate
// configurations, the recall floor at the documented nprobe, sub-linear
// probing, and determinism across runs and thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datasets/synthetic_corpus.h"
#include "embed/hashed_encoder.h"
#include "matching/flat_index.h"
#include "matching/ivf_index.h"
#include "matching/token_blocking.h"
#include "scoping/signatures.h"

namespace colscope::matching {
namespace {

linalg::Matrix RandomVectors(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, dims);
  for (double& v : m.data()) v = rng.NextGaussian();
  return m;
}

scoping::SignatureSet CorpusSignatures(size_t num_schemas,
                                       datasets::MatchingScenario* scenario) {
  datasets::CorpusOptions options;
  options.num_schemas = num_schemas;
  options.tables_per_schema = 4;
  options.attrs_per_table = 8;
  options.seed = 77;
  *scenario = datasets::BuildCorpusScenario(options);
  embed::HashedLexiconEncoder encoder;
  return scoping::BuildSignatures(scenario->set, encoder);
}

TEST(IvfIndexTest, SingleListIsExactFlatSearch) {
  const linalg::Matrix vectors = RandomVectors(200, 16, 1);
  const FlatL2Index flat(vectors);
  IvfIndex::Options options;
  options.num_lists = 1;
  const IvfIndex ivf(vectors, options);
  for (uint64_t q = 0; q < 10; ++q) {
    const linalg::Vector query = RandomVectors(1, 16, 100 + q).Row(0);
    EXPECT_EQ(ivf.Search(query, 7), flat.Search(query, 7));
  }
}

TEST(IvfIndexTest, ProbingEveryListIsExact) {
  const linalg::Matrix vectors = RandomVectors(300, 12, 2);
  const FlatL2Index flat(vectors);
  IvfIndex::Options options;
  options.num_lists = 10;
  options.nprobe = 10;
  const IvfIndex ivf(vectors, options);
  for (uint64_t q = 0; q < 10; ++q) {
    const linalg::Vector query = RandomVectors(1, 12, 200 + q).Row(0);
    EXPECT_EQ(ivf.Search(query, 5), flat.Search(query, 5));
  }
}

TEST(IvfIndexTest, SearchIsDeterministicAndRespectsK) {
  const linalg::Matrix vectors = RandomVectors(150, 8, 3);
  IvfIndex::Options options;
  options.nprobe = 3;
  const IvfIndex ivf(vectors, options);
  const linalg::Vector query = RandomVectors(1, 8, 999).Row(0);
  const auto first = ivf.Search(query, 9);
  EXPECT_EQ(first.size(), 9u);
  EXPECT_EQ(first, ivf.Search(query, 9));
  // k larger than the index never overruns.
  EXPECT_LE(ivf.Search(query, 1000).size(), ivf.size());
}

TEST(IvfIndexTest, QuantizedWithLargeRescorePoolMatchesExactRanking) {
  const linalg::Matrix vectors = RandomVectors(250, 24, 4);
  IvfIndex::Options exact_options;
  exact_options.num_lists = 8;
  exact_options.nprobe = 4;
  const IvfIndex exact(vectors, exact_options);
  IvfIndex::Options quantized_options = exact_options;
  quantized_options.quantized = true;
  // A rescore pool covering every probed row makes the int8 prescan a
  // pure reordering that the exact rescoring fully undoes.
  quantized_options.rescore_factor = 1000;
  const IvfIndex quantized(vectors, quantized_options);
  ASSERT_TRUE(quantized.quantized());
  for (uint64_t q = 0; q < 10; ++q) {
    const linalg::Vector query = RandomVectors(1, 24, 300 + q).Row(0);
    EXPECT_EQ(quantized.Search(query, 6), exact.Search(query, 6));
  }
}

TEST(IvfIndexTest, ProbingIsSubLinear) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(8, &scenario);
  const size_t n = signatures.size();
  const IvfIndex ivf(signatures.signatures);  // auto lists ~ sqrt(n).
  ASSERT_GT(ivf.num_lists(), 8u);
  size_t probed = 0;
  for (size_t i = 0; i < n; ++i) {
    probed += ivf.ProbedRows(signatures.signatures.RowSpan(i), 10,
                             ivf.nprobe());
  }
  const double mean_fraction =
      static_cast<double>(probed) / (static_cast<double>(n) * n);
  EXPECT_GT(mean_fraction, 0.0);
  EXPECT_LT(mean_fraction, 0.7);
}

TEST(IvfIndexTest, RecallAtTenMeetsFloorAtDocumentedNprobe) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(6, &scenario);
  const size_t n = signatures.size();
  const FlatL2Index flat(signatures.signatures);
  const IvfIndex ivf(signatures.signatures);  // defaults: nprobe = 8.
  size_t hits = 0;
  size_t wanted = 0;
  for (size_t i = 0; i < n; ++i) {
    const linalg::Vector query = signatures.signatures.Row(i);
    const auto exact = flat.Search(query, 10);
    const auto approx = ivf.Search(query, 10);
    const std::set<size_t> approx_set(approx.begin(), approx.end());
    wanted += exact.size();
    for (size_t id : exact) hits += approx_set.count(id);
  }
  // The invariant gated in BENCH_corpus_scale.json (docs/SCALING.md).
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(wanted), 0.95);
}

TEST(IvfMatcherTest, FlatDegenerateEqualsFullProbe) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(4, &scenario);
  const std::vector<bool> active(signatures.size(), true);
  IvfMatcher::Options flat_options;
  flat_options.num_lists = 1;
  IvfMatcher::Options full_options;
  full_options.num_lists = 8;
  full_options.nprobe = 8;  // Probes every list -> exact as well.
  const auto flat = IvfMatcher(flat_options).Match(signatures, active);
  const auto full = IvfMatcher(full_options).Match(signatures, active);
  EXPECT_EQ(flat, full);
  EXPECT_GT(flat.size(), 0u);
}

TEST(IvfMatcherTest, DeterministicAcrossRunsAndThreadCounts) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(5, &scenario);
  const std::vector<bool> active(signatures.size(), true);
  IvfMatcher::Options options;
  options.nprobe = 4;
  const IvfMatcher serial(options);
  const auto baseline = serial.Match(signatures, active);
  EXPECT_EQ(baseline, serial.Match(signatures, active));
  ThreadPool pool(4);
  const IvfMatcher parallel(options, &pool);
  EXPECT_EQ(baseline, parallel.Match(signatures, active));
}

TEST(IvfMatcherTest, RespectsActiveMaskAndCandidateContract) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(4, &scenario);
  std::vector<bool> active(signatures.size(), true);
  for (size_t i = 0; i < active.size(); i += 3) active[i] = false;
  IvfMatcher::Options options;
  const auto result = IvfMatcher(options).Match(signatures, active);
  for (const auto& [a, b] : result) {
    const int ia = scenario.set.IndexOf(a);
    const int ib = scenario.set.IndexOf(b);
    ASSERT_GE(ia, 0);
    ASSERT_GE(ib, 0);
    EXPECT_TRUE(active[static_cast<size_t>(ia)]);
    EXPECT_TRUE(active[static_cast<size_t>(ib)]);
    EXPECT_NE(a.schema, b.schema);
    EXPECT_EQ(a.is_table(), b.is_table());
  }
}

TEST(IvfMatcherTest, TokenPrefilterKeepsOnlySharedTokenPairs) {
  datasets::MatchingScenario scenario;
  const auto signatures = CorpusSignatures(4, &scenario);
  const std::vector<bool> active(signatures.size(), true);
  IvfMatcher::Options options;
  options.token_prefilter = true;
  const auto result = IvfMatcher(options).Match(signatures, active);
  const auto allowed = TokenBlockingCandidates(signatures, active);
  EXPECT_GT(result.size(), 0u);
  for (const auto& [a, b] : result) {
    const size_t ia = static_cast<size_t>(scenario.set.IndexOf(a));
    const size_t ib = static_cast<size_t>(scenario.set.IndexOf(b));
    EXPECT_TRUE(allowed.count({std::min(ia, ib), std::max(ia, ib)}) > 0);
  }
}

}  // namespace
}  // namespace colscope::matching
