#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/cluster_matcher.h"
#include "matching/flat_index.h"
#include "matching/kmeans.h"
#include "matching/lsh_matcher.h"
#include "matching/sim.h"

namespace colscope::matching {
namespace {

using linalg::Matrix;
using linalg::Vector;

class MatchingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildToyScenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    all_active_.assign(signatures_.size(), true);
  }

  bool Contains(const std::set<ElementPair>& pairs, const char* schema_a,
                const char* path_a, const char* schema_b,
                const char* path_b) {
    auto a = scenario_.set.Resolve(schema_a, path_a);
    auto b = scenario_.set.Resolve(schema_b, path_b);
    EXPECT_TRUE(a.ok() && b.ok());
    return pairs.count(MakePair(*a, *b)) > 0;
  }

  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> all_active_;
};

// --- k-Means ------------------------------------------------------------------

TEST(KMeansTest, SeparatesTwoClusters) {
  Matrix points(8, 2);
  for (size_t i = 0; i < 4; ++i) {
    points(i, 0) = 0.0 + 0.01 * static_cast<double>(i);
    points(i, 1) = 0.0;
    points(i + 4, 0) = 10.0 + 0.01 * static_cast<double>(i);
    points(i + 4, 1) = 10.0;
  }
  KMeansOptions options;
  options.k = 2;
  const auto assign = KMeansCluster(points, options);
  ASSERT_EQ(assign.size(), 8u);
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(assign[i], assign[0]);
  for (size_t i = 5; i < 8; ++i) EXPECT_EQ(assign[i], assign[4]);
  EXPECT_NE(assign[0], assign[4]);
}

TEST(KMeansTest, KLargerThanNClamps) {
  Matrix points(3, 2);
  points(1, 0) = 1.0;
  points(2, 0) = 2.0;
  KMeansOptions options;
  options.k = 10;
  const auto assign = KMeansCluster(points, options);
  for (size_t a : assign) EXPECT_LT(a, 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(3);
  Matrix points(30, 4);
  for (double& v : points.data()) v = rng.NextGaussian();
  KMeansOptions options;
  options.k = 4;
  EXPECT_EQ(KMeansCluster(points, options), KMeansCluster(points, options));
}

TEST(KMeansTest, IdenticalPointsAreSafe) {
  Matrix points(6, 3, 1.0);
  KMeansOptions options;
  options.k = 3;
  const auto assign = KMeansCluster(points, options);
  EXPECT_EQ(assign.size(), 6u);
}

// --- FlatL2Index ------------------------------------------------------------------

TEST(FlatIndexTest, ExactNearestNeighbours) {
  Matrix vectors(4, 2);
  vectors(0, 0) = 0.0;
  vectors(1, 0) = 1.0;
  vectors(2, 0) = 2.0;
  vectors(3, 0) = 3.0;
  FlatL2Index index(vectors);
  const auto hits = index.Search({1.1, 0.0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(FlatIndexTest, KLargerThanIndexSize) {
  Matrix vectors(2, 2);
  vectors(1, 0) = 1.0;
  FlatL2Index index(vectors);
  EXPECT_EQ(index.Search({0.0, 0.0}, 10).size(), 2u);
}

TEST(LshIndexTest, ApproximateSearchFindsNearNeighbours) {
  Rng rng(5);
  Matrix vectors(200, 16);
  for (double& v : vectors.data()) v = rng.NextGaussian();
  RandomHyperplaneLsh lsh(vectors, {});
  FlatL2Index flat(vectors);
  // Query with an indexed vector: its own id must be the top hit.
  for (size_t q : {0u, 50u, 199u}) {
    const auto hits = lsh.Search(vectors.Row(q), 3);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0], q);
  }
}

// --- SIM ----------------------------------------------------------------------------

TEST_F(MatchingFixture, SimFindsObviousLinkages) {
  SimMatcher sim(0.6);
  const auto pairs = sim.Match(signatures_, all_active_);
  EXPECT_TRUE(Contains(pairs, "S1", "CLIENT.CID", "S2", "CUSTOMER.CID"));
  EXPECT_TRUE(Contains(pairs, "S1", "CLIENT.NAME", "S3", "CONTACTS.CNAME"));
}

TEST_F(MatchingFixture, SimThresholdMonotone) {
  const auto loose = SimMatcher(0.4).Match(signatures_, all_active_);
  const auto strict = SimMatcher(0.8).Match(signatures_, all_active_);
  EXPECT_LE(strict.size(), loose.size());
  for (const auto& pair : strict) EXPECT_TRUE(loose.count(pair));
}

TEST_F(MatchingFixture, SimRespectsMask) {
  std::vector<bool> mask(signatures_.size(), false);
  const auto pairs = SimMatcher(0.0).Match(signatures_, mask);
  EXPECT_TRUE(pairs.empty());
}

TEST_F(MatchingFixture, SimOnlySameKindCrossSchemaPairs) {
  const auto pairs = SimMatcher(0.0).Match(signatures_, all_active_);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.schema, b.schema);
    EXPECT_EQ(a.is_table(), b.is_table());
  }
}

TEST_F(MatchingFixture, SimComparisonCountMatchesCartesianSameKind) {
  // Tables: S1 x S2 (1*2) + S1 x S3 + S1 x S4 + S2 x S3 (2) + S2 x S4 (2)
  // + S3 x S4 = 1*2+1+1+2+2+1 = 9.
  // Attributes: 4*8 + 4*3 + 4*4 + 8*3 + 8*4 + 3*4 = 32+12+16+24+32+12=128.
  EXPECT_EQ(SimMatcher::ComparisonCount(signatures_, all_active_),
            9u + 128u);
}

// --- CLUSTER ---------------------------------------------------------------------------

TEST_F(MatchingFixture, ClusterMatcherProducesValidPairs) {
  ClusterMatcher cluster(2);
  const auto pairs = cluster.Match(signatures_, all_active_);
  EXPECT_FALSE(pairs.empty());
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.schema, b.schema);
    EXPECT_EQ(a.is_table(), b.is_table());
  }
}

TEST_F(MatchingFixture, MoreClustersFewerPairs) {
  const auto few = ClusterMatcher(2).Match(signatures_, all_active_);
  const auto many = ClusterMatcher(20).Match(signatures_, all_active_);
  EXPECT_LE(many.size(), few.size());
}

// --- LSH ------------------------------------------------------------------------------

TEST_F(MatchingFixture, LshTopOneFindsIdenticalCounterpart) {
  LshMatcher lsh(1);
  const auto pairs = lsh.Match(signatures_, all_active_);
  EXPECT_TRUE(Contains(pairs, "S1", "CLIENT.CID", "S2", "CUSTOMER.CID") ||
              Contains(pairs, "S1", "CLIENT.CID", "S3", "CONTACTS.CID"));
}

TEST_F(MatchingFixture, LshLargerKMorePairs) {
  const auto k1 = LshMatcher(1).Match(signatures_, all_active_);
  const auto k5 = LshMatcher(5).Match(signatures_, all_active_);
  EXPECT_GE(k5.size(), k1.size());
}

TEST_F(MatchingFixture, LshRespectsMask) {
  // Deactivate all of S4: no pair may involve schema 3.
  std::vector<bool> mask = all_active_;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_.refs[i].schema == 3) mask[i] = false;
  }
  const auto pairs = LshMatcher(5).Match(signatures_, mask);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a.schema, 3);
    EXPECT_NE(b.schema, 3);
  }
}

TEST_F(MatchingFixture, ApproximateLshIsReasonableSubstitute) {
  const auto exact = LshMatcher(3, /*approximate=*/false)
                         .Match(signatures_, all_active_);
  const auto approx = LshMatcher(3, /*approximate=*/true)
                          .Match(signatures_, all_active_);
  // Approximate retrieval agrees on a majority of the pairs.
  size_t common = 0;
  for (const auto& pair : approx) common += exact.count(pair);
  EXPECT_GE(common * 2, exact.size());
}

TEST_F(MatchingFixture, MatcherNames) {
  EXPECT_EQ(SimMatcher(0.6).name(), "SIM(0.6)");
  EXPECT_EQ(ClusterMatcher(5).name(), "CLUSTER(5)");
  EXPECT_EQ(LshMatcher(20).name(), "LSH(20)");
  EXPECT_EQ(LshMatcher(2, true).name(), "LSH(2)~");
}

}  // namespace
}  // namespace colscope::matching
