#include <gtest/gtest.h>

#include <cmath>

#include "common/json_writer.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "pipeline/report.h"

namespace colscope {
namespace {

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriterTest, ObjectsArraysAndValues) {
  JsonWriter json;
  json.BeginObject();
  json.Key("s").String("x");
  json.Key("n").Number(1.5);
  json.Key("i").Int(-7);
  json.Key("b").Bool(true);
  json.Key("z").Null();
  json.Key("a").BeginArray().Int(1).Int(2).EndArray();
  json.Key("o").BeginObject().Key("k").String("v").EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            R"({"s":"x","n":1.5,"i":-7,"b":true,"z":null,"a":[1,2],)"
            R"("o":{"k":"v"}})");
}

TEST(JsonWriterTest, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray().Number(std::nan("")).Number(1.0).EndArray();
  EXPECT_EQ(json.str(), "[null,1]");
}

// --- RunToJson -----------------------------------------------------------------

TEST(RunToJsonTest, FullRunSerializes) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  pipeline::PipelineOptions options;
  options.explained_variance = 0.5;
  pipeline::Pipeline pipe(&encoder, options);
  matching::SimMatcher matcher(0.6);
  auto run = pipe.Run(scenario.set, matcher, &scenario.truth);
  ASSERT_TRUE(run.ok());

  const std::string json = pipeline::RunToJson(*run, scenario.set);
  // Structural spot checks (kept cheap; a JSON parser is out of scope).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"num_elements\":24"), std::string::npos);
  EXPECT_NE(json.find("\"S1.CLIENT\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"table\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"attribute\""), std::string::npos);
  EXPECT_NE(json.find("\"quality\":{"), std::string::npos);
  EXPECT_NE(json.find("\"reduction_ratio\":"), std::string::npos);
  // Balanced braces/brackets.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RunToJsonTest, NoTruthYieldsNullQuality) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  pipeline::Pipeline pipe(&encoder, pipeline::PipelineOptions{});
  matching::SimMatcher matcher(0.8);
  auto run = pipe.Run(scenario.set, matcher);
  ASSERT_TRUE(run.ok());
  EXPECT_NE(pipeline::RunToJson(*run, scenario.set).find("\"quality\":null"),
            std::string::npos);
}

}  // namespace
}  // namespace colscope
