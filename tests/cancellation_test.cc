#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace colscope {
namespace {

TEST(CancellationTokenTest, StartsClearAndTripsPermanently) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ChildSeesParentCancellation) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(parent.cancelled());
}

TEST(CancellationTokenTest, ChildCancellationDoesNotPropagateUp) {
  CancellationToken parent;
  CancellationToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancellationTokenTest, GrandchildSeesRootCancellation) {
  CancellationToken root;
  CancellationToken mid(&root);
  CancellationToken leaf(&mid);
  root.Cancel();
  EXPECT_TRUE(leaf.cancelled());
}

TEST(CancellationTokenTest, ConcurrentCancelAndPollIsSafe) {
  CancellationToken token;
  std::vector<std::thread> pollers;
  std::atomic<bool> seen{false};
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&] {
      while (!token.cancelled()) {
      }
      seen.store(true);
    });
  }
  token.Cancel();
  for (std::thread& t : pollers) t.join();
  EXPECT_TRUE(seen.load());
}

TEST(SimulatedRunClockTest, AdvancesOnlyWhenAsked) {
  SimulatedRunClock clock;
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
  clock.Advance(12.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 12.5);
}

TEST(SimulatedRunClockTest, TickAdvancesPerObservation) {
  SimulatedRunClock clock(/*tick_ms=*/1.0);
  const double first = clock.NowMs();
  const double second = clock.NowMs();
  EXPECT_DOUBLE_EQ(second - first, 1.0);
}

TEST(SystemRunClockTest, IsMonotonicAndStartsNearZero) {
  SystemRunClock clock;
  const double a = clock.NowMs();
  const double b = clock.NowMs();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_ms()));
}

TEST(DeadlineTest, ExpiresWhenSimulatedTimePasses) {
  SimulatedRunClock clock;
  Deadline deadline = Deadline::After(&clock, 10.0);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining_ms(), 10.0);
  clock.Advance(4.0);
  EXPECT_DOUBLE_EQ(deadline.remaining_ms(), 6.0);
  clock.Advance(100.0);
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining_ms(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  SimulatedRunClock clock;
  EXPECT_TRUE(Deadline::After(&clock, 0.0).expired());
  EXPECT_TRUE(Deadline::After(&clock, -5.0).expired());
}

TEST(DeadlineTest, CopiesShareTheClock) {
  SimulatedRunClock clock;
  Deadline a = Deadline::After(&clock, 10.0);
  Deadline b = a;
  clock.Advance(15.0);
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

}  // namespace
}  // namespace colscope
