#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "outlier/autoencoder.h"
#include "outlier/lof.h"
#include "outlier/pca_oda.h"
#include "outlier/zscore.h"

namespace colscope::outlier {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Dense Gaussian cluster around the origin plus one far-away outlier as
/// the last row.
Matrix ClusterWithOutlier(size_t n, size_t d, double outlier_distance,
                          uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t r = 0; r + 1 < n; ++r) {
    for (size_t c = 0; c < d; ++c) m(r, c) = 0.1 * rng.NextGaussian();
  }
  for (size_t c = 0; c < d; ++c) m(n - 1, c) = outlier_distance;
  return m;
}

/// Index of the maximum score.
size_t ArgMax(const Vector& scores) {
  return static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

TEST(ZScoreTest, FlagsFarPoint) {
  Matrix m = ClusterWithOutlier(30, 8, 5.0, 1);
  ZScoreDetector detector;
  Vector scores = detector.Scores(m);
  ASSERT_EQ(scores.size(), 30u);
  EXPECT_EQ(ArgMax(scores), 29u);
}

TEST(ZScoreTest, ConstantColumnsAreHarmless) {
  Matrix m(5, 3, 1.0);  // Zero variance everywhere.
  ZScoreDetector detector;
  Vector scores = detector.Scores(m);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ZScoreTest, NameIsStable) {
  EXPECT_EQ(ZScoreDetector().name(), "z-score");
}

TEST(LofTest, FlagsDensityOutlier) {
  Matrix m = ClusterWithOutlier(40, 6, 4.0, 2);
  LofDetector detector(10);
  Vector scores = detector.Scores(m);
  EXPECT_EQ(ArgMax(scores), 39u);
  // Cluster members are near 1.
  for (size_t i = 0; i + 1 < 40; ++i) EXPECT_LT(scores[i], 2.0);
  EXPECT_GT(scores[39], 2.0);
}

TEST(LofTest, SmallInputsAreSafe) {
  LofDetector detector(20);
  EXPECT_EQ(detector.Scores(Matrix(1, 4, 0.0)).size(), 1u);
  EXPECT_EQ(detector.Scores(Matrix(0, 4, 0.0)).size(), 0u);
  // n-1 < k clamps the neighborhood; all scores stay finite. (With the
  // neighborhood covering the whole set, LOF's ranking is not meaningful
  // for such tiny inputs, so only well-formedness is asserted.)
  Matrix m = ClusterWithOutlier(5, 4, 3.0, 3);
  Vector scores = detector.Scores(m);
  EXPECT_EQ(scores.size(), 5u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LofTest, DuplicatePointsDoNotExplode) {
  Matrix m(10, 3, 0.5);  // All identical -> zero distances.
  LofDetector detector(3);
  Vector scores = detector.Scores(m);
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(LofTest, NameIncludesNeighborCount) {
  EXPECT_EQ(LofDetector(20).name(), "lof(n=20)");
}

TEST(PcaOdaTest, FlagsOffSubspacePoint) {
  // Points on a line in R^5 plus one point off the line.
  Rng rng(4);
  Matrix m(21, 5);
  for (size_t r = 0; r < 20; ++r) {
    const double t = rng.NextGaussian();
    for (size_t c = 0; c < 5; ++c) m(r, c) = t * (1.0 + 0.1 * c);
  }
  m(20, 0) = 0.0;
  m(20, 1) = 3.0;
  m(20, 2) = -3.0;
  m(20, 3) = 3.0;
  m(20, 4) = -3.0;
  PcaDetector detector(0.5);
  Vector scores = detector.Scores(m);
  EXPECT_EQ(ArgMax(scores), 20u);
}

TEST(PcaOdaTest, HigherVarianceLowersScores) {
  // Isotropic Gaussian data spreads the explained variance over all
  // components, so different variance targets select different ranks.
  Rng rng(55);
  Matrix m(30, 10);
  for (double& v : m.data()) v = rng.NextGaussian();
  const Vector low = PcaDetector(0.2).Scores(m);
  const Vector high = PcaDetector(0.95).Scores(m);
  double low_sum = 0.0, high_sum = 0.0;
  for (size_t i = 0; i < low.size(); ++i) {
    low_sum += low[i];
    high_sum += high[i];
  }
  EXPECT_LT(high_sum, low_sum);
}

TEST(PcaOdaTest, NameEncodesVariance) {
  EXPECT_EQ(PcaDetector(0.5).name(), "pca(v=0.50)");
}

TEST(AutoencoderTest, FlagsOutlierWithTinyEnsemble) {
  Matrix m = ClusterWithOutlier(25, 8, 4.0, 6);
  AutoencoderOptions options;
  options.hidden_dims = {6, 3, 6};
  options.ensemble_size = 2;
  options.epochs = 60;
  AutoencoderDetector detector(options);
  Vector scores = detector.Scores(m);
  EXPECT_EQ(ArgMax(scores), 24u);
}

TEST(AutoencoderTest, DeterministicForSeed) {
  Matrix m = ClusterWithOutlier(10, 6, 3.0, 7);
  AutoencoderOptions options;
  options.hidden_dims = {4};
  options.ensemble_size = 1;
  options.epochs = 5;
  AutoencoderDetector a(options), b(options);
  EXPECT_EQ(a.Scores(m), b.Scores(m));
}

TEST(AutoencoderTest, EmptyInput) {
  AutoencoderDetector detector;
  EXPECT_TRUE(detector.Scores(Matrix()).empty());
}

}  // namespace
}  // namespace colscope::outlier
