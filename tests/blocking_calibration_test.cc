#include <gtest/gtest.h>

#include "datasets/oc3.h"
#include "datasets/toy.h"
#include "embed/hashed_encoder.h"
#include "matching/sim.h"
#include "matching/token_blocking.h"
#include "scoping/calibration.h"
#include "scoping/collaborative.h"
#include "scoping/signatures.h"

namespace colscope {
namespace {

// --- Token blocking -----------------------------------------------------------

class TokenBlockingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = datasets::BuildOc3Scenario();
    signatures_ = scoping::BuildSignatures(scenario_.set, encoder_);
    all_.assign(signatures_.size(), true);
  }
  embed::HashedLexiconEncoder encoder_;
  datasets::MatchingScenario scenario_;
  scoping::SignatureSet signatures_;
  std::vector<bool> all_;
};

TEST_F(TokenBlockingTest, ResultIsSubsetOfSim) {
  const auto blocked =
      matching::TokenBlockedSimMatcher(0.6).Match(signatures_, all_);
  const auto full = matching::SimMatcher(0.6).Match(signatures_, all_);
  for (const auto& pair : blocked) {
    EXPECT_TRUE(full.count(pair))
        << scenario_.set.QualifiedName(pair.first) << " <-> "
        << scenario_.set.QualifiedName(pair.second);
  }
  EXPECT_LE(blocked.size(), full.size());
}

TEST_F(TokenBlockingTest, KeepsTokenSharingPairs) {
  // Identical leading names always share a token, so the II pairs with
  // verbatim names survive blocking.
  const auto blocked =
      matching::TokenBlockedSimMatcher(0.5).Match(signatures_, all_);
  auto a = scenario_.set.Resolve("OC-Oracle", "PRODUCTS.PRODUCT_ID");
  auto b = scenario_.set.Resolve("OC-HANA", "PRODUCTS.PRODUCT_ID");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(blocked.count(matching::MakePair(*a, *b)));
}

TEST_F(TokenBlockingTest, DrasticallyFewerComparisons) {
  const size_t candidates =
      matching::TokenBlockedSimMatcher::CandidateCount(signatures_, all_);
  const size_t cartesian =
      matching::SimMatcher::ComparisonCount(signatures_, all_);
  EXPECT_LT(candidates * 3, cartesian);  // At least 3x fewer comparisons.
  EXPECT_GT(candidates, 0u);
}

TEST_F(TokenBlockingTest, RespectsMaskAndName) {
  const std::vector<bool> none(signatures_.size(), false);
  EXPECT_TRUE(
      matching::TokenBlockedSimMatcher(0.0).Match(signatures_, none).empty());
  EXPECT_EQ(matching::TokenBlockedSimMatcher(0.6).name(), "TBSIM(0.6)");
}

// --- Variance calibration --------------------------------------------------------

TEST(CalibrationTest, ReturnsGridValueWithStability) {
  auto scenario = datasets::BuildOc3Scenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto result = scoping::CalibrateVariance(signatures, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Chosen v is an interior grid value within the paper's band.
  EXPECT_GE(result->v, 0.5);
  EXPECT_LE(result->v, 0.95);
  EXPECT_GT(result->stability, 0.5);
  EXPECT_EQ(result->stabilities.size(), result->grid.size());
  // Boundary entries stay zero-padded.
  EXPECT_DOUBLE_EQ(result->stabilities.front(), 0.0);
  EXPECT_DOUBLE_EQ(result->stabilities.back(), 0.0);
  // The chosen v attains the max interior stability.
  double max_interior = 0.0;
  for (size_t i = 1; i + 1 < result->grid.size(); ++i) {
    max_interior = std::max(max_interior, result->stabilities[i]);
  }
  EXPECT_DOUBLE_EQ(result->stability, max_interior);
}

TEST(CalibrationTest, DeterministicAndValidatesInput) {
  auto scenario = datasets::BuildToyScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto a = scoping::CalibrateVariance(signatures, 4);
  const auto b = scoping::CalibrateVariance(signatures, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->v, b->v);
  EXPECT_FALSE(scoping::CalibrateVariance(signatures, 4, {0.5, 0.6}).ok());
  EXPECT_FALSE(
      scoping::CalibrateVariance(signatures, 4, {0.9, 0.5, 0.7}).ok());
}

TEST(CalibrationTest, CalibratedVIsUsableEndToEnd) {
  auto scenario = datasets::BuildOc3FoScenario();
  embed::HashedLexiconEncoder encoder;
  const auto signatures = scoping::BuildSignatures(scenario.set, encoder);
  const auto calibration = scoping::CalibrateVariance(signatures, 4);
  ASSERT_TRUE(calibration.ok());
  const auto keep =
      scoping::CollaborativeScoping(signatures, 4, calibration->v);
  ASSERT_TRUE(keep.ok());
  // A sensible operating point: prunes a sizable chunk, keeps a core.
  size_t kept = 0;
  for (bool k : *keep) kept += k;
  EXPECT_GT(kept, signatures.size() / 10);
  EXPECT_LT(kept, signatures.size());
}

}  // namespace
}  // namespace colscope
