#include <gtest/gtest.h>

#include "schema/ddl_parser.h"
#include "schema/schema.h"
#include "schema/schema_set.h"
#include "schema/serialize.h"

namespace colscope::schema {
namespace {

// --- Model ------------------------------------------------------------------

TEST(SchemaModelTest, AddAndFind) {
  Schema s("S");
  Table t;
  t.name = "CLIENT";
  t.attributes.push_back({"CID", "CLIENT", "NUMBER", DataType::kDecimal,
                          Constraint::kPrimaryKey});
  ASSERT_TRUE(s.AddTable(t).ok());
  EXPECT_NE(s.FindTable("CLIENT"), nullptr);
  EXPECT_EQ(s.FindTable("NOPE"), nullptr);
  EXPECT_NE(s.FindAttribute("CLIENT", "CID"), nullptr);
  EXPECT_EQ(s.FindAttribute("CLIENT", "NOPE"), nullptr);
  EXPECT_EQ(s.num_tables(), 1u);
  EXPECT_EQ(s.num_attributes(), 1u);
  EXPECT_EQ(s.num_elements(), 2u);
}

TEST(SchemaModelTest, DuplicateTableRejected) {
  Schema s("S");
  Table t;
  t.name = "X";
  ASSERT_TRUE(s.AddTable(t).ok());
  EXPECT_EQ(s.AddTable(t).code(), StatusCode::kAlreadyExists);
}

TEST(DataTypeTest, VendorNamesNormalize) {
  EXPECT_EQ(ParseDataType("VARCHAR2(255)"), DataType::kString);
  EXPECT_EQ(ParseDataType("NUMBER(10,2)"), DataType::kDecimal);
  EXPECT_EQ(ParseDataType("INT"), DataType::kInteger);
  EXPECT_EQ(ParseDataType("MEDIUMTEXT"), DataType::kString);
  EXPECT_EQ(ParseDataType("DATE"), DataType::kDate);
  EXPECT_EQ(ParseDataType("TIMESTAMP"), DataType::kDateTime);
  EXPECT_EQ(ParseDataType("BLOB"), DataType::kBlob);
  EXPECT_EQ(ParseDataType("GEOMETRY"), DataType::kUnknown);
}

// --- Serialization (T^a / T^t) --------------------------------------------

TEST(SerializeTest, AttributeMatchesPaperExample) {
  // Section 2.3: T^a(a_11) -> "CID CLIENT NUMBER PRIMARY KEY".
  Attribute a{"CID", "CLIENT", "NUMBER", DataType::kDecimal,
              Constraint::kPrimaryKey};
  EXPECT_EQ(SerializeAttribute(a), "CID CLIENT NUMBER PRIMARY KEY");
}

TEST(SerializeTest, TableMatchesPaperExample) {
  // Section 2.3: T^t(t_11) -> "CLIENT [CID, NAME, ADDRESS, PHONE]".
  Table t;
  t.name = "CLIENT";
  for (const char* name : {"CID", "NAME", "ADDRESS", "PHONE"}) {
    t.attributes.push_back({name, "CLIENT", "VARCHAR", DataType::kString,
                            Constraint::kNone});
  }
  EXPECT_EQ(SerializeTable(t), "CLIENT [CID, NAME, ADDRESS, PHONE]");
}

TEST(SerializeTest, AttributeWithoutConstraintOmitsSuffix) {
  Attribute a{"NAME", "CLIENT", "VARCHAR", DataType::kString,
              Constraint::kNone};
  EXPECT_EQ(SerializeAttribute(a), "NAME CLIENT VARCHAR");
}

TEST(SerializeTest, SchemaOrderIsTablesThenAttributes) {
  Schema s("S");
  Table t;
  t.name = "T";
  t.attributes.push_back({"A", "T", "INT", DataType::kInteger,
                          Constraint::kNone});
  ASSERT_TRUE(s.AddTable(t).ok());
  auto elems = SerializeSchema(s, 3);
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_TRUE(elems[0].ref.is_table());
  EXPECT_EQ(elems[0].ref.schema, 3);
  EXPECT_EQ(elems[0].text, "T [A]");
  EXPECT_FALSE(elems[1].ref.is_table());
  EXPECT_EQ(elems[1].text, "A T INT");
}

// --- DDL parser ----------------------------------------------------------------

TEST(DdlParserTest, ParsesBasicCreateTable) {
  auto r = ParseDdl(R"(
    CREATE TABLE CLIENT (
      CID NUMBER PRIMARY KEY,
      NAME VARCHAR(80) NOT NULL,
      ADDRESS VARCHAR(200)
    );)",
                    "S1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_EQ(s.num_tables(), 1u);
  EXPECT_EQ(s.num_attributes(), 3u);
  const Attribute* cid = s.FindAttribute("CLIENT", "CID");
  ASSERT_NE(cid, nullptr);
  EXPECT_EQ(cid->constraint, Constraint::kPrimaryKey);
  EXPECT_EQ(cid->raw_type, "NUMBER");
  EXPECT_EQ(s.FindAttribute("CLIENT", "NAME")->constraint, Constraint::kNone);
}

TEST(DdlParserTest, InlineReferencesBecomesForeignKey) {
  auto r = ParseDdl(
      "CREATE TABLE A (X INT PRIMARY KEY);"
      "CREATE TABLE B (Y INT REFERENCES A(X));",
      "S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->FindAttribute("B", "Y")->constraint, Constraint::kForeignKey);
}

TEST(DdlParserTest, TableLevelPrimaryAndForeignKeys) {
  auto r = ParseDdl(R"(
    CREATE TABLE T (
      A INT,
      B INT,
      C INT,
      PRIMARY KEY (A, B),
      FOREIGN KEY (C) REFERENCES OTHER(X) ON DELETE CASCADE
    );)",
                    "S");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->FindAttribute("T", "A")->constraint, Constraint::kPrimaryKey);
  EXPECT_EQ(r->FindAttribute("T", "B")->constraint, Constraint::kPrimaryKey);
  EXPECT_EQ(r->FindAttribute("T", "C")->constraint, Constraint::kForeignKey);
}

TEST(DdlParserTest, ConstraintNameForm) {
  auto r = ParseDdl(R"(
    CREATE TABLE T (
      A INT,
      CONSTRAINT t_pk PRIMARY KEY (A)
    );)",
                    "S");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->FindAttribute("T", "A")->constraint, Constraint::kPrimaryKey);
}

TEST(DdlParserTest, CommentsAndQuotedIdentifiers) {
  auto r = ParseDdl(R"(
    -- line comment
    /* block
       comment */
    CREATE TABLE "Quoted" (
      `col` INT,  -- trailing comment
      [mscol] VARCHAR(5)
    );)",
                    "S");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->FindTable("Quoted"), nullptr);
  EXPECT_NE(r->FindAttribute("Quoted", "col"), nullptr);
  EXPECT_NE(r->FindAttribute("Quoted", "mscol"), nullptr);
}

TEST(DdlParserTest, SkipsNonTableStatements) {
  auto r = ParseDdl(
      "DROP TABLE X; CREATE INDEX idx ON T(A);"
      "CREATE TABLE T (A INT); INSERT INTO T VALUES (1);",
      "S");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_tables(), 1u);
}

TEST(DdlParserTest, QualifiedTableNameKeepsLastComponent) {
  auto r = ParseDdl("CREATE TABLE CO.ORDERS (A INT);", "S");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->FindTable("ORDERS"), nullptr);
}

TEST(DdlParserTest, PrecisionAndDefaults) {
  auto r = ParseDdl(
      "CREATE TABLE T (A DECIMAL(10,2) DEFAULT 0.0 NOT NULL, "
      "B VARCHAR(15) DEFAULT 'x');",
      "S");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->FindAttribute("T", "A")->type, DataType::kDecimal);
}

TEST(DdlParserTest, MalformedInputReturnsError) {
  EXPECT_FALSE(ParseDdl("CREATE TABLE (A INT);", "S").ok());
  EXPECT_FALSE(ParseDdl("CREATE TABLE T A INT;", "S").ok());
}

TEST(DdlParserTest, DuplicateTableIsError) {
  EXPECT_FALSE(
      ParseDdl("CREATE TABLE T (A INT); CREATE TABLE T (B INT);", "S").ok());
}

// --- SchemaSet -----------------------------------------------------------------

class SchemaSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s1 = ParseDdl("CREATE TABLE A (X INT, Y INT); CREATE TABLE B (Z INT);",
                       "S1");
    auto s2 = ParseDdl("CREATE TABLE C (W INT);", "S2");
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    set_ = SchemaSet({*s1, *s2});
  }
  SchemaSet set_;
};

TEST_F(SchemaSetTest, FlattenedEnumeration) {
  // S1: tables A,B then attrs X,Y,Z; S2: table C then attr W.
  ASSERT_EQ(set_.num_elements(), 7u);
  EXPECT_EQ(set_.elements()[0], TableRef(0, 0));
  EXPECT_EQ(set_.elements()[1], TableRef(0, 1));
  EXPECT_EQ(set_.elements()[2], AttributeRef(0, 0, 0));
  EXPECT_EQ(set_.elements()[4], AttributeRef(0, 1, 0));
  EXPECT_EQ(set_.elements()[5], TableRef(1, 0));
  EXPECT_EQ(set_.elements()[6], AttributeRef(1, 0, 0));
}

TEST_F(SchemaSetTest, IndexOfInvertsEnumeration) {
  for (size_t i = 0; i < set_.num_elements(); ++i) {
    EXPECT_EQ(set_.IndexOf(set_.elements()[i]), static_cast<int>(i));
  }
}

TEST_F(SchemaSetTest, QualifiedNames) {
  EXPECT_EQ(set_.QualifiedName(TableRef(0, 1)), "S1.B");
  EXPECT_EQ(set_.QualifiedName(AttributeRef(0, 0, 1)), "S1.A.Y");
}

TEST_F(SchemaSetTest, ResolvePaths) {
  auto t = set_.Resolve("S1", "B");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, TableRef(0, 1));
  auto a = set_.Resolve("S2", "C.W");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, AttributeRef(1, 0, 0));
  EXPECT_FALSE(set_.Resolve("S3", "A").ok());
  EXPECT_FALSE(set_.Resolve("S1", "A.NOPE").ok());
  EXPECT_FALSE(set_.Resolve("S1", "NOPE").ok());
  EXPECT_FALSE(set_.Resolve("S1", "A.X.Y").ok());
}

TEST_F(SchemaSetTest, CartesianSizes) {
  // Tables: 2*1 = 2; attributes: 3*1 = 3.
  EXPECT_EQ(set_.TableCartesianSize(), 2u);
  EXPECT_EQ(set_.AttributeCartesianSize(), 3u);
}

TEST_F(SchemaSetTest, ElementsOfSchema) {
  EXPECT_EQ(set_.ElementsOfSchema(0).size(), 5u);
  EXPECT_EQ(set_.ElementsOfSchema(1).size(), 2u);
}

}  // namespace
}  // namespace colscope::schema
