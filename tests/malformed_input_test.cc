// Corpus-style tests feeding deliberately broken DDL and CSV at the
// parsers: every input must produce a descriptive InvalidArgument (or
// parse to something sane), never a crash, hang, or silent truncation.

#include <gtest/gtest.h>

#include <string>

#include "datasets/csv_loader.h"
#include "schema/ddl_parser.h"

namespace colscope {
namespace {

using datasets::LoadCsvSchema;
using datasets::SplitCsvLine;
using schema::ParseDdl;

// ---------------------------------------------------------------- DDL

TEST(MalformedDdlTest, CorpusOfBrokenScriptsAllFailCleanly) {
  const char* corpus[] = {
      // Unterminated statements.
      "CREATE TABLE t (",
      "CREATE TABLE t (a INT",
      "CREATE TABLE t (a INT,",
      "CREATE TABLE t (a INT, b",
      "CREATE TABLE",
      // Unbalanced parens.
      "CREATE TABLE t (a DECIMAL(10, b INT)",
      "CREATE TABLE t ()",
      // Unterminated quoted identifiers (every quote style).
      "CREATE TABLE \"t (a INT);",
      "CREATE TABLE `t (a INT);",
      "CREATE TABLE [t (a INT);",
      "CREATE TABLE t (\"a INT);",
      // Missing pieces.
      "CREATE TABLE t (PRIMARY KEY)",
      "CREATE TABLE t (FOREIGN KEY a)",
      "CREATE TABLE (a INT);",
      "CREATE TABLE t.;",
  };
  for (const char* ddl : corpus) {
    const auto parsed = ParseDdl(ddl, "s");
    ASSERT_FALSE(parsed.ok()) << "accepted: " << ddl;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "wrong code for: " << ddl;
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

TEST(MalformedDdlTest, EmbeddedNulByteIsRejected) {
  std::string ddl = "CREATE TABLE t (a INT);";
  ddl.insert(10, 1, '\0');
  const auto parsed = ParseDdl(ddl, "s");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("NUL"), std::string::npos);
}

TEST(MalformedDdlTest, OversizedIdentifierIsRejected) {
  const std::string big(schema::kMaxDdlIdentifierBytes + 1, 'x');
  const auto parsed =
      ParseDdl("CREATE TABLE " + big + " (a INT);", "s");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // A quoted identifier gets no exemption.
  const auto quoted =
      ParseDdl("CREATE TABLE \"" + big + "\" (a INT);", "s");
  EXPECT_FALSE(quoted.ok());
}

TEST(MalformedDdlTest, IdentifierAtTheCapIsAccepted) {
  const std::string big(schema::kMaxDdlIdentifierBytes, 'x');
  const auto parsed =
      ParseDdl("CREATE TABLE " + big + " (a INT);", "s");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(MalformedDdlTest, TooManyColumnsIsRejected) {
  std::string ddl = "CREATE TABLE wide (";
  for (size_t i = 0; i <= schema::kMaxDdlColumnsPerTable; ++i) {
    if (i > 0) ddl += ", ";
    ddl += "c" + std::to_string(i) + " INT";
  }
  ddl += ");";
  const auto parsed = ParseDdl(ddl, "s");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("column cap"),
            std::string::npos);
}

TEST(MalformedDdlTest, OversizedScriptIsRejected) {
  std::string ddl(schema::kMaxDdlInputBytes + 1, ' ');
  const auto parsed = ParseDdl(ddl, "s");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(MalformedDdlTest, UnterminatedBlockCommentStillTerminates) {
  // The lexer must not read past the end of input.
  const auto parsed = ParseDdl("CREATE TABLE t (a INT); /* trailing", "s");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tables().size(), 1u);
}

// ---------------------------------------------------------------- CSV

TEST(MalformedCsvTest, RaggedRowReportsOneBasedLineAndColumnCounts) {
  const auto loaded = LoadCsvSchema("a,b,c\n1,2,3\n4,5\n", "s");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  // Physical line 3 (header is line 1), 2 columns vs 3.
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("2 columns"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("3 columns"),
            std::string::npos);
}

TEST(MalformedCsvTest, UnterminatedQuoteInDataRowIsRejected) {
  const auto loaded = LoadCsvSchema("a,b\n\"open,2\n", "s");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("unterminated"),
            std::string::npos);
}

TEST(MalformedCsvTest, UnterminatedQuoteInHeaderIsRejected) {
  const auto loaded = LoadCsvSchema("\"a,b\n1,2\n", "s");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST(MalformedCsvTest, EmptyColumnNameReportsPosition) {
  const auto loaded = LoadCsvSchema("a,,c\n1,2,3\n", "s");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("column 2"),
            std::string::npos);
}

TEST(MalformedCsvTest, CrlfLineEndingsParseCleanly) {
  const auto loaded = LoadCsvSchema("a,b\r\n1,2\r\n3,4\r\n", "s");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tables().size(), 1u);
  EXPECT_EQ(loaded->tables()[0].attributes.size(), 2u);
}

TEST(MalformedCsvTest, QuotedFieldWithEmbeddedDelimiterAndNewlineEscape) {
  bool unterminated = true;
  const auto fields =
      SplitCsvLine("\"x,y\",\"he said \"\"hi\"\"\"", ',', &unterminated);
  EXPECT_FALSE(unterminated);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "he said \"hi\"");
}

TEST(MalformedCsvTest, SplitReportsOpenQuote) {
  bool unterminated = false;
  (void)SplitCsvLine("\"never closed", ',', &unterminated);
  EXPECT_TRUE(unterminated);
}

}  // namespace
}  // namespace colscope
