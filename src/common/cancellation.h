#ifndef COLSCOPE_COMMON_CANCELLATION_H_
#define COLSCOPE_COMMON_CANCELLATION_H_

#include <atomic>
#include <mutex>

namespace colscope {

/// Cooperative cancellation flag shared between a run's phases and
/// whatever triggers the stop (a signal handler, a supervisor thread, a
/// test). Checking is one relaxed atomic load per level, so hot loops can
/// poll it per iteration; cancellation is level-triggered and permanent —
/// once tripped the token never resets.
///
/// Tokens are hierarchical: a child constructed with a parent pointer
/// reports cancelled when either it or any ancestor is cancelled, so a
/// run-level token fans out to per-phase tokens that can also be tripped
/// individually (e.g. one phase's watchdog) without stopping the rest.
/// The parent is borrowed and must outlive the child.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips this token (and therefore every descendant). Thread-safe and
  /// idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once this token or any ancestor has been cancelled.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancellationToken* parent_ = nullptr;
};

/// Time source for run-level deadlines. Injectable for the same reason as
/// obs::TraceClock and the simulated transport clock in exchange/: tests
/// (and the CLI's --run-clock sim) must be able to exhaust a deadline
/// deterministically, byte-for-byte reproducibly.
class RunClock {
 public:
  virtual ~RunClock() = default;
  /// Monotonic milliseconds since an arbitrary epoch. Must be safe to
  /// call from multiple threads.
  virtual double NowMs() = 0;
};

/// Wall time from std::chrono::steady_clock, zeroed at construction.
class SystemRunClock : public RunClock {
 public:
  SystemRunClock();
  double NowMs() override;

 private:
  long long epoch_ns_;
};

/// Deterministic clock: NowMs() returns the current simulated time and
/// advances it by `tick_ms` (default 0: time only moves via Advance()).
/// Thread-safe; identical call sequences yield identical timestamps.
class SimulatedRunClock : public RunClock {
 public:
  explicit SimulatedRunClock(double tick_ms = 0.0) : tick_ms_(tick_ms) {}
  double NowMs() override;
  void Advance(double ms);

 private:
  std::mutex mu_;
  double now_ms_ = 0.0;
  double tick_ms_;
};

/// A point on a RunClock by which work must finish. Value type (copyable)
/// so it can be derived and passed down the stack; the clock is borrowed
/// and must outlive every copy. The default-constructed deadline is
/// infinite — it never expires and needs no clock — so call sites can
/// thread one Deadline through unconditionally.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `budget_ms` after the clock's current time. A non-positive
  /// budget is already expired.
  static Deadline After(RunClock* clock, double budget_ms);

  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return clock_ == nullptr; }

  /// Milliseconds left; +inf when infinite, clamped at 0 once expired.
  double remaining_ms() const;

  bool expired() const { return remaining_ms() <= 0.0; }

 private:
  Deadline(RunClock* clock, double expires_at_ms)
      : clock_(clock), expires_at_ms_(expires_at_ms) {}

  RunClock* clock_ = nullptr;
  double expires_at_ms_ = 0.0;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_CANCELLATION_H_
