#ifndef COLSCOPE_COMMON_FAULT_INJECTOR_H_
#define COLSCOPE_COMMON_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace colscope {

/// The failure modes a simulated model-exchange transport can inject.
/// kNone means the payload is delivered intact at the base latency.
enum class FaultKind {
  kNone = 0,
  kDrop,       ///< Payload never arrives (transport returns Unavailable).
  kDelay,      ///< Payload arrives, but only after an extra delay.
  kTruncate,   ///< A strict prefix of the payload arrives.
  kCorrupt,    ///< One byte of the payload is bit-flipped.
  kStale,      ///< The oldest published version arrives, not the newest.
  kPartition,  ///< Connection accepted, then reads stall until deadline.
};

/// Number of distinct FaultKind values (including kNone).
inline constexpr size_t kNumFaultKinds = 7;

/// Canonical lower-snake name of `kind` ("none", "drop", ...). Stable;
/// used in reports and JSON, so safe to test against.
const char* FaultKindToString(FaultKind kind);

/// Independent per-fetch fault probabilities plus latency parameters for
/// the simulated transport clock. Probabilities are evaluated as one
/// draw over cumulative thresholds, so at most one fault fires per
/// fetch; their sum is clamped to 1.
struct FaultProfile {
  double drop_probability = 0.0;
  double delay_probability = 0.0;
  double truncate_probability = 0.0;
  double corrupt_probability = 0.0;
  double stale_probability = 0.0;
  /// Simulated time one healthy fetch costs.
  double base_latency_ms = 1.0;
  /// Extra simulated time added by a kDelay fault.
  double delay_latency_ms = 250.0;
  /// Seed of the deterministic fault stream; identical seeds reproduce
  /// identical fault sequences regardless of fetch interleaving.
  uint64_t seed = 0;
  /// When >= 0, every fetch whose publisher equals this schema index is
  /// dropped, regardless of the probabilities above — the in-memory
  /// stand-in for a crashed worker whose published models became
  /// unreachable (see net/ and docs/DISTRIBUTED.md).
  int drop_from = -1;
  /// When >= 0, the worker serving this schema index accepts fetch
  /// connections but never answers them: the socket stays open and the
  /// bytes stall until the client's io timeout / deadline fires. This is
  /// the network-partition stand-in, distinct from drop_from (whose
  /// refusal is immediate). Only the TCP worker path honors it; the
  /// in-memory injector never emits kPartition.
  int partition_from = -1;

  /// True when any fault probability is positive.
  bool any() const {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           truncate_probability > 0.0 || corrupt_probability > 0.0 ||
           stale_probability > 0.0 || drop_from >= 0 || partition_from >= 0;
  }
};

/// Parses a CLI-style fault spec: comma-separated key=value pairs with
/// keys drop, delay, truncate, corrupt, stale (probabilities in [0, 1]),
/// seed (uint64), base-latency and delay-latency (milliseconds),
/// drop-from (schema index whose fetches always drop), and
/// partition-from (schema index whose worker stalls instead of replying).
/// Example: "drop=0.3,corrupt=0.1,seed=42".
Result<FaultProfile> ParseFaultSpec(const std::string& spec);

/// Deterministic, seeded fault source for the simulated exchange
/// transport. Decisions are a pure function of (profile.seed, publisher,
/// consumer, attempt), so concurrent or reordered fetches see the same
/// faults as serial ones — the property the byte-identical
/// DegradationReport guarantee rests on.
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile) : profile_(profile) {}

  /// What happens to one fetch attempt and how it mutates the payload.
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    /// Simulated latency of this attempt (includes delay faults).
    double latency_ms = 0.0;
    /// For kTruncate: keep only payload[0, truncate_at).
    size_t truncate_at = 0;
    /// For kCorrupt: payload[corrupt_pos] ^= corrupt_mask.
    size_t corrupt_pos = 0;
    uint8_t corrupt_mask = 0;
  };

  /// Decides the fate of attempt `attempt` of `consumer` fetching
  /// `publisher`'s model of `payload_size` bytes.
  Decision Decide(uint64_t publisher, uint64_t consumer, uint64_t attempt,
                  size_t payload_size) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_FAULT_INJECTOR_H_
