#include "common/json_writer.h"

#include <cmath>

#include "common/strings.h"

namespace colscope {

void JsonWriter::Comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Comma();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Comma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Comma();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.10g", value);
  } else {
    out_ += "null";  // JSON has no NaN/Inf.
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  Comma();
  out_ += StrFormat("%lld", value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::Escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace colscope
