#ifndef COLSCOPE_COMMON_RNG_H_
#define COLSCOPE_COMMON_RNG_H_

#include <cstdint>

namespace colscope {

/// SplitMix64 step: deterministic 64-bit mix used both for seeding and as
/// a stateless hash finalizer. Public so hashing code can reuse it.
uint64_t SplitMix64(uint64_t& state);

/// Small, fast, deterministic PRNG (xoshiro256**). Deterministic across
/// platforms — required so that signatures, autoencoder inits, and k-Means
/// seeds reproduce bit-identically between runs and in tests.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) for bound >= 1.
  uint64_t NextBounded(uint64_t bound);

  /// Standard normal variate (Box-Muller; consumes two uniforms).
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_RNG_H_
