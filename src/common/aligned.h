#ifndef COLSCOPE_COMMON_ALIGNED_H_
#define COLSCOPE_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>

namespace colscope {

/// Minimal std::allocator replacement whose allocations start on an
/// `Alignment`-byte boundary (default: one cache line). Lets hot
/// numeric buffers — signature matrices, quantized signature rows — be
/// stored in a plain std::vector while guaranteeing SIMD loads never
/// straddle a cache line at the buffer start.
template <typename T, size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "Alignment below type alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    const size_t bytes = (n * sizeof(T) + Alignment - 1) & ~(Alignment - 1);
    void* p = std::aligned_alloc(Alignment, bytes == 0 ? Alignment : bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_ALIGNED_H_
