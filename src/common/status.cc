#include "common/status.h"

namespace colscope {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace colscope
