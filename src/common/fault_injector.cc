#include "common/fault_injector.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "common/strings.h"

namespace colscope {

namespace {

/// Strict double parse (no trailing garbage, finite).
bool ParseFiniteDouble(const std::string& token, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' &&
         end != token.c_str() && std::isfinite(out);
}

bool ParseUint64(const std::string& token, uint64_t& out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

Status SetProbability(const std::string& key, const std::string& value,
                      double& slot) {
  double p = 0.0;
  if (!ParseFiniteDouble(value, p) || p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("fault probability for '" + key +
                                   "' must be in [0, 1], got: " + value);
  }
  slot = p;
  return Status::Ok();
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kStale:
      return "stale";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

Result<FaultProfile> ParseFaultSpec(const std::string& spec) {
  FaultProfile profile;
  for (const std::string& pair : SplitString(spec, ",")) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec entry is not key=value: " +
                                     pair);
    }
    const std::string key(StripAsciiWhitespace(pair.substr(0, eq)));
    const std::string value(StripAsciiWhitespace(pair.substr(eq + 1)));
    if (key == "drop") {
      COLSCOPE_RETURN_IF_ERROR(
          SetProbability(key, value, profile.drop_probability));
    } else if (key == "delay") {
      COLSCOPE_RETURN_IF_ERROR(
          SetProbability(key, value, profile.delay_probability));
    } else if (key == "truncate") {
      COLSCOPE_RETURN_IF_ERROR(
          SetProbability(key, value, profile.truncate_probability));
    } else if (key == "corrupt") {
      COLSCOPE_RETURN_IF_ERROR(
          SetProbability(key, value, profile.corrupt_probability));
    } else if (key == "stale") {
      COLSCOPE_RETURN_IF_ERROR(
          SetProbability(key, value, profile.stale_probability));
    } else if (key == "seed") {
      if (!ParseUint64(value, profile.seed)) {
        return Status::InvalidArgument("malformed fault seed: " + value);
      }
    } else if (key == "drop-from") {
      uint64_t index = 0;
      if (!ParseUint64(value, index) || index > 0x7fffffffULL) {
        return Status::InvalidArgument("malformed drop-from index: " + value);
      }
      profile.drop_from = static_cast<int>(index);
    } else if (key == "partition-from") {
      uint64_t index = 0;
      if (!ParseUint64(value, index) || index > 0x7fffffffULL) {
        return Status::InvalidArgument("malformed partition-from index: " +
                                       value);
      }
      profile.partition_from = static_cast<int>(index);
    } else if (key == "base-latency") {
      if (!ParseFiniteDouble(value, profile.base_latency_ms) ||
          profile.base_latency_ms < 0.0) {
        return Status::InvalidArgument("malformed base-latency: " + value);
      }
    } else if (key == "delay-latency") {
      if (!ParseFiniteDouble(value, profile.delay_latency_ms) ||
          profile.delay_latency_ms < 0.0) {
        return Status::InvalidArgument("malformed delay-latency: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
  }
  return profile;
}

FaultInjector::Decision FaultInjector::Decide(uint64_t publisher,
                                              uint64_t consumer,
                                              uint64_t attempt,
                                              size_t payload_size) const {
  // Derive an independent stream per (publisher, consumer, attempt) so
  // the decision does not depend on the order fetches are issued in.
  uint64_t state = profile_.seed;
  state += 0x9e3779b97f4a7c15ULL * (publisher + 1);
  SplitMix64(state);
  state += 0xbf58476d1ce4e5b9ULL * (consumer + 1);
  SplitMix64(state);
  state += 0x94d049bb133111ebULL * (attempt + 1);
  Rng rng(SplitMix64(state));

  Decision decision;
  decision.latency_ms = profile_.base_latency_ms * (0.5 + rng.NextDouble());

  if (profile_.drop_from >= 0 &&
      publisher == static_cast<uint64_t>(profile_.drop_from)) {
    decision.kind = FaultKind::kDrop;
    return decision;
  }

  const double u = rng.NextDouble();
  double threshold = profile_.drop_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kDrop;
    return decision;
  }
  threshold += profile_.delay_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kDelay;
    decision.latency_ms += profile_.delay_latency_ms;
    return decision;
  }
  threshold += profile_.truncate_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kTruncate;
    decision.truncate_at =
        payload_size > 0 ? rng.NextBounded(payload_size) : 0;
    return decision;
  }
  threshold += profile_.corrupt_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kCorrupt;
    decision.corrupt_pos =
        payload_size > 0 ? rng.NextBounded(payload_size) : 0;
    decision.corrupt_mask = static_cast<uint8_t>(1 + rng.NextBounded(255));
    return decision;
  }
  threshold += profile_.stale_probability;
  if (u < threshold) {
    decision.kind = FaultKind::kStale;
    return decision;
  }
  return decision;
}

}  // namespace colscope
