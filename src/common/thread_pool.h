#ifndef COLSCOPE_COMMON_THREAD_POOL_H_
#define COLSCOPE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace colscope {

/// Minimal fixed-size thread pool. Used for the embarrassingly parallel
/// stages the paper points out ("the computation of the self-supervised
/// encoder-decoder and linkability assessment takes place in parallel at
/// each local schema", Section 3). Destruction waits for queued work.
class ThreadPool {
 public:
  /// `num_threads` 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `task(i)` for i in [0, count) across the pool and waits.
  /// Exceptions must not escape tasks (the library is exception-free).
  void ParallelFor(size_t count, const std::function<void(size_t)>& task);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_THREAD_POOL_H_
