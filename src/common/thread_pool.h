#ifndef COLSCOPE_COMMON_THREAD_POOL_H_
#define COLSCOPE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace colscope {

/// Instrumentation hooks of a ThreadPool. Implementations must be
/// thread-safe: OnScheduled runs on the scheduling thread, OnTaskDone on
/// whichever worker finished the task. Defined here (not in obs/) so
/// common stays dependency-free; obs::ThreadPoolMetrics adapts these
/// hooks onto a MetricsRegistry.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// A task was enqueued; `queue_depth` is the queue size right after.
  virtual void OnScheduled(size_t queue_depth) = 0;
  /// A task finished after waiting `queue_wait_us` in the queue and
  /// running for `run_us`.
  virtual void OnTaskDone(double queue_wait_us, double run_us) = 0;
};

/// Minimal fixed-size thread pool. Used for the embarrassingly parallel
/// stages the paper points out ("the computation of the self-supervised
/// encoder-decoder and linkability assessment takes place in parallel at
/// each local schema", Section 3). Destruction waits for queued work.
class ThreadPool {
 public:
  /// `num_threads` 0 picks the hardware concurrency (at least 1). The
  /// optional observer is borrowed, must outlive the pool, and costs
  /// nothing when null (one predicted branch per Schedule).
  explicit ThreadPool(size_t num_threads = 0,
                      ThreadPoolObserver* observer = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `task(i)` for i in [0, count) across the pool and waits.
  /// Returns Ok when every index ran. A throwing task no longer
  /// std::terminates the process mid-run: the first exception is
  /// recorded, the remaining unscheduled/unstarted indices are skipped
  /// (pool-wide cancellation), and the returned status is Internal with
  /// the exception's message. When the optional `cancel` token trips
  /// mid-run, no new indices are scheduled, queued ones are skipped, and
  /// the status is Cancelled; tasks already running finish either way,
  /// so the pool is quiescent for these indices when this returns.
  Status ParallelFor(size_t count, const std::function<void(size_t)>& task,
                     const CancellationToken* cancel = nullptr);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  ThreadPoolObserver* observer_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_THREAD_POOL_H_
