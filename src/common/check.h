#ifndef COLSCOPE_COMMON_CHECK_H_
#define COLSCOPE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process when `cond` is false. Used for programmer-error
/// invariants only (never for data-dependent failures, which return
/// Status). Active in all build types, like glog's CHECK.
#define COLSCOPE_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                  \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

/// CHECK with an explanatory message.
#define COLSCOPE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Debug-build-only CHECK for invariants too hot to test in release
/// (e.g. per-row alignment asserts inside kernel loops). Compiles to
/// nothing under NDEBUG; the condition is not evaluated.
#ifdef NDEBUG
#define COLSCOPE_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define COLSCOPE_DCHECK(cond) COLSCOPE_CHECK(cond)
#endif

#endif  // COLSCOPE_COMMON_CHECK_H_
