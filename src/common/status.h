#ifndef COLSCOPE_COMMON_STATUS_H_
#define COLSCOPE_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>

namespace colscope {

/// Machine-readable category of a failure. Mirrors the small set of
/// conditions the library can actually produce; extend sparingly.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kUnavailable,
  kDeadlineExceeded,
  kCancelled,
  /// The receiver is alive but refusing work: admission queue full,
  /// estimated cost over budget, or a draining server. Retrying later
  /// (or elsewhere) may succeed; retrying immediately will not.
  kOverloaded,
};

/// Returns the canonical lower-snake name of `code` ("ok",
/// "invalid_argument", ...). Stable; safe to log and test against.
const char* StatusCodeToString(StatusCode code);

/// Value-type result of an operation that can fail. The library does not
/// use exceptions (Google style); fallible functions return `Status` or
/// `Result<T>` instead. A default-constructed `Status` is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>"; intended for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Analogous to
/// absl::StatusOr. Accessing `value()` on an error aborts the process with
/// the status message (library-level invariant violation).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...()` both work at fallible call sites.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace colscope

/// Propagates a non-OK status from the current function.
#define COLSCOPE_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::colscope::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // COLSCOPE_COMMON_STATUS_H_
