#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace colscope {

std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace colscope
