#include "common/cancellation.h"

#include <chrono>
#include <limits>

namespace colscope {

SystemRunClock::SystemRunClock()
    : epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

double SystemRunClock::NowMs() {
  const long long now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - epoch_ns_) * 1e-6;
}

double SimulatedRunClock::NowMs() {
  std::unique_lock<std::mutex> lock(mu_);
  const double now = now_ms_;
  now_ms_ += tick_ms_;
  return now;
}

void SimulatedRunClock::Advance(double ms) {
  std::unique_lock<std::mutex> lock(mu_);
  now_ms_ += ms;
}

Deadline Deadline::After(RunClock* clock, double budget_ms) {
  if (clock == nullptr) return Infinite();
  return Deadline(clock, clock->NowMs() + budget_ms);
}

double Deadline::remaining_ms() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  const double remaining = expires_at_ms_ - clock_->NowMs();
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace colscope
