#ifndef COLSCOPE_COMMON_STRINGS_H_
#define COLSCOPE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace colscope {

/// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII-lowercases / uppercases a copy of `text`.
std::string ToLowerAscii(std::string_view text);
std::string ToUpperAscii(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace colscope

#endif  // COLSCOPE_COMMON_STRINGS_H_
