#ifndef COLSCOPE_COMMON_CHECKSUM_H_
#define COLSCOPE_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace colscope {

/// FNV-1a 64-bit over `data`, seeded with `seed` (the FNV offset basis by
/// default) so hashes can be chained: Fnv1a64(b, Fnv1a64(a)) fingerprints
/// the concatenation a+b without materializing it. Not cryptographic —
/// used to detect torn or bit-flipped checkpoint payloads and to
/// fingerprint configs/datasets, not to resist an adversary.
uint64_t Fnv1a64(std::string_view data,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/// 16 lowercase hex digits of `value` — the stable textual checksum form
/// written into checkpoint headers.
std::string Fnv1a64Hex(uint64_t value);

}  // namespace colscope

#endif  // COLSCOPE_COMMON_CHECKSUM_H_
