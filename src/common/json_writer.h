#ifndef COLSCOPE_COMMON_JSON_WRITER_H_
#define COLSCOPE_COMMON_JSON_WRITER_H_

#include <string>
#include <string_view>

namespace colscope {

/// Minimal streaming JSON writer: produces compact, valid JSON without a
/// DOM. Call sequence mirrors the document structure; keys are only
/// legal inside objects. No validation beyond comma placement — misuse
/// produces malformed output, so keep call sites simple.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Key for the next value (inside an object).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

  /// Escapes a string for inclusion in JSON (quotes not added).
  static std::string Escape(std::string_view value);

 private:
  void Comma();

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace colscope

#endif  // COLSCOPE_COMMON_JSON_WRITER_H_
