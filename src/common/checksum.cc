#include "common/checksum.h"

#include "common/strings.h"

namespace colscope {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string Fnv1a64Hex(uint64_t value) {
  return StrFormat("%016llx", static_cast<unsigned long long>(value));
}

}  // namespace colscope
