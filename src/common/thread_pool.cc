#include "common/thread_pool.h"

#include <algorithm>

namespace colscope {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& task) {
  for (size_t i = 0; i < count; ++i) {
    Schedule([&task, i] { task(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace colscope
