#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace colscope {

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolObserver* observer)
    : observer_(observer) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (observer_ != nullptr) {
    // Timing only exists on the instrumented path; the common case pays
    // one predicted branch.
    ThreadPoolObserver* observer = observer_;
    const auto enqueued = std::chrono::steady_clock::now();
    task = [task = std::move(task), observer, enqueued] {
      const auto started = std::chrono::steady_clock::now();
      task();
      const auto finished = std::chrono::steady_clock::now();
      observer->OnTaskDone(ElapsedUs(enqueued, started),
                           ElapsedUs(started, finished));
    };
  }
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  work_available_.notify_one();
  if (observer_ != nullptr) observer_->OnScheduled(depth);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

Status ThreadPool::ParallelFor(size_t count,
                               const std::function<void(size_t)>& task,
                               const CancellationToken* cancel) {
  // Child of the caller's token: a throwing task trips it pool-wide
  // without cancelling anything beyond this ParallelFor call.
  CancellationToken aborted(cancel);
  std::mutex error_mu;
  Status first_error;
  for (size_t i = 0; i < count; ++i) {
    if (aborted.cancelled()) break;  // Stop scheduling new indices.
    Schedule([&, i] {
      if (aborted.cancelled()) return;  // Skip queued-but-unstarted work.
      try {
        task(i);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = Status::Internal(
              std::string("parallel task threw: ") + e.what());
        }
        aborted.Cancel();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = Status::Internal("parallel task threw a non-std "
                                         "exception");
        }
        aborted.Cancel();
      }
    });
  }
  Wait();
  {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error.ok()) return first_error;
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("parallel_for cancelled before completion");
  }
  return Status::Ok();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace colscope
