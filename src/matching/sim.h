#ifndef COLSCOPE_MATCHING_SIM_H_
#define COLSCOPE_MATCHING_SIM_H_

#include "matching/matcher.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::matching {

/// SIM "semantic blocking" (Meduri et al.): enumerates the full
/// cross-schema Cartesian product and keeps pairs whose cosine
/// similarity reaches the global threshold t_SIM. The paper evaluates
/// t_SIM in {0.4, 0.6, 0.8}.
class SimMatcher : public Matcher {
 public:
  /// A non-null `pool` (borrowed; must outlive the matcher) scores
  /// anchor rows in parallel; the linkage set is identical at any
  /// thread count because per-row results are merged in index order.
  explicit SimMatcher(double threshold, ThreadPool* pool = nullptr)
      : threshold_(threshold), pool_(pool) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  /// SIM scores every candidate pair independently, so it decomposes
  /// exactly into per-source-pair blocks: the union of MatchBlock over
  /// all unordered schema pairs equals Match().
  std::string BlockCacheId() const override;
  std::set<ElementPair> MatchBlock(const scoping::SignatureSet& signatures,
                                   const std::vector<bool>& active,
                                   int schema_a,
                                   int schema_b) const override;

  double threshold() const { return threshold_; }

  /// Number of element-wise comparisons the last Match call would
  /// perform for the given mask (the |A(S')| search-space size used by
  /// the Reduction Ratio). Exposed separately because SIM's comparison
  /// count equals the full (masked) Cartesian product regardless of the
  /// threshold.
  static size_t ComparisonCount(const scoping::SignatureSet& signatures,
                                const std::vector<bool>& active);

 private:
  double threshold_;
  ThreadPool* pool_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_SIM_H_
