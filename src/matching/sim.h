#ifndef COLSCOPE_MATCHING_SIM_H_
#define COLSCOPE_MATCHING_SIM_H_

#include "matching/matcher.h"

namespace colscope::matching {

/// SIM "semantic blocking" (Meduri et al.): enumerates the full
/// cross-schema Cartesian product and keeps pairs whose cosine
/// similarity reaches the global threshold t_SIM. The paper evaluates
/// t_SIM in {0.4, 0.6, 0.8}.
class SimMatcher : public Matcher {
 public:
  explicit SimMatcher(double threshold) : threshold_(threshold) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  double threshold() const { return threshold_; }

  /// Number of element-wise comparisons the last Match call would
  /// perform for the given mask (the |A(S')| search-space size used by
  /// the Reduction Ratio). Exposed separately because SIM's comparison
  /// count equals the full (masked) Cartesian product regardless of the
  /// threshold.
  static size_t ComparisonCount(const scoping::SignatureSet& signatures,
                                const std::vector<bool>& active);

 private:
  double threshold_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_SIM_H_
