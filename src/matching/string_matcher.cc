#include "matching/string_matcher.h"

#include "common/strings.h"
#include "text/string_similarity.h"

namespace colscope::matching {

namespace {
/// The element's own name: first whitespace-delimited token of its
/// serialization ("CID CLIENT NUMBER PRIMARY KEY" -> "CID",
/// "CLIENT [CID, ...]" -> "CLIENT").
std::string_view LeadingName(std::string_view serialized) {
  const size_t space = serialized.find(' ');
  return space == std::string_view::npos ? serialized
                                         : serialized.substr(0, space);
}
}  // namespace

std::string StringSimilarityMatcher::name() const {
  const char* measure = "?";
  switch (measure_) {
    case Measure::kLevenshtein:
      measure = "LEV";
      break;
    case Measure::kJaroWinkler:
      measure = "JW";
      break;
    case Measure::kTokenJaccard:
      measure = "JAC";
      break;
  }
  return StrFormat("STR-%s(%.1f)", measure, threshold_);
}

double StringSimilarityMatcher::Similarity(std::string_view a,
                                           std::string_view b) const {
  const std::string la = ToLowerAscii(a);
  const std::string lb = ToLowerAscii(b);
  switch (measure_) {
    case Measure::kLevenshtein:
      return text::LevenshteinSimilarity(la, lb);
    case Measure::kJaroWinkler:
      return text::JaroWinklerSimilarity(la, lb);
    case Measure::kTokenJaccard:
      return text::TokenJaccardSimilarity(la, lb);
  }
  return 0.0;
}

std::set<ElementPair> StringSimilarityMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;
  const size_t n = signatures.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      const double sim = Similarity(LeadingName(signatures.texts[i]),
                                    LeadingName(signatures.texts[j]));
      if (sim >= threshold_) {
        out.insert(MakePair(signatures.refs[i], signatures.refs[j]));
      }
    }
  }
  return out;
}

}  // namespace colscope::matching
