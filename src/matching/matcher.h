#ifndef COLSCOPE_MATCHING_MATCHER_H_
#define COLSCOPE_MATCHING_MATCHER_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "scoping/signatures.h"

namespace colscope::matching {

/// An unordered candidate linkage between two schema elements,
/// canonicalized so first < second.
using ElementPair = std::pair<schema::ElementRef, schema::ElementRef>;

/// Canonicalizes an element pair (smaller ref first).
ElementPair MakePair(schema::ElementRef a, schema::ElementRef b);

/// A matching algorithm A of Section 4.1: given the signature set and an
/// active-element mask (true = element participates, i.e. survived
/// scoping; pass all-true for the unscoped SOTA baseline), generates
/// candidate linkages. Implementations only pair elements of the same
/// kind (table-table / attribute-attribute) across different schemas,
/// mirroring the ground-truth structure of Section 2.1.
class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual std::string name() const = 0;

  virtual std::set<ElementPair> Match(
      const scoping::SignatureSet& signatures,
      const std::vector<bool>& active) const = 0;

  /// Identity of this matcher's block decomposition for content-addressed
  /// caching (see cache/pipeline_cache.h): a canonical string covering
  /// every parameter that changes MatchBlock output. Empty — the default
  /// — means the matcher does not decompose into independent per-source-
  /// pair blocks and must run via Match().
  virtual std::string BlockCacheId() const { return ""; }

  /// Candidate linkages restricted to pairs with one element in
  /// `schema_a` and the other in `schema_b`. Matchers with a non-empty
  /// BlockCacheId must guarantee that the union of MatchBlock over all
  /// unordered schema pairs equals Match() for the same inputs; the
  /// default returns the empty set (unsupported).
  virtual std::set<ElementPair> MatchBlock(
      const scoping::SignatureSet& signatures,
      const std::vector<bool>& active, int schema_a, int schema_b) const;
};

/// True if rows i and j may form a candidate: both active, different
/// schemas, same element kind.
bool IsCandidate(const scoping::SignatureSet& signatures,
                 const std::vector<bool>& active, size_t i, size_t j);

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_MATCHER_H_
