#ifndef COLSCOPE_MATCHING_MATCHER_H_
#define COLSCOPE_MATCHING_MATCHER_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "scoping/signatures.h"

namespace colscope::matching {

/// An unordered candidate linkage between two schema elements,
/// canonicalized so first < second.
using ElementPair = std::pair<schema::ElementRef, schema::ElementRef>;

/// Canonicalizes an element pair (smaller ref first).
ElementPair MakePair(schema::ElementRef a, schema::ElementRef b);

/// A matching algorithm A of Section 4.1: given the signature set and an
/// active-element mask (true = element participates, i.e. survived
/// scoping; pass all-true for the unscoped SOTA baseline), generates
/// candidate linkages. Implementations only pair elements of the same
/// kind (table-table / attribute-attribute) across different schemas,
/// mirroring the ground-truth structure of Section 2.1.
class Matcher {
 public:
  virtual ~Matcher() = default;

  virtual std::string name() const = 0;

  virtual std::set<ElementPair> Match(
      const scoping::SignatureSet& signatures,
      const std::vector<bool>& active) const = 0;
};

/// True if rows i and j may form a candidate: both active, different
/// schemas, same element kind.
bool IsCandidate(const scoping::SignatureSet& signatures,
                 const std::vector<bool>& active, size_t i, size_t j);

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_MATCHER_H_
