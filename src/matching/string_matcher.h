#ifndef COLSCOPE_MATCHING_STRING_MATCHER_H_
#define COLSCOPE_MATCHING_STRING_MATCHER_H_

#include "matching/matcher.h"

namespace colscope::matching {

/// The classical schema-based alternative (Section 2.2): match element
/// *names* by string similarity instead of signatures. Provided as the
/// Valentine-style baseline the paper contrasts against ("exclusively
/// relying on string similarity ... suffers from labeling conflicts").
/// Compares the serialized element texts' leading identifiers.
class StringSimilarityMatcher : public Matcher {
 public:
  enum class Measure {
    kLevenshtein,
    kJaroWinkler,
    kTokenJaccard,
  };

  StringSimilarityMatcher(Measure measure, double threshold)
      : measure_(measure), threshold_(threshold) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

 private:
  double Similarity(std::string_view a, std::string_view b) const;

  Measure measure_;
  double threshold_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_STRING_MATCHER_H_
