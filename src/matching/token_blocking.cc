#include "matching/token_blocking.h"

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "embed/quantized_store.h"
#include "linalg/stats.h"
#include "text/tokenize.h"

namespace colscope::matching {

namespace {

std::string LeadingName(const std::string& serialized) {
  const size_t space = serialized.find(' ');
  return space == std::string::npos ? serialized
                                    : serialized.substr(0, space);
}

}  // namespace

/// Inverted index token -> active rows whose NAME contains it, and the
/// deduplicated candidate pair set it induces.
std::set<std::pair<size_t, size_t>> TokenBlockingCandidates(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) {
  std::map<std::string, std::vector<size_t>> index;
  for (size_t i = 0; i < signatures.size(); ++i) {
    if (!active[i]) continue;
    for (const std::string& token :
         text::TokenizeIdentifier(LeadingName(signatures.texts[i]))) {
      index[token].push_back(i);
    }
  }
  std::set<std::pair<size_t, size_t>> candidates;
  for (const auto& [token, rows] : index) {
    for (size_t a = 0; a < rows.size(); ++a) {
      for (size_t b = a + 1; b < rows.size(); ++b) {
        if (!IsCandidate(signatures, active, rows[a], rows[b])) continue;
        candidates.insert({std::min(rows[a], rows[b]),
                           std::max(rows[a], rows[b])});
      }
    }
  }
  return candidates;
}

std::string TokenBlockedSimMatcher::name() const {
  return StrFormat("TBSIM(%.1f)", threshold_);
}

std::set<ElementPair> TokenBlockedSimMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  const auto candidates = TokenBlockingCandidates(signatures, active);
  std::unique_ptr<embed::QuantizedSignatureStore> store;
  if (quantized_ && !candidates.empty()) {
    store = std::make_unique<embed::QuantizedSignatureStore>(
        signatures.signatures);
  }
  std::set<ElementPair> out;
  for (const auto& [i, j] : candidates) {
    if (store != nullptr) {
      const double ni = std::sqrt(store->RowNorm2(i));
      const double nj = std::sqrt(store->RowNorm2(j));
      if (ni > 0.0 && nj > 0.0) {
        // approx_cos + bound/(|a||b|) >= exact cosine, so dropping below
        // the threshold can never drop a true match. Zero-norm rows fall
        // through to the (cheap) exact path rather than special-casing
        // its sign conventions here.
        const double inv = 1.0 / (ni * nj);
        const double approx_cos = store->ApproxDot(i, j) * inv;
        const double margin =
            store->DotErrorBound(i, store->RowScale(j), store->RowL1(j)) * inv;
        if (approx_cos + margin < threshold_) continue;
      }
    }
    const double sim = linalg::CosineSimilarity(
        signatures.signatures.RowSpan(i), signatures.signatures.RowSpan(j));
    if (sim >= threshold_) {
      out.insert(MakePair(signatures.refs[i], signatures.refs[j]));
    }
  }
  return out;
}

size_t TokenBlockedSimMatcher::CandidateCount(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) {
  return TokenBlockingCandidates(signatures, active).size();
}

}  // namespace colscope::matching
