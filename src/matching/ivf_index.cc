#include "matching/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/stats.h"
#include "matching/kmeans.h"
#include "matching/token_blocking.h"

namespace colscope::matching {

namespace {

/// Neighbour-pool oversampling of IvfMatcher: each element retrieves
/// top_k * this + 1 neighbours (the +1 absorbs the self hit) so that
/// invalid hits — same schema, other element kind — can be filtered out
/// without starving the valid candidate list.
constexpr size_t kPoolOversample = 4;

}  // namespace

IvfIndex::IvfIndex(linalg::Matrix vectors)
    : IvfIndex(std::move(vectors), Options()) {}

IvfIndex::IvfIndex(linalg::Matrix vectors, const Options& options)
    : vectors_(std::move(vectors)), options_(options) {
  const size_t n = vectors_.rows();
  if (n == 0) return;
  size_t num_lists = options_.num_lists;
  if (num_lists == 0) {
    num_lists = static_cast<size_t>(
        std::lround(std::sqrt(static_cast<double>(n))));
  }
  num_lists = std::clamp<size_t>(num_lists, 1, n);

  KMeansOptions kmeans;
  kmeans.k = num_lists;
  kmeans.max_iterations = options_.kmeans_iterations;
  kmeans.seed = options_.seed;
  const std::vector<size_t> assignment = KMeansCluster(vectors_, kmeans);

  // Bucket rows per cell (ascending ids by construction), then drop
  // empty cells so centroids_ row c always describes lists_[c].
  std::vector<std::vector<size_t>> cells(num_lists);
  for (size_t i = 0; i < n; ++i) {
    COLSCOPE_CHECK(assignment[i] < num_lists);
    cells[assignment[i]].push_back(i);
  }
  size_t non_empty = 0;
  for (const auto& cell : cells) non_empty += cell.empty() ? 0 : 1;
  centroids_ = linalg::Matrix(non_empty, vectors_.cols());
  lists_.reserve(non_empty);
  for (auto& cell : cells) {
    if (cell.empty()) continue;
    double* mean = centroids_.RowPtr(lists_.size());
    for (size_t row : cell) {
      const double* v = vectors_.RowPtr(row);
      for (size_t d = 0; d < vectors_.cols(); ++d) mean[d] += v[d];
    }
    const double inv = 1.0 / static_cast<double>(cell.size());
    for (size_t d = 0; d < vectors_.cols(); ++d) mean[d] *= inv;
    lists_.push_back(std::move(cell));
  }

  if (options_.quantized) {
    store_ = std::make_unique<embed::QuantizedSignatureStore>(vectors_);
  }
}

std::vector<size_t> IvfIndex::CellOrder(std::span<const double> query) const {
  // (centroid distance, cell id) pairs; pair ordering is exactly the
  // deterministic tie-break every index in this repo uses.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(lists_.size());
  for (size_t c = 0; c < lists_.size(); ++c) {
    order.emplace_back(
        linalg::SquaredL2Distance(centroids_.RowSpan(c), query), c);
  }
  std::sort(order.begin(), order.end());
  std::vector<size_t> cells;
  cells.reserve(order.size());
  for (const auto& entry : order) cells.push_back(entry.second);
  return cells;
}

std::vector<size_t> IvfIndex::Probe(std::span<const double> query, size_t k,
                                    size_t nprobe) const {
  const std::vector<size_t> cells = CellOrder(query);
  const size_t min_cells = std::max<size_t>(nprobe, 1);
  std::vector<size_t> rows;
  size_t probed = 0;
  for (size_t c : cells) {
    // Keep probing past nprobe (still in centroid-distance order) only
    // while the pool cannot yet satisfy k — skewed partitions must not
    // silently shorten results.
    if (probed >= min_cells && rows.size() >= k) break;
    rows.insert(rows.end(), lists_[c].begin(), lists_[c].end());
    ++probed;
  }
  return rows;
}

std::vector<size_t> IvfIndex::Search(std::span<const double> query,
                                     size_t k) const {
  return Search(query, k, options_.nprobe);
}

std::vector<size_t> IvfIndex::Search(std::span<const double> query, size_t k,
                                     size_t nprobe) const {
  if (vectors_.rows() == 0 || k == 0) return {};
  std::vector<size_t> pool = Probe(query, k, nprobe);
  const size_t keep = std::min(k, pool.size());

  // Quantized prescan: rank the probed rows by approximate distance and
  // keep k * rescore_factor of them for exact rescoring — same contract
  // as FlatL2Index, scoped to the probed cells.
  if (store_ != nullptr && keep < pool.size()) {
    const embed::QuantizedQuery q = store_->Quantize(query);
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(pool.size());
    for (size_t id : pool) {
      ranked.emplace_back(
          store_->ApproxSquaredL2(id, q.codes.data(), q.scale, q.norm2), id);
    }
    const size_t pool_size = std::min(
        ranked.size(),
        std::max(keep, keep * std::max<size_t>(options_.rescore_factor, 1)));
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<long>(pool_size),
                      ranked.end());
    pool.clear();
    for (size_t i = 0; i < pool_size; ++i) pool.push_back(ranked[i].second);
  }

  // Exact rescore with the (distance, id) tie-break deciding the final
  // order — identical ranking semantics to FlatL2Index::Search.
  std::vector<std::pair<double, size_t>> exact;
  exact.reserve(pool.size());
  for (size_t id : pool) {
    exact.emplace_back(linalg::SquaredL2Distance(vectors_.RowSpan(id), query),
                       id);
  }
  std::partial_sort(exact.begin(), exact.begin() + static_cast<long>(keep),
                    exact.end());
  std::vector<size_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(exact[i].second);
  return out;
}

size_t IvfIndex::ProbedRows(std::span<const double> query, size_t k,
                            size_t nprobe) const {
  if (vectors_.rows() == 0) return 0;
  return Probe(query, k, nprobe).size();
}

std::string IvfMatcher::name() const {
  return StrFormat("IVF(k=%zu,nprobe=%zu%s%s)", options_.top_k,
                   options_.nprobe, options_.quantized ? ",int8" : "",
                   options_.token_prefilter ? ",tb" : "");
}

std::set<ElementPair> IvfMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::vector<size_t> rows;
  for (size_t i = 0; i < signatures.size(); ++i) {
    if (active[i]) rows.push_back(i);
  }
  if (rows.size() < 2) return {};

  const size_t cols = signatures.signatures.cols();
  linalg::Matrix subset(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::copy_n(signatures.signatures.RowPtr(rows[r]), cols,
                subset.RowPtr(r));
  }
  IvfIndex::Options index_options;
  index_options.num_lists = options_.num_lists;
  index_options.nprobe = options_.nprobe;
  index_options.quantized = options_.quantized;
  index_options.seed = options_.seed;
  const IvfIndex index(std::move(subset), index_options);

  std::set<std::pair<size_t, size_t>> allowed;
  if (options_.token_prefilter) {
    allowed = TokenBlockingCandidates(signatures, active);
  }

  const size_t fetch =
      std::min(rows.size(), options_.top_k * kPoolOversample + 1);
  std::vector<std::vector<ElementPair>> slots(rows.size());
  const std::function<void(size_t)> task = [&](size_t qi) {
    const size_t i = rows[qi];
    const std::vector<size_t> hits =
        index.Search(signatures.signatures.RowSpan(i), fetch);
    std::vector<ElementPair>& out = slots[qi];
    for (size_t h : hits) {
      if (out.size() >= options_.top_k) break;
      const size_t j = rows[h];
      if (j == i) continue;
      if (!IsCandidate(signatures, active, i, j)) continue;
      if (options_.token_prefilter &&
          allowed.find({std::min(i, j), std::max(i, j)}) == allowed.end()) {
        continue;
      }
      out.push_back(MakePair(signatures.refs[i], signatures.refs[j]));
    }
  };
  if (pool_ != nullptr) {
    COLSCOPE_CHECK(pool_->ParallelFor(rows.size(), task).ok());
  } else {
    for (size_t qi = 0; qi < rows.size(); ++qi) task(qi);
  }

  // Index-order merge: identical at any thread count.
  std::set<ElementPair> out;
  for (const std::vector<ElementPair>& slot : slots) {
    out.insert(slot.begin(), slot.end());
  }
  return out;
}

}  // namespace colscope::matching
