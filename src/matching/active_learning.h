#ifndef COLSCOPE_MATCHING_ACTIVE_LEARNING_H_
#define COLSCOPE_MATCHING_ACTIVE_LEARNING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "matching/similarity_matrix.h"

namespace colscope::matching {

/// Active-learning calibration of a global decision threshold over a
/// similarity matrix — the workflow of the Alfa / PoWareMatch line of
/// related work (Section 2.2): a human oracle labels a small number of
/// candidate pairs and the matcher calibrates its decision boundary from
/// those labels, instead of a user guessing the threshold.
///
/// Query strategies:
///   kUncertainty — label the pair whose score is closest to the current
///                  decision boundary (the classic uncertainty sampler);
///   kRandom      — label uniformly random pairs (the baseline).
class ThresholdCalibrator {
 public:
  enum class Strategy { kUncertainty, kRandom };

  /// The oracle answers "is this pair a true linkage?".
  using Oracle = std::function<bool(const ElementPair&)>;

  struct Options {
    Strategy strategy = Strategy::kUncertainty;
    size_t budget = 20;       ///< Number of oracle queries.
    double initial_threshold = 0.5;
    uint64_t seed = 0xac7;    ///< For kRandom.
  };

  /// One labeled pair collected during calibration.
  struct LabeledPair {
    ElementPair pair;
    double score = 0.0;
    bool is_match = false;
  };

  /// Calibration output: the fitted threshold plus the audit trail.
  struct Calibration {
    double threshold = 0.5;
    std::vector<LabeledPair> queried;
  };

  ThresholdCalibrator() = default;
  explicit ThresholdCalibrator(Options options) : options_(options) {}

  /// Spends the query budget against `oracle` and returns the threshold
  /// that maximizes F1 over the labeled sample (midpoint between the
  /// optimal cut's neighbours, so it generalizes between scores).
  Calibration Calibrate(const SimilarityMatrix& matrix,
                        const Oracle& oracle) const;

 private:
  Options options_{};
};

/// F1-optimal threshold over fully labeled (score, is_match) pairs;
/// exposed for tests and for callers with complete labels. Returns the
/// midpoint between the best cut's boundary scores.
double BestF1Threshold(
    const std::vector<ThresholdCalibrator::LabeledPair>& labeled);

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_ACTIVE_LEARNING_H_
