#include "matching/silhouette.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "linalg/stats.h"
#include "matching/kmeans.h"

namespace colscope::matching {

double MeanSilhouette(const linalg::Matrix& points,
                      const std::vector<size_t>& assignment) {
  const size_t n = points.rows();
  COLSCOPE_CHECK(assignment.size() == n);
  if (n < 2) return 0.0;
  size_t num_clusters = 0;
  for (size_t a : assignment) num_clusters = std::max(num_clusters, a + 1);
  if (num_clusters < 2) return 0.0;

  std::vector<size_t> cluster_size(num_clusters, 0);
  for (size_t a : assignment) ++cluster_size[a];

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Mean distance from i to every cluster.
    std::vector<double> mean_dist(num_clusters, 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_dist[assignment[j]] +=
          linalg::L2Distance(points.RowSpan(i), points.RowSpan(j));
    }
    const size_t own = assignment[i];
    if (cluster_size[own] <= 1) continue;  // Singleton contributes 0.
    double a = mean_dist[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (size_t c = 0; c < num_clusters; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(cluster_size[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

size_t SilhouetteBestK(const linalg::Matrix& points, size_t min_k,
                       size_t max_k, uint64_t seed) {
  COLSCOPE_CHECK(min_k >= 2);
  COLSCOPE_CHECK(max_k >= min_k);
  const size_t n = points.rows();
  if (n < 3) return min_k;
  const size_t hi = std::min(max_k, n - 1);

  size_t best_k = min_k;
  double best_score = -2.0;
  for (size_t k = min_k; k <= hi; ++k) {
    KMeansOptions options;
    options.k = k;
    options.seed = seed;
    const auto assignment = KMeansCluster(points, options);
    const double score = MeanSilhouette(points, assignment);
    if (score > best_score) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace colscope::matching
