#ifndef COLSCOPE_MATCHING_SIMILARITY_MATRIX_H_
#define COLSCOPE_MATCHING_SIMILARITY_MATRIX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "matching/matcher.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::matching {

/// Sparse cross-schema similarity matrix: candidate element pairs with
/// scores in [0, 1]. The common currency of composite (COMA-style)
/// matching — element-wise matchers *score* pairs, aggregation combines
/// several matrices, and a selection strategy turns the result into
/// linkages. Pairs are canonical (first < second) and same-kind
/// cross-schema only.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;

  /// Sets the score of a pair (overwrites).
  void Set(const ElementPair& pair, double score);

  /// Score of a pair; 0 when absent.
  double Get(const ElementPair& pair) const;

  bool Contains(const ElementPair& pair) const;
  size_t size() const { return scores_.size(); }
  const std::map<ElementPair, double>& scores() const { return scores_; }

  /// Pairs with score >= threshold.
  std::set<ElementPair> SelectThreshold(double threshold) const;

  /// For every element, its top-k best-scoring partners per other
  /// schema side; the union over elements (the ANN-style selection).
  std::set<ElementPair> SelectTopK(size_t k) const;

  /// Pairs (a, b) where b is a's best partner AND a is b's best — the
  /// reciprocal-best-hit post-pruning used by classic pipelines.
  std::set<ElementPair> SelectReciprocalBest() const;

  /// Greedy one-to-one assignment by descending score (stable-marriage
  /// flavoured selection): each element appears in at most one pair;
  /// pairs below `min_score` are never selected.
  std::set<ElementPair> SelectGreedyOneToOne(double min_score = 0.0) const;

 private:
  std::map<ElementPair, double> scores_;
};

/// Element-wise scorer: assigns a similarity in [0, 1] to one candidate
/// pair, given the signature context. Scorers are the building blocks a
/// CompositeMatcher aggregates.
class PairScorer {
 public:
  virtual ~PairScorer() = default;
  virtual std::string name() const = 0;
  /// Scores rows i, j of `signatures` (caller guarantees IsCandidate).
  virtual double Score(const scoping::SignatureSet& signatures, size_t i,
                       size_t j) const = 0;
};

/// Cosine similarity of the element signatures, clamped to [0, 1].
class CosineScorer : public PairScorer {
 public:
  std::string name() const override { return "cosine"; }
  double Score(const scoping::SignatureSet& signatures, size_t i,
               size_t j) const override;
};

/// Levenshtein similarity of the element names (leading serialized
/// token), lowercased.
class NameScorer : public PairScorer {
 public:
  std::string name() const override { return "name"; }
  double Score(const scoping::SignatureSet& signatures, size_t i,
               size_t j) const override;
};

/// Instance-based similarity (Section 2.2's "instance-based matching"
/// family): Jaccard overlap of the serialized sample values embedded in
/// the element text (the parenthesized suffix produced by
/// SerializeOptions::include_instance_samples). Elements without
/// samples score 0.
class InstanceScorer : public PairScorer {
 public:
  std::string name() const override { return "instance"; }
  double Score(const scoping::SignatureSet& signatures, size_t i,
               size_t j) const override;
};

/// How a composite combines its scorers' matrices (COMA's aggregation
/// operators).
enum class Aggregation {
  kMax,
  kAverage,
  kWeighted,  ///< Weighted mean with per-scorer weights.
};

/// Builds the full candidate similarity matrix for `signatures` under
/// the active mask, scoring every same-kind cross-schema pair. A
/// non-null `pool` scores anchor rows in parallel; per-row results are
/// merged in index order afterwards, so the matrix is identical at any
/// thread count.
SimilarityMatrix BuildSimilarityMatrix(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    const PairScorer& scorer, ThreadPool* pool = nullptr);

/// Aggregates several matrices over the union of their pairs.
/// `weights` is required (and must match matrices.size()) only for
/// kWeighted; missing entries count as score 0.
SimilarityMatrix AggregateMatrices(
    const std::vector<const SimilarityMatrix*>& matrices,
    Aggregation aggregation, const std::vector<double>& weights = {});

/// COMA-style composite matcher: several scorers, one aggregation, one
/// selection strategy.
class CompositeMatcher : public Matcher {
 public:
  enum class Selection { kThreshold, kTopK, kReciprocalBest, kOneToOne };

  struct Options {
    Aggregation aggregation = Aggregation::kAverage;
    std::vector<double> weights;  ///< For kWeighted.
    Selection selection = Selection::kThreshold;
    double threshold = 0.6;  ///< For kThreshold / kOneToOne min score.
    size_t top_k = 1;        ///< For kTopK.
    /// Borrowed worker pool for scoring; must outlive the matcher.
    /// Null keeps matrix construction on the calling thread.
    ThreadPool* pool = nullptr;
  };

  /// `scorers` are borrowed and must outlive the matcher.
  CompositeMatcher(std::vector<const PairScorer*> scorers, Options options);

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  /// The aggregated matrix (exposed for inspection / custom selection).
  SimilarityMatrix BuildMatrix(const scoping::SignatureSet& signatures,
                               const std::vector<bool>& active) const;

 private:
  std::vector<const PairScorer*> scorers_;
  Options options_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_SIMILARITY_MATRIX_H_
