#ifndef COLSCOPE_MATCHING_SILHOUETTE_H_
#define COLSCOPE_MATCHING_SILHOUETTE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace colscope::matching {

/// Mean silhouette coefficient of a clustering in [-1, 1]: for each
/// point, (b - a) / max(a, b) where a is the mean intra-cluster distance
/// and b the smallest mean distance to another cluster. Points in
/// singleton clusters contribute 0 (sklearn convention). O(n^2 d).
double MeanSilhouette(const linalg::Matrix& points,
                      const std::vector<size_t>& assignment);

/// ALITE-style self-tuned cluster cardinality (Khatiwada et al. 2022,
/// cited in Section 2.2): runs k-Means for k in [min_k, max_k] and
/// returns the k with the highest mean silhouette. Returns min_k when
/// the data has fewer than 3 points.
size_t SilhouetteBestK(const linalg::Matrix& points, size_t min_k,
                       size_t max_k, uint64_t seed = 0x5eed);

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_SILHOUETTE_H_
