#ifndef COLSCOPE_MATCHING_CUPID_H_
#define COLSCOPE_MATCHING_CUPID_H_

#include "matching/matcher.h"

namespace colscope::matching {

/// CUPID-style matcher (Madhavan, Bernstein, Rahm — VLDB 2001; cited in
/// Section 2.2): element similarity combines a *linguistic* component
/// (name similarity, here Jaro-Winkler over the element's own name) and
/// a *structural* component (for attributes: the linguistic similarity
/// of their parent tables; for tables: the average of the best
/// attribute-level linguistic similarities between the two tables —
/// CUPID's leaf-up structural propagation, flattened to the two-level
/// relational hierarchy).
///
///   wsim(a, b) = w_struct * ssim(a, b) + (1 - w_struct) * lsim(a, b)
///
/// Pairs with wsim >= threshold are emitted.
class CupidMatcher : public Matcher {
 public:
  struct Options {
    double threshold = 0.7;
    double structural_weight = 0.5;  ///< CUPID's wstruct.
  };

  CupidMatcher() = default;
  explicit CupidMatcher(Options options) : options_(options) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  /// Weighted similarity of rows i, j (caller guarantees IsCandidate);
  /// exposed for inspection and tests.
  double WeightedSimilarity(const scoping::SignatureSet& signatures,
                            const std::vector<bool>& active, size_t i,
                            size_t j) const;

 private:
  Options options_{};
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_CUPID_H_
