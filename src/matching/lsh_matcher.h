#ifndef COLSCOPE_MATCHING_LSH_MATCHER_H_
#define COLSCOPE_MATCHING_LSH_MATCHER_H_

#include "matching/matcher.h"

namespace colscope::matching {

/// LSH "semantic blocking" (Meduri et al.): builds a FlatL2 index per
/// schema (as the paper does with FAISS IndexFlatL2) and, for every
/// directed schema pair, retrieves the top-k nearest signatures of each
/// element in the other schema. The union over directions forms the
/// candidate set. The paper evaluates top-k in {1, 5, 20}.
///
/// Set `approximate` to true to use the genuine random-hyperplane LSH
/// index instead of the exact flat search (library extension). Set
/// `quantized` to rank flat-search candidates with the int8 signature
/// store before exact rescoring (`--quantized`; ignored in approximate
/// mode, which has its own candidate generation).
class LshMatcher : public Matcher {
 public:
  explicit LshMatcher(size_t top_k, bool approximate = false,
                      bool quantized = false)
      : top_k_(top_k), approximate_(approximate), quantized_(quantized) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  size_t top_k() const { return top_k_; }

 private:
  size_t top_k_;
  bool approximate_;
  bool quantized_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_LSH_MATCHER_H_
