#include "matching/active_learning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace colscope::matching {

double BestF1Threshold(
    const std::vector<ThresholdCalibrator::LabeledPair>& labeled) {
  if (labeled.empty()) return 0.5;
  std::vector<ThresholdCalibrator::LabeledPair> sorted = labeled;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.score < b.score; });

  size_t total_matches = 0;
  for (const auto& l : sorted) total_matches += l.is_match;
  if (total_matches == 0) {
    // No positives seen: predict nothing (threshold above every score).
    return sorted.back().score + 1.0;
  }

  // Evaluate the cut "predict match iff score >= sorted[i].score" for
  // every i, plus the predict-everything cut.
  double best_f1 = -1.0;
  double best_threshold = sorted.front().score;
  size_t matches_below = 0;  // Matches strictly below the cut.
  for (size_t i = 0; i <= sorted.size(); ++i) {
    const size_t predicted = sorted.size() - i;
    const size_t true_pos = total_matches - matches_below;
    const double precision =
        predicted == 0 ? 0.0
                       : static_cast<double>(true_pos) /
                             static_cast<double>(predicted);
    const double recall = static_cast<double>(true_pos) /
                          static_cast<double>(total_matches);
    const double f1 = (precision + recall) == 0.0
                          ? 0.0
                          : 2.0 * precision * recall / (precision + recall);
    if (f1 > best_f1) {
      best_f1 = f1;
      if (i == 0) {
        best_threshold = sorted.front().score - 1e-9;
      } else if (i == sorted.size()) {
        best_threshold = sorted.back().score + 1e-9;
      } else {
        best_threshold = 0.5 * (sorted[i - 1].score + sorted[i].score);
      }
    }
    if (i < sorted.size() && sorted[i].is_match) ++matches_below;
  }
  return best_threshold;
}

ThresholdCalibrator::Calibration ThresholdCalibrator::Calibrate(
    const SimilarityMatrix& matrix, const Oracle& oracle) const {
  Calibration out;
  out.threshold = options_.initial_threshold;
  if (matrix.size() == 0 || options_.budget == 0) return out;

  std::vector<std::pair<ElementPair, double>> pool(matrix.scores().begin(),
                                                   matrix.scores().end());
  std::vector<bool> used(pool.size(), false);
  Rng rng(options_.seed);

  const size_t budget = std::min(options_.budget, pool.size());
  for (size_t query = 0; query < budget; ++query) {
    size_t pick = pool.size();
    if (options_.strategy == Strategy::kRandom) {
      // Uniform over unused pairs.
      std::vector<size_t> unused;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!used[i]) unused.push_back(i);
      }
      if (!unused.empty()) {
        pick = unused[rng.NextBounded(unused.size())];
      }
    } else {
      // Uncertainty: closest unused score to the current threshold.
      double best_distance = std::numeric_limits<double>::max();
      for (size_t i = 0; i < pool.size(); ++i) {
        if (used[i]) continue;
        const double distance =
            std::fabs(pool[i].second - out.threshold);
        if (distance < best_distance) {
          best_distance = distance;
          pick = i;
        }
      }
    }
    if (pick >= pool.size()) break;
    used[pick] = true;
    LabeledPair labeled;
    labeled.pair = pool[pick].first;
    labeled.score = pool[pick].second;
    labeled.is_match = oracle(labeled.pair);
    out.queried.push_back(labeled);
    out.threshold = BestF1Threshold(out.queried);
  }
  return out;
}

}  // namespace colscope::matching
