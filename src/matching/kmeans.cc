#include "matching/kmeans.h"

#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/stats.h"

namespace colscope::matching {

std::vector<size_t> KMeansCluster(const linalg::Matrix& points,
                                  const KMeansOptions& options) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  COLSCOPE_CHECK(options.k >= 1);
  if (n == 0) return {};
  const size_t k = std::min(options.k, n);

  Rng rng(options.seed);

  // k-means++ seeding.
  std::vector<linalg::Vector> centroids;
  centroids.push_back(points.Row(rng.NextBounded(n)));
  linalg::Vector min_dist(n, std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dist =
          linalg::SquaredL2Distance(points.RowSpan(i), centroids.back());
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);  // All points identical.
    }
    centroids.push_back(points.Row(chosen));
  }

  // Lloyd iterations.
  std::vector<size_t> assignment(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        const double dist =
            linalg::SquaredL2Distance(points.RowSpan(i), centroids[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute centroids; empty clusters keep their previous position.
    std::vector<linalg::Vector> sums(k, linalg::Vector(d, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = points.RowPtr(i);
      linalg::Vector& sum = sums[assignment[i]];
      for (size_t c = 0; c < d; ++c) sum[c] += row[c];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) centroids[c][j] = sums[c][j] * inv;
    }
  }
  return assignment;
}

}  // namespace colscope::matching
