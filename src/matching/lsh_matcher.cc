#include "matching/lsh_matcher.h"

#include <memory>

#include "common/strings.h"
#include "matching/flat_index.h"

namespace colscope::matching {

std::string LshMatcher::name() const {
  return StrFormat("LSH(%zu)%s", top_k_, approximate_ ? "~" : "");
}

std::set<ElementPair> LshMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;

  int max_schema = -1;
  for (const auto& ref : signatures.refs) {
    max_schema = std::max(max_schema, ref.schema);
  }

  // Active rows per schema.
  std::vector<std::vector<size_t>> schema_rows(max_schema + 1);
  for (size_t i = 0; i < signatures.size(); ++i) {
    if (active[i]) schema_rows[signatures.refs[i].schema].push_back(i);
  }

  for (int target = 0; target <= max_schema; ++target) {
    const auto& target_rows = schema_rows[target];
    if (target_rows.empty()) continue;
    linalg::Matrix target_vectors(target_rows.size(),
                                  signatures.signatures.cols());
    for (size_t i = 0; i < target_rows.size(); ++i) {
      target_vectors.SetRow(i, signatures.signatures.Row(target_rows[i]));
    }
    const FlatL2Index flat(target_vectors,
                           FlatL2Index::Options{.quantized = quantized_});
    std::unique_ptr<RandomHyperplaneLsh> lsh;
    if (approximate_) {
      lsh = std::make_unique<RandomHyperplaneLsh>(
          target_vectors, RandomHyperplaneLsh::Options{});
    }

    for (int source = 0; source <= max_schema; ++source) {
      if (source == target) continue;
      for (size_t query_row : schema_rows[source]) {
        const linalg::Vector query = signatures.signatures.Row(query_row);
        const std::vector<size_t> hits =
            approximate_ ? lsh->Search(query, top_k_)
                         : flat.Search(query, top_k_);
        for (size_t hit : hits) {
          const size_t hit_row = target_rows[hit];
          if (!IsCandidate(signatures, active, query_row, hit_row)) continue;
          out.insert(
              MakePair(signatures.refs[query_row], signatures.refs[hit_row]));
        }
      }
    }
  }
  return out;
}

}  // namespace colscope::matching
