#ifndef COLSCOPE_MATCHING_KMEANS_H_
#define COLSCOPE_MATCHING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace colscope::matching {

/// Lloyd's k-Means with k-means++ seeding. Deterministic for a fixed
/// seed. Returns per-row cluster assignments in [0, k).
struct KMeansOptions {
  size_t k = 5;
  int max_iterations = 100;
  uint64_t seed = 0x5eed;
};

std::vector<size_t> KMeansCluster(const linalg::Matrix& points,
                                  const KMeansOptions& options);

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_KMEANS_H_
