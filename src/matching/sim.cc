#include "matching/sim.h"

#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/stats.h"

namespace colscope::matching {

std::string SimMatcher::name() const {
  return StrFormat("SIM(%.1f)", threshold_);
}

std::set<ElementPair> SimMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  const size_t n = signatures.size();
  const auto row_matches = [&](size_t i, std::vector<ElementPair>& hits) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      const double sim =
          linalg::CosineSimilarity(signatures.signatures.RowSpan(i),
                                   signatures.signatures.RowSpan(j));
      if (sim >= threshold_) {
        hits.push_back(MakePair(signatures.refs[i], signatures.refs[j]));
      }
    }
  };
  std::set<ElementPair> out;
  if (pool_ == nullptr || pool_->num_threads() <= 1 || n < 2) {
    std::vector<ElementPair> hits;
    for (size_t i = 0; i < n; ++i) row_matches(i, hits);
    out.insert(hits.begin(), hits.end());
    return out;
  }
  // Per-row slots merged in index order: the set content is identical
  // to the serial loop at any thread count.
  std::vector<std::vector<ElementPair>> slots(n);
  (void)pool_->ParallelFor(n, [&](size_t i) { row_matches(i, slots[i]); });
  for (const auto& slot : slots) out.insert(slot.begin(), slot.end());
  return out;
}

std::string SimMatcher::BlockCacheId() const {
  return StrFormat("sim:t=%.17g", threshold_);
}

std::set<ElementPair> SimMatcher::MatchBlock(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    int schema_a, int schema_b) const {
  // The cross-schema candidate predicate plus the per-pair score are the
  // same as Match(); restricting i to schema_a and j to schema_b covers
  // exactly the pairs Match() produces between these two sources.
  std::set<ElementPair> out;
  const std::vector<size_t> rows_a = signatures.RowsOfSchema(schema_a);
  const std::vector<size_t> rows_b = signatures.RowsOfSchema(schema_b);
  for (size_t i : rows_a) {
    for (size_t j : rows_b) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      const double sim =
          linalg::CosineSimilarity(signatures.signatures.RowSpan(i),
                                   signatures.signatures.RowSpan(j));
      if (sim >= threshold_) {
        out.insert(MakePair(signatures.refs[i], signatures.refs[j]));
      }
    }
  }
  return out;
}

size_t SimMatcher::ComparisonCount(const scoping::SignatureSet& signatures,
                                   const std::vector<bool>& active) {
  size_t count = 0;
  const size_t n = signatures.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      count += IsCandidate(signatures, active, i, j);
    }
  }
  return count;
}

}  // namespace colscope::matching
