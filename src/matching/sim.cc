#include "matching/sim.h"

#include "common/strings.h"
#include "linalg/stats.h"

namespace colscope::matching {

std::string SimMatcher::name() const {
  return StrFormat("SIM(%.1f)", threshold_);
}

std::set<ElementPair> SimMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;
  const size_t n = signatures.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      const double sim = linalg::CosineSimilarity(signatures.signatures.Row(i),
                                                  signatures.signatures.Row(j));
      if (sim >= threshold_) {
        out.insert(MakePair(signatures.refs[i], signatures.refs[j]));
      }
    }
  }
  return out;
}

size_t SimMatcher::ComparisonCount(const scoping::SignatureSet& signatures,
                                   const std::vector<bool>& active) {
  size_t count = 0;
  const size_t n = signatures.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      count += IsCandidate(signatures, active, i, j);
    }
  }
  return count;
}

}  // namespace colscope::matching
