#include "matching/matcher.h"

namespace colscope::matching {

std::set<ElementPair> Matcher::MatchBlock(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    int schema_a, int schema_b) const {
  (void)signatures;
  (void)active;
  (void)schema_a;
  (void)schema_b;
  return {};
}

ElementPair MakePair(schema::ElementRef a, schema::ElementRef b) {
  if (b < a) std::swap(a, b);
  return {a, b};
}

bool IsCandidate(const scoping::SignatureSet& signatures,
                 const std::vector<bool>& active, size_t i, size_t j) {
  if (!active[i] || !active[j]) return false;
  const schema::ElementRef& a = signatures.refs[i];
  const schema::ElementRef& b = signatures.refs[j];
  return a.schema != b.schema && a.is_table() == b.is_table();
}

}  // namespace colscope::matching
