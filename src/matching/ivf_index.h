#ifndef COLSCOPE_MATCHING_IVF_INDEX_H_
#define COLSCOPE_MATCHING_IVF_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "embed/quantized_store.h"
#include "linalg/matrix.h"
#include "matching/matcher.h"

namespace colscope {
class ThreadPool;
}  // namespace colscope

namespace colscope::matching {

/// Inverted-file (IVF) nearest-neighbour index: the rows are partitioned
/// into `num_lists` cells by k-Means (the coarse quantizer, reusing
/// matching/kmeans), and a query only scans the `nprobe` cells whose
/// centroids are closest — the classic FAISS IndexIVFFlat layout, and
/// the repo's first genuinely sub-linear search path. With
/// num_lists ~ sqrt(n) and a constant nprobe a query touches O(sqrt(n))
/// rows instead of n.
///
/// `nprobe` is the recall knob: nprobe >= num_lists degenerates to the
/// exact flat scan, smaller values trade recall for speed. Probing
/// continues past nprobe (in centroid-distance order) only when the
/// probed cells hold fewer than k rows, so Search never silently
/// returns short results on skewed partitions.
///
/// With `Options::quantized` each probed cell is prescanned with the
/// int8 QuantizedSignatureStore: candidates are ranked by approximate
/// distance, the top k * rescore_factor survivors are rescored exactly,
/// and the final order is decided purely by exact double-precision
/// distances with the (distance, id) tie-break — quantization affects
/// which rows reach the rescoring, never how they rank.
///
/// Deterministic: k-Means seeding, the centroid recomputation, every
/// distance, and every tie-break are fixed by (vectors, Options), so
/// Search results are bit-identical across runs, machines, and SIMD
/// dispatch tables.
class IvfIndex {
 public:
  struct Options {
    /// Number of k-Means cells; 0 picks round(sqrt(n)) (at least 1).
    size_t num_lists = 0;
    /// Cells scanned per query, in centroid-distance order.
    size_t nprobe = 8;
    /// Prescan probed cells with the int8 store, rescore exactly.
    bool quantized = false;
    /// Oversampling factor for the quantized rescoring pool.
    size_t rescore_factor = 4;
    /// Lloyd iterations for the coarse quantizer.
    int kmeans_iterations = 25;
    uint64_t seed = 0x1f5eed;
  };

  /// Indexes the rows of `vectors` (copied); default options.
  explicit IvfIndex(linalg::Matrix vectors);
  IvfIndex(linalg::Matrix vectors, const Options& options);

  /// Ids (row indices) of the `k` approximate nearest vectors to
  /// `query`, closest first, scanning Options::nprobe cells.
  std::vector<size_t> Search(std::span<const double> query, size_t k) const;

  /// Same with an explicit nprobe override.
  std::vector<size_t> Search(std::span<const double> query, size_t k,
                             size_t nprobe) const;

  /// Rows a Search for `k` neighbours would scan at `nprobe` — the
  /// sub-linearity measure benches chart against size().
  size_t ProbedRows(std::span<const double> query, size_t k,
                    size_t nprobe) const;

  size_t size() const { return vectors_.rows(); }
  size_t num_lists() const { return lists_.size(); }
  size_t nprobe() const { return options_.nprobe; }
  bool quantized() const { return store_ != nullptr; }

 private:
  /// Cell ids ordered by (centroid distance, id).
  std::vector<size_t> CellOrder(std::span<const double> query) const;
  /// Candidate rows from probing: at least `nprobe` cells, more only
  /// while fewer than `k` rows were collected.
  std::vector<size_t> Probe(std::span<const double> query, size_t k,
                            size_t nprobe) const;

  linalg::Matrix vectors_;
  Options options_;
  /// One row per non-empty cell, recomputed as the mean of its members.
  linalg::Matrix centroids_;
  /// lists_[c] = ascending row ids assigned to cell c.
  std::vector<std::vector<size_t>> lists_;
  /// Present only in quantized mode.
  std::unique_ptr<embed::QuantizedSignatureStore> store_;
};

/// Matcher over one global IVF index: all active elements are indexed
/// together (unlike LshMatcher's per-schema flat indexes, whose cells
/// would be too small to amortize the coarse quantizer) and every
/// element retrieves an oversampled neighbour pool from which the
/// top_k valid candidates — different schema, same element kind, both
/// active (IsCandidate) — are kept. `num_lists` = 1 degenerates to the
/// exact flat scan, which doubles as the "exact flat" baseline arm in
/// bench/corpus_scale.cc; with auto num_lists and nprobe << num_lists
/// the scan is sub-linear per query.
///
/// `token_prefilter` composes token blocking (matching/token_blocking)
/// in front of the pool: only retrieved neighbours that also share a
/// name token with the query survive — the ER-style cheap-candidate
/// stage feeding expensive refinement.
///
/// Deterministic at any thread count: per-query results depend only on
/// (signatures, active, Options), and the per-query result slots are
/// merged in index order, never in completion order.
class IvfMatcher : public Matcher {
 public:
  struct Options {
    /// Valid candidates kept per element.
    size_t top_k = 5;
    /// IvfIndex cells; 0 = auto sqrt, 1 = exact flat scan.
    size_t num_lists = 0;
    size_t nprobe = 8;
    bool quantized = false;
    bool token_prefilter = false;
    uint64_t seed = 0x1f5eed;
  };

  explicit IvfMatcher(const Options& options, ThreadPool* pool = nullptr)
      : options_(options), pool_(pool) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
  ThreadPool* pool_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_IVF_INDEX_H_
