#include "matching/cupid.h"

#include <algorithm>

#include "common/strings.h"
#include "text/string_similarity.h"

namespace colscope::matching {

namespace {

std::string LeadingName(const std::string& serialized) {
  const size_t space = serialized.find(' ');
  return ToLowerAscii(space == std::string::npos
                          ? serialized
                          : serialized.substr(0, space));
}

/// Second token of an attribute serialization = owning table name.
std::string ParentTableName(const std::string& serialized) {
  const auto parts = SplitString(serialized, " ");
  return parts.size() >= 2 ? ToLowerAscii(parts[1]) : "";
}

double Lsim(const std::string& a, const std::string& b) {
  return text::JaroWinklerSimilarity(a, b);
}

}  // namespace

std::string CupidMatcher::name() const {
  return StrFormat("CUPID(%.1f,w=%.1f)", options_.threshold,
                   options_.structural_weight);
}

double CupidMatcher::WeightedSimilarity(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    size_t i, size_t j) const {
  const auto& ref_a = signatures.refs[i];
  const auto& ref_b = signatures.refs[j];
  const double lsim = Lsim(LeadingName(signatures.texts[i]),
                           LeadingName(signatures.texts[j]));

  double ssim = 0.0;
  if (!ref_a.is_table()) {
    // Attributes: structural similarity = parents' name similarity.
    ssim = Lsim(ParentTableName(signatures.texts[i]),
                ParentTableName(signatures.texts[j]));
  } else {
    // Tables: mean over a-side attributes of their best linguistic match
    // among b-side attributes (leaf-up propagation).
    double sum = 0.0;
    size_t count = 0;
    for (size_t p = 0; p < signatures.size(); ++p) {
      const auto& rp = signatures.refs[p];
      if (!active[p] || rp.is_table() || rp.schema != ref_a.schema ||
          rp.table != ref_a.table) {
        continue;
      }
      double best = 0.0;
      for (size_t q = 0; q < signatures.size(); ++q) {
        const auto& rq = signatures.refs[q];
        if (!active[q] || rq.is_table() || rq.schema != ref_b.schema ||
            rq.table != ref_b.table) {
          continue;
        }
        best = std::max(best, Lsim(LeadingName(signatures.texts[p]),
                                   LeadingName(signatures.texts[q])));
      }
      sum += best;
      ++count;
    }
    ssim = count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  return options_.structural_weight * ssim +
         (1.0 - options_.structural_weight) * lsim;
}

std::set<ElementPair> CupidMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;
  const size_t n = signatures.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      if (WeightedSimilarity(signatures, active, i, j) >=
          options_.threshold) {
        out.insert(MakePair(signatures.refs[i], signatures.refs[j]));
      }
    }
  }
  return out;
}

}  // namespace colscope::matching
