#include "matching/flat_index.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "linalg/stats.h"

namespace colscope::matching {

FlatL2Index::FlatL2Index(linalg::Matrix vectors)
    : FlatL2Index(std::move(vectors), Options()) {}

FlatL2Index::FlatL2Index(linalg::Matrix vectors, Options options)
    : vectors_(std::move(vectors)), options_(options) {
  if (options_.quantized) {
    store_ = std::make_unique<embed::QuantizedSignatureStore>(vectors_);
  }
}

std::vector<size_t> FlatL2Index::Search(const linalg::Vector& query,
                                        size_t k) const {
  const size_t n = vectors_.rows();
  const size_t keep = std::min(k, n);

  // Candidate pool: everything in exact mode; the approximate top
  // k * rescore_factor in quantized mode. Either way the *final* order
  // comes from exact double-precision distances with the same
  // (distance, id) tie-break, so quantization can only affect which
  // candidates reach the exact rescoring, never how they are ranked.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  if (store_ != nullptr && keep < n) {
    const embed::QuantizedQuery q = store_->Quantize(query);
    std::vector<double> approx(n);
    for (size_t i = 0; i < n; ++i) {
      approx[i] = store_->ApproxSquaredL2(i, q.codes.data(), q.scale, q.norm2);
    }
    const size_t pool_size =
        std::min(n, std::max(keep, keep * std::max<size_t>(
                                        options_.rescore_factor, 1)));
    std::partial_sort(pool.begin(), pool.begin() + static_cast<long>(pool_size),
                      pool.end(), [&](size_t a, size_t b) {
                        if (approx[a] != approx[b]) return approx[a] < approx[b];
                        return a < b;
                      });
    pool.resize(pool_size);
  }

  std::vector<double> dist(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    dist[i] = linalg::SquaredL2Distance(vectors_.RowSpan(pool[i]), query);
  }
  std::vector<size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](size_t a, size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return pool[a] < pool[b];
                    });
  std::vector<size_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(pool[order[i]]);
  return out;
}

RandomHyperplaneLsh::RandomHyperplaneLsh(linalg::Matrix vectors,
                                         Options options)
    : vectors_(std::move(vectors)), options_(options) {
  Rng rng(options_.seed);
  const size_t d = vectors_.cols();
  hyperplanes_.reserve(options_.num_tables);
  buckets_.resize(options_.num_tables);
  for (size_t t = 0; t < options_.num_tables; ++t) {
    linalg::Matrix planes(options_.num_bits, d);
    for (double& v : planes.data()) v = rng.NextGaussian();
    hyperplanes_.push_back(std::move(planes));
  }
  for (size_t t = 0; t < options_.num_tables; ++t) {
    auto& bucket = buckets_[t];
    bucket.reserve(vectors_.rows());
    for (size_t i = 0; i < vectors_.rows(); ++i) {
      bucket.emplace_back(HashVector(vectors_.Row(i), t), i);
    }
    std::sort(bucket.begin(), bucket.end());
  }
}

uint64_t RandomHyperplaneLsh::HashVector(const linalg::Vector& v,
                                         size_t table) const {
  const linalg::Matrix& planes = hyperplanes_[table];
  uint64_t hash = 0;
  for (size_t b = 0; b < planes.rows(); ++b) {
    double dot = 0.0;
    const double* row = planes.RowPtr(b);
    for (size_t c = 0; c < v.size(); ++c) dot += row[c] * v[c];
    hash = (hash << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return hash;
}

std::vector<size_t> RandomHyperplaneLsh::Search(const linalg::Vector& query,
                                                size_t k) const {
  std::set<size_t> candidates;
  for (size_t t = 0; t < options_.num_tables; ++t) {
    const uint64_t hash = HashVector(query, t);
    const auto& bucket = buckets_[t];
    auto it = std::lower_bound(bucket.begin(), bucket.end(),
                               std::make_pair(hash, size_t{0}));
    for (; it != bucket.end() && it->first == hash; ++it) {
      candidates.insert(it->second);
    }
  }
  if (candidates.size() < k) {
    // Too few collisions: degrade to exact search for stable recall.
    for (size_t i = 0; i < vectors_.rows(); ++i) candidates.insert(i);
  }
  std::vector<size_t> ids(candidates.begin(), candidates.end());
  std::vector<double> dist(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    dist[i] = linalg::SquaredL2Distance(vectors_.RowSpan(ids[i]), query);
  }
  std::vector<size_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t keep = std::min(k, ids.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                    order.end(), [&](size_t a, size_t b) {
                      if (dist[a] != dist[b]) return dist[a] < dist[b];
                      return ids[a] < ids[b];
                    });
  std::vector<size_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(ids[order[i]]);
  return out;
}

}  // namespace colscope::matching
