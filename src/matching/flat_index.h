#ifndef COLSCOPE_MATCHING_FLAT_INDEX_H_
#define COLSCOPE_MATCHING_FLAT_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "embed/quantized_store.h"
#include "linalg/matrix.h"

namespace colscope::matching {

/// Exact L2 nearest-neighbour index over a fixed set of vectors — the
/// equivalent of FAISS IndexFlatL2 that the paper's "LSH" matcher builds
/// per schema (Section 4.1). Brute-force search; exact by construction.
///
/// With `Options::quantized` the scan runs over an int8
/// QuantizedSignatureStore instead of the double matrix: candidates are
/// ranked by approximate distance, the top `k * rescore_factor` are
/// rescored with the exact double kernels, and the final top-k order is
/// decided purely by those exact distances. Opt-in (`--quantized`); the
/// default remains byte-for-byte the exact scan.
class FlatL2Index {
 public:
  struct Options {
    /// Rank with int8 approximate distances, rescore exactly.
    bool quantized = false;
    /// Oversampling factor for the rescoring pool: the approximate pass
    /// keeps k * rescore_factor candidates before exact rescoring.
    size_t rescore_factor = 4;
  };

  /// Indexes the rows of `vectors` (copied); exact scan by default.
  explicit FlatL2Index(linalg::Matrix vectors);
  FlatL2Index(linalg::Matrix vectors, Options options);

  /// Ids (row indices) of the `k` nearest vectors to `query`, closest
  /// first; fewer if the index holds fewer than k vectors.
  std::vector<size_t> Search(const linalg::Vector& query, size_t k) const;

  size_t size() const { return vectors_.rows(); }
  bool quantized() const { return store_ != nullptr; }

 private:
  linalg::Matrix vectors_;
  Options options_;
  /// Present only in quantized mode.
  std::unique_ptr<embed::QuantizedSignatureStore> store_;
};

/// A genuine locality-sensitive-hashing index using random-hyperplane
/// signatures (SimHash) with multi-probe verification: candidates are
/// collected from hash buckets across `num_tables` tables and re-ranked
/// by exact L2 distance. Approximate — recall depends on the
/// bits/tables configuration. Provided as the extension the library
/// offers beyond the paper's exact flat search.
class RandomHyperplaneLsh {
 public:
  struct Options {
    size_t num_bits = 12;
    size_t num_tables = 8;
    uint64_t seed = 0x15a5eed;
  };

  RandomHyperplaneLsh(linalg::Matrix vectors, Options options);

  /// Approximate top-k by L2 among hash-bucket candidates; falls back to
  /// scanning everything when the buckets yield fewer than k candidates.
  std::vector<size_t> Search(const linalg::Vector& query, size_t k) const;

  size_t size() const { return vectors_.rows(); }

 private:
  uint64_t HashVector(const linalg::Vector& v, size_t table) const;

  linalg::Matrix vectors_;
  Options options_;
  // hyperplanes_[table] is a (num_bits x dims) matrix.
  std::vector<linalg::Matrix> hyperplanes_;
  // buckets_[table]: hash -> row ids.
  std::vector<std::vector<std::pair<uint64_t, size_t>>> buckets_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_FLAT_INDEX_H_
