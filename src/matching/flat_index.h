#ifndef COLSCOPE_MATCHING_FLAT_INDEX_H_
#define COLSCOPE_MATCHING_FLAT_INDEX_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace colscope::matching {

/// Exact L2 nearest-neighbour index over a fixed set of vectors — the
/// equivalent of FAISS IndexFlatL2 that the paper's "LSH" matcher builds
/// per schema (Section 4.1). Brute-force search; exact by construction.
class FlatL2Index {
 public:
  /// Indexes the rows of `vectors` (copied).
  explicit FlatL2Index(linalg::Matrix vectors);

  /// Ids (row indices) of the `k` nearest vectors to `query`, closest
  /// first; fewer if the index holds fewer than k vectors.
  std::vector<size_t> Search(const linalg::Vector& query, size_t k) const;

  size_t size() const { return vectors_.rows(); }

 private:
  linalg::Matrix vectors_;
};

/// A genuine locality-sensitive-hashing index using random-hyperplane
/// signatures (SimHash) with multi-probe verification: candidates are
/// collected from hash buckets across `num_tables` tables and re-ranked
/// by exact L2 distance. Approximate — recall depends on the
/// bits/tables configuration. Provided as the extension the library
/// offers beyond the paper's exact flat search.
class RandomHyperplaneLsh {
 public:
  struct Options {
    size_t num_bits = 12;
    size_t num_tables = 8;
    uint64_t seed = 0x15a5eed;
  };

  RandomHyperplaneLsh(linalg::Matrix vectors, Options options);

  /// Approximate top-k by L2 among hash-bucket candidates; falls back to
  /// scanning everything when the buckets yield fewer than k candidates.
  std::vector<size_t> Search(const linalg::Vector& query, size_t k) const;

  size_t size() const { return vectors_.rows(); }

 private:
  uint64_t HashVector(const linalg::Vector& v, size_t table) const;

  linalg::Matrix vectors_;
  Options options_;
  // hyperplanes_[table] is a (num_bits x dims) matrix.
  std::vector<linalg::Matrix> hyperplanes_;
  // buckets_[table]: hash -> row ids.
  std::vector<std::vector<std::pair<uint64_t, size_t>>> buckets_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_FLAT_INDEX_H_
