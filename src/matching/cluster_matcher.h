#ifndef COLSCOPE_MATCHING_CLUSTER_MATCHER_H_
#define COLSCOPE_MATCHING_CLUSTER_MATCHER_H_

#include "matching/kmeans.h"
#include "matching/matcher.h"

namespace colscope::matching {

/// CLUSTER "semantic blocking" (Meduri et al. / Sahay et al.): for every
/// schema pair, k-Means co-clusters both schemas' signatures and emits
/// every cross-schema same-kind pair that falls into the same cluster.
/// The paper evaluates k in {2, 5, 20}. Passing k = 0 self-tunes the
/// cardinality per schema pair via the silhouette coefficient — the
/// ALITE strategy (Khatiwada et al.) the paper's related work describes.
class ClusterMatcher : public Matcher {
 public:
  explicit ClusterMatcher(size_t k, uint64_t seed = 0x5eed)
      : k_(k), seed_(seed) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  size_t k() const { return k_; }

 private:
  size_t k_;
  uint64_t seed_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_CLUSTER_MATCHER_H_
