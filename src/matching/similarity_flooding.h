#ifndef COLSCOPE_MATCHING_SIMILARITY_FLOODING_H_
#define COLSCOPE_MATCHING_SIMILARITY_FLOODING_H_

#include <map>

#include "matching/matcher.h"

namespace colscope::matching {

/// Similarity Flooding (Melnik, Garcia-Molina, Rahm — ICDE 2002), one of
/// the classic structural schema matchers the paper's related work
/// surveys (Section 2.2). Schemas become labeled graphs (table ->
/// attribute "column" edges, attribute -> type "type" edges); an initial
/// string-similarity map over same-kind node pairs is then iteratively
/// "flooded" along the pairwise connectivity graph until fixpoint, so
/// similarity propagates between neighbourhoods: tables with similar
/// columns reinforce each other and vice versa.
///
/// Runs per schema pair; emits element pairs whose converged similarity
/// reaches `threshold` (relative to the per-pair-graph maximum). Purely
/// structural + lexical: it does not use signatures, making it the
/// traditional contrast to the embedding-based SIM/CLUSTER/LSH family.
class SimilarityFloodingMatcher : public Matcher {
 public:
  struct Options {
    /// Relative selection threshold in (0, 1]: keep pairs whose final
    /// similarity >= threshold * max similarity in their pair graph.
    double threshold = 0.6;
    int max_iterations = 50;
    double convergence_epsilon = 1e-4;
  };

  SimilarityFloodingMatcher() = default;
  explicit SimilarityFloodingMatcher(Options options) : options_(options) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  /// Converged, max-normalized similarity scores for one schema pair
  /// (active elements only); exposed for inspection and tests.
  std::map<ElementPair, double> FloodScores(
      const scoping::SignatureSet& signatures,
      const std::vector<bool>& active, int schema_a, int schema_b) const;

 private:
  Options options_{};
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_SIMILARITY_FLOODING_H_
