#ifndef COLSCOPE_MATCHING_TOKEN_BLOCKING_H_
#define COLSCOPE_MATCHING_TOKEN_BLOCKING_H_

#include "matching/matcher.h"

namespace colscope::matching {

/// The shared-token candidate-pair set over the active rows: pairs of
/// global row ids (smaller first) whose element NAMES share at least
/// one identifier token, restricted to valid candidates (IsCandidate).
/// This is exactly the blocking set TokenBlockedSimMatcher verifies,
/// exposed so other matchers can compose token blocking as a prefilter
/// (IvfMatcher's `token_prefilter`).
std::set<std::pair<size_t, size_t>> TokenBlockingCandidates(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active);

/// Token blocking (Papadakis et al., the ER blocking family of
/// Section 2.2): candidate pairs are element pairs whose names share at
/// least one token, collected through an inverted index — avoiding the
/// full Cartesian enumeration SIM performs. The shared-token candidates
/// are then verified with the cosine threshold, so the result is a
/// subset of SIM(threshold) restricted to lexically overlapping pairs.
///
/// With `quantized` the cosine verification runs a cheap int8 prescan
/// first: a candidate is dropped without touching the double kernels
/// when its approximate cosine plus the store's conservative
/// dequantization error bound stays below the threshold. The bound
/// guarantees the surviving set contains every pair the exact check
/// accepts, so the returned matches are IDENTICAL to the unquantized
/// matcher — quantization here only saves work, never changes output.
class TokenBlockedSimMatcher : public Matcher {
 public:
  explicit TokenBlockedSimMatcher(double threshold, bool quantized = false)
      : threshold_(threshold), quantized_(quantized) {}

  std::string name() const override;
  std::set<ElementPair> Match(const scoping::SignatureSet& signatures,
                              const std::vector<bool>& active) const override;

  /// Number of candidate pairs the inverted index produced for the mask
  /// (the comparisons actually made — the efficiency story vs the full
  /// Cartesian count of SimMatcher::ComparisonCount).
  static size_t CandidateCount(const scoping::SignatureSet& signatures,
                               const std::vector<bool>& active);

 private:
  double threshold_;
  bool quantized_;
};

}  // namespace colscope::matching

#endif  // COLSCOPE_MATCHING_TOKEN_BLOCKING_H_
