#include "matching/similarity_flooding.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.h"
#include "text/string_similarity.h"

namespace colscope::matching {

namespace {

/// Node of one schema's model graph: the schema's elements (tables and
/// attributes) plus synthetic type nodes shared by same-typed columns.
struct GraphNode {
  int row = -1;          ///< SignatureSet row, or -1 for a type node.
  std::string label;     ///< Name used for the initial similarity.
  bool is_table = false;
  bool is_type = false;
};

/// Labeled edge kinds of the model graph.
enum class EdgeLabel { kColumn, kType };

struct Graph {
  std::vector<GraphNode> nodes;
  // Edges as (from, to, label); the flooding treats them bidirectionally.
  std::vector<std::tuple<size_t, size_t, EdgeLabel>> edges;
};

/// The element's own name: leading token of its serialized text.
std::string LeadingName(const std::string& serialized) {
  const size_t space = serialized.find(' ');
  return space == std::string::npos ? serialized
                                    : serialized.substr(0, space);
}

/// Third whitespace token of an attribute serialization = its type name.
std::string TypeName(const std::string& serialized) {
  const auto parts = SplitString(serialized, " ");
  return parts.size() >= 3 ? ToLowerAscii(parts[2]) : "unknown";
}

/// Builds one schema's model graph from the signature rows of `schema`.
Graph BuildGraph(const scoping::SignatureSet& signatures,
                 const std::vector<bool>& active, int schema) {
  Graph graph;
  std::map<std::pair<int, int>, size_t> table_nodes;  // (schema, table).
  std::map<std::string, size_t> type_nodes;

  // Table nodes first.
  for (size_t i = 0; i < signatures.size(); ++i) {
    const auto& ref = signatures.refs[i];
    if (ref.schema != schema || !ref.is_table() || !active[i]) continue;
    GraphNode node;
    node.row = static_cast<int>(i);
    node.label = LeadingName(signatures.texts[i]);
    node.is_table = true;
    table_nodes[{ref.schema, ref.table}] = graph.nodes.size();
    graph.nodes.push_back(std::move(node));
  }
  // Attribute nodes with column and type edges.
  for (size_t i = 0; i < signatures.size(); ++i) {
    const auto& ref = signatures.refs[i];
    if (ref.schema != schema || ref.is_table() || !active[i]) continue;
    GraphNode node;
    node.row = static_cast<int>(i);
    node.label = LeadingName(signatures.texts[i]);
    const size_t attr_index = graph.nodes.size();
    graph.nodes.push_back(std::move(node));

    auto table_it = table_nodes.find({ref.schema, ref.table});
    if (table_it != table_nodes.end()) {
      graph.edges.emplace_back(table_it->second, attr_index,
                               EdgeLabel::kColumn);
    }
    const std::string type = TypeName(signatures.texts[i]);
    auto [type_it, inserted] = type_nodes.try_emplace(type, 0);
    if (inserted) {
      GraphNode type_node;
      type_node.label = type;
      type_node.is_type = true;
      type_it->second = graph.nodes.size();
      graph.nodes.push_back(std::move(type_node));
    }
    graph.edges.emplace_back(attr_index, type_it->second, EdgeLabel::kType);
  }
  return graph;
}

}  // namespace

std::string SimilarityFloodingMatcher::name() const {
  return StrFormat("SF(%.1f)", options_.threshold);
}

std::map<ElementPair, double> SimilarityFloodingMatcher::FloodScores(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    int schema_a, int schema_b) const {
  const Graph ga = BuildGraph(signatures, active, schema_a);
  const Graph gb = BuildGraph(signatures, active, schema_b);
  std::map<ElementPair, double> out;
  if (ga.nodes.empty() || gb.nodes.empty()) return out;

  // Pair-graph node (i, j) <-> flat index i * |gb| + j.
  const size_t nb = gb.nodes.size();
  const size_t num_pairs = ga.nodes.size() * nb;
  auto pair_index = [&](size_t i, size_t j) { return i * nb + j; };

  // Initial similarity sigma^0: lexical similarity of labels for
  // same-kind node pairs (tables with tables, attributes with
  // attributes, identical type nodes).
  std::vector<double> sigma0(num_pairs, 0.0);
  for (size_t i = 0; i < ga.nodes.size(); ++i) {
    for (size_t j = 0; j < nb; ++j) {
      const GraphNode& a = ga.nodes[i];
      const GraphNode& b = gb.nodes[j];
      if (a.is_type != b.is_type || a.is_table != b.is_table) continue;
      if (a.is_type) {
        sigma0[pair_index(i, j)] = a.label == b.label ? 1.0 : 0.0;
      } else {
        sigma0[pair_index(i, j)] = text::LevenshteinSimilarity(
            ToLowerAscii(a.label), ToLowerAscii(b.label));
      }
    }
  }

  // Pairwise connectivity graph: pair (i, j) -- pair (i', j') whenever
  // both model graphs have a same-labeled edge (i, i') and (j, j').
  // Propagation coefficients: 1 / out-degree per (node pair, label).
  struct PairEdge {
    size_t from;
    size_t to;
    double weight;
  };
  std::vector<PairEdge> pair_edges;
  for (const auto& [a_from, a_to, a_label] : ga.edges) {
    for (const auto& [b_from, b_to, b_label] : gb.edges) {
      if (a_label != b_label) continue;
      pair_edges.push_back({pair_index(a_from, b_from),
                            pair_index(a_to, b_to), 1.0});
      pair_edges.push_back({pair_index(a_to, b_to),
                            pair_index(a_from, b_from), 1.0});
    }
  }
  // Normalize outgoing weights per source pair.
  std::vector<double> out_degree(num_pairs, 0.0);
  for (const PairEdge& e : pair_edges) out_degree[e.from] += 1.0;
  for (PairEdge& e : pair_edges) {
    e.weight = 1.0 / out_degree[e.from];
  }

  // Fixpoint iteration: sigma^{k+1} = normalize(sigma^0 + sigma^k +
  // flooded increments) — the "basic" SF variant.
  std::vector<double> sigma = sigma0;
  std::vector<double> next(num_pairs, 0.0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const PairEdge& e : pair_edges) {
      next[e.to] += sigma[e.from] * e.weight;
    }
    double max_value = 0.0;
    for (size_t p = 0; p < num_pairs; ++p) {
      next[p] += sigma0[p] + sigma[p];
      max_value = std::max(max_value, next[p]);
    }
    if (max_value <= 0.0) break;
    double delta = 0.0;
    for (size_t p = 0; p < num_pairs; ++p) {
      next[p] /= max_value;
      delta += std::fabs(next[p] - sigma[p]);
    }
    sigma.swap(next);
    if (delta < options_.convergence_epsilon) break;
  }

  // Extract element pairs (skip type nodes), max-normalized.
  double max_element_score = 0.0;
  for (size_t i = 0; i < ga.nodes.size(); ++i) {
    if (ga.nodes[i].is_type) continue;
    for (size_t j = 0; j < nb; ++j) {
      if (gb.nodes[j].is_type) continue;
      if (ga.nodes[i].is_table != gb.nodes[j].is_table) continue;
      max_element_score =
          std::max(max_element_score, sigma[pair_index(i, j)]);
    }
  }
  if (max_element_score <= 0.0) return out;
  for (size_t i = 0; i < ga.nodes.size(); ++i) {
    if (ga.nodes[i].is_type) continue;
    for (size_t j = 0; j < nb; ++j) {
      if (gb.nodes[j].is_type) continue;
      if (ga.nodes[i].is_table != gb.nodes[j].is_table) continue;
      const auto& ref_a = signatures.refs[ga.nodes[i].row];
      const auto& ref_b = signatures.refs[gb.nodes[j].row];
      out[MakePair(ref_a, ref_b)] =
          sigma[pair_index(i, j)] / max_element_score;
    }
  }
  return out;
}

std::set<ElementPair> SimilarityFloodingMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;
  int max_schema = -1;
  for (const auto& ref : signatures.refs) {
    max_schema = std::max(max_schema, ref.schema);
  }
  for (int a = 0; a <= max_schema; ++a) {
    for (int b = a + 1; b <= max_schema; ++b) {
      const auto scores = FloodScores(signatures, active, a, b);
      for (const auto& [pair, score] : scores) {
        if (score >= options_.threshold) out.insert(pair);
      }
    }
  }
  return out;
}

}  // namespace colscope::matching
