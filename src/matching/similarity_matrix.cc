#include "matching/similarity_matrix.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/stats.h"
#include "text/string_similarity.h"
#include "text/tokenize.h"

namespace colscope::matching {

void SimilarityMatrix::Set(const ElementPair& pair, double score) {
  scores_[pair] = score;
}

double SimilarityMatrix::Get(const ElementPair& pair) const {
  const auto it = scores_.find(pair);
  return it == scores_.end() ? 0.0 : it->second;
}

bool SimilarityMatrix::Contains(const ElementPair& pair) const {
  return scores_.count(pair) > 0;
}

std::set<ElementPair> SimilarityMatrix::SelectThreshold(
    double threshold) const {
  std::set<ElementPair> out;
  for (const auto& [pair, score] : scores_) {
    if (score >= threshold) out.insert(pair);
  }
  return out;
}

namespace {
/// Best score seen per (element, partner-schema) slot.
using BestMap =
    std::map<std::pair<schema::ElementRef, int>, std::vector<double>>;
}  // namespace

std::set<ElementPair> SimilarityMatrix::SelectTopK(size_t k) const {
  // Collect each element's scores per partner schema, keep the k-th
  // largest as that slot's cut, then emit pairs meeting their cut.
  BestMap slots;
  for (const auto& [pair, score] : scores_) {
    slots[{pair.first, pair.second.schema}].push_back(score);
    slots[{pair.second, pair.first.schema}].push_back(score);
  }
  std::map<std::pair<schema::ElementRef, int>, double> cut;
  for (auto& [slot, values] : slots) {
    std::sort(values.begin(), values.end(), std::greater<double>());
    const size_t idx = std::min(k, values.size()) - 1;
    cut[slot] = values[idx];
  }
  std::set<ElementPair> out;
  for (const auto& [pair, score] : scores_) {
    if (score >= cut[{pair.first, pair.second.schema}] ||
        score >= cut[{pair.second, pair.first.schema}]) {
      out.insert(pair);
    }
  }
  return out;
}

std::set<ElementPair> SimilarityMatrix::SelectReciprocalBest() const {
  std::map<std::pair<schema::ElementRef, int>, double> best;
  for (const auto& [pair, score] : scores_) {
    auto& a = best[{pair.first, pair.second.schema}];
    a = std::max(a, score);
    auto& b = best[{pair.second, pair.first.schema}];
    b = std::max(b, score);
  }
  std::set<ElementPair> out;
  for (const auto& [pair, score] : scores_) {
    if (score <= 0.0) continue;
    if (score >= best[{pair.first, pair.second.schema}] &&
        score >= best[{pair.second, pair.first.schema}]) {
      out.insert(pair);
    }
  }
  return out;
}

std::set<ElementPair> SimilarityMatrix::SelectGreedyOneToOne(
    double min_score) const {
  std::vector<std::pair<double, ElementPair>> ranked;
  ranked.reserve(scores_.size());
  for (const auto& [pair, score] : scores_) {
    if (score >= min_score) ranked.push_back({score, pair});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // Deterministic tie-break.
  });
  std::set<schema::ElementRef> used;
  std::set<ElementPair> out;
  for (const auto& [score, pair] : ranked) {
    if (used.count(pair.first) || used.count(pair.second)) continue;
    used.insert(pair.first);
    used.insert(pair.second);
    out.insert(pair);
  }
  return out;
}

double CosineScorer::Score(const scoping::SignatureSet& signatures, size_t i,
                           size_t j) const {
  const double cosine = linalg::CosineSimilarity(
      signatures.signatures.RowSpan(i), signatures.signatures.RowSpan(j));
  return std::clamp(cosine, 0.0, 1.0);
}

namespace {
std::string LeadingName(const std::string& serialized) {
  const size_t space = serialized.find(' ');
  return space == std::string::npos ? serialized
                                    : serialized.substr(0, space);
}

/// Sample values from the parenthesized suffix of a serialized element:
/// "CITY CLIENT VARCHAR (Berlin, Paris)" -> {"berlin", "paris"}.
std::set<std::string> SampleSet(const std::string& serialized) {
  std::set<std::string> out;
  const size_t open = serialized.find(" (");
  if (open == std::string::npos || serialized.back() != ')') return out;
  const std::string inner =
      serialized.substr(open + 2, serialized.size() - open - 3);
  for (const std::string& piece : SplitString(inner, ",")) {
    const std::string_view stripped = StripAsciiWhitespace(piece);
    if (!stripped.empty()) out.insert(ToLowerAscii(stripped));
  }
  return out;
}
}  // namespace

double NameScorer::Score(const scoping::SignatureSet& signatures, size_t i,
                         size_t j) const {
  return text::LevenshteinSimilarity(
      ToLowerAscii(LeadingName(signatures.texts[i])),
      ToLowerAscii(LeadingName(signatures.texts[j])));
}

double InstanceScorer::Score(const scoping::SignatureSet& signatures,
                             size_t i, size_t j) const {
  const std::set<std::string> a = SampleSet(signatures.texts[i]);
  const std::set<std::string> b = SampleSet(signatures.texts[j]);
  if (a.empty() || b.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& value : a) intersection += b.count(value);
  const size_t uni = a.size() + b.size() - intersection;
  return uni == 0 ? 0.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

SimilarityMatrix BuildSimilarityMatrix(
    const scoping::SignatureSet& signatures, const std::vector<bool>& active,
    const PairScorer& scorer, ThreadPool* pool) {
  SimilarityMatrix out;
  const size_t n = signatures.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (!IsCandidate(signatures, active, i, j)) continue;
        out.Set(MakePair(signatures.refs[i], signatures.refs[j]),
                scorer.Score(signatures, i, j));
      }
    }
    return out;
  }
  // One task per anchor row i scores its pairs (i, j > i) into a private
  // slot; slots are merged in index order afterwards, so the matrix
  // content is independent of scheduling.
  std::vector<std::vector<std::pair<ElementPair, double>>> slots(n);
  (void)pool->ParallelFor(n, [&](size_t i) {
    auto& slot = slots[i];
    for (size_t j = i + 1; j < n; ++j) {
      if (!IsCandidate(signatures, active, i, j)) continue;
      slot.emplace_back(MakePair(signatures.refs[i], signatures.refs[j]),
                        scorer.Score(signatures, i, j));
    }
  });
  for (const auto& slot : slots) {
    for (const auto& [pair, score] : slot) out.Set(pair, score);
  }
  return out;
}

SimilarityMatrix AggregateMatrices(
    const std::vector<const SimilarityMatrix*>& matrices,
    Aggregation aggregation, const std::vector<double>& weights) {
  COLSCOPE_CHECK(!matrices.empty());
  if (aggregation == Aggregation::kWeighted) {
    COLSCOPE_CHECK_MSG(weights.size() == matrices.size(),
                       "kWeighted needs one weight per matrix");
  }
  // Union of pairs.
  std::set<ElementPair> pairs;
  for (const SimilarityMatrix* m : matrices) {
    for (const auto& [pair, score] : m->scores()) pairs.insert(pair);
  }
  SimilarityMatrix out;
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  for (const ElementPair& pair : pairs) {
    double value = 0.0;
    switch (aggregation) {
      case Aggregation::kMax:
        for (const SimilarityMatrix* m : matrices) {
          value = std::max(value, m->Get(pair));
        }
        break;
      case Aggregation::kAverage: {
        for (const SimilarityMatrix* m : matrices) value += m->Get(pair);
        value /= static_cast<double>(matrices.size());
        break;
      }
      case Aggregation::kWeighted: {
        for (size_t k = 0; k < matrices.size(); ++k) {
          value += weights[k] * matrices[k]->Get(pair);
        }
        if (weight_sum > 0.0) value /= weight_sum;
        break;
      }
    }
    out.Set(pair, value);
  }
  return out;
}

CompositeMatcher::CompositeMatcher(std::vector<const PairScorer*> scorers,
                                   Options options)
    : scorers_(std::move(scorers)), options_(options) {
  COLSCOPE_CHECK(!scorers_.empty());
}

std::string CompositeMatcher::name() const {
  std::string out = "COMPOSITE(";
  for (size_t i = 0; i < scorers_.size(); ++i) {
    if (i > 0) out += '+';
    out += scorers_[i]->name();
  }
  out += ')';
  return out;
}

SimilarityMatrix CompositeMatcher::BuildMatrix(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::vector<SimilarityMatrix> matrices;
  matrices.reserve(scorers_.size());
  for (const PairScorer* scorer : scorers_) {
    matrices.push_back(
        BuildSimilarityMatrix(signatures, active, *scorer, options_.pool));
  }
  std::vector<const SimilarityMatrix*> pointers;
  pointers.reserve(matrices.size());
  for (const SimilarityMatrix& m : matrices) pointers.push_back(&m);
  return AggregateMatrices(pointers, options_.aggregation, options_.weights);
}

std::set<ElementPair> CompositeMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  const SimilarityMatrix matrix = BuildMatrix(signatures, active);
  switch (options_.selection) {
    case Selection::kThreshold:
      return matrix.SelectThreshold(options_.threshold);
    case Selection::kTopK:
      return matrix.SelectTopK(options_.top_k);
    case Selection::kReciprocalBest:
      return matrix.SelectReciprocalBest();
    case Selection::kOneToOne:
      return matrix.SelectGreedyOneToOne(options_.threshold);
  }
  return {};
}

}  // namespace colscope::matching
