#include "matching/cluster_matcher.h"

#include "common/strings.h"
#include "matching/silhouette.h"

namespace colscope::matching {

std::string ClusterMatcher::name() const {
  if (k_ == 0) return "CLUSTER(auto)";
  return StrFormat("CLUSTER(%zu)", k_);
}

std::set<ElementPair> ClusterMatcher::Match(
    const scoping::SignatureSet& signatures,
    const std::vector<bool>& active) const {
  std::set<ElementPair> out;

  // Determine the participating schemas.
  int max_schema = -1;
  for (const auto& ref : signatures.refs) {
    max_schema = std::max(max_schema, ref.schema);
  }

  for (int sa = 0; sa <= max_schema; ++sa) {
    for (int sb = sa + 1; sb <= max_schema; ++sb) {
      // Active rows of the two schemas.
      std::vector<size_t> rows;
      for (size_t i = 0; i < signatures.size(); ++i) {
        const int s = signatures.refs[i].schema;
        if (active[i] && (s == sa || s == sb)) rows.push_back(i);
      }
      if (rows.size() < 2) continue;

      linalg::Matrix points(rows.size(), signatures.signatures.cols());
      for (size_t i = 0; i < rows.size(); ++i) {
        points.SetRow(i, signatures.signatures.Row(rows[i]));
      }
      KMeansOptions options;
      options.k = k_ > 0 ? k_
                         : SilhouetteBestK(points, 2,
                                           std::min<size_t>(20,
                                                            rows.size() - 1),
                                           seed_);
      options.seed = seed_;
      const std::vector<size_t> clusters = KMeansCluster(points, options);

      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
          if (clusters[i] != clusters[j]) continue;
          if (!IsCandidate(signatures, active, rows[i], rows[j])) continue;
          out.insert(
              MakePair(signatures.refs[rows[i]], signatures.refs[rows[j]]));
        }
      }
    }
  }
  return out;
}

}  // namespace colscope::matching
