#ifndef COLSCOPE_LINALG_TRUNCATED_SVD_H_
#define COLSCOPE_LINALG_TRUNCATED_SVD_H_

#include <cstdint>

#include "linalg/svd.h"

namespace colscope::linalg {

/// Randomized truncated SVD (Halko/Martinsson/Tropp-style subspace
/// iteration): returns the top-`rank` singular triplets of `x` without
/// the full eigendecomposition the exact ThinSvd performs. Intended for
/// the record-scale inputs of the entity-resolution extension, where the
/// exact Gram eigensolver's cubic cost in min(n, d) dominates.
///
/// `power_iterations` sharpens the spectrum separation (5-8 is plenty
/// for PCA-quality subspaces); `seed` fixes the random test matrix so
/// results are deterministic. rank is clamped to min(n, d).
SvdResult TruncatedSvd(const Matrix& x, size_t rank,
                       int power_iterations = 6, uint64_t seed = 0x54d);

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_TRUNCATED_SVD_H_
