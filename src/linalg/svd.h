#ifndef COLSCOPE_LINALG_SVD_H_
#define COLSCOPE_LINALG_SVD_H_

#include "linalg/matrix.h"

namespace colscope::linalg {

/// Thin singular value decomposition X = U diag(S) V^T of an n x d
/// matrix, keeping r = min(n, d) triplets. `u` is n x r, `vt` is r x d
/// (right singular vectors as rows — the principal components when X is
/// mean-centered). Singular values are sorted descending.
struct SvdResult {
  Vector singular_values;  ///< r values, descending, >= 0.
  Matrix u;                ///< n x r left singular vectors (columns).
  Matrix vt;               ///< r x d right singular vectors (rows).
};

/// Which Gram matrix ThinSvd eigendecomposes. The Jacobi sweep is cubic
/// in the Gram size, so the side choice dominates the cost: a 50 x 768
/// signature block costs O(50^3) on the row side versus O(768^3) on the
/// column side (~3000x more flops) for the same decomposition.
enum class GramSide {
  kAuto,  ///< Smaller side by shape: rows when n <= d, else columns.
  kRows,  ///< Force X X^T (n x n) — the Gram trick for wide matrices.
  kCols,  ///< Force X^T X (d x d) — the covariance/scatter path.
};

/// Computes the thin SVD via a symmetric eigendecomposition of a Gram
/// matrix (X X^T or X^T X, chosen by `side`). Exact for the matrix
/// sizes this library targets (hundreds of rows, ~768 columns);
/// singular values below `rank_tolerance` * s_max are dropped to avoid
/// amplifying noise when recovering the paired singular vectors.
SvdResult ThinSvd(const Matrix& x, double rank_tolerance = 1e-10,
                  GramSide side = GramSide::kAuto);

/// Explained-variance ratios ev_i = s_i^2 / sum_j s_j^2 (Alg. 1 lines
/// 6-7). Returns an empty vector when all singular values are zero.
Vector ExplainedVarianceRatios(const Vector& singular_values);

/// Number of leading components needed so that the cumulative explained
/// variance strictly exceeds `target` (Alg. 1 lines 8-9: GetIndex + 1).
/// Always returns at least 1 and at most the number of components.
size_t ComponentsForVariance(const Vector& explained_variance_ratios,
                             double target);

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_SVD_H_
