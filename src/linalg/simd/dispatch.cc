// Runtime kernel dispatch. The decision is made once (first Active()
// call), cached in an atomic pointer, and can be overridden explicitly
// by ForceMode() — the CLI's `--kernels` flag — or by setting the
// COLSCOPE_FORCE_SCALAR environment variable before startup.

#include <atomic>
#include <cstdlib>
#include <string>

#include "linalg/simd/kernels.h"

namespace colscope::linalg::simd {

namespace {

/// Cached dispatch decision; null until the first Active() call (or
/// after ResetDispatchForTesting).
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Resolve() {
  const char* force = std::getenv("COLSCOPE_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0') return &ScalarKernels();
  if (const KernelTable* native = NativeKernels()) return native;
  return &ScalarKernels();
}

}  // namespace

const KernelTable* NativeKernels() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  // Avx2Kernels() is null when the compiler could not target AVX2 at
  // all; the cpuid check guards the machines where it could but the
  // hardware can't run it.
  if (Avx2Kernels() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Avx2Kernels();
  }
  return nullptr;
#elif defined(__aarch64__)
  return NeonKernels();
#else
  return nullptr;
#endif
}

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

const char* ActiveName() { return Active().name; }

Status ForceMode(std::string_view mode) {
  if (mode == "scalar") {
    g_active.store(&ScalarKernels(), std::memory_order_release);
    return Status::Ok();
  }
  if (mode == "native") {
    const KernelTable* native = NativeKernels();
    g_active.store(native != nullptr ? native : &ScalarKernels(),
                   std::memory_order_release);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown kernel mode '" + std::string(mode) +
                                 "' (expected scalar|native)");
}

void ResetDispatchForTesting() {
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace colscope::linalg::simd
