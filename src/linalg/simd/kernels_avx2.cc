// AVX2 (+FMA for the opt-in fast path) span kernels. This translation
// unit is the only one compiled with -mavx2 -mfma; its functions are
// only ever reached after dispatch.cc's runtime cpuid check, so the
// binary still starts on plain x86-64.
//
// The double-precision kernels reproduce the canonical 16-lane
// reduction tree of kernels_scalar.cc exactly: four 4-lane vector
// accumulators (lanes 0-3, 4-7, 8-11, 12-15) giving four independent
// add chains — enough to clear vaddpd latency and run at the load-port
// ceiling — with multiply+add kept as separate rounded operations (no
// FMA contraction — that would change bits), tail handled by the same
// scalar code as the reference, and the fixed lane combine. Only
// dot_fast contracts into FMAs.

#include "linalg/simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace colscope::linalg::simd {

namespace {

/// Spills the four vector accumulators into the canonical lane array
/// (lanes 0-3 from `v0` through 12-15 from `v3`), folds the tail in
/// with the exact scalar code of the reference, and applies the fixed
/// combine.
inline double FinishTree(__m256d v0, __m256d v1, __m256d v2, __m256d v3,
                         const double acc_tail[], size_t rem) {
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, v0);
  _mm256_store_pd(lanes + 4, v1);
  _mm256_store_pd(lanes + 8, v2);
  _mm256_store_pd(lanes + 12, v3);
  for (size_t t = 0; t < rem; ++t) lanes[t] += acc_tail[t];
  double f[8];
  for (size_t j = 0; j < 8; ++j) f[j] = lanes[j] + lanes[j + 8];
  const double c0 = f[0] + f[4];
  const double c1 = f[1] + f[5];
  const double c2 = f[2] + f[6];
  const double c3 = f[3] + f[7];
  return (c0 + c2) + (c1 + c3);
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd();
  __m256d v3 = _mm256_setzero_pd();
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    v0 = _mm256_add_pd(
        v0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    v1 = _mm256_add_pd(v1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
    v2 = _mm256_add_pd(v2, _mm256_mul_pd(_mm256_loadu_pd(a + i + 8),
                                         _mm256_loadu_pd(b + i + 8)));
    v3 = _mm256_add_pd(v3, _mm256_mul_pd(_mm256_loadu_pd(a + i + 12),
                                         _mm256_loadu_pd(b + i + 12)));
  }
  double tail[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) tail[t] = a[body + t] * b[body + t];
  return FinishTree(v0, v1, v2, v3, tail, rem);
}

double SquaredL2Avx2(const double* a, const double* b, size_t n) {
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd();
  __m256d v3 = _mm256_setzero_pd();
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    const __m256d d2 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8));
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 12),
                                     _mm256_loadu_pd(b + i + 12));
    v0 = _mm256_add_pd(v0, _mm256_mul_pd(d0, d0));
    v1 = _mm256_add_pd(v1, _mm256_mul_pd(d1, d1));
    v2 = _mm256_add_pd(v2, _mm256_mul_pd(d2, d2));
    v3 = _mm256_add_pd(v3, _mm256_mul_pd(d3, d3));
  }
  double tail[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) {
    const double d = a[body + t] - b[body + t];
    tail[t] = d * d;
  }
  return FinishTree(v0, v1, v2, v3, tail, rem);
}

void CosineTermsAvx2(const double* a, const double* b, size_t n,
                     double* dot_ab, double* norm2_a, double* norm2_b) {
  // 12 accumulators + 4 live loads press on the 16 ymm registers; GCC
  // spills a little, but the one-pass structure (each element loaded
  // once for all three sums) still wins over three separate passes.
  __m256d ab0 = _mm256_setzero_pd(), ab1 = _mm256_setzero_pd();
  __m256d ab2 = _mm256_setzero_pd(), ab3 = _mm256_setzero_pd();
  __m256d aa0 = _mm256_setzero_pd(), aa1 = _mm256_setzero_pd();
  __m256d aa2 = _mm256_setzero_pd(), aa3 = _mm256_setzero_pd();
  __m256d bb0 = _mm256_setzero_pd(), bb1 = _mm256_setzero_pd();
  __m256d bb2 = _mm256_setzero_pd(), bb3 = _mm256_setzero_pd();
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    const __m256d x0 = _mm256_loadu_pd(a + i);
    const __m256d y0 = _mm256_loadu_pd(b + i);
    ab0 = _mm256_add_pd(ab0, _mm256_mul_pd(x0, y0));
    aa0 = _mm256_add_pd(aa0, _mm256_mul_pd(x0, x0));
    bb0 = _mm256_add_pd(bb0, _mm256_mul_pd(y0, y0));
    const __m256d x1 = _mm256_loadu_pd(a + i + 4);
    const __m256d y1 = _mm256_loadu_pd(b + i + 4);
    ab1 = _mm256_add_pd(ab1, _mm256_mul_pd(x1, y1));
    aa1 = _mm256_add_pd(aa1, _mm256_mul_pd(x1, x1));
    bb1 = _mm256_add_pd(bb1, _mm256_mul_pd(y1, y1));
    const __m256d x2 = _mm256_loadu_pd(a + i + 8);
    const __m256d y2 = _mm256_loadu_pd(b + i + 8);
    ab2 = _mm256_add_pd(ab2, _mm256_mul_pd(x2, y2));
    aa2 = _mm256_add_pd(aa2, _mm256_mul_pd(x2, x2));
    bb2 = _mm256_add_pd(bb2, _mm256_mul_pd(y2, y2));
    const __m256d x3 = _mm256_loadu_pd(a + i + 12);
    const __m256d y3 = _mm256_loadu_pd(b + i + 12);
    ab3 = _mm256_add_pd(ab3, _mm256_mul_pd(x3, y3));
    aa3 = _mm256_add_pd(aa3, _mm256_mul_pd(x3, x3));
    bb3 = _mm256_add_pd(bb3, _mm256_mul_pd(y3, y3));
  }
  double tail_ab[kLanes] = {};
  double tail_aa[kLanes] = {};
  double tail_bb[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) {
    const double x = a[body + t];
    const double y = b[body + t];
    tail_ab[t] = x * y;
    tail_aa[t] = x * x;
    tail_bb[t] = y * y;
  }
  *dot_ab = FinishTree(ab0, ab1, ab2, ab3, tail_ab, rem);
  *norm2_a = FinishTree(aa0, aa1, aa2, aa3, tail_aa, rem);
  *norm2_b = FinishTree(bb0, bb1, bb2, bb3, tail_bb, rem);
}

/// FMA dot: four contracted accumulators, 16 doubles per iteration.
/// Off-contract by design — see KernelTable::dot_fast.
double DotFastAvx2(const double* a, const double* b, size_t n) {
  __m256d v0 = _mm256_setzero_pd(), v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd(), v3 = _mm256_setzero_pd();
  const size_t body = n - n % 16;
  for (size_t i = 0; i < body; i += 16) {
    v0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), v0);
    v1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                         _mm256_loadu_pd(b + i + 4), v1);
    v2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                         _mm256_loadu_pd(b + i + 8), v2);
    v3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                         _mm256_loadu_pd(b + i + 12), v3);
  }
  const __m256d s = _mm256_add_pd(_mm256_add_pd(v0, v1),
                                  _mm256_add_pd(v2, v3));
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (size_t i = body; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// Exact horizontal sum of 8 int32 lanes into an int64. Lanes widen to
/// int64 BEFORE any cross-lane addition — near-saturated accumulators
/// (e.g. every element +-127) would overflow an epi32 pairwise add.
inline int64_t HorizontalSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  return static_cast<int64_t>(_mm_extract_epi32(lo, 0)) +
         _mm_extract_epi32(lo, 1) + _mm_extract_epi32(lo, 2) +
         _mm_extract_epi32(lo, 3) + _mm_extract_epi32(hi, 0) +
         _mm_extract_epi32(hi, 1) + _mm_extract_epi32(hi, 2) +
         _mm_extract_epi32(hi, 3);
}

// Per-iteration an int32 accumulator lane grows by at most one
// madd_epi16 pair: 2 * 127 * 127 for the dot, 2 * 254^2 for the
// squared distance. Flushing every kI8Chunk elements keeps lanes far
// below int32 range for any span length.
constexpr size_t kI8Chunk = 1u << 18;

int64_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  int64_t total = 0;
  size_t start = 0;
  while (start < n) {
    const size_t len = n - start < kI8Chunk ? n - start : kI8Chunk;
    const size_t body = len - len % 32;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (size_t i = 0; i < body; i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + start + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + start + i));
      const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
      const __m256i a_hi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
      const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
      const __m256i b_hi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a_lo, b_lo));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a_hi, b_hi));
    }
    total += HorizontalSumI32(acc0) + HorizontalSumI32(acc1);
    for (size_t i = body; i < len; ++i) {
      total += static_cast<int32_t>(a[start + i]) *
               static_cast<int32_t>(b[start + i]);
    }
    start += len;
  }
  return total;
}

int64_t SquaredL2I8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  int64_t total = 0;
  size_t start = 0;
  while (start < n) {
    const size_t len = n - start < kI8Chunk ? n - start : kI8Chunk;
    const size_t body = len - len % 32;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (size_t i = 0; i < body; i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + start + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + start + i));
      const __m256i d_lo = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb)));
      const __m256i d_hi = _mm256_sub_epi16(
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1)));
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(d_lo, d_lo));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(d_hi, d_hi));
    }
    total += HorizontalSumI32(acc0) + HorizontalSumI32(acc1);
    for (size_t i = body; i < len; ++i) {
      const int32_t d = static_cast<int32_t>(a[start + i]) -
                        static_cast<int32_t>(b[start + i]);
      total += d * d;
    }
    start += len;
  }
  return total;
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const KernelTable table = {
      "avx2",      DotAvx2,   SquaredL2Avx2,   CosineTermsAvx2,
      DotFastAvx2, DotI8Avx2, SquaredL2I8Avx2,
  };
  return &table;
}

}  // namespace colscope::linalg::simd

#else  // !(__AVX2__ && __FMA__)

namespace colscope::linalg::simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace colscope::linalg::simd

#endif
