#ifndef COLSCOPE_LINALG_SIMD_KERNELS_H_
#define COLSCOPE_LINALG_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace colscope::linalg::simd {

/// The span kernels behind every hot scoring path (Dot / Norm / Cosine /
/// MSE / L2 over 768-dim signatures), dispatched once at startup to the
/// best implementation the CPU offers (AVX2+FMA on x86-64, NEON on
/// aarch64, portable scalar everywhere else).
///
/// Determinism contract: every implementation of the double-precision
/// kernels computes the exact same fixed reduction tree (kLanes partial
/// sums filled round-robin over the main body, tail elements into lanes
/// 0..rem-1, then the fixed combine: lanewise fold f_j = l_j + l_{j+8}
/// for j = 0..7 followed by ((f0+f4)+(f2+f6)) + ((f1+f5)+(f3+f7))), so
/// results are *bit-identical* across the scalar and native tables,
/// across ISAs
/// that honor it, and therefore across `--kernels` settings and thread
/// counts. An implementation that cannot reproduce the tree exactly
/// (e.g. an ISA whose only fast path contracts multiply-add) must fall
/// back to the scalar kernels rather than ship different bits. The one
/// deliberate exception is `dot_fast`, which may contract into FMAs and
/// is only for callers that tolerate bounded-ulp drift (benchmarks,
/// approximate prefilters); nothing on the default pipeline path uses
/// it.
///
/// The int8 kernels are exact integer arithmetic, so every
/// implementation is bit-identical by construction.
struct KernelTable {
  /// Implementation name: "scalar", "avx2", or "neon".
  const char* name;

  /// Sum of a[i] * b[i] over the canonical reduction tree.
  double (*dot)(const double* a, const double* b, size_t n);

  /// Sum of (a[i] - b[i])^2 over the canonical reduction tree.
  double (*squared_l2)(const double* a, const double* b, size_t n);

  /// One-pass fused kernel filling *dot_ab = Σ a·b, *norm2_a = Σ a·a,
  /// and *norm2_b = Σ b·b, each over the canonical reduction tree —
  /// cosine similarity in a single streaming pass instead of three.
  void (*cosine_terms)(const double* a, const double* b, size_t n,
                       double* dot_ab, double* norm2_a, double* norm2_b);

  /// Like `dot` but free to contract multiply+add (FMA). NOT part of
  /// the determinism contract: bits may differ from `dot` by a bounded
  /// ulp count (tested in simd_kernels_test). The scalar table aliases
  /// plain `dot`.
  double (*dot_fast)(const double* a, const double* b, size_t n);

  /// Exact Σ a[i] * b[i] for int8 operands (quantized signatures).
  int64_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t n);

  /// Exact Σ (a[i] - b[i])^2 for int8 operands.
  int64_t (*squared_l2_i8)(const int8_t* a, const int8_t* b, size_t n);
};

/// Number of independent accumulator lanes in the canonical reduction
/// tree shared by every double-precision kernel implementation. Sized
/// so the widest vector unit runs enough independent add chains to
/// clear FP-add latency and hit the load-bandwidth ceiling: 16 lanes =
/// four 4-double ymm chains on AVX2 (two 8-lane chains left the kernel
/// add-latency-bound at about half the load-port throughput) = eight
/// 2-double NEON chains, while the scalar reference still fits its
/// accumulators in registers when auto-vectorized to 128-bit lanes.
inline constexpr size_t kLanes = 16;

/// The portable reference table. Always available; the bench and the
/// equivalence tests compare every other table against it.
const KernelTable& ScalarKernels();

/// The best table the current CPU supports beyond scalar, or null when
/// the build/host offers none (non-x86/ARM, or x86 without AVX2+FMA).
const KernelTable* NativeKernels();

/// The dispatched table. Resolution order, decided once on first use:
///   1. a prior ForceMode() call wins;
///   2. a non-empty COLSCOPE_FORCE_SCALAR environment variable forces
///      the scalar table;
///   3. otherwise NativeKernels() when available, else scalar.
const KernelTable& Active();

/// Name of the table Active() resolves to ("scalar" / "avx2" / "neon").
const char* ActiveName();

/// Explicit override (CLI `--kernels=scalar|native`). "native" on a
/// machine with no native table gracefully keeps scalar. Returns
/// InvalidArgument for any other mode string. May be called at any
/// time; subsequent Active() calls see the new table.
Status ForceMode(std::string_view mode);

/// Drops any override and the cached dispatch decision so the next
/// Active() re-reads COLSCOPE_FORCE_SCALAR. Test-only.
void ResetDispatchForTesting();

// Implementation hooks for dispatch.cc — each returns null when the
// table was not compiled in (wrong architecture).
const KernelTable* Avx2Kernels();
const KernelTable* NeonKernels();

}  // namespace colscope::linalg::simd

#endif  // COLSCOPE_LINALG_SIMD_KERNELS_H_
