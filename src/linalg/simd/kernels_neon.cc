// NEON span kernels (aarch64 — NEON is baseline there, so no special
// compile flags). Doubles are 2-wide on NEON, so the canonical 16-lane
// reduction tree maps onto eight float64x2 accumulators: q[v] = lanes
// {2v, 2v+1} — eight independent add chains, comfortably clearing fadd
// latency within the 32 vector registers. Multiply and add stay
// separate rounded operations (vmlaq may contract on some compilers, so
// explicit vmul+vadd), the tail reuses the scalar reference code, and
// the combine follows the fixed lane grouping — bit-identical to the
// scalar table.

#include "linalg/simd/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace colscope::linalg::simd {

namespace {

constexpr size_t kVecs = kLanes / 2;  // float64x2 accumulators per tree.

inline double FinishTree(const float64x2_t q[kVecs], const double tail[],
                         size_t rem) {
  double lanes[kLanes];
  for (size_t v = 0; v < kVecs; ++v) vst1q_f64(lanes + 2 * v, q[v]);
  for (size_t t = 0; t < rem; ++t) lanes[t] += tail[t];
  double f[8];
  for (size_t j = 0; j < 8; ++j) f[j] = lanes[j] + lanes[j + 8];
  const double c0 = f[0] + f[4];
  const double c1 = f[1] + f[5];
  const double c2 = f[2] + f[6];
  const double c3 = f[3] + f[7];
  return (c0 + c2) + (c1 + c3);
}

inline void ZeroTree(float64x2_t q[kVecs]) {
  for (size_t v = 0; v < kVecs; ++v) q[v] = vdupq_n_f64(0.0);
}

double DotNeon(const double* a, const double* b, size_t n) {
  float64x2_t q[kVecs];
  ZeroTree(q);
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t v = 0; v < kVecs; ++v) {
      q[v] = vaddq_f64(
          q[v], vmulq_f64(vld1q_f64(a + i + 2 * v), vld1q_f64(b + i + 2 * v)));
    }
  }
  double tail[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) tail[t] = a[body + t] * b[body + t];
  return FinishTree(q, tail, rem);
}

double SquaredL2Neon(const double* a, const double* b, size_t n) {
  float64x2_t q[kVecs];
  ZeroTree(q);
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t v = 0; v < kVecs; ++v) {
      const float64x2_t d =
          vsubq_f64(vld1q_f64(a + i + 2 * v), vld1q_f64(b + i + 2 * v));
      q[v] = vaddq_f64(q[v], vmulq_f64(d, d));
    }
  }
  double tail[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) {
    const double d = a[body + t] - b[body + t];
    tail[t] = d * d;
  }
  return FinishTree(q, tail, rem);
}

void CosineTermsNeon(const double* a, const double* b, size_t n,
                     double* dot_ab, double* norm2_a, double* norm2_b) {
  // Three trees in one pass; 24 live accumulators fit aarch64's 32
  // vector registers.
  float64x2_t ab[kVecs], aa[kVecs], bb[kVecs];
  ZeroTree(ab);
  ZeroTree(aa);
  ZeroTree(bb);
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t v = 0; v < kVecs; ++v) {
      const float64x2_t x = vld1q_f64(a + i + 2 * v);
      const float64x2_t y = vld1q_f64(b + i + 2 * v);
      ab[v] = vaddq_f64(ab[v], vmulq_f64(x, y));
      aa[v] = vaddq_f64(aa[v], vmulq_f64(x, x));
      bb[v] = vaddq_f64(bb[v], vmulq_f64(y, y));
    }
  }
  double tail_ab[kLanes] = {};
  double tail_aa[kLanes] = {};
  double tail_bb[kLanes] = {};
  const size_t rem = n - body;
  for (size_t t = 0; t < rem; ++t) {
    const double x = a[body + t];
    const double y = b[body + t];
    tail_ab[t] = x * y;
    tail_aa[t] = x * x;
    tail_bb[t] = y * y;
  }
  *dot_ab = FinishTree(ab, tail_ab, rem);
  *norm2_a = FinishTree(aa, tail_aa, rem);
  *norm2_b = FinishTree(bb, tail_bb, rem);
}

/// FMA variant (vfmaq contracts by definition). Off-contract like the
/// AVX2 dot_fast.
double DotFastNeon(const double* a, const double* b, size_t n) {
  float64x2_t q[kVecs];
  ZeroTree(q);
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t v = 0; v < kVecs; ++v) {
      q[v] = vfmaq_f64(q[v], vld1q_f64(a + i + 2 * v),
                       vld1q_f64(b + i + 2 * v));
    }
  }
  float64x2_t s = vaddq_f64(vaddq_f64(q[0], q[1]), vaddq_f64(q[2], q[3]));
  s = vaddq_f64(s, vaddq_f64(vaddq_f64(q[4], q[5]), vaddq_f64(q[6], q[7])));
  double sum = vaddvq_f64(s);
  for (size_t i = body; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

int64_t DotI8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int64_t total = 0;
  const size_t body = n - n % 16;
  int64x2_t acc = vdupq_n_s64(0);
  for (size_t i = 0; i < body; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    // Pairwise-widen to 32 then 64 bits; integer adds are exact, so no
    // chunking subtleties — an int64 accumulator never overflows here.
    const int32x4_t s32 = vaddq_s32(vpaddlq_s16(lo), vpaddlq_s16(hi));
    acc = vaddq_s64(acc, vpaddlq_s32(s32));
  }
  total += vaddvq_s64(acc);
  for (size_t i = body; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

int64_t SquaredL2I8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int64_t total = 0;
  const size_t body = n - n % 16;
  int64x2_t acc = vdupq_n_s64(0);
  for (size_t i = 0; i < body; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t d_lo = vsubl_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t d_hi = vsubl_s8(vget_high_s8(va), vget_high_s8(vb));
    const int32x4_t sq =
        vaddq_s32(vpaddlq_s16(vmulq_s16(d_lo, d_lo)),
                  vpaddlq_s16(vmulq_s16(d_hi, d_hi)));
    acc = vaddq_s64(acc, vpaddlq_s32(sq));
  }
  total += vaddvq_s64(acc);
  for (size_t i = body; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    total += d * d;
  }
  return total;
}

}  // namespace

const KernelTable* NeonKernels() {
  static const KernelTable table = {
      "neon",      DotNeon,   SquaredL2Neon,   CosineTermsNeon,
      DotFastNeon, DotI8Neon, SquaredL2I8Neon,
  };
  return &table;
}

}  // namespace colscope::linalg::simd

#else  // !__aarch64__

namespace colscope::linalg::simd {

const KernelTable* NeonKernels() { return nullptr; }

}  // namespace colscope::linalg::simd

#endif
