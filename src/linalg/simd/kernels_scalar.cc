// Portable reference implementation of the span kernels. This file
// defines the canonical semantics: the 16-lane reduction tree written
// out here is what every SIMD table must reproduce bit for bit (see
// kernels.h). Keep the loops dumb — this is the fallback for machines
// without AVX2/NEON *and* the reference the equivalence tests and the
// SIMD-vs-scalar bench cells compare against.

#include "linalg/simd/kernels.h"

namespace colscope::linalg::simd {

namespace {

/// Fixed combine of the 16 partial sums: fold the high eight lanes
/// onto the low eight, then the 8-wide grouping that mirrors the
/// natural AVX2 horizontal reduction (lanewise adds, fold high half
/// onto low, fold the last pair), so the vector tables can use their
/// cheap horizontal adds and still match exactly.
inline double CombineLanes(const double acc[kLanes]) {
  double f[8];
  for (size_t j = 0; j < 8; ++j) f[j] = acc[j] + acc[j + 8];
  const double c0 = f[0] + f[4];
  const double c1 = f[1] + f[5];
  const double c2 = f[2] + f[6];
  const double c3 = f[3] + f[7];
  return (c0 + c2) + (c1 + c3);
}

double DotScalar(const double* a, const double* b, size_t n) {
  double acc[kLanes] = {};
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) acc[j] += a[i + j] * b[i + j];
  }
  for (size_t t = 0; t < n - body; ++t) {
    acc[t] += a[body + t] * b[body + t];
  }
  return CombineLanes(acc);
}

double SquaredL2Scalar(const double* a, const double* b, size_t n) {
  double acc[kLanes] = {};
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      const double d = a[i + j] - b[i + j];
      acc[j] += d * d;
    }
  }
  for (size_t t = 0; t < n - body; ++t) {
    const double d = a[body + t] - b[body + t];
    acc[t] += d * d;
  }
  return CombineLanes(acc);
}

void CosineTermsScalar(const double* a, const double* b, size_t n,
                       double* dot_ab, double* norm2_a, double* norm2_b) {
  double acc_ab[kLanes] = {};
  double acc_aa[kLanes] = {};
  double acc_bb[kLanes] = {};
  const size_t body = n - n % kLanes;
  for (size_t i = 0; i < body; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      const double x = a[i + j];
      const double y = b[i + j];
      acc_ab[j] += x * y;
      acc_aa[j] += x * x;
      acc_bb[j] += y * y;
    }
  }
  for (size_t t = 0; t < n - body; ++t) {
    const double x = a[body + t];
    const double y = b[body + t];
    acc_ab[t] += x * y;
    acc_aa[t] += x * x;
    acc_bb[t] += y * y;
  }
  *dot_ab = CombineLanes(acc_ab);
  *norm2_a = CombineLanes(acc_aa);
  *norm2_b = CombineLanes(acc_bb);
}

int64_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

int64_t SquaredL2I8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += d * d;
  }
  return sum;
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      "scalar",       DotScalar, SquaredL2Scalar, CosineTermsScalar,
      /*dot_fast=*/DotScalar, DotI8Scalar, SquaredL2I8Scalar,
  };
  return table;
}

}  // namespace colscope::linalg::simd
