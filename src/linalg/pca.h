#ifndef COLSCOPE_LINALG_PCA_H_
#define COLSCOPE_LINALG_PCA_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace colscope::linalg {

/// Which eigendecomposition route a PCA fit takes. Signature blocks are
/// short and wide (a schema has tens of elements, signatures have ~768
/// dimensions), so the Gram trick — eigendecomposing the n x n row Gram
/// matrix instead of the d x d covariance — cuts the cubic Jacobi cost
/// by (d/n)^3, two to three orders of magnitude at paper scale.
enum class PcaFitPath {
  kAuto,        ///< Gram side picked by shape (rows when n <= d).
  kGram,        ///< Force the n x n row-Gram eigendecomposition.
  kCovariance,  ///< Force the d x d covariance path (reference baseline).
};

/// A fitted PCA encoder-decoder: the local mean, the selected principal
/// components (rows of `components`, each of length d), and bookkeeping
/// about how much variance they explain. This is the reusable
/// encoder-decoder of Algorithm 1 lines 3-13.
class PcaModel {
 public:
  /// Fits PCA on the rows of `x`, keeping the smallest number of leading
  /// components whose cumulative explained variance reaches
  /// `variance_target` in (0, 1]. Requires at least one row. The fit
  /// path defaults to kAuto (the Gram trick whenever rows <= dims);
  /// kCovariance exists as the slow reference the equivalence tests and
  /// benches compare against.
  static Result<PcaModel> FitWithVariance(
      const Matrix& x, double variance_target,
      PcaFitPath path = PcaFitPath::kAuto);

  /// Fits PCA keeping exactly `n_components` components (clamped to the
  /// rank of the centered data).
  static Result<PcaModel> FitWithComponents(
      const Matrix& x, size_t n_components,
      PcaFitPath path = PcaFitPath::kAuto);

  /// Reassembles a model from its parts (e.g. after deserialization).
  /// `components` rows must have length mean.size(); the explained-
  /// variance bookkeeping is not recoverable and is left empty.
  static Result<PcaModel> FromParts(Vector mean, Matrix components);

  /// Projects rows of `x` into the component space: (x - mean) * PC^T.
  Matrix Encode(const Matrix& x) const;

  /// Reconstructs encoded rows back to the input space: z * PC + mean.
  Matrix Decode(const Matrix& z) const;

  /// Encode followed by Decode — the full reconstruction of Alg. 1/2.
  Matrix Reconstruct(const Matrix& x) const;

  /// Per-row reconstruction MSE of `x` (the outlier score s_{k_i}).
  Vector ReconstructionErrors(const Matrix& x) const;

  /// Reconstruction MSE of a single signature.
  double ReconstructionError(const Vector& v) const;

  const Vector& mean() const { return mean_; }
  const Matrix& components() const { return components_; }
  size_t n_components() const { return components_.rows(); }
  size_t dims() const { return mean_.size(); }

  /// Explained-variance ratio of each *kept* component.
  const Vector& explained_variance() const { return explained_variance_; }

  /// Cumulative explained variance of the kept components.
  double total_explained_variance() const;

 private:
  PcaModel() = default;
  static Result<PcaModel> Fit(const Matrix& x, double variance_target,
                              size_t fixed_components, PcaFitPath path);

  Vector mean_;
  Matrix components_;  // n_components x d, orthonormal rows.
  Vector explained_variance_;
};

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_PCA_H_
