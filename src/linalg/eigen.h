#ifndef COLSCOPE_LINALG_EIGEN_H_
#define COLSCOPE_LINALG_EIGEN_H_

#include "linalg/matrix.h"

namespace colscope::linalg {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T.
/// Eigenvalues are sorted in descending order; `vectors` stores the
/// corresponding eigenvectors as ROWS (row i pairs with values[i]).
struct EigenDecomposition {
  Vector values;
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi
/// rotation method. Deterministic, O(n^3) per sweep; converges in a
/// handful of sweeps for the matrix sizes this library handles
/// (n <= a few hundred). The off-diagonal convergence norm is maintained
/// incrementally (one exact rescan only to confirm a stop), so sweeps
/// cost rotations alone. `a` must be square and symmetric.
EigenDecomposition JacobiEigenSymmetric(const Matrix& a,
                                        double tolerance = 1e-12,
                                        int max_sweeps = 64);

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_EIGEN_H_
