#include "linalg/svd.h"

#include <cmath>

#include "linalg/eigen.h"

namespace colscope::linalg {

SvdResult ThinSvd(const Matrix& x, double rank_tolerance, GramSide side) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  SvdResult out;
  if (n == 0 || d == 0) return out;

  const bool rows_smaller =
      side == GramSide::kAuto ? n <= d : side == GramSide::kRows;
  // Gram matrix of the chosen side: G = X X^T (n x n) or X^T X (d x d).
  const size_t g = rows_smaller ? n : d;
  Matrix gram(g, g);
  if (rows_smaller) {
    for (size_t i = 0; i < n; ++i) {
      const double* ri = x.RowPtr(i);
      for (size_t j = i; j < n; ++j) {
        const double* rj = x.RowPtr(j);
        double sum = 0.0;
        for (size_t k = 0; k < d; ++k) sum += ri[k] * rj[k];
        gram(i, j) = sum;
        gram(j, i) = sum;
      }
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      const double* row = x.RowPtr(r);
      for (size_t i = 0; i < d; ++i) {
        const double xi = row[i];
        for (size_t j = i; j < d; ++j) gram(i, j) += xi * row[j];
      }
    }
    for (size_t i = 0; i < d; ++i)
      for (size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }

  EigenDecomposition eig = JacobiEigenSymmetric(gram);

  // Singular values; clamp small negative eigenvalues from roundoff.
  Vector sv(g, 0.0);
  for (size_t i = 0; i < g; ++i) sv[i] = std::sqrt(std::max(0.0, eig.values[i]));
  const double s_max = sv.empty() ? 0.0 : sv[0];
  size_t rank = 0;
  while (rank < g && sv[rank] > rank_tolerance * std::max(1.0, s_max)) ++rank;
  // Keep at least one triplet even for (near-)zero matrices so callers
  // always have a defined subspace.
  if (rank == 0) rank = 1;

  out.singular_values.assign(sv.begin(), sv.begin() + rank);
  out.u = Matrix(n, rank);
  out.vt = Matrix(rank, d);

  if (rows_smaller) {
    // Eigenvectors of X X^T are the left singular vectors.
    for (size_t i = 0; i < n; ++i)
      for (size_t k = 0; k < rank; ++k) out.u(i, k) = eig.vectors(k, i);
    // v_k = X^T u_k / s_k.
    for (size_t k = 0; k < rank; ++k) {
      const double s = out.singular_values[k];
      if (s <= 0.0) continue;
      double* v_row = out.vt.RowPtr(k);
      for (size_t r = 0; r < n; ++r) {
        const double w = out.u(r, k) / s;
        if (w == 0.0) continue;
        const double* x_row = x.RowPtr(r);
        for (size_t c = 0; c < d; ++c) v_row[c] += w * x_row[c];
      }
    }
  } else {
    // Eigenvectors of X^T X are the right singular vectors.
    for (size_t k = 0; k < rank; ++k)
      for (size_t c = 0; c < d; ++c) out.vt(k, c) = eig.vectors(k, c);
    // u_k = X v_k / s_k.
    for (size_t k = 0; k < rank; ++k) {
      const double s = out.singular_values[k];
      if (s <= 0.0) continue;
      const double* v_row = out.vt.RowPtr(k);
      for (size_t r = 0; r < n; ++r) {
        const double* x_row = x.RowPtr(r);
        double sum = 0.0;
        for (size_t c = 0; c < d; ++c) sum += x_row[c] * v_row[c];
        out.u(r, k) = sum / s;
      }
    }
  }
  return out;
}

Vector ExplainedVarianceRatios(const Vector& singular_values) {
  double total = 0.0;
  for (double s : singular_values) total += s * s;
  Vector out(singular_values.size(), 0.0);
  if (total <= 0.0) return out;
  for (size_t i = 0; i < singular_values.size(); ++i) {
    out[i] = singular_values[i] * singular_values[i] / total;
  }
  return out;
}

size_t ComponentsForVariance(const Vector& explained_variance_ratios,
                             double target) {
  if (explained_variance_ratios.empty()) return 1;
  double cumulative = 0.0;
  for (size_t i = 0; i < explained_variance_ratios.size(); ++i) {
    cumulative += explained_variance_ratios[i];
    if (cumulative >= target) return i + 1;
  }
  return explained_variance_ratios.size();
}

}  // namespace colscope::linalg
