#include "linalg/matrix.h"

namespace colscope::linalg {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    COLSCOPE_CHECK(rows[r].size() == m.cols());
    m.SetRow(r, rows[r]);
  }
  return m;
}

Vector Matrix::Row(size_t r) const {
  COLSCOPE_CHECK(r < rows_);
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  COLSCOPE_CHECK(r < rows_);
  COLSCOPE_CHECK(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) t(c, r) = row[c];
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  COLSCOPE_CHECK(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  // i-k-j loop order: streams through `other` rows, cache friendly.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols(); ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  COLSCOPE_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double sum = 0.0;
    for (size_t k = 0; k < cols_; ++k) sum += row[k] * v[k];
    out[i] = sum;
  }
  return out;
}

}  // namespace colscope::linalg
