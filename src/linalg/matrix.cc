#include "linalg/matrix.h"

#include <algorithm>
#include <cstdint>

#include "linalg/simd/kernels.h"

namespace colscope::linalg {

namespace {

/// Tile edge (in doubles) of the cache-blocked kernels (Transposed and
/// the j-blocking of the dot-per-cell multiply). A 64-row B window is
/// 64 * cols * 8 bytes — resident in L2 for signature-sized matrices —
/// while every inner loop streams with unit stride.
constexpr size_t kTile = 64;

}  // namespace

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    COLSCOPE_CHECK(rows[r].size() == m.cols());
    m.SetRow(r, rows[r]);
  }
  return m;
}

Vector Matrix::Row(size_t r) const {
  COLSCOPE_CHECK(r < rows_);
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  COLSCOPE_CHECK(r < rows_);
  COLSCOPE_CHECK(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  // Tiled so both the read rows and the written columns stay within a
  // cache-sized window; the naive loop strides rows_ * 8 bytes on every
  // write once cols_ outgrows the cache.
  for (size_t r0 = 0; r0 < rows_; r0 += kTile) {
    const size_t r1 = std::min(rows_, r0 + kTile);
    for (size_t c0 = 0; c0 < cols_; c0 += kTile) {
      const size_t c1 = std::min(cols_, c0 + kTile);
      for (size_t r = r0; r < r1; ++r) {
        const double* row = RowPtr(r);
        for (size_t c = c0; c < c1; ++c) t(c, r) = row[c];
      }
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  COLSCOPE_CHECK(cols_ == other.rows());
  // The old 64-wide i-k-j tile kernel measured ~0.95x against the naive
  // loop, so it was retired: one blocked transpose turns the product
  // into row-by-row dots, which the dispatched kernels vectorize. Going
  // through MultiplyTransposedB also makes the two products exact
  // mirrors — bit-identical by construction, not by parallel-maintained
  // loop nests.
  return MultiplyTransposedB(other.Transposed());
}

Matrix Matrix::MultiplyTransposedB(const Matrix& other) const {
  COLSCOPE_CHECK(cols_ == other.cols());
  Matrix out(rows_, other.rows());
  const auto& kernels = simd::Active();
  // out(i, j) = <row i, other row j>: both operands stream with unit
  // stride, and a j tile keeps the touched B rows cache-resident across
  // consecutive A rows.
  for (size_t j0 = 0; j0 < other.rows(); j0 += kTile) {
    const size_t j1 = std::min(other.rows(), j0 + kTile);
    for (size_t i = 0; i < rows_; ++i) {
      const double* a_row = RowPtr(i);
      double* out_row = out.RowPtr(i);
      for (size_t j = j0; j < j1; ++j) {
        out_row[j] = kernels.dot(a_row, other.RowPtr(j), cols_);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  COLSCOPE_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  const auto& kernels = simd::Active();
  for (size_t i = 0; i < rows_; ++i) {
    out[i] = kernels.dot(RowPtr(i), v.data(), cols_);
  }
  return out;
}

}  // namespace colscope::linalg
