#include "linalg/matrix.h"

#include <algorithm>

namespace colscope::linalg {

namespace {

/// Tile edge (in doubles) of the cache-blocked kernels. Three 64x64
/// double tiles (A strip, B strip, C tile) occupy ~96 KiB — resident in
/// L2 on anything current — while the unit-stride inner loops stay long
/// enough to vectorize.
constexpr size_t kTile = 64;

}  // namespace

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    COLSCOPE_CHECK(rows[r].size() == m.cols());
    m.SetRow(r, rows[r]);
  }
  return m;
}

Vector Matrix::Row(size_t r) const {
  COLSCOPE_CHECK(r < rows_);
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const Vector& v) {
  COLSCOPE_CHECK(r < rows_);
  COLSCOPE_CHECK(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  // Tiled so both the read rows and the written columns stay within a
  // cache-sized window; the naive loop strides rows_ * 8 bytes on every
  // write once cols_ outgrows the cache.
  for (size_t r0 = 0; r0 < rows_; r0 += kTile) {
    const size_t r1 = std::min(rows_, r0 + kTile);
    for (size_t c0 = 0; c0 < cols_; c0 += kTile) {
      const size_t c1 = std::min(cols_, c0 + kTile);
      for (size_t r = r0; r < r1; ++r) {
        const double* row = RowPtr(r);
        for (size_t c = c0; c < c1; ++c) t(c, r) = row[c];
      }
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  COLSCOPE_CHECK(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  const size_t n = other.cols();
  // Blocked i-k-j: a C tile stays hot while a k-strip of A and B streams
  // through it. The j block sits inside the k block, so for any fixed
  // (i, j) the k contributions still accumulate in ascending order —
  // bit-identical to the naive i-k-j kernel. The inner loop is branch-
  // free on purpose: a zero-skip test costs more than it saves on the
  // dense signature matrices this library multiplies.
  for (size_t i0 = 0; i0 < rows_; i0 += kTile) {
    const size_t i1 = std::min(rows_, i0 + kTile);
    for (size_t k0 = 0; k0 < cols_; k0 += kTile) {
      const size_t k1 = std::min(cols_, k0 + kTile);
      for (size_t j0 = 0; j0 < n; j0 += kTile) {
        const size_t j1 = std::min(n, j0 + kTile);
        for (size_t i = i0; i < i1; ++i) {
          const double* a_row = RowPtr(i);
          double* out_row = out.RowPtr(i);
          for (size_t k = k0; k < k1; ++k) {
            const double a = a_row[k];
            const double* b_row = other.RowPtr(k);
            for (size_t j = j0; j < j1; ++j) {
              out_row[j] += a * b_row[j];
            }
          }
        }
      }
    }
  }
  return out;
}

Matrix Matrix::MultiplyTransposedB(const Matrix& other) const {
  COLSCOPE_CHECK(cols_ == other.cols());
  // The fused per-cell dot is a strict serial FP reduction the compiler
  // cannot vectorize, while Multiply's inner loop can; past the measured
  // crossover (~256 shared dims) transposing first wins despite the
  // extra allocation. Both accumulate each cell in ascending-k order, so
  // the result is bit-identical either way.
  if (cols_ > 256) return Multiply(other.Transposed());
  Matrix out(rows_, other.rows());
  // out(i, j) = <row i, other row j>: both operands stream with unit
  // stride, and a j tile keeps the touched B rows cache-resident across
  // consecutive A rows.
  for (size_t j0 = 0; j0 < other.rows(); j0 += kTile) {
    const size_t j1 = std::min(other.rows(), j0 + kTile);
    for (size_t i = 0; i < rows_; ++i) {
      const double* a_row = RowPtr(i);
      double* out_row = out.RowPtr(i);
      for (size_t j = j0; j < j1; ++j) {
        const double* b_row = other.RowPtr(j);
        double sum = 0.0;
        for (size_t k = 0; k < cols_; ++k) sum += a_row[k] * b_row[k];
        out_row[j] = sum;
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVector(const Vector& v) const {
  COLSCOPE_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double sum = 0.0;
    for (size_t k = 0; k < cols_; ++k) sum += row[k] * v[k];
    out[i] = sum;
  }
  return out;
}

}  // namespace colscope::linalg
