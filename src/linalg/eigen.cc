#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace colscope::linalg {

EigenDecomposition JacobiEigenSymmetric(const Matrix& a, double tolerance,
                                        int max_sweeps) {
  const size_t n = a.rows();
  COLSCOPE_CHECK(a.cols() == n);

  Matrix m = a;           // Working copy, driven to diagonal form.
  Matrix v(n, n, 0.0);    // Accumulated rotations (columns = eigenvectors).
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  auto exact_off2 = [&]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    return sum;
  };

  // Squared upper-triangle off-diagonal norm, maintained incrementally:
  // a Jacobi rotation annihilates m(p, q) and preserves the Frobenius
  // norm, so the (upper-triangle) off-diagonal sum of squares drops by
  // exactly apq^2 in exact arithmetic. This replaces the O(n^2) rescan
  // per sweep; roundoff drift is bounded by re-deriving the exact sum
  // before trusting a convergence verdict.
  double off2 = exact_off2();
  const double tol2 = tolerance * tolerance;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off2 <= tol2) {
      off2 = exact_off2();  // Confirm: the running value may have drifted.
      if (off2 <= tol2) break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        off2 = std::max(0.0, off2 - apq * apq);
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        // Smaller-magnitude root for numerical stability.
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation to rows/cols p and q of m.
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        // Accumulate into eigenvector matrix (columns).
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract, sort descending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Vector diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    for (size_t k = 0; k < n; ++k) out.vectors(i, k) = v(k, order[i]);
  }
  return out;
}

}  // namespace colscope::linalg
