#ifndef COLSCOPE_LINALG_MATRIX_H_
#define COLSCOPE_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace colscope::linalg {

/// A vector of doubles; signatures and rows are plain Vectors.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Rows are data points (signatures),
/// columns are dimensions — the orientation every algorithm in this
/// library uses. Copyable and movable; sized at construction.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix whose rows are the given equally-sized vectors.
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Zero-copy view of row `r` — the hot-loop alternative to Row(),
  /// which copies. Valid until the matrix is resized or destroyed.
  std::span<const double> RowSpan(size_t r) const {
    COLSCOPE_CHECK(r < rows_);
    return {RowPtr(r), cols_};
  }

  /// Copies row `r` out into a Vector.
  Vector Row(size_t r) const;

  /// Overwrites row `r` with `v` (sizes must match).
  void SetRow(size_t r, const Vector& v);

  /// Transposed copy (cache-blocked).
  Matrix Transposed() const;

  /// this (m x k) * other (k x n) -> (m x n). Cache-blocked; for every
  /// output cell the k-accumulation order matches the naive i-k-j loop,
  /// so results are bit-identical to the unblocked kernel.
  Matrix Multiply(const Matrix& other) const;

  /// this (m x k) * other^T for other (n x k) -> (m x n): row-by-row dot
  /// products, so callers never materialize the transpose. Bit-identical
  /// to Multiply(other.Transposed()).
  Matrix MultiplyTransposedB(const Matrix& other) const;

  /// this (m x k) * v (k) -> (m).
  Vector MultiplyVector(const Vector& v) const;

  /// Raw storage (row-major), for tight loops.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_MATRIX_H_
