#ifndef COLSCOPE_LINALG_MATRIX_H_
#define COLSCOPE_LINALG_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"

namespace colscope::linalg {

/// A vector of doubles; signatures and rows are plain Vectors.
using Vector = std::vector<double>;

/// Matrix backing storage: a contiguous row-major buffer whose first
/// element sits on a cache-line boundary, so the SIMD span kernels read
/// rows without the buffer start ever straddling a line. Interoperates
/// with Vector via iterators/spans (the allocator only changes where
/// the bytes live, not what they are).
using AlignedBuffer = std::vector<double, AlignedAllocator<double, 64>>;

/// Dense row-major matrix of doubles. Rows are data points (signatures),
/// columns are dimensions — the orientation every algorithm in this
/// library uses. Copyable and movable; sized at construction.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    COLSCOPE_DCHECK(data_.empty() ||
                    reinterpret_cast<std::uintptr_t>(data_.data()) % 64 == 0);
  }

  /// Builds a matrix whose rows are the given equally-sized vectors.
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Zero-copy view of row `r` — the hot-loop alternative to Row(),
  /// which copies. Valid until the matrix is resized or destroyed.
  std::span<const double> RowSpan(size_t r) const {
    COLSCOPE_CHECK(r < rows_);
    return {RowPtr(r), cols_};
  }

  /// Copies row `r` out into a Vector.
  Vector Row(size_t r) const;

  /// Overwrites row `r` with `v` (sizes must match).
  void SetRow(size_t r, const Vector& v);

  /// Transposed copy (cache-blocked).
  Matrix Transposed() const;

  /// this (m x k) * other (k x n) -> (m x n). Every output cell is one
  /// dispatched span-kernel dot (see linalg/simd/kernels.h), so the
  /// result is bit-identical across SIMD ISAs, `--kernels` settings,
  /// and thread counts — and bit-identical to MultiplyTransposedB of
  /// the transposed operand, which it is implemented as.
  Matrix Multiply(const Matrix& other) const;

  /// this (m x k) * other^T for other (n x k) -> (m x n): row-by-row dot
  /// products through the dispatched span kernels, so callers never
  /// materialize the transpose. Bit-identical to
  /// Multiply(other.Transposed()).
  Matrix MultiplyTransposedB(const Matrix& other) const;

  /// this (m x k) * v (k) -> (m).
  Vector MultiplyVector(const Vector& v) const;

  /// Raw storage (row-major, 64-byte-aligned base), for tight loops.
  const AlignedBuffer& data() const { return data_; }
  AlignedBuffer& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  AlignedBuffer data_;
};

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_MATRIX_H_
