#include "linalg/stats.h"

#include <cmath>

#include "linalg/simd/kernels.h"

namespace colscope::linalg {

Vector ColumnMean(const Matrix& m) {
  Vector mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) mean[c] += row[c];
  }
  const double inv = 1.0 / static_cast<double>(m.rows());
  for (double& v : mean) v *= inv;
  return mean;
}

Vector ColumnStdDev(const Matrix& m, const Vector& mean) {
  COLSCOPE_CHECK(mean.size() == m.cols());
  Vector var(m.cols(), 0.0);
  if (m.rows() == 0) return var;
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      const double d = row[c] - mean[c];
      var[c] += d * d;
    }
  }
  const double inv = 1.0 / static_cast<double>(m.rows());
  for (double& v : var) v = std::sqrt(v * inv);
  return var;
}

Matrix CenterRows(const Matrix& m, const Vector& mean) {
  COLSCOPE_CHECK(mean.size() == m.cols());
  Matrix out = m;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] -= mean[c];
  }
  return out;
}

Matrix UncenterRows(const Matrix& m, const Vector& mean) {
  COLSCOPE_CHECK(mean.size() == m.cols());
  Matrix out = m;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] += mean[c];
  }
  return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  COLSCOPE_CHECK(a.size() == b.size());
  return simd::Active().dot(a.data(), b.data(), a.size());
}

double Norm(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

double SquaredL2Distance(std::span<const double> a,
                         std::span<const double> b) {
  COLSCOPE_CHECK(a.size() == b.size());
  return simd::Active().squared_l2(a.data(), b.data(), a.size());
}

double L2Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

double CosineSimilarity(std::span<const double> a,
                        std::span<const double> b) {
  COLSCOPE_CHECK(a.size() == b.size());
  double dot_ab = 0.0, norm2_a = 0.0, norm2_b = 0.0;
  simd::Active().cosine_terms(a.data(), b.data(), a.size(), &dot_ab, &norm2_a,
                              &norm2_b);
  const double na = std::sqrt(norm2_a);
  const double nb = std::sqrt(norm2_b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot_ab / (na * nb);
}

double MeanSquaredError(std::span<const double> a,
                        std::span<const double> b) {
  COLSCOPE_CHECK(!a.empty());
  return SquaredL2Distance(a, b) / static_cast<double>(a.size());
}

Vector RowwiseMse(const Matrix& a, const Matrix& b) {
  COLSCOPE_CHECK(a.rows() == b.rows());
  COLSCOPE_CHECK(a.cols() == b.cols());
  Vector out(a.rows(), 0.0);
  const auto& kernels = simd::Active();
  for (size_t r = 0; r < a.rows(); ++r) {
    out[r] = kernels.squared_l2(a.RowPtr(r), b.RowPtr(r), a.cols()) /
             static_cast<double>(a.cols());
  }
  return out;
}

void NormalizeInPlace(Vector& v) {
  const double n = Norm(v);
  if (n == 0.0) return;
  const double inv = 1.0 / n;
  for (double& x : v) x *= inv;
}

}  // namespace colscope::linalg
