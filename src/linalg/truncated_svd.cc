#include "linalg/truncated_svd.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/stats.h"

namespace colscope::linalg {

namespace {

/// In-place modified Gram-Schmidt on the COLUMNS of m (n x k). Columns
/// that collapse to (near) zero are re-randomized from `rng` and
/// re-orthogonalized so the basis stays full rank.
void OrthonormalizeColumns(Matrix& m, Rng& rng) {
  const size_t n = m.rows();
  const size_t k = m.cols();
  for (size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      // Project out earlier columns.
      for (size_t p = 0; p < c; ++p) {
        double dot = 0.0;
        for (size_t r = 0; r < n; ++r) dot += m(r, c) * m(r, p);
        for (size_t r = 0; r < n; ++r) m(r, c) -= dot * m(r, p);
      }
      double norm = 0.0;
      for (size_t r = 0; r < n; ++r) norm += m(r, c) * m(r, c);
      norm = std::sqrt(norm);
      if (norm > 1e-10) {
        const double inv = 1.0 / norm;
        for (size_t r = 0; r < n; ++r) m(r, c) *= inv;
        break;
      }
      // Degenerate direction: replace with fresh randomness and retry.
      for (size_t r = 0; r < n; ++r) m(r, c) = rng.NextGaussian();
    }
  }
}

}  // namespace

SvdResult TruncatedSvd(const Matrix& x, size_t rank, int power_iterations,
                       uint64_t seed) {
  SvdResult out;
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) return out;
  rank = std::max<size_t>(1, std::min({rank, n, d}));

  Rng rng(seed);

  // Range finder: Y = X * G with a Gaussian test matrix G (d x rank).
  Matrix g(d, rank);
  for (double& v : g.data()) v = rng.NextGaussian();
  Matrix y = x.Multiply(g);  // n x rank.
  OrthonormalizeColumns(y, rng);

  // Subspace (power) iteration: Y <- X Xᵀ Y, re-orthonormalized.
  const Matrix xt = x.Transposed();
  for (int it = 0; it < power_iterations; ++it) {
    Matrix z = xt.Multiply(y);  // d x rank.
    OrthonormalizeColumns(z, rng);
    y = x.Multiply(z);  // n x rank.
    OrthonormalizeColumns(y, rng);
  }

  // Project: B = Yᵀ X (rank x d), then exact small SVD of B.
  const Matrix b = y.Transposed().Multiply(x);
  SvdResult small = ThinSvd(b);
  const size_t keep = std::min(rank, small.singular_values.size());

  out.singular_values.assign(small.singular_values.begin(),
                             small.singular_values.begin() + keep);
  out.vt = Matrix(keep, d);
  for (size_t k = 0; k < keep; ++k) {
    for (size_t c = 0; c < d; ++c) out.vt(k, c) = small.vt(k, c);
  }
  // u = Y * u_B.
  out.u = Matrix(n, keep);
  for (size_t r = 0; r < n; ++r) {
    for (size_t k = 0; k < keep; ++k) {
      double sum = 0.0;
      for (size_t c = 0; c < y.cols(); ++c) {
        sum += y(r, c) * small.u(c, k);
      }
      out.u(r, k) = sum;
    }
  }
  return out;
}

}  // namespace colscope::linalg
