#ifndef COLSCOPE_LINALG_STATS_H_
#define COLSCOPE_LINALG_STATS_H_

#include "linalg/matrix.h"

namespace colscope::linalg {

/// Column-wise mean of the rows of `m` (the signature mean of Alg. 1).
Vector ColumnMean(const Matrix& m);

/// Column-wise (population) standard deviation of the rows of `m`.
Vector ColumnStdDev(const Matrix& m, const Vector& mean);

/// Returns `m` with `mean` subtracted from every row.
Matrix CenterRows(const Matrix& m, const Vector& mean);

/// Returns `m` with `mean` added to every row (reverse of CenterRows).
Matrix UncenterRows(const Matrix& m, const Vector& mean);

/// Dot product, Euclidean norm, and L2 distance. The span overloads are
/// the zero-copy spelling for matrix rows (Matrix::RowSpan) — a Vector
/// converts to std::span<const double> implicitly, so either form
/// accepts either argument.
double Dot(std::span<const double> a, std::span<const double> b);
double Norm(std::span<const double> a);
double L2Distance(std::span<const double> a, std::span<const double> b);
double SquaredL2Distance(std::span<const double> a,
                         std::span<const double> b);

/// Cosine similarity in [-1, 1]; zero vectors yield 0.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

/// Mean squared error between two equally-sized vectors — the
/// reconstruction score used throughout the paper (Alg. 1 line 14).
double MeanSquaredError(std::span<const double> a, std::span<const double> b);

/// Per-row MSE between two equally-shaped matrices.
Vector RowwiseMse(const Matrix& a, const Matrix& b);

/// Normalizes `v` to unit L2 norm in place; zero vectors are untouched.
void NormalizeInPlace(Vector& v);

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_STATS_H_
