#ifndef COLSCOPE_LINALG_STATS_H_
#define COLSCOPE_LINALG_STATS_H_

#include "linalg/matrix.h"

namespace colscope::linalg {

/// Column-wise mean of the rows of `m` (the signature mean of Alg. 1).
Vector ColumnMean(const Matrix& m);

/// Column-wise (population) standard deviation of the rows of `m`.
Vector ColumnStdDev(const Matrix& m, const Vector& mean);

/// Returns `m` with `mean` subtracted from every row.
Matrix CenterRows(const Matrix& m, const Vector& mean);

/// Returns `m` with `mean` added to every row (reverse of CenterRows).
Matrix UncenterRows(const Matrix& m, const Vector& mean);

/// Dot product, Euclidean norm, and L2 distance.
double Dot(const Vector& a, const Vector& b);
double Norm(const Vector& a);
double L2Distance(const Vector& a, const Vector& b);
double SquaredL2Distance(const Vector& a, const Vector& b);

/// Cosine similarity in [-1, 1]; zero vectors yield 0.
double CosineSimilarity(const Vector& a, const Vector& b);

/// Mean squared error between two equally-sized vectors — the
/// reconstruction score used throughout the paper (Alg. 1 line 14).
double MeanSquaredError(const Vector& a, const Vector& b);

/// Per-row MSE between two equally-shaped matrices.
Vector RowwiseMse(const Matrix& a, const Matrix& b);

/// Normalizes `v` to unit L2 norm in place; zero vectors are untouched.
void NormalizeInPlace(Vector& v);

}  // namespace colscope::linalg

#endif  // COLSCOPE_LINALG_STATS_H_
