#include "linalg/pca.h"

#include <algorithm>

#include "linalg/stats.h"
#include "linalg/svd.h"

namespace colscope::linalg {

Result<PcaModel> PcaModel::FitWithVariance(const Matrix& x,
                                           double variance_target,
                                           PcaFitPath path) {
  if (variance_target <= 0.0 || variance_target > 1.0) {
    return Status::InvalidArgument("variance target must be in (0, 1]");
  }
  return Fit(x, variance_target, 0, path);
}

Result<PcaModel> PcaModel::FitWithComponents(const Matrix& x,
                                             size_t n_components,
                                             PcaFitPath path) {
  if (n_components == 0) {
    return Status::InvalidArgument("n_components must be >= 1");
  }
  return Fit(x, -1.0, n_components, path);
}

Result<PcaModel> PcaModel::FromParts(Vector mean, Matrix components) {
  if (mean.empty() || components.rows() == 0) {
    return Status::InvalidArgument("mean and components must be non-empty");
  }
  if (components.cols() != mean.size()) {
    return Status::InvalidArgument(
        "component length must equal the mean dimensionality");
  }
  PcaModel model;
  model.mean_ = std::move(mean);
  model.components_ = std::move(components);
  return model;
}

Result<PcaModel> PcaModel::Fit(const Matrix& x, double variance_target,
                               size_t fixed_components, PcaFitPath path) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("PCA requires a non-empty matrix");
  }
  PcaModel model;
  model.mean_ = ColumnMean(x);
  const Matrix centered = CenterRows(x, model.mean_);
  const GramSide side = path == PcaFitPath::kGram         ? GramSide::kRows
                        : path == PcaFitPath::kCovariance ? GramSide::kCols
                                                          : GramSide::kAuto;
  SvdResult svd = ThinSvd(centered, /*rank_tolerance=*/1e-10, side);
  const Vector ev = ExplainedVarianceRatios(svd.singular_values);

  size_t keep = 0;
  if (fixed_components > 0) {
    keep = std::min(fixed_components, svd.singular_values.size());
  } else {
    keep = ComponentsForVariance(ev, variance_target);
  }
  COLSCOPE_CHECK(keep >= 1);

  model.components_ = Matrix(keep, x.cols());
  for (size_t k = 0; k < keep; ++k) {
    for (size_t c = 0; c < x.cols(); ++c) {
      model.components_(k, c) = svd.vt(k, c);
    }
  }
  model.explained_variance_.assign(ev.begin(), ev.begin() + keep);
  return model;
}

Matrix PcaModel::Encode(const Matrix& x) const {
  COLSCOPE_CHECK(x.cols() == dims());
  const Matrix centered = CenterRows(x, mean_);
  return centered.MultiplyTransposedB(components_);
}

Matrix PcaModel::Decode(const Matrix& z) const {
  COLSCOPE_CHECK(z.cols() == n_components());
  const Matrix expanded = z.Multiply(components_);
  return UncenterRows(expanded, mean_);
}

Matrix PcaModel::Reconstruct(const Matrix& x) const {
  return Decode(Encode(x));
}

Vector PcaModel::ReconstructionErrors(const Matrix& x) const {
  return RowwiseMse(x, Reconstruct(x));
}

double PcaModel::ReconstructionError(const Vector& v) const {
  Matrix one(1, v.size());
  one.SetRow(0, v);
  return ReconstructionErrors(one)[0];
}

double PcaModel::total_explained_variance() const {
  double sum = 0.0;
  for (double v : explained_variance_) sum += v;
  return sum;
}

}  // namespace colscope::linalg
