#include "embed/encoder.h"

namespace colscope::embed {

linalg::Matrix SentenceEncoder::EncodeAll(
    const std::vector<std::string>& texts) const {
  linalg::Matrix out(texts.size(), dims());
  for (size_t i = 0; i < texts.size(); ++i) {
    out.SetRow(i, Encode(texts[i]));
  }
  return out;
}

}  // namespace colscope::embed
