#include "embed/encoder.h"

#include "common/strings.h"
#include "common/thread_pool.h"

namespace colscope::embed {

std::string SentenceEncoder::CacheIdentity() const {
  return StrFormat("encoder:dims=%zu", dims());
}

linalg::Matrix SentenceEncoder::EncodeAll(
    const std::vector<std::string>& texts) const {
  linalg::Matrix out(texts.size(), dims());
  for (size_t i = 0; i < texts.size(); ++i) {
    out.SetRow(i, Encode(texts[i]));
  }
  return out;
}

linalg::Matrix SentenceEncoder::EncodeAll(
    const std::vector<std::string>& texts, ThreadPool* pool,
    const CancellationToken* cancel) const {
  linalg::Matrix out(texts.size(), dims());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < texts.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) break;
      out.SetRow(i, Encode(texts[i]));
    }
    return out;
  }
  // Rows are disjoint memory, so no synchronization is needed and the
  // result matches the serial loop bit for bit. A Cancelled status means
  // unscheduled rows were skipped (left zero); the caller's token check
  // decides whether the matrix is used.
  (void)pool->ParallelFor(
      texts.size(), [&](size_t i) { out.SetRow(i, Encode(texts[i])); },
      cancel);
  return out;
}

}  // namespace colscope::embed
