#include "embed/quantized_store.h"

#include <cmath>

#include "common/check.h"
#include "linalg/simd/kernels.h"

namespace colscope::embed {

namespace {

constexpr size_t kRowAlign = 64;

/// Quantizes `n` doubles into `out` and returns the scale. `out` must
/// hold at least `n` bytes; the caller zeroes any padding.
double QuantizeRow(const double* row, size_t n, int8_t* out) {
  double maxabs = 0.0;
  for (size_t c = 0; c < n; ++c) {
    const double a = std::fabs(row[c]);
    if (a > maxabs) maxabs = a;
  }
  if (maxabs == 0.0) {
    for (size_t c = 0; c < n; ++c) out[c] = 0;
    return 0.0;
  }
  const double scale = maxabs / 127.0;
  const double inv = 127.0 / maxabs;
  for (size_t c = 0; c < n; ++c) {
    // |row[c]| <= maxabs, so the rounded value stays within [-127, 127].
    out[c] = static_cast<int8_t>(std::lround(row[c] * inv));
  }
  return scale;
}

/// Plain sequential L1 norm. Build-time only, and deliberately not a
/// dispatched kernel: the same bits on every table keeps the error
/// bound identical across --kernels settings.
double L1Norm(const double* row, size_t n) {
  double sum = 0.0;
  for (size_t c = 0; c < n; ++c) sum += std::fabs(row[c]);
  return sum;
}

}  // namespace

QuantizedSignatureStore::QuantizedSignatureStore(
    const linalg::Matrix& signatures) {
  rows_ = signatures.rows();
  cols_ = signatures.cols();
  stride_ = (cols_ + kRowAlign - 1) / kRowAlign * kRowAlign;
  codes_.assign(rows_ * stride_, 0);
  scales_.resize(rows_);
  norm2_.resize(rows_);
  l1_.resize(rows_);
  const auto& kernels = linalg::simd::Active();
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = signatures.RowPtr(r);
    scales_[r] = QuantizeRow(row, cols_, codes_.data() + r * stride_);
    norm2_[r] = kernels.dot(row, row, cols_);
    l1_[r] = L1Norm(row, cols_);
  }
}

double QuantizedSignatureStore::QuantizeQuery(std::span<const double> query,
                                              std::vector<int8_t>* codes,
                                              double* exact_norm2,
                                              double* exact_l1) const {
  COLSCOPE_CHECK(query.size() == cols_);
  codes->assign(stride_, 0);
  const double scale = QuantizeRow(query.data(), cols_, codes->data());
  if (exact_norm2 != nullptr) {
    *exact_norm2 =
        linalg::simd::Active().dot(query.data(), query.data(), cols_);
  }
  if (exact_l1 != nullptr) *exact_l1 = L1Norm(query.data(), cols_);
  return scale;
}

double QuantizedSignatureStore::ApproxDot(size_t r, size_t s) const {
  COLSCOPE_CHECK(r < rows_ && s < rows_);
  // Padding is zero on both sides, so running the kernel over the full
  // stride is exact and keeps the SIMD body free of a tail loop.
  const int64_t d =
      linalg::simd::Active().dot_i8(RowCodes(r), RowCodes(s), stride_);
  return scales_[r] * scales_[s] * static_cast<double>(d);
}

double QuantizedSignatureStore::ApproxDot(size_t r, const int8_t* query_codes,
                                          double query_scale) const {
  COLSCOPE_CHECK(r < rows_);
  const int64_t d =
      linalg::simd::Active().dot_i8(RowCodes(r), query_codes, stride_);
  return scales_[r] * query_scale * static_cast<double>(d);
}

double QuantizedSignatureStore::ApproxSquaredL2(size_t r,
                                                const int8_t* query_codes,
                                                double query_scale,
                                                double query_norm2) const {
  const double cross = ApproxDot(r, query_codes, query_scale);
  const double d2 = norm2_[r] + query_norm2 - 2.0 * cross;
  return d2 > 0.0 ? d2 : 0.0;
}

QuantizedQuery QuantizedSignatureStore::Quantize(
    std::span<const double> query) const {
  QuantizedQuery q;
  q.scale = QuantizeQuery(query, &q.codes, &q.norm2, &q.l1);
  return q;
}

double QuantizedSignatureStore::ApproxCosine(size_t r,
                                             const int8_t* query_codes,
                                             double query_scale,
                                             double query_norm2) const {
  COLSCOPE_CHECK(r < rows_);
  if (norm2_[r] == 0.0 || query_norm2 == 0.0) return 0.0;
  return ApproxDot(r, query_codes, query_scale) /
         (std::sqrt(norm2_[r]) * std::sqrt(query_norm2));
}

double QuantizedSignatureStore::DotErrorBound(size_t r, double query_scale,
                                              double query_l1) const {
  COLSCOPE_CHECK(r < rows_);
  // dot(a, b) - dot(a', b') = sum a[i]*e_b[i] + sum e_a[i]*b'[i] with
  // per-element dequantization error |e_x[i]| <= scale_x / 2. Each sum
  // is bounded by the max error times the *L1* norm of the other factor
  // (an L2 norm would be too small by up to sqrt(cols) — this bound
  // must hold, the prefilter's exactness rests on it), and
  // ||b'||_1 <= ||b||_1 + cols * scale_b / 2 removes the dequantized
  // query from the formula.
  const double half_r = 0.5 * scales_[r];
  const double half_q = 0.5 * query_scale;
  return half_q * l1_[r] + half_r * query_l1 +
         static_cast<double>(cols_) * half_r * half_q;
}

}  // namespace colscope::embed
