#ifndef COLSCOPE_EMBED_ENCODER_H_
#define COLSCOPE_EMBED_ENCODER_H_

#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.h"

namespace colscope {
class CancellationToken;
class ThreadPool;
}  // namespace colscope

namespace colscope::embed {

/// Encoder-based language model E of Section 2.3: transforms a serialized
/// metadata text sequence into a fixed-size numeric signature. All
/// implementations must be deterministic.
class SentenceEncoder {
 public:
  virtual ~SentenceEncoder() = default;

  /// Encodes one text sequence into a `dims()`-sized unit vector.
  virtual linalg::Vector Encode(std::string_view text) const = 0;

  /// Signature dimensionality |v|.
  virtual size_t dims() const = 0;

  /// Stable textual identity of this encoder's configuration, mixed into
  /// content-addressed cache keys (see cache/): two encoders with the
  /// same CacheIdentity MUST produce bit-identical signatures for the
  /// same text. The default covers only the dimensionality; encoders
  /// with more configuration (seeds, weights, lexicons) must override it
  /// so a config change can never serve a stale cached signature.
  virtual std::string CacheIdentity() const;

  /// Encodes a batch of sequences into a (n x dims) signature matrix.
  linalg::Matrix EncodeAll(const std::vector<std::string>& texts) const;

  /// Same, but spread across `pool` (serial when null or single-threaded).
  /// Every task writes only its own row, so the result is byte-identical
  /// to the serial overload at any thread count. When the optional
  /// `cancel` token trips mid-batch, the remaining rows stay zero —
  /// callers observing the token must discard the partial matrix.
  linalg::Matrix EncodeAll(const std::vector<std::string>& texts,
                           ThreadPool* pool,
                           const CancellationToken* cancel = nullptr) const;
};

}  // namespace colscope::embed

#endif  // COLSCOPE_EMBED_ENCODER_H_
