#ifndef COLSCOPE_EMBED_ENCODER_H_
#define COLSCOPE_EMBED_ENCODER_H_

#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.h"

namespace colscope::embed {

/// Encoder-based language model E of Section 2.3: transforms a serialized
/// metadata text sequence into a fixed-size numeric signature. All
/// implementations must be deterministic.
class SentenceEncoder {
 public:
  virtual ~SentenceEncoder() = default;

  /// Encodes one text sequence into a `dims()`-sized unit vector.
  virtual linalg::Vector Encode(std::string_view text) const = 0;

  /// Signature dimensionality |v|.
  virtual size_t dims() const = 0;

  /// Encodes a batch of sequences into a (n x dims) signature matrix.
  linalg::Matrix EncodeAll(const std::vector<std::string>& texts) const;
};

}  // namespace colscope::embed

#endif  // COLSCOPE_EMBED_ENCODER_H_
