#include "embed/hashed_encoder.h"

#include <cmath>
#include <mutex>

#include "common/rng.h"
#include "common/strings.h"
#include "linalg/stats.h"
#include "text/hashing.h"
#include "text/tokenize.h"

namespace colscope::embed {

HashedLexiconEncoder::HashedLexiconEncoder(HashedEncoderOptions options)
    : options_(options), lexicon_(text::DefaultSchemaLexicon()) {}

HashedLexiconEncoder::HashedLexiconEncoder(HashedEncoderOptions options,
                                           text::Lexicon lexicon)
    : options_(options), lexicon_(std::move(lexicon)) {}

std::string HashedLexiconEncoder::CacheIdentity() const {
  // %.17g keeps the rendering bijective with the double values, so two
  // configs differing in any weight cannot share a cache identity.
  return StrFormat(
      "hashed-lexicon:dims=%zu,concept=%.17g,category=%.17g,trigram=%.17g,"
      "leading=%.17g,common=%.17g,idio=%.17g,seed=%llu,lexicon=%llx",
      options_.dims, options_.concept_weight, options_.category_weight,
      options_.trigram_weight, options_.leading_token_weight,
      options_.common_weight, options_.idiosyncrasy_weight,
      static_cast<unsigned long long>(options_.seed),
      static_cast<unsigned long long>(lexicon_.Fingerprint()));
}

const linalg::Vector& HashedLexiconEncoder::BasisVector(
    const std::string& label) const {
  // Hit path: shared lock only. Returning a reference is safe because
  // unordered_map insertion never invalidates references to existing
  // elements and entries are never erased.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = basis_cache_.find(label);
    if (it != basis_cache_.end()) return it->second;
  }

  // Miss: derive the vector outside any lock (it depends only on the
  // label), then insert under the writer lock. A concurrent thread may
  // have inserted the same label meanwhile; emplace keeps the first.
  Rng rng(text::HashCombine(text::Hash64(label), options_.seed));
  linalg::Vector v(options_.dims);
  for (double& x : v) x = rng.NextGaussian();
  linalg::NormalizeInPlace(v);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [inserted, _] = basis_cache_.emplace(label, std::move(v));
  return inserted->second;
}

linalg::Vector HashedLexiconEncoder::Encode(std::string_view textseq) const {
  linalg::Vector out(options_.dims, 0.0);
  const std::vector<std::string> tokens = text::TokenizeIdentifier(textseq);
  if (tokens.empty()) return out;

  double weight_total = 0.0;
  for (size_t t = 0; t < tokens.size(); ++t) {
    const std::string& token = tokens[t];
    const text::TokenSense sense = lexicon_.Lookup(token);
    // The leading token is the element's own name (T^a/T^t put it first);
    // pretrained sentence encoders likewise weight the head noun heavily.
    const double token_weight =
        (t == 0) ? options_.leading_token_weight : 1.0;
    weight_total += token_weight;

    const linalg::Vector& concept_vec = BasisVector("c:" + sense.concept_name);
    const double cw = token_weight * options_.concept_weight;
    for (size_t i = 0; i < out.size(); ++i) out[i] += cw * concept_vec[i];

    if (!sense.category.empty()) {
      const linalg::Vector& cat_vec = BasisVector("k:" + sense.category);
      const double kw = token_weight * options_.category_weight;
      for (size_t i = 0; i < out.size(); ++i) out[i] += kw * cat_vec[i];
    }

    const std::vector<std::string> grams = text::CharacterTrigrams(token);
    if (!grams.empty() && options_.trigram_weight > 0.0) {
      const double w = token_weight * options_.trigram_weight /
                       static_cast<double>(grams.size());
      for (const std::string& gram : grams) {
        const linalg::Vector& gram_vec = BasisVector("g:" + gram);
        for (size_t i = 0; i < out.size(); ++i) out[i] += w * gram_vec[i];
      }
    }
  }

  // Mean pooling over tokens (as in SBERT), ...
  const double inv = 1.0 / weight_total;
  for (double& x : out) x *= inv;
  // ... plus the shared anisotropy direction: contextual sentence
  // embeddings occupy a narrow cone (all-pairs baseline cosine well above
  // zero); collaborative scoping's cross-schema reconstruction relies on
  // that common structure, so the substitute reproduces it explicitly.
  if (options_.common_weight > 0.0) {
    const linalg::Vector& common = BasisVector("common");
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += options_.common_weight * common[i];
    }
  }
  // Sequence-level idiosyncrasy: a deterministic pseudo-random direction
  // keyed by the full text, uncached (each distinct sequence appears a
  // handful of times per run).
  if (options_.idiosyncrasy_weight > 0.0) {
    Rng rng(text::HashCombine(text::Hash64(textseq),
                              options_.seed ^ 0x1d105123ULL));
    for (double& x : out) {
      x += options_.idiosyncrasy_weight * rng.NextGaussian() /
           std::sqrt(static_cast<double>(options_.dims));
    }
  }
  // Unit-normalize so cosine and L2 geometry agree downstream.
  linalg::NormalizeInPlace(out);
  return out;
}

}  // namespace colscope::embed
