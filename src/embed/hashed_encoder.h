#ifndef COLSCOPE_EMBED_HASHED_ENCODER_H_
#define COLSCOPE_EMBED_HASHED_ENCODER_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "embed/encoder.h"
#include "text/lexicon.h"

namespace colscope::embed {

/// Configuration of the lexical-semantic hash encoder.
struct HashedEncoderOptions {
  /// Signature dimensionality. The paper uses Sentence-BERT
  /// all-mpnet-base-v2 with 768 dimensions; we default to the same.
  size_t dims = 768;
  /// Weight of the shared synonym-concept component of a token.
  double concept_weight = 1.0;
  /// Weight of the broader category component (geo, person, time, ...);
  /// produces the weaker "sub-typed" similarity (ADDRESS ~ CITY).
  double category_weight = 0.5;
  /// Total weight of the character-trigram components of a token;
  /// produces graded lexical similarity (ORDERDATE ~ ORDER_DATETIME).
  double trigram_weight = 0.25;
  /// Extra weight multiplier of the first token — the element's own name,
  /// which dominates the semantics of a serialized schema element.
  double leading_token_weight = 2.0;
  /// Weight of the shared anisotropy direction added to every non-empty
  /// embedding, reproducing the narrow-cone geometry of contextual
  /// sentence encoders (all-pairs baseline cosine > 0).
  double common_weight = 0.3;
  /// Weight of a deterministic per-sequence idiosyncratic component
  /// (hashed from the full text). Contextual encoders embed the whole
  /// sequence, so even near-synonymous serializations never coincide;
  /// this term reproduces that sentence-level jitter.
  double idiosyncrasy_weight = 0.0;
  /// Seed mixed into every hashed basis vector.
  uint64_t seed = 0x5c09e5eedULL;
};

/// Deterministic substitute for the pretrained Sentence-BERT encoder
/// (see DESIGN.md, Substitution 1). Every token contributes the sum of a
/// concept vector, a category vector, and character-trigram vectors; the
/// sequence embedding is the mean over token vectors (mirroring SBERT's
/// average pooling), L2-normalized. Basis vectors are unit Gaussian
/// directions derived from a hash of the label, so any two distinct
/// labels are nearly orthogonal in 768 dimensions.
///
/// Thread-safe; the internal basis-vector cache takes a shared (reader)
/// lock on the hit path, so concurrent EncodeAll workers only serialize
/// on the rare miss that actually inserts a new basis vector.
class HashedLexiconEncoder : public SentenceEncoder {
 public:
  /// Uses text::DefaultSchemaLexicon().
  explicit HashedLexiconEncoder(HashedEncoderOptions options = {});
  /// Uses a caller-provided lexicon (kept by copy).
  HashedLexiconEncoder(HashedEncoderOptions options, text::Lexicon lexicon);

  linalg::Vector Encode(std::string_view text) const override;
  size_t dims() const override { return options_.dims; }
  /// Covers every option that changes an embedding (weights, seed, dims)
  /// so cached signatures are invalidated by any encoder retuning.
  std::string CacheIdentity() const override;

  const HashedEncoderOptions& options() const { return options_; }

 private:
  /// Unit Gaussian direction for `label` (cached).
  const linalg::Vector& BasisVector(const std::string& label) const;

  HashedEncoderOptions options_;
  text::Lexicon lexicon_;
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::string, linalg::Vector> basis_cache_;
};

}  // namespace colscope::embed

#endif  // COLSCOPE_EMBED_HASHED_ENCODER_H_
