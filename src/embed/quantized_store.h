#ifndef COLSCOPE_EMBED_QUANTIZED_STORE_H_
#define COLSCOPE_EMBED_QUANTIZED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "linalg/matrix.h"

namespace colscope::embed {

/// Structure-of-arrays int8 view of a signature matrix, built once and
/// queried by the approximate prefilters (`--quantized`). Each row is
/// quantized independently with symmetric linear quantization:
///
///   scale_r = max_c |row[c]| / 127,   q[c] = round(row[c] / scale_r)
///
/// so dequantization error is at most scale_r / 2 per element. Rows are
/// stored contiguously at a 64-byte-aligned stride (cols rounded up),
/// which keeps every row start on a cache line and lets the int8 SIMD
/// kernels stream without peeling. Alongside each row the store keeps
/// its scale and its *exact* double-precision squared norm, so distance
/// reconstruction only approximates the cross term:
///
///   dot(a, b)  ~= scale_a * scale_b * dot_i8(qa, qb)
///   |a - b|^2  ~= norm2_a + norm2_b - 2 * dot(a, b)
///
/// A store never replaces exact scoring: callers rank candidates with
/// it, then rescore survivors with the double-precision kernels. The
/// int8 kernels are exact integer arithmetic, so quantized rankings are
/// bit-identical across scalar and SIMD tables.
/// A query vector quantized against a store's geometry: the int8 codes
/// (padded to the store's stride, padding zeroed), the scale, and the
/// exact norms the approximate kernels and the error bound take.
/// Bundles QuantizeQuery's out-parameters so search loops (flat_index,
/// ivf_index) can thread one value instead of four.
struct QuantizedQuery {
  std::vector<int8_t> codes;
  double scale = 0.0;
  double norm2 = 0.0;  ///< Exact squared L2 norm of the original query.
  double l1 = 0.0;     ///< Exact L1 norm of the original query.
};

class QuantizedSignatureStore {
 public:
  QuantizedSignatureStore() = default;

  /// Quantizes every row of `signatures`. Zero rows get scale 0 and an
  /// all-zero code (their approximate dot with anything is 0, matching
  /// the exact value).
  explicit QuantizedSignatureStore(const linalg::Matrix& signatures);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Padded row stride in elements (multiple of 64).
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0; }

  /// Quantized code of row `r` (padding bytes beyond cols() are zero).
  const int8_t* RowCodes(size_t r) const { return codes_.data() + r * stride_; }
  double RowScale(size_t r) const { return scales_[r]; }
  /// Exact (double-precision) squared L2 norm of the original row.
  double RowNorm2(size_t r) const { return norm2_[r]; }
  /// Exact (double-precision) L1 norm of the original row — the norm
  /// the dequantization error bound is stated in (see DotErrorBound).
  double RowL1(size_t r) const { return l1_[r]; }

  /// Quantizes an external query vector (size cols()) into `codes`
  /// (resized to stride(), padding zeroed) and returns its scale.
  /// `exact_norm2` / `exact_l1`, when non-null, receive the exact
  /// squared L2 norm and L1 norm of the query.
  double QuantizeQuery(std::span<const double> query,
                       std::vector<int8_t>* codes,
                       double* exact_norm2 = nullptr,
                       double* exact_l1 = nullptr) const;

  /// QuantizeQuery with the outputs bundled into one QuantizedQuery.
  QuantizedQuery Quantize(std::span<const double> query) const;

  /// Approximate dot product between stored rows `r` and `s`.
  double ApproxDot(size_t r, size_t s) const;

  /// Approximate dot between stored row `r` and a quantized query.
  double ApproxDot(size_t r, const int8_t* query_codes,
                   double query_scale) const;

  /// Approximate squared L2 distance via the exact norms and the
  /// approximate cross term.
  double ApproxSquaredL2(size_t r, const int8_t* query_codes,
                         double query_scale, double query_norm2) const;

  /// Approximate cosine similarity between stored row `r` and a
  /// quantized query (0 when either side has zero norm).
  double ApproxCosine(size_t r, const int8_t* query_codes, double query_scale,
                      double query_norm2) const;

  /// Upper bound on |exact_dot - approx_dot| for stored row `r` against
  /// a query with the given scale and exact *L1* norm. Writing a' / b'
  /// for the dequantized vectors and e_x = x - x' (|e_x[i]| <= scale_x/2),
  ///   dot(a,b) - dot(a',b') = sum a[i]*e_b[i] + sum e_a[i]*b'[i],
  /// and a sum of elementwise products against a vector whose entries
  /// are bounded by scale/2 is bounded by scale/2 times the *L1* norm
  /// of the other factor (Hoelder with the max-norm — an L2 norm here
  /// would be too small by up to sqrt(cols)). With
  /// ||b'||_1 <= ||b||_1 + cols*scale_b/2 this gives
  ///   |err| <= scale_b/2 * ||a||_1 + scale_a/2 * ||b||_1
  ///            + cols/4 * scale_a * scale_b.
  /// Used by the token-blocking prefilter to keep its threshold margin
  /// conservative instead of guessed.
  double DotErrorBound(size_t r, double query_scale, double query_l1) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<int8_t, AlignedAllocator<int8_t, 64>> codes_;
  std::vector<double> scales_;
  std::vector<double> norm2_;
  std::vector<double> l1_;
};

}  // namespace colscope::embed

#endif  // COLSCOPE_EMBED_QUANTIZED_STORE_H_
