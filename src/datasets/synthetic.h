#ifndef COLSCOPE_DATASETS_SYNTHETIC_H_
#define COLSCOPE_DATASETS_SYNTHETIC_H_

#include <cstdint>

#include "datasets/linkage.h"

namespace colscope::datasets {

/// Parameters of the synthetic multi-source generator. The generator
/// produces `num_schemas` schemas that share `shared_concepts`
/// attribute-level concepts (spelled with per-schema synonym aliases, so
/// linkages are a mix of inter-identical and inter-sub-typed) and carry
/// `private_per_schema` unlinkable attributes drawn from disjoint
/// domain vocabularies. Varying `private_per_schema` sweeps the
/// unlinkable overhead — the heterogeneity axis of the paper's OC3 vs
/// OC3-FO comparison — at arbitrary scale.
struct SyntheticOptions {
  size_t num_schemas = 3;
  /// Cross-schema attribute concepts; capped at the built-in vocabulary
  /// size (see SyntheticVocabularySize()).
  size_t shared_concepts = 12;
  /// Unlinkable attributes per schema.
  size_t private_per_schema = 8;
  /// Probability that a schema spells a shared concept with a synonym
  /// alias instead of the canonical name (creates IS linkages).
  double alias_probability = 0.5;
  /// Probability that a schema omits a shared concept entirely (concept
  /// coverage is then partial, like real multi-source sets).
  double dropout_probability = 0.1;
  uint64_t seed = 0x5e7;
};

/// Number of shared attribute concepts the built-in vocabulary supports.
size_t SyntheticVocabularySize();

/// Generates a deterministic synthetic matching scenario with full
/// ground-truth annotation (every co-occurring shared concept is
/// annotated pairwise, tables included).
MatchingScenario BuildSyntheticScenario(const SyntheticOptions& options);

}  // namespace colscope::datasets

#endif  // COLSCOPE_DATASETS_SYNTHETIC_H_
